"""Unit tests for :class:`repro.model.datacenter.DataCenter`."""

import numpy as np
import pytest

from repro.model.datacenter import DataCenter
from repro.model.server import ServerClass


class TestConstruction:
    def test_valid(self):
        dc = DataCenter(name="x", max_servers=[2, 3])
        np.testing.assert_array_equal(dc.max_servers, [2.0, 3.0])
        assert dc.num_server_classes == 2

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            DataCenter(name="", max_servers=[1])

    def test_rejects_empty_servers(self):
        with pytest.raises(ValueError):
            DataCenter(name="x", max_servers=[])

    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError):
            DataCenter(name="x", max_servers=[-1, 2])

    def test_max_servers_is_readonly(self):
        dc = DataCenter(name="x", max_servers=[1, 2])
        with pytest.raises(ValueError):
            dc.max_servers[0] = 5

    def test_defensive_copy(self):
        source = np.array([1.0, 2.0])
        dc = DataCenter(name="x", max_servers=source)
        source[0] = 99
        assert dc.max_servers[0] == 1.0


class TestCapacity:
    def test_max_capacity(self):
        classes = [
            ServerClass(name="a", speed=1.0, active_power=1.0),
            ServerClass(name="b", speed=2.0, active_power=1.0),
        ]
        dc = DataCenter(name="x", max_servers=[3, 4])
        assert dc.max_capacity(classes) == pytest.approx(3 * 1.0 + 4 * 2.0)

    def test_max_capacity_wrong_class_count(self):
        dc = DataCenter(name="x", max_servers=[3])
        classes = [
            ServerClass(name="a", speed=1.0, active_power=1.0),
            ServerClass(name="b", speed=1.0, active_power=1.0),
        ]
        with pytest.raises(ValueError):
            dc.max_capacity(classes)


class TestValidateAvailability:
    def test_accepts_within_plant(self):
        dc = DataCenter(name="x", max_servers=[3, 4])
        avail = np.array([2.0, 4.0])
        assert dc.validate_availability(avail) is avail

    def test_rejects_over_plant(self):
        dc = DataCenter(name="x", max_servers=[3, 4])
        with pytest.raises(ValueError, match="exceeds plant capacity"):
            dc.validate_availability(np.array([3.5, 1.0]))

    def test_rejects_wrong_shape(self):
        dc = DataCenter(name="x", max_servers=[3, 4])
        with pytest.raises(ValueError):
            dc.validate_availability(np.array([1.0]))

    def test_rejects_negative(self):
        dc = DataCenter(name="x", max_servers=[3, 4])
        with pytest.raises(ValueError):
            dc.validate_availability(np.array([-1.0, 2.0]))
