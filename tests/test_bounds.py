"""Unit tests for the Theorem 1 constants and bounds."""

import numpy as np
import pytest

from repro.core.bounds import TheoremConstants
from repro.scenarios import small_cluster


@pytest.fixture
def constants():
    return TheoremConstants.from_scenario(
        small_cluster(), max_arrivals=[10, 5], price_cap=1.0, beta=0.0
    )


class TestFromScenario:
    def test_all_constants_finite_positive(self, constants):
        assert constants.b_const > 0
        assert constants.d_const > 0
        assert constants.q_max_diff > 0
        assert constants.g_max > 0
        assert constants.g_min == 0.0

    def test_beta_raises_g_max(self):
        cluster = small_cluster()
        base = TheoremConstants.from_scenario(cluster, price_cap=1.0, beta=0.0)
        fair = TheoremConstants.from_scenario(cluster, price_cap=1.0, beta=100.0)
        assert fair.g_max > base.g_max
        assert fair.b_const == base.b_const

    def test_price_cap_scales_g_max(self):
        cluster = small_cluster()
        low = TheoremConstants.from_scenario(cluster, price_cap=0.5)
        high = TheoremConstants.from_scenario(cluster, price_cap=2.0)
        assert high.g_max == pytest.approx(4.0 * low.g_max)

    def test_rejects_bad_arrival_length(self):
        with pytest.raises(ValueError):
            TheoremConstants.from_scenario(small_cluster(), max_arrivals=[1])

    def test_rejects_bad_price_cap(self):
        with pytest.raises(ValueError):
            TheoremConstants.from_scenario(small_cluster(), price_cap=0.0)

    def test_default_arrival_caps_from_job_types(self):
        c = TheoremConstants.from_scenario(small_cluster(), price_cap=1.0)
        assert c.b_const > 0

    def test_b_is_standard_drift_bound(self):
        """B = 0.5 sum_j (route_in^2 + a_max^2) + 0.5 sum_ij (h^2 + r^2)."""
        cluster = small_cluster()
        c = TheoremConstants.from_scenario(
            cluster, max_arrivals=[10, 5], price_cap=1.0
        )
        r_max = cluster.max_route_matrix()
        h_max = cluster.max_service_matrix()
        elig = cluster.eligibility_matrix()
        route_in = r_max.sum(axis=0)
        expected = 0.5 * np.sum(route_in**2 + np.array([10.0, 5.0]) ** 2)
        expected += 0.5 * np.sum(h_max[elig] ** 2 + r_max[elig] ** 2)
        assert c.b_const == pytest.approx(expected)


class TestBounds:
    def test_queue_bound_grows_with_v(self, constants):
        bounds = [constants.queue_bound(v, delta=2.0) for v in (1.0, 5.0, 25.0)]
        assert bounds[0] < bounds[1] < bounds[2]

    def test_queue_bound_is_o_of_v(self, constants):
        """For large V the bound grows linearly: bound(2V) ~ 2 bound(V)."""
        b1 = constants.queue_bound(1e5, delta=2.0)
        b2 = constants.queue_bound(2e5, delta=2.0)
        assert b2 / b1 == pytest.approx(2.0, rel=0.01)

    def test_queue_bound_shrinks_with_delta(self, constants):
        assert constants.queue_bound(5.0, delta=4.0) < constants.queue_bound(
            5.0, delta=1.0
        )

    def test_queue_bound_rejects_bad_inputs(self, constants):
        with pytest.raises(ValueError):
            constants.queue_bound(0.0, delta=1.0)
        with pytest.raises(ValueError):
            constants.queue_bound(1.0, delta=0.0)

    def test_cost_gap_is_o_one_over_v(self, constants):
        g1 = constants.cost_gap(1.0)
        g10 = constants.cost_gap(10.0)
        assert g10 == pytest.approx(g1 / 10.0)

    def test_cost_gap_grows_with_lookahead(self, constants):
        assert constants.cost_gap(5.0, lookahead=10) > constants.cost_gap(
            5.0, lookahead=1
        )

    def test_cost_gap_t_equals_one_drops_d(self, constants):
        assert constants.cost_gap(2.0, lookahead=1) == pytest.approx(
            constants.b_const / 2.0
        )

    def test_cost_gap_rejects_bad_inputs(self, constants):
        with pytest.raises(ValueError):
            constants.cost_gap(0.0)
        with pytest.raises(ValueError):
            constants.cost_gap(1.0, lookahead=0)

    def test_c3_definition_matches_eq_39(self, constants):
        v, delta = 4.0, 2.0
        d1 = (constants.b_const / v + constants.g_max - constants.g_min) ** 2
        d2 = 2 * constants.d_const * delta**2 / v**2
        d3 = 2 * constants.q_max_diff * delta / v * np.sqrt(d1)
        assert constants.c3(v, delta) == pytest.approx(np.sqrt(d1 + d2 + d3))
