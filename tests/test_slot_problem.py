"""Unit tests for :class:`repro.optimize.slot_problem.SlotServiceProblem`."""

import numpy as np
import pytest

from repro.optimize.slot_problem import SlotServiceProblem


def _problem(cluster, state, q=None, ub=None, v=1.0, beta=0.0):
    n, j = cluster.num_datacenters, cluster.num_job_types
    q = np.full((n, j), 5.0) if q is None else np.asarray(q, dtype=float)
    ub = np.full((n, j), 10.0) if ub is None else np.asarray(ub, dtype=float)
    return SlotServiceProblem(
        cluster=cluster,
        state=state,
        queue_weights=q,
        h_upper=ub,
        v=v,
        beta=beta,
    )


class TestConstruction:
    def test_valid(self, cluster, state):
        p = _problem(cluster, state)
        assert p.total_resource == pytest.approx(36.0)

    def test_ineligible_upper_bounds_zeroed(self, cluster, state):
        p = _problem(cluster, state)
        # Type 1 is only eligible at site 1.
        assert p.h_upper[0, 1] == 0.0
        assert p.h_upper[1, 1] > 0

    def test_rejects_bad_shapes(self, cluster, state):
        with pytest.raises(ValueError):
            _problem(cluster, state, q=np.zeros((3, 2)))
        with pytest.raises(ValueError):
            _problem(cluster, state, ub=np.zeros((1, 2)))

    def test_rejects_negative_v_or_beta(self, cluster, state):
        with pytest.raises(ValueError):
            _problem(cluster, state, v=-1.0)
        with pytest.raises(ValueError):
            _problem(cluster, state, beta=-1.0)


class TestObjective:
    def test_zero_service_costs_nothing(self, cluster, state):
        p = _problem(cluster, state)
        h = np.zeros((2, 2))
        assert p.energy_cost(h) == pytest.approx(0.0)
        assert p.objective(h) == pytest.approx(
            -p.v * p.beta * p.fairness_score(h) if p.beta else 0.0
        )

    def test_energy_uses_min_power(self, cluster, state):
        p = _problem(cluster, state)
        h = np.zeros((2, 2))
        h[0, 0] = 4.0  # 4 units of work at site 0
        # Cheapest: efficient servers at 0.625 power per work, price 0.4.
        assert p.energy_cost(h) == pytest.approx(0.4 * 4.0 * 0.625)

    def test_objective_includes_queue_reward(self, cluster, state):
        q = np.zeros((2, 2))
        q[0, 0] = 7.0
        p = _problem(cluster, state, q=q, v=2.0)
        h = np.zeros((2, 2))
        h[0, 0] = 1.0
        expected = 2.0 * 0.4 * 1.0 * 0.625 - 7.0
        assert p.objective(h) == pytest.approx(expected)

    def test_fairness_enters_objective(self, cluster, state):
        p = _problem(cluster, state, v=1.0, beta=10.0)
        h = np.zeros((2, 2))
        base = p.objective(h)
        # Serving account-0 work moves the allocation toward its target.
        h[0, 0] = 2.0
        assert isinstance(base, float)
        assert p.fairness_score(h) > p.fairness_score(np.zeros((2, 2)))

    def test_account_work_mapping(self, cluster, state):
        p = _problem(cluster, state)
        h = np.array([[2.0, 0.0], [0.0, 1.5]])
        np.testing.assert_allclose(p.account_work(h), [2.0, 3.0])


class TestBusyFor:
    def test_busy_covers_load(self, cluster, state):
        p = _problem(cluster, state)
        h = np.array([[3.0, 0.0], [2.0, 2.0]])
        busy = p.busy_for(h)
        caps = busy @ cluster.speeds
        loads = p.loads(h)
        assert np.all(caps >= loads - 1e-9)

    def test_busy_within_availability(self, cluster, state):
        p = _problem(cluster, state)
        h = np.minimum(p.h_upper, 5.0)
        busy = p.busy_for(h)
        assert np.all(busy <= state.availability + 1e-9)

    def test_action_for_is_feasible(self, cluster, state):
        p = _problem(cluster, state)
        h = np.array([[3.0, 0.0], [2.0, 2.0]])
        route = np.zeros((2, 2))
        action = p.action_for(h, route)
        action.validate(cluster, state)


class TestFeasibility:
    def test_is_feasible_accepts_zero(self, cluster, state):
        p = _problem(cluster, state)
        assert p.is_feasible(np.zeros((2, 2)))

    def test_is_feasible_rejects_bound_violation(self, cluster, state):
        p = _problem(cluster, state, ub=np.full((2, 2), 1.0))
        h = np.full((2, 2), 2.0)
        assert not p.is_feasible(h)

    def test_is_feasible_rejects_capacity_violation(self, cluster, state):
        p = _problem(cluster, state, ub=np.full((2, 2), 100.0))
        h = np.zeros((2, 2))
        h[0, 0] = 30.0  # site capacity is 18
        assert not p.is_feasible(h)

    def test_clip_feasible(self, cluster, state):
        p = _problem(cluster, state, ub=np.full((2, 2), 100.0))
        h = np.full((2, 2), 50.0)
        clipped = p.clip_feasible(h)
        assert p.is_feasible(clipped)
