"""Tests for the supervision layer (:mod:`repro.resilient`).

Four surfaces, one promise each:

* **supervisor** — a healthy solve is bitwise what the unsupervised call
  site produced; any backend failure degrades down the chain and ends,
  at worst, in the always-feasible zero action;
* **guards** — NaN/Inf/negative inputs are caught before
  :class:`ClusterState` construction under the raise/clamp/hold
  policies, with every repair counted;
* **checkpoint** — snapshots are atomic and schema-versioned, and a
  kill-and-resume run is bit-identical to an uninterrupted one;
* **chaos** — with the primary backend failing on a large fraction of
  slots the simulator still completes with a feasible action every slot.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.model.state import ClusterState
from repro.obs.registry import stats_registry
from repro.optimize import SolverFailure, solve_lp
from repro.optimize.slot_problem import SlotServiceProblem
from repro.resilient import (
    BACKENDS,
    Checkpointer,
    FlakyBackend,
    GuardViolation,
    SimulationKilled,
    SolverPolicy,
    SupervisedSolver,
    chain_for,
    checkpoint_path,
    load_checkpoint,
    run_chaos_drill,
    sanitize_state,
    sanitize_trace_arrays,
    save_checkpoint,
    solve_service,
    solve_zero,
)
from repro.resilient.checkpoint import CHECKPOINT_SCHEMA
from repro.scenarios import small_cluster, small_scenario
from repro.schedulers import AlwaysScheduler
from repro.core.grefar import GreFarScheduler
from repro.simulation.simulator import Simulator

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - exercised only without dev extras
    HAVE_HYPOTHESIS = False


def random_problem(seed: int, beta: float = 0.0) -> SlotServiceProblem:
    """A random feasible slot instance on the small cluster."""
    rng = np.random.default_rng(seed)
    scenario = small_scenario(horizon=8, seed=seed)
    cluster = scenario.cluster
    shape = (cluster.num_datacenters, cluster.num_job_types)
    return SlotServiceProblem(
        cluster=cluster,
        state=scenario.state_at(int(rng.integers(0, 8))),
        queue_weights=rng.uniform(0.0, 12.0, size=shape),
        h_upper=rng.uniform(0.0, 6.0, size=shape),
        v=float(rng.uniform(0.5, 15.0)),
        beta=float(beta),
    )


def _always_fail(problem):
    raise SolverFailure("boom", "synthetic failure", problem)


_always_fail.name = "boom"


# ----------------------------------------------------------------------
# Supervisor: healthy path is bitwise-unchanged
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", ["greedy", "lp", "qp", "projected_gradient"])
@pytest.mark.parametrize("seed", range(4))
def test_supervised_matches_direct_backend_bitwise(name, seed):
    beta = 50.0 if name in ("qp", "projected_gradient") and seed % 2 else 0.0
    problem = random_problem(seed, beta=beta)
    direct = problem.clip_feasible(BACKENDS[name](problem))
    outcome = SupervisedSolver().solve(problem, primary=name, slot=seed)
    assert np.array_equal(outcome.h, direct)
    assert outcome.backend == name
    assert not outcome.degraded
    assert outcome.incidents == ()


def test_solve_service_matches_clipped_greedy():
    problem = random_problem(7)
    from repro.optimize import solve_greedy

    expected = problem.clip_feasible(solve_greedy(problem))
    assert np.array_equal(solve_service(problem, primary="greedy", slot=0), expected)


# ----------------------------------------------------------------------
# Supervisor: fallback semantics
# ----------------------------------------------------------------------
@pytest.mark.parametrize("mode,reason", [("raise", "raised"), ("nan", "non-finite"), ("error", "raised")])
def test_flaky_primary_degrades_to_real_backend(mode, reason):
    problem = random_problem(1)
    flaky = FlakyBackend(backend="greedy", failure_rate=1.0, seed=0, mode=mode)
    stats = stats_registry()
    stats.reset("resilient.")
    solver = SupervisedSolver(chain=(flaky, "greedy", "zero"))
    outcome = solver.solve(problem, slot=3)
    assert outcome.degraded
    assert outcome.backend == "greedy"
    assert problem.is_feasible(outcome.h)
    assert len(outcome.incidents) == 1
    incident = outcome.incidents[0]
    assert incident.reason == reason
    assert incident.backend == "flaky-greedy"
    assert incident.slot == 3
    assert "slot 3" in incident.render()
    counters = stats.counters()
    assert counters["resilient.incidents"] == 1
    assert counters["resilient.failures.flaky-greedy"] == 1
    assert counters["resilient.fallbacks"] == 1
    assert counters["resilient.fallback.greedy"] == 1
    assert "resilient.zero_actions" not in counters


def test_chain_degrades_to_zero_action_terminal():
    problem = random_problem(2)
    stats = stats_registry()
    stats.reset("resilient.")
    solver = SupervisedSolver(chain=(_always_fail, _always_fail, "zero"))
    outcome = solver.solve(problem, slot=9)
    assert outcome.backend == "zero"
    assert outcome.degraded
    assert np.array_equal(outcome.h, np.zeros_like(problem.h_upper))
    assert problem.is_feasible(outcome.h)
    assert len(outcome.incidents) == 2
    counters = stats.counters()
    assert counters["resilient.zero_actions"] == 1
    assert counters["resilient.fallback.zero"] == 1


def test_exhausted_custom_chain_raises_solver_failure():
    solver = SupervisedSolver(chain=(_always_fail,))
    with pytest.raises(SolverFailure, match="every backend in chain"):
        solver.solve(random_problem(3))


def test_retry_budget_counts_attempts():
    problem = random_problem(4)
    flaky = FlakyBackend(backend="greedy", failure_rate=1.0, seed=1)
    solver = SupervisedSolver(
        chain=(flaky, "greedy", "zero"), policy=SolverPolicy(retries=2)
    )
    outcome = solver.solve(problem)
    # Non-terminal entries get 1 + retries attempts before degrading.
    assert [i.attempt for i in outcome.incidents] == [1, 2, 3]
    assert flaky.calls == 3
    assert outcome.backend == "greedy"


def test_incident_log_is_capped_but_counters_are_exact():
    problem = random_problem(5)
    stats = stats_registry()
    stats.reset("resilient.")
    solver = SupervisedSolver(chain=(_always_fail, "zero"), max_incidents=3)
    for _ in range(5):
        solver.solve(problem)
    assert solver.incident_count == 3
    assert stats.counters()["resilient.incidents"] == 5
    solver.clear_incidents()
    assert solver.incident_count == 0
    assert stats.counters()["resilient.incidents"] == 5


def test_unknown_backend_rejected_everywhere():
    with pytest.raises(ValueError, match="unknown solver backend"):
        chain_for("simplex")
    with pytest.raises(ValueError, match="unknown solver backend"):
        SupervisedSolver(chain=("greedy", "simplex"))
    with pytest.raises(ValueError, match="unknown solver backend"):
        SupervisedSolver().solve(random_problem(0), primary="simplex")
    with pytest.raises(ValueError, match="at least one entry"):
        SupervisedSolver(chain=())


def test_policy_validation():
    with pytest.raises(ValueError):
        SolverPolicy(retries=-1)
    with pytest.raises(ValueError, match="timeout must be positive"):
        SolverPolicy(timeout=0.0)


def _sleepy(problem):
    time.sleep(5.0)
    from repro.optimize import solve_greedy

    return solve_greedy(problem)


_sleepy.name = "sleepy"


def test_timeout_budget_abandons_attempt_and_degrades():
    """``SolverPolicy.timeout`` is an enforced chain-wide budget.

    A primary that burns the whole budget is abandoned on its watchdog
    thread; with the budget spent, the supervisor skips the remaining
    non-terminal entries and jumps to the terminal ``"zero"`` action.
    The solve returns in ~the budget, not the backend's 5 s sleep.
    """
    problem = random_problem(6)
    solver = SupervisedSolver(
        chain=(_sleepy, "greedy", "zero"), policy=SolverPolicy(timeout=0.2)
    )
    start = time.perf_counter()
    outcome = solver.solve(problem, slot=2)
    elapsed = time.perf_counter() - start
    assert elapsed < 2.0
    assert outcome.degraded
    assert outcome.backend == "zero"
    assert np.array_equal(outcome.h, np.zeros_like(problem.h_upper))
    assert [i.reason for i in outcome.incidents] == ["timeout", "timeout"]
    assert "abandoned" in outcome.incidents[0].detail
    assert "exhausted" in outcome.incidents[1].detail


def test_timeout_with_slack_keeps_primary_result():
    problem = random_problem(8)
    direct = SupervisedSolver().solve(problem, primary="greedy", slot=1)
    budgeted = SupervisedSolver(policy=SolverPolicy(timeout=30.0)).solve(
        problem, primary="greedy", slot=1
    )
    assert np.array_equal(budgeted.h, direct.h)
    assert budgeted.backend == "greedy"
    assert not budgeted.degraded
    assert budgeted.incidents == ()


def test_chain_for_callable_gets_standard_tail():
    assert chain_for(_always_fail) == (_always_fail, "greedy", "zero")
    assert chain_for("lp") == ("lp", "greedy", "zero")


def test_zero_backend_is_always_feasible():
    problem = random_problem(6)
    h = solve_zero(problem)
    assert problem.is_feasible(h)
    assert np.array_equal(problem.clip_feasible(h), h)


# ----------------------------------------------------------------------
# Typed SolverFailure from the real LP backend
# ----------------------------------------------------------------------
def test_lp_failure_is_typed_and_supervised(monkeypatch):
    problem = random_problem(8)

    class _FailedResult:
        success = False
        message = "numerical difficulties"
        x = None

    monkeypatch.setattr("repro.optimize.lp.linprog", lambda *a, **k: _FailedResult())
    with pytest.raises(SolverFailure) as excinfo:
        solve_lp(problem)
    assert excinfo.value.backend == "lp"
    # The supervisor absorbs the same failure and degrades to greedy.
    outcome = SupervisedSolver().solve(problem, primary="lp", slot=0)
    assert outcome.degraded
    assert outcome.backend == "greedy"
    assert outcome.incidents[0].reason == "raised"
    assert problem.is_feasible(outcome.h)


# ----------------------------------------------------------------------
# FlakyBackend mechanics
# ----------------------------------------------------------------------
def test_flaky_backend_is_deterministic_and_picklable():
    import pickle

    problem = random_problem(9)
    flaky = FlakyBackend(backend="greedy", failure_rate=0.5, seed=42)
    outcomes = []
    for _ in range(20):
        try:
            flaky(problem)
            outcomes.append(True)
        except SolverFailure:
            outcomes.append(False)
    clone = pickle.loads(pickle.dumps(FlakyBackend(backend="greedy", failure_rate=0.5, seed=42)))
    replay = []
    for _ in range(20):
        try:
            clone(problem)
            replay.append(True)
        except SolverFailure:
            replay.append(False)
    assert outcomes == replay
    assert flaky.failures == replay.count(False)
    with pytest.raises(ValueError, match="unknown failure mode"):
        FlakyBackend(mode="segfault")


# ----------------------------------------------------------------------
# Guards: sanitize_state
# ----------------------------------------------------------------------
def _clean_arrays():
    avail = np.array([[4.0, 2.0], [3.0, 1.0]])
    prices = np.array([5.0, 7.0])
    return avail, prices


def test_sanitize_state_clean_arrays_pass_through():
    avail, prices = _clean_arrays()
    state, incidents = sanitize_state(avail, prices, policy="raise")
    assert incidents == ()
    assert np.array_equal(state.availability, avail)
    assert np.array_equal(state.prices, prices)


def test_sanitize_state_clean_cluster_state_is_same_object():
    avail, prices = _clean_arrays()
    state = ClusterState(avail, prices)
    out, incidents = sanitize_state(state, policy="hold")
    assert out is state
    assert incidents == ()


def test_sanitize_state_raise_policy_names_fields():
    avail, prices = _clean_arrays()
    avail[0, 0] = np.nan
    prices[1] = -3.0
    with pytest.raises(GuardViolation, match="availability.*prices") as excinfo:
        sanitize_state(avail, prices, policy="raise")
    assert "nan" in str(excinfo.value)
    assert "negative" in str(excinfo.value)


def test_sanitize_state_clamp_policy():
    avail, prices = _clean_arrays()
    avail[0, 0] = np.inf
    avail[1, 1] = -2.0
    prices[0] = np.inf
    state, incidents = sanitize_state(avail, prices, policy="clamp")
    assert state.availability[0, 0] == 0.0
    assert state.availability[1, 1] == 0.0
    # Non-finite price clamps to the largest finite price visible.
    assert state.prices[0] == 7.0
    kinds = {(i.field, i.kind) for i in incidents}
    assert ("availability", "inf") in kinds
    assert ("availability", "negative") in kinds
    assert ("prices", "inf") in kinds


def test_sanitize_state_clamp_negative_price_to_zero():
    avail, prices = _clean_arrays()
    prices[1] = -4.0
    state, _ = sanitize_state(avail, prices, policy="clamp")
    assert state.prices[1] == 0.0


def test_sanitize_state_hold_routes_through_prepare_state():
    scheduler = AlwaysScheduler(small_cluster())
    clean_avail, clean_prices = _clean_arrays()
    # Seed the last-known-good snapshot with one clean observation.
    scheduler.prepare_state(ClusterState(clean_avail, clean_prices))
    bad_avail = clean_avail.copy()
    bad_prices = clean_prices.copy()
    bad_avail[0, 1] = np.inf
    bad_prices[0] = -1.0
    state, incidents = sanitize_state(bad_avail, bad_prices, policy="hold")
    assert np.isnan(state.availability[0, 1])
    assert np.isnan(state.prices[0])
    filled = scheduler.prepare_state(state)
    assert filled.availability[0, 1] == clean_avail[0, 1]
    assert filled.prices[0] == clean_prices[0]
    assert not np.isnan(filled.availability).any()
    assert len(incidents) == 2


def test_sanitize_state_counts_on_stats_registry():
    stats = stats_registry()
    stats.reset("resilient.guard.")
    avail, prices = _clean_arrays()
    avail[0, 0] = -1.0
    sanitize_state(avail, prices, policy="clamp")
    assert stats.counters()["resilient.guard.availability.negative"] == 1


def test_sanitize_state_rejects_bad_arguments():
    avail, prices = _clean_arrays()
    with pytest.raises(ValueError, match="unknown guard policy"):
        sanitize_state(avail, prices, policy="ignore")
    with pytest.raises(ValueError, match="not both"):
        sanitize_state(ClusterState(avail, prices), prices)


# ----------------------------------------------------------------------
# Guards: sanitize_trace_arrays
# ----------------------------------------------------------------------
def _clean_traces():
    arrivals = np.array([[2.0, 1.0], [3.0, 0.0], [1.0, 1.0], [0.0, 2.0]])
    availability = np.ones((4, 2, 2)) * 3.0
    prices = np.array([[5.0, 6.0], [4.0, 7.0], [5.0, 6.0], [4.0, 5.0]])
    return arrivals, availability, prices


def test_sanitize_trace_arrays_clean_passthrough():
    arrivals, availability, prices = _clean_traces()
    a, av, p, incidents = sanitize_trace_arrays(arrivals, availability, prices)
    assert incidents == ()
    assert np.array_equal(a, arrivals)
    assert np.array_equal(av, availability)
    assert np.array_equal(p, prices)


def test_sanitize_trace_arrays_raise_policy():
    arrivals, availability, prices = _clean_traces()
    prices[2, 1] = np.nan
    with pytest.raises(GuardViolation, match="prices"):
        sanitize_trace_arrays(arrivals, availability, prices, policy="raise")


@pytest.mark.parametrize("policy", ["clamp", "hold"])
def test_sanitize_trace_arrays_zeroes_bad_arrivals(policy):
    arrivals, availability, prices = _clean_traces()
    arrivals[1, 0] = np.nan
    arrivals[2, 1] = -5.0
    a, _, _, incidents = sanitize_trace_arrays(
        arrivals, availability, prices, policy=policy
    )
    assert a[1, 0] == 0.0
    assert a[2, 1] == 0.0
    assert any(i.field == "arrivals" for i in incidents)


def test_sanitize_trace_arrays_hold_forward_fills():
    arrivals, availability, prices = _clean_traces()
    prices[1, 0] = np.nan
    prices[2, 0] = np.inf
    availability[2, 1, 0] = -1.0
    _, av, p, _ = sanitize_trace_arrays(
        arrivals, availability, prices, policy="hold"
    )
    # Bad entries take the previous good value in the same series.
    assert p[1, 0] == prices[0, 0]
    assert p[2, 0] == prices[0, 0]
    assert av[2, 1, 0] == availability[1, 1, 0]


def test_sanitize_trace_arrays_hold_leading_bad_uses_fallback():
    arrivals, availability, prices = _clean_traces()
    prices[0, 1] = np.nan
    availability[0, 0, 0] = np.inf
    _, av, p, _ = sanitize_trace_arrays(
        arrivals, availability, prices, policy="hold"
    )
    # No previous good value: prices fall back to the max finite price
    # (dark feed assumed expensive), availability to zero.
    assert p[0, 1] == 7.0
    assert av[0, 0, 0] == 0.0


def test_sanitize_trace_arrays_clamp_prices():
    arrivals, availability, prices = _clean_traces()
    prices[3, 1] = -2.0
    prices[0, 0] = np.inf
    _, _, p, _ = sanitize_trace_arrays(
        arrivals, availability, prices, policy="clamp"
    )
    assert p[3, 1] == 0.0
    assert p[0, 0] == 7.0


# ----------------------------------------------------------------------
# Hypothesis: degenerate inputs never escape the supervisor
# ----------------------------------------------------------------------
if HAVE_HYPOTHESIS:

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        rate=st.floats(0.0, 1.0),
        mode=st.sampled_from(["raise", "nan", "error"]),
    )
    def test_supervisor_always_returns_feasible_action(seed, rate, mode):
        problem = random_problem(seed % 64)
        flaky = FlakyBackend(
            backend="greedy", failure_rate=rate, seed=seed, mode=mode
        )
        solver = SupervisedSolver(chain=(flaky, "greedy", "zero"))
        outcome = solver.solve(problem, slot=0)
        assert np.all(np.isfinite(outcome.h))
        assert problem.is_feasible(outcome.h)
        assert len(outcome.incidents) == flaky.failures

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        policy=st.sampled_from(["clamp", "hold"]),
        data=st.data(),
    )
    def test_guards_always_produce_constructible_state(seed, policy, data):
        rng = np.random.default_rng(seed)
        avail = rng.uniform(0.0, 8.0, size=(3, 2))
        prices = rng.uniform(1.0, 9.0, size=3)
        poison = data.draw(
            st.lists(
                st.sampled_from([np.nan, np.inf, -np.inf, -1.0]),
                min_size=0,
                max_size=4,
            )
        )
        for value in poison:
            if rng.random() < 0.5:
                avail[rng.integers(0, 3), rng.integers(0, 2)] = value
            else:
                prices[rng.integers(0, 3)] = value
        state, _ = sanitize_state(avail, prices, policy=policy)
        if policy == "clamp":
            assert np.isfinite(state.prices).all()
        filled = AlwaysScheduler(small_cluster()).prepare_state(state)
        assert np.isfinite(filled.availability).all()
        assert np.isfinite(filled.prices).all()
        assert (filled.availability >= 0).all()


# ----------------------------------------------------------------------
# Chaos drill
# ----------------------------------------------------------------------
@pytest.mark.parametrize("mode", ["raise", "nan"])
def test_chaos_drill_absorbs_heavy_fault_rate(mode):
    scenario = small_scenario(horizon=40, seed=5)
    scheduler = GreFarScheduler(scenario.cluster, v=5.0)
    report = run_chaos_drill(
        scenario, scheduler, failure_rate=0.5, seed=7, mode=mode
    )
    assert report.slots == 40
    assert report.injected_failures > 0
    assert report.incidents >= report.injected_failures
    # Every fault degraded to the real greedy backend, not the zero action.
    assert report.fallbacks >= report.injected_failures
    assert report.zero_actions == 0
    assert report.survived
    assert "faults injected" in report.render()


def test_chaos_drill_zero_rate_is_clean():
    scenario = small_scenario(horizon=20, seed=5)
    report = run_chaos_drill(
        scenario, GreFarScheduler(scenario.cluster, v=5.0), failure_rate=0.0, seed=1
    )
    assert report.injected_failures == 0
    assert report.incidents == 0
    assert report.fallbacks == 0
    assert not report.survived


# ----------------------------------------------------------------------
# Checkpoint files
# ----------------------------------------------------------------------
def test_checkpoint_round_trip(tmp_path):
    ckpt = Checkpointer(key="abc123", directory=tmp_path)
    payload = {"next_slot": 7, "queues": [1, 2, 3]}
    path = ckpt.save(payload)
    assert path == tmp_path / "abc123.ckpt"
    assert ckpt.load() == payload
    ckpt.clear()
    assert ckpt.load() is None
    ckpt.clear()  # idempotent


def test_checkpoint_missing_corrupt_and_mismatched(tmp_path):
    stats = stats_registry()
    stats.reset("resilient.checkpoint.")
    path = checkpoint_path("k1", tmp_path)
    assert load_checkpoint(path) is None

    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(b"not a pickle")
    assert load_checkpoint(path) is None

    import pickle

    path.write_bytes(
        pickle.dumps({"schema": "ckpt-v0", "key": "k1", "payload": {}})
    )
    assert load_checkpoint(path) is None

    save_checkpoint(path, "k1", {"x": 1})
    assert load_checkpoint(path, key="other") is None
    assert load_checkpoint(path, key="k1") == {"x": 1}
    counters = stats.counters()
    assert counters["resilient.checkpoint.corrupt"] == 1
    assert counters["resilient.checkpoint.schema_mismatch"] == 1
    assert counters["resilient.checkpoint.key_mismatch"] == 1
    assert counters["resilient.checkpoint.loads"] == 1
    assert counters["resilient.checkpoint.saves"] == 1


def test_checkpoint_write_is_atomic(tmp_path):
    # A successful save leaves exactly the checkpoint file, no temp junk.
    ckpt = Checkpointer(key="atomic", directory=tmp_path)
    ckpt.save({"n": 1})
    ckpt.save({"n": 2})
    assert [p.name for p in tmp_path.iterdir()] == ["atomic.ckpt"]
    assert ckpt.load() == {"n": 2}


def test_checkpointer_validation(tmp_path):
    with pytest.raises(ValueError, match="non-empty run key"):
        Checkpointer(key="")
    with pytest.raises(ValueError):
        Checkpointer(key="k", every=0)
    with pytest.raises(ValueError):
        Checkpointer(key="k", kill_at=0)
    with pytest.raises(ValueError, match="non-empty run key"):
        checkpoint_path("")
    ckpt = Checkpointer(key="k", every=10, kill_at=25, directory=tmp_path)
    assert not ckpt.due(5)
    assert ckpt.due(10)
    assert ckpt.due(20)
    assert not ckpt.should_kill(24)
    assert ckpt.should_kill(25)


def test_checkpoint_schema_constant_is_stable():
    # Resume compatibility hinges on this tag; changing it must be a
    # deliberate, test-visible act.
    assert CHECKPOINT_SCHEMA == "ckpt-v1"


# ----------------------------------------------------------------------
# Simulator kill-and-resume (in-process)
# ----------------------------------------------------------------------
def _summary_dict(scenario_seed, horizon, checkpointer=None, resume=False):
    scenario = small_scenario(horizon=horizon, seed=scenario_seed)
    scheduler = GreFarScheduler(scenario.cluster, v=5.0)
    result = Simulator(scenario, scheduler).run(
        checkpointer=checkpointer, resume=resume
    )
    return result.summary.as_dict()


def test_kill_and_resume_is_bit_identical(tmp_path):
    baseline = _summary_dict(3, 60)

    ckpt = Checkpointer(key="resume-test", every=10, kill_at=30, directory=tmp_path)
    with pytest.raises(SimulationKilled) as excinfo:
        _summary_dict(3, 60, checkpointer=ckpt)
    assert excinfo.value.slot == 30
    assert ckpt.path.exists()

    resumed = _summary_dict(
        3,
        60,
        checkpointer=Checkpointer(key="resume-test", directory=tmp_path),
        resume=True,
    )
    assert resumed == baseline
    # A completed run clears its checkpoint.
    assert not ckpt.path.exists()


def test_kill_without_periodic_saves_still_snapshots(tmp_path):
    ckpt = Checkpointer(key="kill-only", kill_at=15, directory=tmp_path)
    with pytest.raises(SimulationKilled):
        _summary_dict(4, 40, checkpointer=ckpt)
    payload = ckpt.load()
    assert payload["next_slot"] == 15


def test_resume_with_rng_scheduler_is_bit_identical(tmp_path):
    # The random-routing baseline carries a live RNG; resuming must
    # restore its exact generator state, not reseed it.
    from repro.schedulers import RandomRoutingScheduler

    def run(checkpointer=None, resume=False):
        scenario = small_scenario(horizon=50, seed=6)
        scheduler = RandomRoutingScheduler(scenario.cluster, seed=17)
        return (
            Simulator(scenario, scheduler)
            .run(checkpointer=checkpointer, resume=resume)
            .summary.as_dict()
        )

    baseline = run()
    ckpt = Checkpointer(key="rng-resume", every=5, kill_at=25, directory=tmp_path)
    with pytest.raises(SimulationKilled):
        run(checkpointer=ckpt)
    resumed = run(
        checkpointer=Checkpointer(key="rng-resume", directory=tmp_path), resume=True
    )
    assert resumed == baseline


def test_resume_without_checkpoint_runs_fresh(tmp_path):
    baseline = _summary_dict(5, 30)
    resumed = _summary_dict(
        5,
        30,
        checkpointer=Checkpointer(key="no-such", directory=tmp_path),
        resume=True,
    )
    assert resumed == baseline
