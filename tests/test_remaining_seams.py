"""Coverage for the remaining public seams not hit elsewhere."""

import numpy as np
import pytest

from repro.core.grefar import GreFarScheduler
from repro.model.action import Action
from repro.model.state import ClusterState
from repro.optimize.capacity import build_supply_curves
from repro.schedulers.base import route_greedily, service_upper_bounds
from repro.simulation.simulator import Simulator


class TestSupplyCurveErrors:
    def test_busy_counts_rejects_over_capacity(self, cluster, state):
        curve = build_supply_curves(cluster, state)[0]
        with pytest.raises(ValueError, match="exceeds site total"):
            curve.busy_counts(curve.total_capacity * 2, 2, cluster.speeds)

    def test_empty_site_curve(self, cluster):
        state = ClusterState(np.zeros((2, 2)), [0.4, 0.5])
        curve = build_supply_curves(cluster, state)[0]
        assert curve.total_capacity == 0.0
        assert curve.min_power(0.0) == 0.0
        assert curve.marginal_segments() == []


class TestRouteGreedilyPrefer:
    def test_prefer_overrides_backlog(self, cluster):
        front = np.array([2.0, 0.0])
        dc = np.array([[0.0, 0.0], [5.0, 0.0]])
        # Invert the preference: make site 1 look better despite backlog.
        prefer = np.array([[9.0, 0.0], [1.0, 0.0]])
        route = route_greedily(cluster, front, dc, prefer=prefer)
        assert route[1, 0] == pytest.approx(2.0)


class TestServiceUpperBounds:
    def test_literal_mode_ignores_queue_content(self, cluster, state):
        dc = np.zeros((2, 2))
        bounds = service_upper_bounds(cluster, state, dc, physical=False)
        # Without physical capping, bounds equal h_max (no parallelism caps).
        np.testing.assert_allclose(bounds, cluster.max_service_matrix())

    def test_physical_mode_caps_at_content(self, cluster, state):
        dc = np.full((2, 2), 1.5)
        bounds = service_upper_bounds(cluster, state, dc, physical=True)
        assert np.all(bounds <= 1.5 + 1e-9)


class TestGreFarSolverVariants:
    def test_projected_gradient_backend_runs(self, scenario):
        scheduler = GreFarScheduler(
            scenario.cluster, v=5.0, solver="projected_gradient"
        )
        result = Simulator(scenario, scheduler, validate=True).run(15)
        assert result.summary.horizon == 15

    def test_qp_backend_at_beta_zero(self, scenario):
        scheduler = GreFarScheduler(scenario.cluster, v=5.0, solver="qp")
        result = Simulator(scenario, scheduler).run(15)
        greedy = Simulator(
            scenario, GreFarScheduler(scenario.cluster, v=5.0, solver="greedy")
        ).run(15)
        assert result.summary.avg_energy_cost == pytest.approx(
            greedy.summary.avg_energy_cost, rel=0.02
        )


class TestExperimentVariants:
    def test_fig3_custom_betas(self):
        from repro.experiments import fig3_beta

        result = fig3_beta.run(horizon=30, seed=0, beta_values=(0.0, 10.0, 50.0))
        assert len(result.final_fairness) == 3

    def test_theorem1_custom_vs(self):
        from repro.experiments import theorem1

        result = theorem1.run(horizon=48, lookahead=24, v_values=(3.0,))
        assert len(result.grefar_costs) == 1

    def test_table1_rows_structure(self):
        from repro.experiments import table1

        result = table1.run(horizon=50, seed=0)
        rows = result.rows()
        assert len(rows) == 3
        assert rows[0][0] == "#1"


class TestActionConstructionEdge:
    def test_tiny_negative_rounding_clipped(self, cluster):
        """Values within -1e-6 of zero (solver noise) are clipped, not
        rejected."""
        r = np.full((2, 2), -1e-9)
        a = Action(r, np.zeros((2, 2)), np.zeros((2, 2)))
        assert np.all(a.route >= 0)

    def test_idle_energy_zero(self, cluster, state):
        assert Action.idle(cluster).energy_cost(cluster, state) == 0.0
