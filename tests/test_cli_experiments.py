"""CLI coverage for every experiment name and the remaining schedulers."""

import pytest

from repro.cli import main


class TestExperimentCommands:
    @pytest.mark.parametrize(
        "name, horizon",
        [
            ("fig1", "48"),
            ("fig2", "40"),
            ("fig3", "30"),
            ("fig4", "30"),
            ("work", "40"),
            ("surface", "40"),
        ],
    )
    def test_each_experiment_runs(self, capsys, name, horizon):
        assert main(["experiment", name, "--horizon", horizon]) == 0
        out = capsys.readouterr().out
        assert len(out.strip()) > 0

    def test_fig5_ignores_horizon(self, capsys):
        assert main(["experiment", "fig5"]) == 0
        assert "Fig. 5" in capsys.readouterr().out

    def test_theorem1_default_horizon(self, capsys):
        assert main(["experiment", "theorem1", "--horizon", "48"]) == 0
        assert "Theorem 1" in capsys.readouterr().out


class TestRunMpc:
    def test_mpc_scheduler_runs(self, capsys):
        assert main(["run", "--scheduler", "mpc", "--horizon", "30"]) == 0
        out = capsys.readouterr().out
        assert "RecedingHorizon" in out

    def test_grefar_with_beta(self, capsys):
        assert main(
            ["run", "--scheduler", "grefar", "--v", "10", "--beta", "50",
             "--horizon", "20"]
        ) == 0
        out = capsys.readouterr().out
        assert "beta=50" in out
