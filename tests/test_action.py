"""Unit tests for :class:`repro.model.action.Action`."""

import numpy as np
import pytest

from repro.model.action import Action


def _zeros(cluster):
    return Action.idle(cluster)


class TestConstruction:
    def test_idle(self, cluster):
        a = _zeros(cluster)
        assert a.route.shape == (2, 2)
        assert a.busy.shape == (2, 2)
        assert np.all(a.route == 0)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            Action(np.zeros((2, 2)), np.zeros((2, 3)), np.zeros((2, 2)))
        with pytest.raises(ValueError):
            Action(np.zeros((2, 2)), np.zeros((2, 2)), np.zeros((3, 2)))

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            Action(np.zeros(2), np.zeros(2), np.zeros(2))

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Action(-np.ones((1, 1)), np.zeros((1, 1)), np.zeros((1, 1)))

    def test_rejects_nan(self):
        bad = np.full((1, 1), np.nan)
        with pytest.raises(ValueError):
            Action(bad, np.zeros((1, 1)), np.zeros((1, 1)))

    def test_arrays_frozen(self, cluster):
        a = _zeros(cluster)
        with pytest.raises(ValueError):
            a.route[0, 0] = 1


class TestDerived:
    def test_work_served(self, cluster):
        h = np.array([[2.0, 0.0], [1.0, 3.0]])
        a = Action(np.zeros((2, 2)), h, np.zeros((2, 2)))
        # demands are [1.0, 2.0]
        np.testing.assert_allclose(a.work_served(cluster), [2.0, 7.0])

    def test_capacity_used(self, cluster):
        b = np.array([[1.0, 2.0], [0.0, 0.0]])
        a = Action(np.zeros((2, 2)), np.zeros((2, 2)), b)
        # speeds are [1.0, 0.8]
        np.testing.assert_allclose(a.capacity_used(cluster), [2.6, 0.0])

    def test_energy_cost(self, cluster, state):
        b = np.array([[2.0, 0.0], [0.0, 4.0]])
        a = Action(np.zeros((2, 2)), np.zeros((2, 2)), b)
        # powers [1.0, 0.5]; prices [0.4, 0.5]
        expected = 0.4 * 2.0 * 1.0 + 0.5 * 4.0 * 0.5
        assert a.energy_cost(cluster, state) == pytest.approx(expected)

    def test_energy_cost_per_site(self, cluster, state):
        b = np.array([[2.0, 0.0], [0.0, 4.0]])
        a = Action(np.zeros((2, 2)), np.zeros((2, 2)), b)
        np.testing.assert_allclose(
            a.energy_cost_per_site(cluster, state), [0.8, 1.0]
        )

    def test_account_work(self, cluster):
        h = np.array([[2.0, 0.0], [1.0, 3.0]])
        a = Action(np.zeros((2, 2)), h, np.zeros((2, 2)))
        # type 0 -> account 0: 3 jobs x demand 1; type 1 -> account 1:
        # 3 jobs x demand 2.
        np.testing.assert_allclose(a.account_work(cluster), [3.0, 6.0])


class TestValidate:
    def test_idle_is_valid(self, cluster, state):
        _zeros(cluster).validate(cluster, state)

    def test_rejects_ineligible_route(self, cluster, state):
        r = np.zeros((2, 2))
        r[0, 1] = 1.0  # type 1 is only eligible at site 1
        a = Action(r, np.zeros((2, 2)), np.zeros((2, 2)))
        with pytest.raises(ValueError, match="ineligible"):
            a.validate(cluster, state)

    def test_rejects_fractional_route(self, cluster, state):
        r = np.zeros((2, 2))
        r[0, 0] = 1.5
        a = Action(r, np.zeros((2, 2)), np.zeros((2, 2)))
        with pytest.raises(ValueError, match="integer"):
            a.validate(cluster, state)

    def test_rejects_busy_over_availability(self, cluster, state):
        b = np.zeros((2, 2))
        b[0, 0] = 11.0  # only 10 available
        a = Action(np.zeros((2, 2)), np.zeros((2, 2)), b)
        with pytest.raises(ValueError, match="busy exceeds"):
            a.validate(cluster, state)

    def test_rejects_work_over_capacity(self, cluster, state):
        h = np.zeros((2, 2))
        h[0, 0] = 5.0  # 5 units of work
        b = np.zeros((2, 2))
        b[0, 0] = 1.0  # only 1 unit of capacity
        a = Action(np.zeros((2, 2)), h, b)
        with pytest.raises(ValueError, match="eq. 11"):
            a.validate(cluster, state)

    def test_rejects_route_over_bound(self, cluster, state):
        r = np.zeros((2, 2))
        r[0, 0] = 51.0  # max_route is 50 for type 0
        a = Action(r, np.zeros((2, 2)), np.zeros((2, 2)))
        with pytest.raises(ValueError, match="r_ij"):
            a.validate(cluster, state)

    def test_rejects_serve_over_bound(self, cluster, state):
        h = np.zeros((2, 2))
        h[1, 1] = 26.0  # max_service is 25 for type 1
        b = np.full((2, 2), 10.0)
        a = Action(np.zeros((2, 2)), h, b)
        with pytest.raises(ValueError, match="h_ij"):
            a.validate(cluster, state)

    def test_valid_full_action(self, cluster, state):
        r = np.zeros((2, 2))
        r[0, 0] = 2.0
        r[1, 1] = 1.0
        h = np.zeros((2, 2))
        h[1, 1] = 2.0  # 4 units of work at site 1
        b = np.zeros((2, 2))
        b[1, 0] = 4.0  # 4 units of capacity
        Action(r, h, b).validate(cluster, state)
