"""Tests for the temporal/spatial saving decomposition."""

import pytest

from repro.analysis.decomposition import decompose_energy_saving
from repro.core.grefar import GreFarScheduler
from repro.scenarios import paper_scenario
from repro.schedulers import AlwaysScheduler
from repro.simulation.simulator import Simulator


@pytest.fixture(scope="module")
def runs():
    scenario = paper_scenario(horizon=300, seed=2)
    grefar = Simulator(scenario, GreFarScheduler(scenario.cluster, v=30.0)).run()
    always = Simulator(scenario, AlwaysScheduler(scenario.cluster)).run()
    return scenario, grefar, always


class TestDecomposition:
    def test_self_decomposition_is_zero_saving(self, runs):
        scenario, grefar, _ = runs
        decomp = decompose_energy_saving(scenario, grefar, grefar)
        # Against itself, the spatial term vanishes by construction.
        assert decomp.spatial_saving == pytest.approx(0.0, abs=1e-6)

    def test_grefar_has_positive_temporal_saving(self, runs):
        scenario, grefar, always = runs
        decomp = decompose_energy_saving(scenario, grefar, always)
        # The whole point of deferral: pay below-average prices.
        assert decomp.temporal_saving > 0

    def test_always_has_no_temporal_skill(self, runs):
        scenario, grefar, always = runs
        decomp = decompose_energy_saving(scenario, always, always)
        # Always serves one slot after arrival: its bill is within noise
        # of the time-blind counterfactual.
        assert abs(decomp.temporal_saving) < 0.1 * decomp.actual_cost

    def test_components_sum_to_total(self, runs):
        scenario, grefar, always = runs
        decomp = decompose_energy_saving(scenario, grefar, always)
        assert decomp.total_saving == pytest.approx(
            decomp.temporal_saving + decomp.spatial_saving
        )
        assert decomp.total_saving == pytest.approx(
            decomp.reference_cost - decomp.actual_cost
        )

    def test_summary_mentions_both_terms(self, runs):
        scenario, grefar, always = runs
        decomp = decompose_energy_saving(scenario, grefar, always)
        text = decomp.summary()
        assert "temporal" in text and "spatial" in text

    def test_rejects_mismatched_horizons(self, runs):
        scenario, grefar, _ = runs
        short = Simulator(
            scenario, AlwaysScheduler(scenario.cluster)
        ).run(100)
        with pytest.raises(ValueError, match="horizons"):
            decompose_energy_saving(scenario, grefar, short)

    def test_actual_cost_close_to_measured_energy(self, runs):
        """The linear reconstruction tracks the simulator's own bill."""
        scenario, grefar, _ = runs
        decomp = decompose_energy_saving(scenario, grefar, grefar)
        measured = sum(grefar.metrics.energy_cost)
        assert decomp.actual_cost == pytest.approx(measured, rel=0.05)
