"""Cross-checks between the per-slot solver backends.

The greedy backend is provably exact for beta = 0; the LP backend is an
independently-derived formulation of the same problem; the QP backend
must match them at beta = 0 and never do worse than greedy at beta > 0;
the projected-gradient backend must come close.  Randomized instances
exercise all of it.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.state import ClusterState
from repro.optimize import (
    SlotServiceProblem,
    solve_greedy,
    solve_lp,
    solve_projected_gradient,
    solve_qp,
)
from repro.scenarios import small_cluster


def _random_problem(seed: int, v: float = 5.0, beta: float = 0.0):
    cluster = small_cluster()
    rng = np.random.default_rng(seed)
    n, j = cluster.num_datacenters, cluster.num_job_types
    availability = np.stack(
        [np.floor(dc.max_servers * rng.uniform(0.5, 1.0)) for dc in cluster.datacenters]
    )
    prices = rng.uniform(0.1, 1.0, size=n)
    state = ClusterState(availability, prices)
    q = rng.uniform(0.0, 20.0, size=(n, j))
    ub = rng.uniform(0.0, 15.0, size=(n, j))
    return SlotServiceProblem(
        cluster=cluster,
        state=state,
        queue_weights=q,
        h_upper=ub,
        v=v,
        beta=beta,
    )


class TestGreedy:
    def test_serves_nothing_when_prices_too_high(self, cluster, state):
        # Queue value 1 per job (demand 1): threshold is V*price*w = huge.
        q = np.full((2, 2), 1.0)
        problem = SlotServiceProblem(
            cluster=cluster,
            state=state,
            queue_weights=q,
            h_upper=np.full((2, 2), 10.0),
            v=1000.0,
        )
        h = solve_greedy(problem)
        np.testing.assert_allclose(h, 0.0)

    def test_serves_everything_at_v_zero(self, cluster, state):
        q = np.full((2, 2), 1.0)
        ub = np.full((2, 2), 3.0)
        problem = SlotServiceProblem(
            cluster=cluster,
            state=state,
            queue_weights=q,
            h_upper=ub,
            v=0.0,
        )
        h = solve_greedy(problem)
        np.testing.assert_allclose(h, problem.h_upper)

    def test_threshold_rule_single_site(self, tiny_cluster):
        """Serve iff q/d > V * price * p/s (the W constant of the paper)."""
        state = ClusterState(np.array([[4.0]]), [0.5])
        # w = p/s = 0.5; V=4 -> threshold = 4 * 0.5 * 0.5 = 1.0 per work.
        for q_val, expect_service in [(0.5, False), (2.0, True)]:
            problem = SlotServiceProblem(
                cluster=tiny_cluster,
                state=state,
                queue_weights=np.array([[q_val]]),
                h_upper=np.array([[5.0]]),
                v=4.0,
            )
            h = solve_greedy(problem)
            assert (h[0, 0] > 0) == expect_service

    def test_respects_capacity(self):
        problem = _random_problem(7)
        h = solve_greedy(problem)
        assert problem.is_feasible(h)

    def test_rejects_beta(self):
        problem = _random_problem(0, beta=1.0)
        with pytest.raises(ValueError):
            solve_greedy(problem)


class TestGreedyVsLp:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_objectives_match(self, seed):
        problem = _random_problem(seed, v=np.random.default_rng(seed).uniform(0, 20))
        h_greedy = solve_greedy(problem)
        h_lp = solve_lp(problem)
        obj_greedy = problem.objective(h_greedy)
        obj_lp = problem.objective(h_lp)
        assert obj_greedy == pytest.approx(obj_lp, abs=1e-6)

    def test_lp_rejects_beta(self):
        problem = _random_problem(0, beta=1.0)
        with pytest.raises(ValueError):
            solve_lp(problem)


class TestQp:
    def test_matches_greedy_at_beta_zero(self):
        for seed in range(5):
            problem = _random_problem(seed, beta=0.0)
            h_qp = solve_qp(problem)
            h_greedy = solve_greedy(problem)
            assert problem.objective(h_qp) == pytest.approx(
                problem.objective(h_greedy), abs=1e-6
            )

    def test_beta_positive_never_worse_than_greedy_relaxation(self):
        for seed in range(8):
            problem = _random_problem(seed, v=5.0, beta=20.0)
            h_qp = solve_qp(problem)
            assert problem.is_feasible(h_qp, tol=1e-5)
            relaxed = _random_problem(seed, v=5.0, beta=0.0)
            h_greedy = solve_greedy(relaxed)
            # QP optimizes the true objective: it must not be worse than
            # the greedy warm start evaluated on the same objective.
            assert problem.objective(h_qp) <= problem.objective(h_greedy) + 1e-6

    def test_fairness_pull_increases_underserved_service(self, cluster, state):
        """beta > 0 serves an underserved account even at break-even prices."""
        # Queue weight exactly at the V * price * w threshold: greedy idles.
        q = np.zeros((2, 2))
        q[1, 1] = 1.0  # account 1's type, below threshold
        v = 10.0
        problem = SlotServiceProblem(
            cluster=cluster,
            state=state,
            queue_weights=q,
            h_upper=np.full((2, 2), 5.0),
            v=v,
            beta=500.0,
        )
        h = solve_qp(problem)
        # With a strong fairness pull the allocation moves off zero.
        assert h.sum() > 0.01


class TestProjectedGradient:
    def test_feasible_output(self):
        for seed in range(5):
            problem = _random_problem(seed, beta=10.0)
            h = solve_projected_gradient(problem)
            assert problem.is_feasible(h, tol=1e-5)

    def test_close_to_qp_at_beta_zero(self):
        gaps = []
        for seed in range(6):
            problem = _random_problem(seed)
            h_pg = solve_projected_gradient(problem, max_iterations=500)
            h_exact = solve_greedy(problem)
            exact = problem.objective(h_exact)
            scale = max(abs(exact), 1.0)
            gaps.append((problem.objective(h_pg) - exact) / scale)
        # Subgradient descent is approximate; demand a small relative gap.
        assert np.median(gaps) < 0.1
        assert min(gaps) > -1e-9  # can never beat the exact optimum

    def test_improves_over_zero_start(self):
        problem = _random_problem(3, v=1.0)
        h = solve_projected_gradient(problem)
        assert problem.objective(h) <= problem.objective(np.zeros_like(h)) + 1e-12
