"""Tests for the provisioning calibration utilities."""

import numpy as np
import pytest

from repro.scenarios import paper_scenario, small_cluster
from repro.simulation.trace import Scenario
from repro.workloads import AvailabilityModel, calibrate_workload, provisioning_report


class TestProvisioningReport:
    def test_paper_scenario_is_slack(self):
        scn = paper_scenario(horizon=300, seed=0)
        report = provisioning_report(scn)
        assert report.slack_feasible
        assert 0.0 < report.mean_utilization < 1.0
        assert report.mean_utilization <= report.p95_utilization
        assert report.p95_utilization <= report.peak_utilization

    def test_overload_detected(self):
        cluster = small_cluster()
        horizon = 10
        arrivals = np.full((horizon, 2), 20.0)
        availability = np.tile(
            np.stack([dc.max_servers for dc in cluster.datacenters]),
            (horizon, 1, 1),
        )
        scn = Scenario(
            cluster=cluster,
            arrivals=arrivals,
            availability=availability,
            prices=np.full((horizon, 2), 0.4),
        )
        report = provisioning_report(scn)
        assert not report.slack_feasible
        assert report.peak_utilization > 1.0
        assert "OVERLOADED" in report.summary()

    def test_summary_format(self):
        scn = paper_scenario(horizon=100, seed=1)
        text = provisioning_report(scn).summary()
        assert "utilization" in text
        assert "%" in text


class TestCalibrateWorkload:
    def test_targets_utilization(self):
        cluster = small_cluster()
        availability = AvailabilityModel(cluster, floor_fraction=0.8)
        workload = calibrate_workload(
            cluster, availability, target_utilization=0.3, cap_fraction=0.9
        )
        floor = availability.min_capacity()
        assert workload.mean_total_work == pytest.approx(0.3 * floor)
        assert workload.max_total_work == pytest.approx(0.9 * floor)

    def test_generated_scenario_is_slack(self):
        cluster = small_cluster()
        availability = AvailabilityModel(cluster, floor_fraction=0.8)
        workload = calibrate_workload(cluster, availability, target_utilization=0.25)
        scn = Scenario.generate(
            cluster,
            horizon=300,
            seed=3,
            workload=workload,
            availability_model=availability,
        )
        # Aggregate utilization feasible; per-site slackness may still
        # fail for pinned types, so check the aggregate report here.
        assert provisioning_report(scn).slack_feasible

    def test_rejects_bad_targets(self):
        cluster = small_cluster()
        with pytest.raises(ValueError):
            calibrate_workload(cluster, target_utilization=0.0)
        with pytest.raises(ValueError):
            calibrate_workload(cluster, target_utilization=0.95, cap_fraction=0.9)
        with pytest.raises(ValueError):
            calibrate_workload(cluster, cap_fraction=1.5)

    def test_kwargs_passthrough(self):
        cluster = small_cluster()
        workload = calibrate_workload(cluster, burst_mean_on=4.0)
        assert workload.burst_mean_on == 4.0


class TestMainModule:
    def test_python_m_repro(self, capsys):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro", "list"],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0
        assert "grefar" in proc.stdout
