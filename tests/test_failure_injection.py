"""Failure injection: degenerate and adversarial conditions.

The paper's guarantee holds for *arbitrary* state processes, so the
implementation must not fall over when the environment turns hostile:
sites with zero availability, free or absurd prices, empty workloads,
total blackouts, and sustained overload.
"""

import numpy as np
import pytest

from repro.core.grefar import GreFarScheduler
from repro.model.cluster import Cluster
from repro.model.datacenter import DataCenter
from repro.model.job import Account, JobType
from repro.model.server import ServerClass
from repro.schedulers import AlwaysScheduler, TroughFillingScheduler
from repro.simulation.simulator import Simulator
from repro.simulation.trace import Scenario


def _scenario(cluster, arrivals, availability, prices):
    return Scenario(
        cluster=cluster,
        arrivals=arrivals,
        availability=availability,
        prices=prices,
    )


def _full_availability(cluster, horizon):
    return np.tile(
        np.stack([dc.max_servers for dc in cluster.datacenters]), (horizon, 1, 1)
    )


@pytest.fixture
def base(cluster):
    horizon = 50
    rng = np.random.default_rng(0)
    arrivals = rng.integers(0, 4, size=(horizon, 2)).astype(float)
    availability = _full_availability(cluster, horizon)
    prices = rng.uniform(0.2, 0.8, size=(horizon, 2))
    return horizon, arrivals, availability, prices


class TestBlackouts:
    def test_total_blackout_window(self, cluster, base):
        """All sites lose every server for 10 slots: queues grow, nothing
        crashes, work resumes afterwards and eventually completes."""
        horizon, arrivals, availability, prices = base
        availability = availability.copy()
        availability[20:30] = 0.0
        scn = _scenario(cluster, arrivals, availability, prices)
        result = Simulator(scn, AlwaysScheduler(cluster), validate=True).run()
        s = result.summary
        assert s.total_served_jobs + result.queues.total_backlog() == pytest.approx(
            s.total_arrived_jobs, abs=1e-6
        )
        # Blackout slots processed zero work.
        work = result.metrics.work_per_dc_series()
        assert np.all(work[20:30] == 0.0)
        # Work resumed after the blackout.
        assert work[30:].sum() > 0

    def test_one_site_permanently_down(self, cluster, base):
        horizon, arrivals, availability, prices = base
        availability = availability.copy()
        availability[:, 0, :] = 0.0  # site 0 never available
        scn = _scenario(cluster, arrivals, availability, prices)
        result = Simulator(scn, GreFarScheduler(cluster, v=5.0), validate=True).run()
        work = result.metrics.work_per_dc_series()
        assert work[:, 0].sum() == pytest.approx(0.0)
        assert work[:, 1].sum() > 0


class TestDegeneratePrices:
    def test_free_electricity(self, cluster, base):
        horizon, arrivals, availability, _ = base
        prices = np.zeros((horizon, 2))
        scn = _scenario(cluster, arrivals, availability, prices)
        result = Simulator(scn, GreFarScheduler(cluster, v=100.0), validate=True).run()
        # Free power: even a huge V serves everything promptly.
        assert result.summary.avg_energy_cost == pytest.approx(0.0)
        assert result.summary.avg_dc_delay[1] < 1.5

    def test_absurd_price_spike(self, cluster, base):
        horizon, arrivals, availability, prices = base
        prices = prices.copy()
        prices[25] = 1e6
        scn = _scenario(cluster, arrivals, availability, prices)
        result = Simulator(scn, GreFarScheduler(cluster, v=5.0), validate=True).run()
        # The spike slot is avoided entirely.
        work = result.metrics.work_per_dc_series()
        assert work[25].sum() == pytest.approx(0.0)


class TestDegenerateWorkloads:
    def test_no_arrivals_at_all(self, cluster, base):
        horizon, _, availability, prices = base
        scn = _scenario(cluster, np.zeros((horizon, 2)), availability, prices)
        for scheduler in (
            GreFarScheduler(cluster, v=5.0),
            AlwaysScheduler(cluster),
            TroughFillingScheduler(cluster),
        ):
            result = Simulator(scn, scheduler, validate=True).run()
            assert result.summary.total_served_jobs == 0.0
            assert result.summary.avg_energy_cost == pytest.approx(0.0)

    def test_single_burst_then_silence(self, cluster, base):
        horizon, _, availability, prices = base
        arrivals = np.zeros((horizon, 2))
        arrivals[0] = [10.0, 4.0]
        scn = _scenario(cluster, arrivals, availability, prices)
        result = Simulator(scn, GreFarScheduler(cluster, v=2.0), validate=True).run()
        assert result.summary.total_served_jobs == pytest.approx(14.0)

    def test_sustained_overload_keeps_running(self, cluster, base):
        """Arrivals above capacity: queues grow, nothing crashes, and the
        served work tracks the capacity."""
        horizon, _, availability, prices = base
        arrivals = np.full((horizon, 2), 25.0)  # far beyond capacity
        arrivals[:, 1] = 5.0
        scn = _scenario(cluster, arrivals, availability, prices)
        result = Simulator(scn, AlwaysScheduler(cluster), validate=True).run()
        backlog = result.queues.total_backlog()
        assert backlog > 0
        # Served work per slot hovers at capacity (36 work = 36 type-0 jobs
        # equivalents; mixed with type 1 it is below arrivals).
        assert result.summary.total_served_jobs < result.summary.total_arrived_jobs


class TestDegenerateClusters:
    def test_single_site_single_type(self):
        cluster = Cluster(
            server_classes=(ServerClass(name="s", speed=1.0, active_power=1.0),),
            datacenters=(DataCenter(name="d", max_servers=[5]),),
            job_types=(
                JobType(name="j", demand=1.0, eligible_dcs=(0,), account=0),
            ),
            accounts=(Account(name="a", fair_share=1.0),),
        )
        horizon = 20
        rng = np.random.default_rng(1)
        scn = _scenario(
            cluster,
            rng.integers(0, 3, size=(horizon, 1)).astype(float),
            np.full((horizon, 1, 1), 5.0),
            rng.uniform(0.1, 0.9, size=(horizon, 1)),
        )
        result = Simulator(scn, GreFarScheduler(cluster, v=3.0), validate=True).run()
        s = result.summary
        assert s.total_served_jobs + result.queues.total_backlog() == pytest.approx(
            s.total_arrived_jobs, abs=1e-6
        )

    def test_zero_share_account(self):
        """An account with zero fairness share still gets served (its jobs
        have queue weight; fairness just doesn't favor it)."""
        cluster = Cluster(
            server_classes=(ServerClass(name="s", speed=1.0, active_power=1.0),),
            datacenters=(DataCenter(name="d", max_servers=[5]),),
            job_types=(
                JobType(name="j0", demand=1.0, eligible_dcs=(0,), account=0),
                JobType(name="j1", demand=1.0, eligible_dcs=(0,), account=1),
            ),
            accounts=(
                Account(name="a", fair_share=1.0),
                Account(name="b", fair_share=0.0),
            ),
        )
        horizon = 30
        arrivals = np.ones((horizon, 2))
        scn = _scenario(
            cluster,
            arrivals,
            np.full((horizon, 1, 1), 5.0),
            np.full((horizon, 1), 0.3),
        )
        result = Simulator(
            scn, GreFarScheduler(cluster, v=1.0, beta=50.0), validate=True
        ).run()
        stats = result.queues.stats
        assert stats.dc_completed[0, 1] > 0  # zero-share account served
