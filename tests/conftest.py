"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest

# Run the whole suite with the runtime contract layer active (queue
# invariants, action feasibility, Theorem 1 bound — see
# repro._contracts).  An explicit REPRO_CONTRACTS=0 still disables it.
os.environ.setdefault("REPRO_CONTRACTS", "1")

from repro.model.cluster import Cluster
from repro.model.datacenter import DataCenter
from repro.model.job import Account, JobType
from repro.model.server import ServerClass
from repro.model.state import ClusterState
from repro.scenarios import small_cluster, small_scenario


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def cluster() -> Cluster:
    """The standard 2-site test cluster."""
    return small_cluster()


@pytest.fixture
def scenario():
    """A short scenario on the test cluster."""
    return small_scenario(horizon=60, seed=3)


@pytest.fixture
def state(cluster) -> ClusterState:
    """A fixed, fully-available state for the test cluster."""
    availability = np.stack([dc.max_servers for dc in cluster.datacenters])
    return ClusterState(availability, [0.4, 0.5])


@pytest.fixture
def tiny_cluster() -> Cluster:
    """A 1-site, 1-type cluster for hand-computable cases."""
    return Cluster(
        server_classes=(ServerClass(name="only", speed=2.0, active_power=1.0),),
        datacenters=(DataCenter(name="solo", max_servers=[4]),),
        job_types=(
            JobType(
                name="job",
                demand=1.0,
                eligible_dcs=(0,),
                account=0,
                max_arrivals=10,
                max_route=10,
                max_service=10.0,
            ),
        ),
        accounts=(Account(name="acct", fair_share=1.0),),
    )


def make_state(cluster: Cluster, prices, fraction: float = 1.0) -> ClusterState:
    """Helper: a state with every site at *fraction* of its plant."""
    availability = np.stack(
        [np.floor(dc.max_servers * fraction) for dc in cluster.datacenters]
    )
    return ClusterState(availability, prices)
