"""Tests for the scenario presets (the paper's Table I setup)."""

import numpy as np
import pytest

from repro.core.slackness import check_slackness
from repro.scenarios import (
    PAPER_FAIR_SHARES,
    PAPER_PRICE_MEANS,
    paper_cluster,
    paper_scenario,
    small_cluster,
    small_scenario,
)


class TestPaperCluster:
    def test_dimensions(self):
        c = paper_cluster()
        assert c.num_datacenters == 3
        assert c.num_server_classes == 3
        assert c.num_accounts == 4
        assert c.num_job_types == 8

    def test_table1_server_parameters(self):
        c = paper_cluster()
        np.testing.assert_allclose(c.speeds, [1.00, 0.75, 1.15])
        np.testing.assert_allclose(c.active_powers, [1.00, 0.60, 1.20])

    def test_one_server_class_per_site(self):
        c = paper_cluster()
        for i, dc in enumerate(c.datacenters):
            nonzero = np.flatnonzero(dc.max_servers)
            np.testing.assert_array_equal(nonzero, [i])

    def test_fair_shares(self):
        c = paper_cluster()
        np.testing.assert_allclose(c.fair_shares, PAPER_FAIR_SHARES)

    def test_energy_cost_ordering(self):
        """Table I: DC#2 cheapest per unit work, DC#3 most expensive."""
        c = paper_cluster()
        unit = [
            PAPER_PRICE_MEANS[i] * c.server_classes[i].energy_per_unit_work
            for i in range(3)
        ]
        assert unit[1] < unit[0] < unit[2]

    def test_custom_job_demand(self):
        c = paper_cluster(job_demand=4.0)
        assert np.isclose(c.demands.mean(), 4.0, rtol=0.01)

    def test_rejects_bad_server_counts(self):
        with pytest.raises(ValueError):
            paper_cluster(server_counts=(10, 20))


class TestPaperScenario:
    def test_shapes(self):
        scn = paper_scenario(horizon=50, seed=0)
        assert scn.arrivals.shape == (50, 8)
        assert scn.availability.shape == (50, 3, 3)
        assert scn.prices.shape == (50, 3)

    def test_price_means_near_table1(self):
        scn = paper_scenario(horizon=2000, seed=0)
        means = scn.prices.mean(axis=0)
        np.testing.assert_allclose(means, PAPER_PRICE_MEANS, rtol=0.25)
        assert means[0] < means[1] < means[2]

    def test_mean_work_near_target(self):
        scn = paper_scenario(horizon=2000, seed=0)
        assert scn.arrival_work().mean() == pytest.approx(95.0, rel=0.2)

    def test_slackness_holds(self):
        scn = paper_scenario(horizon=500, seed=0)
        report = check_slackness(scn.cluster, scn.arrivals, scn.availability)
        assert report.feasible
        assert report.max_delta > 0

    def test_slackness_holds_other_seeds(self):
        for seed in (1, 2):
            scn = paper_scenario(horizon=300, seed=seed)
            report = check_slackness(scn.cluster, scn.arrivals, scn.availability)
            assert report.feasible, f"seed {seed} violates slackness"

    def test_seed_determinism(self):
        a = paper_scenario(horizon=50, seed=5)
        b = paper_scenario(horizon=50, seed=5)
        np.testing.assert_array_equal(a.arrivals, b.arrivals)


class TestSmallPresets:
    def test_small_cluster_valid(self):
        c = small_cluster()
        assert c.num_datacenters == 2
        assert c.num_accounts == 2

    def test_small_scenario_runs(self):
        scn = small_scenario(horizon=30, seed=1)
        assert scn.horizon == 30

    def test_small_scenario_slackness(self):
        scn = small_scenario(horizon=200, seed=1)
        report = check_slackness(scn.cluster, scn.arrivals, scn.availability)
        assert report.feasible
