"""Kill-and-resume end to end: the resumed run is bit-identical.

Two layers above the simulator-level tests in ``test_resilient.py``:

* through the **runner** (in-process): a :class:`CheckpointPolicy` with
  ``kill_at`` kills a spec mid-run, ``resume_from_checkpoint`` finishes
  it, and the summary matches an uninterrupted execution of the same
  spec exactly;
* through the **CLI in a fresh process**: ``repro run --kill-at`` exits
  with code 3 leaving a snapshot behind, a second process with
  ``--resume`` completes the run, and its ``--json`` summary is
  byte-identical to a never-interrupted third process.  This is the
  real crash story — nothing survives in memory between the two
  processes, only the checkpoint file.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.resilient import SimulationKilled, checkpoint_path
from repro.runner.cache import cache_key
from repro.runner import (
    CheckpointPolicy,
    ResultCache,
    RunSpec,
    ScenarioSpec,
    resume_from_checkpoint,
    run_many,
)

REPO = Path(__file__).resolve().parents[1]

SPEC = RunSpec(
    scenario=ScenarioSpec(kind="small", horizon=200, seed=3),
    scheduler="grefar",
    scheduler_kwargs={"v": 5.0},
)


# ----------------------------------------------------------------------
# Runner-level (in-process)
# ----------------------------------------------------------------------
def test_runner_kill_and_resume_bit_identical(tmp_path, monkeypatch):
    # The suite-wide REPRO_CONTRACTS=1 makes run_many bypass the cache;
    # switch it off so the final cache-hit assertion is meaningful.
    monkeypatch.setenv("REPRO_CONTRACTS", "0")
    ckpt_dir = str(tmp_path / "ckpt")
    baseline_cache = ResultCache(tmp_path / "cache_a")
    resumed_cache = ResultCache(tmp_path / "cache_b")

    (baseline,) = run_many([SPEC], cache=baseline_cache)

    kill = CheckpointPolicy(every=25, kill_at=100, directory=ckpt_dir)
    with pytest.raises(SimulationKilled) as excinfo:
        run_many([SPEC], cache=resumed_cache, checkpoint=kill)
    assert excinfo.value.slot == 100
    snapshot = checkpoint_path(cache_key(SPEC), ckpt_dir)
    assert snapshot.exists()

    resumed = resume_from_checkpoint(
        SPEC, cache=resumed_cache, directory=ckpt_dir
    )
    assert resumed.summary.as_dict() == baseline.summary.as_dict()
    # The finished run clears its snapshot and lands in the cache.
    assert not snapshot.exists()
    (cached,) = run_many([SPEC], cache=resumed_cache)
    assert cached.cached
    assert cached.summary.as_dict() == baseline.summary.as_dict()


def test_resume_policy_without_snapshot_runs_fresh(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    baseline = run_many([SPEC], cache=ResultCache(tmp_path / "cache_ref"))[0]
    result = resume_from_checkpoint(
        SPEC, cache=cache, directory=str(tmp_path / "empty")
    )
    assert result.summary.as_dict() == baseline.summary.as_dict()


def test_inline_specs_are_not_checkpointed(tmp_path):
    # A spec with no stable cache key has nothing to name a snapshot by.
    policy = CheckpointPolicy(every=10, directory=str(tmp_path / "ckpt"))
    inline = RunSpec(scenario=None, scheduler="grefar", horizon=20)
    from repro.scenarios import small_scenario

    run_many(
        [inline],
        cache=ResultCache(tmp_path / "cache"),
        scenario=small_scenario(horizon=20, seed=1),
        checkpoint=policy,
    )
    ckpt_dir = tmp_path / "ckpt"
    assert not ckpt_dir.exists() or not any(ckpt_dir.iterdir())


# ----------------------------------------------------------------------
# Fresh-process CLI crash drill
# ----------------------------------------------------------------------
def _repro(args, cwd):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        cwd=cwd,
        env={
            "PYTHONPATH": str(REPO / "src"),
            "PATH": "/usr/bin:/bin:/usr/local/bin",
        },
    )


def test_cli_fresh_process_kill_and_resume(tmp_path):
    base = [
        "run",
        "--horizon",
        "120",
        "--v",
        "5.0",
        "--json",
        "--no-cache",
    ]

    killed = _repro(
        base + ["--checkpoint-every", "20", "--kill-at", "60"], tmp_path
    )
    assert killed.returncode == 3, killed.stdout + killed.stderr
    assert "resume" in killed.stderr
    checkpoints = list((tmp_path / ".repro_cache" / "checkpoints").glob("*.ckpt"))
    assert len(checkpoints) == 1

    # A *different* process finishes the run from the snapshot alone.
    resumed = _repro(base + ["--resume"], tmp_path)
    assert resumed.returncode == 0, resumed.stdout + resumed.stderr

    fresh = _repro(base, tmp_path)
    assert fresh.returncode == 0, fresh.stdout + fresh.stderr

    assert resumed.stdout == fresh.stdout
    assert json.loads(resumed.stdout) == json.loads(fresh.stdout)
    # Completion cleared the snapshot.
    assert not checkpoints[0].exists()
