"""Property test: GreFar's action minimizes the drift-plus-penalty (14).

This is the central correctness property of the whole reproduction:
Algorithm 1 *is* "choose the action minimizing (14)", and Theorem 1
rests entirely on that minimization being exact.  For random queue
states, prices and availabilities, the action GreFar returns must score
no worse on (14) than any random feasible alternative action (for the
service part, which carries the optimization; the routing part is
checked per-coefficient).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.grefar import GreFarScheduler
from repro.model.action import Action
from repro.model.queues import QueueNetwork
from repro.model.state import ClusterState
from repro.optimize.slot_problem import SlotServiceProblem
from repro.scenarios import small_cluster


def _random_setup(seed: int):
    cluster = small_cluster()
    rng = np.random.default_rng(seed)
    availability = np.stack(
        [np.floor(dc.max_servers * rng.uniform(0.4, 1.0)) for dc in cluster.datacenters]
    )
    state = ClusterState(availability, rng.uniform(0.05, 1.5, size=2))
    queues = QueueNetwork(cluster)
    # Load random backlog into the central and site queues.
    queues.step(
        Action.idle(cluster),
        rng.integers(0, 8, size=2).astype(float),
        t=0,
    )
    elig = cluster.eligibility_matrix()
    route = rng.integers(0, 6, size=(2, 2)).astype(float) * elig
    queues.step(
        Action(route, np.zeros((2, 2)), np.zeros((2, 2))),
        rng.integers(0, 8, size=2).astype(float),
        t=1,
    )
    return cluster, rng, state, queues


def _dpp_value(problem: SlotServiceProblem, front, dc, route, h) -> float:
    """Evaluate expression (14) for a full action (route + service)."""
    value = problem.objective(h)  # V g(t) - sum q h  (service part)
    # Routing part: sum_ij (q_ij - Q_j) r_ij.
    value += float(np.sum((dc - front[np.newaxis, :]) * route))
    return value


@settings(max_examples=60, deadline=None)
@given(
    st.integers(min_value=0, max_value=100_000),
    st.floats(min_value=0.0, max_value=40.0),
    st.floats(min_value=0.0, max_value=200.0),
)
def test_grefar_action_minimizes_dpp(seed, v, beta):
    cluster, rng, state, queues = _random_setup(seed)
    scheduler = GreFarScheduler(cluster, v=v, beta=beta)
    action = scheduler.decide(2, state, queues)

    front = queues.front
    dc = queues.dc
    problem = scheduler._problem(state, dc)
    chosen = _dpp_value(problem, front, dc, action.route, np.array(action.serve))

    elig = cluster.eligibility_matrix()
    tolerance = 1e-6 if beta == 0 else 5e-3 * (1 + abs(chosen))
    for _ in range(8):
        # Random feasible alternative: physical routing + feasible service.
        h_alt = problem.clip_feasible(
            rng.uniform(0, 1, size=(2, 2)) * problem.h_upper
        )
        route_alt = np.zeros((2, 2))
        for j in range(2):
            budget = int(np.floor(front[j]))
            sites = [i for i in range(2) if elig[i, j]]
            for i in sites:
                take = rng.integers(0, budget + 1)
                route_alt[i, j] = take
                budget -= take
        alternative = _dpp_value(problem, front, dc, route_alt, h_alt)
        assert chosen <= alternative + tolerance


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_grefar_beats_always_and_idle_on_dpp(seed):
    """The minimizer must (weakly) beat two canonical policies on (14)."""
    from repro.schedulers import AlwaysScheduler

    cluster, _, state, queues = _random_setup(seed)
    scheduler = GreFarScheduler(cluster, v=10.0)
    action = scheduler.decide(2, state, queues)

    front = queues.front
    dc = queues.dc
    problem = scheduler._problem(state, dc)
    chosen = _dpp_value(problem, front, dc, action.route, np.array(action.serve))

    idle = Action.idle(cluster)
    idle_value = _dpp_value(problem, front, dc, idle.route, np.array(idle.serve))
    assert chosen <= idle_value + 1e-9

    always_action = AlwaysScheduler(cluster).decide(2, state, queues)
    h_always = problem.clip_feasible(np.array(always_action.serve))
    always_value = _dpp_value(
        problem, front, dc, always_action.route, h_always
    )
    assert chosen <= always_value + 1e-9
