"""System-level invariants: Little's law, idle-power accounting, and
the empirical Theorem 1 queue bound on randomized slack scenarios."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import littles_law_delay
from repro.core.bounds import TheoremConstants
from repro.core.grefar import GreFarScheduler
from repro.core.objective import CostModel
from repro.core.slackness import check_slackness
from repro.model.cluster import Cluster
from repro.model.datacenter import DataCenter
from repro.model.job import Account, JobType
from repro.model.server import ServerClass
from repro.scenarios import small_scenario
from repro.schedulers import AlwaysScheduler
from repro.simulation.simulator import Simulator
from repro.simulation.trace import Scenario


class TestLittlesLaw:
    def test_measured_delay_matches_littles_law(self):
        """Mean measured end-to-end delay ~ mean backlog / arrival rate."""
        scn = small_scenario(horizon=400, seed=8)
        result = Simulator(scn, GreFarScheduler(scn.cluster, v=20.0)).run()

        mean_backlog = float(np.mean(result.metrics.queue_total_series()))
        arrival_rate = result.summary.total_arrived_jobs / scn.horizon
        estimate = littles_law_delay(mean_backlog, arrival_rate)
        measured = result.summary.avg_total_delay
        # Little's law holds asymptotically; allow finite-horizon slack.
        assert measured == pytest.approx(estimate, rel=0.35)


class TestIdlePowerAccounting:
    def _cluster_with_idle(self):
        return Cluster(
            server_classes=(
                ServerClass(name="s", speed=1.0, active_power=1.0, idle_power=0.4),
            ),
            datacenters=(DataCenter(name="d", max_servers=[10]),),
            job_types=(
                JobType(name="j", demand=1.0, eligible_dcs=(0,), account=0),
            ),
            accounts=(Account(name="a", fair_share=1.0),),
        )

    def _scenario(self, cluster, horizon=20):
        rng = np.random.default_rng(2)
        return Scenario(
            cluster=cluster,
            arrivals=rng.integers(0, 3, size=(horizon, 1)).astype(float),
            availability=np.full((horizon, 1, 1), 10.0),
            prices=np.full((horizon, 1), 0.5),
        )

    def test_idle_energy_added(self):
        cluster = self._cluster_with_idle()
        scn = self._scenario(cluster)
        base = Simulator(
            scn, AlwaysScheduler(cluster), cost_model=CostModel()
        ).run()
        absolute = Simulator(
            scn,
            AlwaysScheduler(cluster),
            cost_model=CostModel(include_idle_power=True),
        ).run()
        # 10 servers x 0.4 idle x 0.5 price = 2.0 per slot, constant.
        extra = absolute.summary.avg_energy_cost - base.summary.avg_energy_cost
        assert extra == pytest.approx(2.0)

    def test_idle_accounting_preserves_rankings(self):
        """Adding idle power shifts every scheduler equally."""
        cluster = self._cluster_with_idle()
        scn = self._scenario(cluster, horizon=40)
        deltas = []
        for scheduler in (
            AlwaysScheduler(cluster),
            GreFarScheduler(cluster, v=10.0),
        ):
            base = Simulator(scn, scheduler, cost_model=CostModel()).run()
            absolute = Simulator(
                scn, scheduler, cost_model=CostModel(include_idle_power=True)
            ).run()
            deltas.append(
                absolute.summary.avg_energy_cost - base.summary.avg_energy_cost
            )
        assert deltas[0] == pytest.approx(deltas[1])


class TestEmpiricalQueueBound:
    @settings(max_examples=12, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.sampled_from([1.0, 5.0, 20.0]),
    )
    def test_queue_bound_on_random_slack_scenarios(self, seed, v):
        """Theorem 1a on randomized scenarios that satisfy slackness."""
        scn = small_scenario(horizon=120, seed=seed)
        report = check_slackness(scn.cluster, scn.arrivals, scn.availability)
        if not report.feasible:
            return  # slackness is a prerequisite of the theorem
        constants = TheoremConstants.from_scenario(
            scn.cluster,
            max_arrivals=scn.arrivals.max(axis=0),
            price_cap=float(scn.prices.max()),
        )
        result = Simulator(scn, GreFarScheduler(scn.cluster, v=v)).run()
        bound = constants.queue_bound(v, report.max_delta)
        assert result.summary.max_queue_length <= bound
