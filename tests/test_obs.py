"""Tests for the observability layer (repro.obs).

Covers the registry's disabled-is-a-no-op contract, timer/span
semantics (including nesting), the trace-event sinks and their JSONL
round-trip, the profile harness and hot-path table, the baseline
pipeline and its validator, and — most load-bearing — that turning
telemetry on changes *nothing* about scheduler decisions.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

import repro.cli
from repro.core.grefar import GreFarScheduler
from repro.obs.baseline import (
    BENCH_SCHEMA,
    baseline_payload,
    compare_baselines,
    validate_baseline,
    validate_baseline_file,
    write_baseline,
)
from repro.obs.baseline import main as baseline_main
from repro.obs.events import (
    InMemorySink,
    JsonlSink,
    SlotTraceEvent,
    read_trace_jsonl,
)
from repro.obs.instruments import counted, span, timed
from repro.obs.profile import profile_run, render_hot_path_table
from repro.obs.registry import (
    Registry,
    metrics_registry,
    stats_registry,
)
from repro.scenarios import small_scenario
from repro.simulation.simulator import Simulator


@pytest.fixture(autouse=True)
def clean_metrics():
    """Leave the process-local metrics registry as this test found it."""
    registry = metrics_registry()
    was_enabled = registry.enabled
    registry.reset()
    yield
    registry.enabled = was_enabled
    registry.reset()
    registry.clear_sinks()


# ----------------------------------------------------------------------
# Registry semantics
# ----------------------------------------------------------------------
def test_disabled_registry_records_nothing():
    registry = Registry("test", enabled=False)
    registry.counter_add("c")
    registry.timer_add("t", 1.0)
    registry.gauge_set("g", 3.0)
    registry.note_solve(solver="greedy")
    sink = InMemorySink()
    registry.add_sink(sink)
    registry.emit(SlotTraceEvent(slot=0, scheduler="x", front_backlog=0, dc_backlog=0))
    with registry.span("s"):
        pass
    assert registry.counters() == {}
    assert registry.timers() == []
    assert registry.gauges() == {}
    assert registry.consume_solve() == {}
    assert len(sink) == 0


def test_enabled_registry_records_everything():
    registry = Registry("test", enabled=True)
    registry.counter_add("c")
    registry.counter_add("c", 2.0)
    registry.timer_add("t", 0.5, calls=2)
    registry.gauge_set("g", 3.0)
    assert registry.counter("c") == 3.0
    stat = registry.timer("t")
    assert stat.calls == 2 and stat.total_seconds == 0.5
    assert stat.mean_seconds == 0.25
    assert registry.gauge("g") == 3.0
    snapshot = registry.snapshot()
    assert snapshot["counters"] == {"c": 3.0}
    assert snapshot["timers"]["t"]["calls"] == 2


def test_registry_reset_with_prefix():
    registry = Registry("test", enabled=True)
    registry.counter_add("runner.executed", 4)
    registry.counter_add("cache.stores", 2)
    registry.gauge_set("runner.jobs", 8)
    registry.reset("runner.")
    assert registry.counter("runner.executed") == 0.0
    assert registry.gauge("runner.jobs", 1.0) == 1.0
    assert registry.counter("cache.stores") == 2.0
    registry.reset()
    assert registry.counters() == {}


def test_span_nesting_accumulates_both_levels():
    registry = Registry("test", enabled=True)
    with registry.span("outer"):
        with registry.span("inner"):
            sum(range(1000))
    outer, inner = registry.timer("outer"), registry.timer("inner")
    assert outer.calls == 1 and inner.calls == 1
    # Inclusive timing: the parent covers at least the child.
    assert outer.total_seconds >= inner.total_seconds > 0.0


def test_timers_sorted_slowest_first():
    registry = Registry("test", enabled=True)
    registry.timer_add("fast", 0.001)
    registry.timer_add("slow", 1.0)
    assert [stat.name for stat in registry.timers()] == ["slow", "fast"]


def test_timed_and_counted_decorators_toggle_with_registry():
    registry = Registry("test", enabled=False)

    @timed("work", registry=registry)
    @counted("work.calls", registry=registry)
    def work(x):
        return x + 1

    assert work(1) == 2
    assert registry.timers() == [] and registry.counters() == {}
    registry.enable()
    assert work(2) == 3
    assert registry.timer("work").calls == 1
    assert registry.counter("work.calls") == 1.0


def test_module_level_span_helper_uses_metrics_registry():
    registry = metrics_registry()
    registry.enable()
    with span("helper.block"):
        pass
    assert registry.timer("helper.block").calls == 1
    registry.disable()


# ----------------------------------------------------------------------
# Trace events and sinks
# ----------------------------------------------------------------------
def _event(slot: int = 0) -> SlotTraceEvent:
    return SlotTraceEvent(
        slot=slot,
        scheduler="GreFar(V=5, beta=0)",
        front_backlog=3.0,
        dc_backlog=1.5,
        solver="greedy",
        iterations=7,
        objective=-2.25,
        solve_seconds=1e-4,
        energy_cost=0.75,
        served_jobs=2.0,
    )


def test_slot_trace_event_dict_round_trip():
    event = _event(slot=3)
    assert SlotTraceEvent.from_dict(event.to_dict()) == event


def test_jsonl_sink_round_trip(tmp_path):
    path = tmp_path / "trace.jsonl"
    events = [_event(slot) for slot in range(5)]
    with JsonlSink(path) as sink:
        for event in events:
            sink.write(event)
    assert read_trace_jsonl(path) == events


def test_jsonl_sink_write_after_close_raises(tmp_path):
    sink = JsonlSink(tmp_path / "trace.jsonl")
    sink.close()
    sink.close()  # idempotent
    with pytest.raises(ValueError):
        sink.write(_event())


def test_in_memory_sink_collects_and_clears():
    sink = InMemorySink()
    sink.write(_event(0))
    sink.write(_event(1))
    assert len(sink) == 2
    assert [event.slot for event in sink.events] == [0, 1]
    sink.clear()
    assert len(sink) == 0


# ----------------------------------------------------------------------
# Telemetry does not change decisions
# ----------------------------------------------------------------------
def _run_and_fingerprint(enable: bool):
    scenario = small_scenario(horizon=30, seed=7)
    scheduler = GreFarScheduler(scenario.cluster, v=5.0)
    fingerprints = []

    def record(t, state, action, queues) -> None:
        fingerprints.append(
            action.route.tobytes()
            + action.serve.tobytes()
            + action.busy.tobytes()
        )

    registry = metrics_registry()
    registry.enabled = enable
    try:
        result = Simulator(scenario, scheduler, observers=[record]).run()
    finally:
        registry.disable()
    return fingerprints, result.summary


def test_telemetry_on_off_identical_decisions():
    off_prints, off_summary = _run_and_fingerprint(enable=False)
    on_prints, on_summary = _run_and_fingerprint(enable=True)
    assert off_prints == on_prints  # bit-for-bit identical actions
    assert off_summary == on_summary


def test_simulator_emits_one_event_per_slot():
    scenario = small_scenario(horizon=12, seed=3)
    scheduler = GreFarScheduler(scenario.cluster, v=5.0)
    registry = metrics_registry()
    sink = InMemorySink()
    registry.add_sink(sink)
    registry.enable()
    try:
        Simulator(scenario, scheduler).run()
    finally:
        registry.disable()
        registry.remove_sink(sink)
    assert [event.slot for event in sink.events] == list(range(12))
    event = sink.events[-1]
    assert event.scheduler == scheduler.name
    assert event.solver == "greedy"
    assert event.solve_seconds > 0.0
    assert registry.timer("sim.slot").calls == 12
    assert registry.timer("sim.decide").calls == 12
    assert registry.counter("grefar.solver.greedy") == 12.0


# ----------------------------------------------------------------------
# Profile harness and hot-path table
# ----------------------------------------------------------------------
def test_profile_run_report_and_table(tmp_path):
    scenario = small_scenario(horizon=10, seed=1)
    scheduler = GreFarScheduler(scenario.cluster, v=5.0)
    trace = tmp_path / "trace.jsonl"
    report = profile_run(
        scenario, scheduler, scenario_name="small", trace_path=trace
    )
    assert report.horizon == 10
    assert len(report.events) == 10
    assert report.wall_seconds > 0.0
    assert report.slots_per_second > 0.0
    assert report.timer("sim.slot").calls == 10
    assert report.timer("never-recorded").calls == 0
    assert len(read_trace_jsonl(trace)) == 10
    # Restores the disabled state it found.
    assert not metrics_registry().enabled
    table = render_hot_path_table(report)
    for phase in ("sim.slot", "sim.decide", "grefar.solve", "queues.step"):
        assert phase in table


def test_profile_run_restores_enabled_state():
    registry = metrics_registry()
    registry.enable()
    scenario = small_scenario(horizon=5, seed=1)
    profile_run(scenario, GreFarScheduler(scenario.cluster, v=5.0))
    assert registry.enabled
    registry.disable()


# ----------------------------------------------------------------------
# Baseline pipeline
# ----------------------------------------------------------------------
def _small_report():
    scenario = small_scenario(horizon=8, seed=0)
    return profile_run(
        scenario, GreFarScheduler(scenario.cluster, v=5.0), scenario_name="small"
    )


def test_baseline_payload_is_schema_valid():
    payload = baseline_payload([_small_report()], generated="2026-08-05")
    assert payload["schema"] == BENCH_SCHEMA
    assert payload["generated"] == "2026-08-05"
    assert validate_baseline(payload) == []


def test_validate_baseline_catches_corruption():
    payload = baseline_payload([_small_report()])
    assert validate_baseline({**payload, "schema": "bogus"})
    assert validate_baseline({**payload, "runs": []})
    broken_run = {**payload["runs"][0]}
    del broken_run["wall_seconds"]
    assert validate_baseline({**payload, "runs": [broken_run]})
    negative = {**payload["runs"][0], "horizon": 0}
    assert validate_baseline({**payload, "runs": [negative]})
    assert validate_baseline("not a dict") == ["payload is not a JSON object"]


def test_write_baseline_and_cli_validate(tmp_path, capsys):
    path = write_baseline([_small_report()], path=tmp_path / "BENCH_test.json")
    assert path.is_file()
    assert validate_baseline_file(path) == []
    assert baseline_main(["--validate", str(path)]) == 0
    assert "OK" in capsys.readouterr().out

    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"schema": "nope"}), encoding="utf-8")
    assert baseline_main(["--validate", str(bad)]) == 1
    assert "schema" in capsys.readouterr().out


def test_write_baseline_refuses_empty():
    with pytest.raises(ValueError):
        write_baseline([])


def _scaled_payload(payload, factor):
    """A copy of *payload* with every run's throughput scaled by *factor*."""
    runs = [
        {**run, "slots_per_second": run["slots_per_second"] * factor}
        for run in payload["runs"]
    ]
    return {**payload, "runs": runs}


def test_compare_baselines_passes_within_tolerance():
    payload = baseline_payload([_small_report()])
    assert compare_baselines(payload, payload, tolerance=0.25) == []
    # A 2x slowdown still passes a 0.25 tolerance ...
    assert compare_baselines(payload, _scaled_payload(payload, 0.5), 0.25) == []


def test_compare_baselines_flags_regression_and_missing_pair():
    payload = baseline_payload([_small_report()])
    slow = _scaled_payload(payload, 0.1)
    problems = compare_baselines(payload, slow, tolerance=0.25)
    assert len(problems) == 1
    assert "regressed" in problems[0]

    gone = {**payload, "runs": []}
    problems = compare_baselines(payload, gone, tolerance=0.25)
    # Empty runs fail schema validation before pair matching.
    assert problems and "invalid" in problems[0]

    other = _scaled_payload(payload, 1.0)
    other["runs"][0] = {**other["runs"][0], "scenario": "renamed"}
    problems = compare_baselines(payload, other, tolerance=0.25)
    assert len(problems) == 1
    assert "missing" in problems[0]


def test_compare_baselines_rejects_bad_tolerance():
    payload = baseline_payload([_small_report()])
    with pytest.raises(ValueError, match="tolerance"):
        compare_baselines(payload, payload, tolerance=0.0)


def test_cli_compare_modes(tmp_path, capsys):
    old = write_baseline([_small_report()], path=tmp_path / "BENCH_old.json")
    payload = json.loads(old.read_text(encoding="utf-8"))
    new = tmp_path / "BENCH_new.json"
    new.write_text(json.dumps(_scaled_payload(payload, 0.9)), encoding="utf-8")
    assert baseline_main(["--compare", str(old), str(new)]) == 0
    assert "throughput OK" in capsys.readouterr().out

    slow = tmp_path / "BENCH_slow.json"
    slow.write_text(json.dumps(_scaled_payload(payload, 0.01)), encoding="utf-8")
    assert baseline_main(["--compare", str(old), str(slow)]) == 1
    assert "regression" in capsys.readouterr().out


# ----------------------------------------------------------------------
# CLI integration: repro profile and the merged cache-info report
# ----------------------------------------------------------------------
def test_cli_profile_prints_table_and_baseline(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    code = repro.cli.main(
        [
            "profile",
            "--scenario",
            "small",
            "--horizon",
            "15",
            "--trace",
            "trace.jsonl",
            "--output",
            "bench.json",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "hot paths" in out and "sim.decide" in out
    assert "baseline: bench.json" in out
    assert validate_baseline_file(tmp_path / "bench.json") == []
    assert len(read_trace_jsonl(tmp_path / "trace.jsonl")) == 15


def test_cli_profile_no_baseline(capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    assert (
        repro.cli.main(
            ["profile", "--scenario", "small", "--horizon", "5", "--no-baseline"]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "hot paths" in out
    assert "baseline:" not in out
    assert list(tmp_path.glob("BENCH_*.json")) == []


def test_cache_info_merges_session_counters(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    # Contracts force cache bypass (hits would skip the checks); turn
    # them off so the load/store counters actually fire.
    monkeypatch.setenv("REPRO_CONTRACTS", "0")
    stats_registry().reset("cache.")
    # One miss + one store (first run), then one hit (second run).
    for _ in range(2):
        assert repro.cli.main(["run", "--horizon", "5", "--seed", "123"]) == 0
    capsys.readouterr()
    assert repro.cli.main(["cache", "info"]) == 0
    out = capsys.readouterr().out
    assert "1 entries" in out
    assert "session: 1 hits, 1 misses, 1 stores" in out
    registry = stats_registry()
    assert registry.gauge("cache.entries") == 1.0
    assert registry.gauge("cache.bytes") > 0.0


def test_runner_stats_live_on_stats_registry(tmp_path, monkeypatch):
    from repro.runner import reset_stats, runner_stats

    reset_stats()
    assert runner_stats().render() == "runner: 0 executed, 0 cached (jobs=1)"
    stats_registry().counter_add("runner.executed", 3)
    assert runner_stats().executed == 3
    reset_stats()
    assert runner_stats().executed == 0
