"""Tests for CSV trace import/export."""

import numpy as np
import pytest

from repro.scenarios import small_cluster, small_scenario
from repro.workloads.replay import (
    load_scenario_csv,
    read_matrix_csv,
    save_scenario_csv,
    write_matrix_csv,
)


class TestMatrixCsv:
    def test_roundtrip(self, tmp_path):
        matrix = np.array([[1.0, 2.0], [3.5, 4.0]])
        path = tmp_path / "m.csv"
        write_matrix_csv(path, matrix, ["a", "b"])
        out = read_matrix_csv(path, expected_columns=2)
        np.testing.assert_allclose(out, matrix)

    def test_write_rejects_bad_shapes(self, tmp_path):
        with pytest.raises(ValueError):
            write_matrix_csv(tmp_path / "m.csv", np.zeros(3), ["a"])
        with pytest.raises(ValueError):
            write_matrix_csv(tmp_path / "m.csv", np.zeros((2, 2)), ["a"])

    def test_read_rejects_bad_header(self, tmp_path):
        path = tmp_path / "m.csv"
        path.write_text("slot,a\n0,1\n")
        with pytest.raises(ValueError, match="columns"):
            read_matrix_csv(path, expected_columns=2)

    def test_read_rejects_ragged_rows(self, tmp_path):
        path = tmp_path / "m.csv"
        path.write_text("slot,a,b\n0,1\n")
        with pytest.raises(ValueError, match="ragged"):
            read_matrix_csv(path, expected_columns=2)

    def test_read_rejects_non_numeric(self, tmp_path):
        path = tmp_path / "m.csv"
        path.write_text("slot,a,b\n0,1,x\n")
        with pytest.raises(ValueError, match="non-numeric"):
            read_matrix_csv(path, expected_columns=2)

    def test_read_rejects_empty(self, tmp_path):
        path = tmp_path / "m.csv"
        path.write_text("slot,a,b\n")
        with pytest.raises(ValueError, match="no data"):
            read_matrix_csv(path, expected_columns=2)


class TestScenarioCsv:
    def test_roundtrip(self, tmp_path):
        scn = small_scenario(horizon=25, seed=6)
        save_scenario_csv(scn, tmp_path)
        loaded = load_scenario_csv(small_cluster(), tmp_path)
        np.testing.assert_allclose(loaded.arrivals, scn.arrivals)
        np.testing.assert_allclose(loaded.prices, scn.prices)
        np.testing.assert_allclose(loaded.availability, scn.availability)

    def test_loaded_scenario_is_runnable(self, tmp_path):
        from repro.core.grefar import GreFarScheduler
        from repro.simulation.simulator import Simulator

        scn = small_scenario(horizon=20, seed=6)
        save_scenario_csv(scn, tmp_path)
        loaded = load_scenario_csv(small_cluster(), tmp_path)
        result = Simulator(loaded, GreFarScheduler(loaded.cluster, v=5.0)).run()
        assert result.summary.horizon == 20

    def test_detects_missing_availability_rows(self, tmp_path):
        scn = small_scenario(horizon=5, seed=1)
        save_scenario_csv(scn, tmp_path)
        path = tmp_path / "availability.csv"
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")  # drop last row
        with pytest.raises(ValueError, match="missing"):
            load_scenario_csv(small_cluster(), tmp_path)

    def test_detects_horizon_mismatch(self, tmp_path):
        scn = small_scenario(horizon=5, seed=1)
        save_scenario_csv(scn, tmp_path)
        prices = tmp_path / "prices.csv"
        lines = prices.read_text().splitlines()
        prices.write_text("\n".join(lines[:-1]) + "\n")
        with pytest.raises(ValueError, match="slots"):
            load_scenario_csv(small_cluster(), tmp_path)
