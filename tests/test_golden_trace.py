"""Golden-trace regression test: the simulator + GreFar are bit-stable.

``tests/data/golden_trace.json`` freezes every per-slot decision
(route, serve, busy matrices) and queue vector of one fully-seeded
small-scenario run, plus the end-of-run summary.  JSON serializes
floats via ``repr``, which round-trips ``float`` exactly, so comparing
the recomputed payload against the stored one (both normalized through
one ``json.dumps``/``loads`` cycle) is a bit-for-bit check: any change
to the queue dynamics, the routing rule, the greedy solver or the cost
model fails this test loudly.

Regenerate after an *intentional* behavior change::

    PYTHONPATH=src python tests/test_golden_trace.py
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.grefar import GreFarScheduler
from repro.scenarios import small_scenario
from repro.simulation.simulator import Simulator

GOLDEN = Path(__file__).parent / "data" / "golden_trace.json"

HORIZON = 40
SEED = 11
V = 5.0


def _compute_payload() -> dict:
    scenario = small_scenario(horizon=HORIZON, seed=SEED)
    scheduler = GreFarScheduler(scenario.cluster, v=V, beta=0.0)
    slots = []

    def record(t, state, action, queues) -> None:
        slots.append(
            {
                "t": t,
                "route": action.route.tolist(),
                "serve": action.serve.tolist(),
                "busy": action.busy.tolist(),
                "front": queues.front.tolist(),
                "dc": queues.dc.tolist(),
            }
        )

    result = Simulator(scenario, scheduler, observers=[record]).run()
    return {
        "config": {
            "scenario": "small",
            "horizon": HORIZON,
            "seed": SEED,
            "scheduler": scheduler.name,
            "solver": scheduler.select_backend(),
        },
        "slots": slots,
        "summary": result.summary.as_dict(),
    }


def _normalize(payload: dict) -> dict:
    """One dumps/loads cycle so tuples become lists, floats stay exact."""
    return json.loads(json.dumps(payload))


def test_golden_trace_reproduces_bit_for_bit():
    stored = json.loads(GOLDEN.read_text(encoding="utf-8"))
    computed = _normalize(_compute_payload())
    # Compare slot-by-slot first so a drift pinpoints its first slot.
    for stored_slot, computed_slot in zip(stored["slots"], computed["slots"]):
        assert computed_slot == stored_slot, (
            f"decision trace diverged at slot {stored_slot['t']}"
        )
    assert computed == stored


def test_golden_run_records_zero_solver_incidents():
    # The golden run predates the supervision layer; that it still
    # reproduces bit-for-bit (above) proves the supervisor changes no
    # decision on healthy inputs.  Make the mechanism explicit too: the
    # supervised golden run must record zero incidents and never degrade.
    scenario = small_scenario(horizon=HORIZON, seed=SEED)
    scheduler = GreFarScheduler(scenario.cluster, v=V, beta=0.0)
    Simulator(scenario, scheduler).run()
    assert scheduler.supervisor.incident_count == 0


def test_golden_trace_fixture_shape():
    stored = json.loads(GOLDEN.read_text(encoding="utf-8"))
    assert stored["config"]["horizon"] == HORIZON == len(stored["slots"])
    assert stored["config"]["solver"] == "greedy"
    assert stored["summary"]["scheduler"] == stored["config"]["scheduler"]


if __name__ == "__main__":
    GOLDEN.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN.write_text(
        json.dumps(_normalize(_compute_payload()), indent=1, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(f"wrote {GOLDEN}")
