"""Unit tests for the GreFar scheduler (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.grefar import GreFarScheduler
from repro.model.action import Action
from repro.model.queues import QueueNetwork
from repro.model.state import ClusterState


def _seed_queues(cluster, front=None, dc=None):
    """Build a queue network holding the given contents."""
    q = QueueNetwork(cluster)
    n, j = cluster.num_datacenters, cluster.num_job_types
    zeros = Action.idle(cluster)
    if front is not None:
        q.step(zeros, np.asarray(front, dtype=float), t=0)
    if dc is not None:
        dc = np.asarray(dc, dtype=float)
        route = dc * cluster.eligibility_matrix()
        action = Action(route, np.zeros((n, j)), np.zeros((n, cluster.num_server_classes)))
        q.step(action, np.zeros(j), t=0)
        # Refill the front queue so routing drained it as intended.
    return q


class TestConstruction:
    def test_valid(self, cluster):
        s = GreFarScheduler(cluster, v=7.5, beta=100.0)
        assert "7.5" in s.name and "100" in s.name

    def test_rejects_negative_v(self, cluster):
        with pytest.raises(ValueError):
            GreFarScheduler(cluster, v=-1.0)

    def test_rejects_negative_beta(self, cluster):
        with pytest.raises(ValueError):
            GreFarScheduler(cluster, beta=-1.0)

    def test_rejects_unknown_solver(self, cluster):
        with pytest.raises(ValueError, match="solver"):
            GreFarScheduler(cluster, solver="magic")


class TestRouting:
    def test_routes_to_smaller_backlog_site(self, cluster, state):
        scheduler = GreFarScheduler(cluster, v=5.0)
        q = QueueNetwork(cluster)
        # 4 type-0 jobs at the central queue; site 1 already backlogged.
        q.step(Action.idle(cluster), np.array([4.0, 0.0]), t=0)
        route0 = np.zeros((2, 2))
        route0[1, 0] = 2.0
        q.step(
            Action(route0, np.zeros((2, 2)), np.zeros((2, 2))),
            np.array([4.0, 0.0]),
            t=1,
        )
        action = scheduler.decide(2, state, q)
        # Site 0 (empty) should receive jobs before site 1 (backlog 2).
        assert action.route[0, 0] >= action.route[1, 0]

    def test_no_routing_when_site_queues_exceed_central(self, cluster, state):
        scheduler = GreFarScheduler(cluster, v=5.0)
        q = QueueNetwork(cluster)
        # Load the site queues heavily, leave the central queue light.
        route = np.zeros((2, 2))
        route[0, 0] = 10.0
        route[1, 0] = 10.0
        q.step(Action(route, np.zeros((2, 2)), np.zeros((2, 2))), np.zeros(2), t=0)
        q.step(Action.idle(cluster), np.array([1.0, 0.0]), t=1)
        action = scheduler.decide(2, state, q)
        # q_ij = 10 > Q_j = 1 everywhere: backpressure blocks routing.
        assert action.route.sum() == pytest.approx(0.0)

    def test_physical_routing_never_overdraws(self, cluster, state):
        scheduler = GreFarScheduler(cluster, v=5.0)
        q = QueueNetwork(cluster)
        q.step(Action.idle(cluster), np.array([3.0, 2.0]), t=0)
        action = scheduler.decide(1, state, q)
        for j in range(2):
            assert action.route[:, j].sum() <= q.front[j] + 1e-9

    def test_literal_routing_uses_bounds(self, cluster, state):
        scheduler = GreFarScheduler(cluster, v=5.0, physical=False)
        q = QueueNetwork(cluster)
        q.step(Action.idle(cluster), np.array([3.0, 0.0]), t=0)
        action = scheduler.decide(1, state, q)
        # Literal minimizer routes r_max to every eligible site with
        # q_ij < Q_j.
        assert action.route[0, 0] == pytest.approx(50.0)
        assert action.route[1, 0] == pytest.approx(50.0)

    def test_routing_is_integral(self, cluster, state):
        scheduler = GreFarScheduler(cluster, v=5.0)
        q = QueueNetwork(cluster)
        q.step(Action.idle(cluster), np.array([5.0, 3.0]), t=0)
        action = scheduler.decide(1, state, q)
        np.testing.assert_allclose(action.route, np.round(action.route))


class TestService:
    def test_high_price_defers_service(self, cluster):
        scheduler = GreFarScheduler(cluster, v=50.0)
        q = QueueNetwork(cluster)
        route = np.zeros((2, 2))
        route[0, 0] = 3.0
        q.step(Action(route, np.zeros((2, 2)), np.zeros((2, 2))), np.zeros(2), t=0)
        expensive = ClusterState(
            np.stack([dc.max_servers for dc in cluster.datacenters]),
            [5.0, 5.0],
        )
        action = scheduler.decide(1, expensive, q)
        assert action.serve.sum() == pytest.approx(0.0)
        assert action.busy.sum() == pytest.approx(0.0)

    def test_cheap_price_triggers_service(self, cluster):
        scheduler = GreFarScheduler(cluster, v=50.0)
        q = QueueNetwork(cluster)
        route = np.zeros((2, 2))
        route[0, 0] = 3.0
        q.step(Action(route, np.zeros((2, 2)), np.zeros((2, 2))), np.zeros(2), t=0)
        cheap = ClusterState(
            np.stack([dc.max_servers for dc in cluster.datacenters]),
            [0.001, 0.001],
        )
        action = scheduler.decide(1, cheap, q)
        assert action.serve[0, 0] == pytest.approx(3.0)

    def test_physical_service_never_overdraws(self, cluster, state):
        scheduler = GreFarScheduler(cluster, v=0.1)
        q = QueueNetwork(cluster)
        route = np.zeros((2, 2))
        route[0, 0] = 2.0
        q.step(Action(route, np.zeros((2, 2)), np.zeros((2, 2))), np.zeros(2), t=0)
        action = scheduler.decide(1, state, q)
        assert np.all(action.serve <= q.dc + 1e-9)

    def test_actions_always_valid(self, cluster, state):
        scheduler = GreFarScheduler(cluster, v=3.0, beta=50.0)
        q = QueueNetwork(cluster)
        rng = np.random.default_rng(4)
        for t in range(15):
            action = scheduler.decide(t, state, q)
            action.validate(cluster, state)
            q.step(action, rng.integers(0, 5, size=2).astype(float), t)

    def test_solver_backends_agree_at_beta_zero(self, cluster, state):
        q = QueueNetwork(cluster)
        q.step(Action.idle(cluster), np.array([6.0, 4.0]), t=0)
        route = np.zeros((2, 2))
        route[0, 0] = 3.0
        route[1, 1] = 2.0
        q.step(Action(route, np.zeros((2, 2)), np.zeros((2, 2))), np.zeros(2), t=1)
        actions = {}
        for solver in ("greedy", "lp", "qp"):
            scheduler = GreFarScheduler(cluster, v=4.0, solver=solver)
            actions[solver] = scheduler.decide(2, state, q)
        w_greedy = actions["greedy"].work_served(cluster)
        for solver in ("lp", "qp"):
            np.testing.assert_allclose(
                actions[solver].work_served(cluster), w_greedy, atol=1e-6
            )
