"""Deliberately-bad fixture for GF009: blocking I/O in the tick path."""

import socket
import time


def tick_once(state):
    time.sleep(0.5)
    return state


def tick(queue):
    with open("/tmp/arrivals.json") as handle:
        return handle.read()


def solve(problem):
    sock = socket.create_connection(("127.0.0.1", 9))
    return sock
