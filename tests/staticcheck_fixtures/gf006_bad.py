"""GF006 self-test fixture: experiments instantiating Simulator directly."""

from repro.simulation import Simulator as Sim
from repro.simulation.simulator import Simulator


def run_direct(scenario, scheduler, horizon):
    sim = Simulator(scenario, scheduler)  # GF006: bypasses repro.runner
    return sim.run(horizon)


def run_aliased(scenario, scheduler):
    return Sim(scenario, scheduler).run()  # GF006: aliased import, same class
