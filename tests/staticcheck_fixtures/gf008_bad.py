"""GF008 self-test fixture: scheduler code calling solver backends raw."""

from repro.optimize import solve_lp
from repro.optimize.greedy import solve_greedy as greedy


def decide_direct(problem):
    return problem.clip_feasible(greedy(problem))  # GF008: unsupervised solve


def decide_lp(problem):
    return solve_lp(problem)  # GF008: one SolverFailure loses the run
