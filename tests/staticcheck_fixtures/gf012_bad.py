"""Deliberately bad: blocking calls made while a lock is held."""

import threading
import time


class Journal:
    def __init__(self, sink):
        self._lock = threading.Lock()
        self._sink = sink

    def pause(self):
        with self._lock:
            time.sleep(0.1)  # GF012: sleeping with the lock held

    def flush_held(self):
        with self._lock:
            self._sink.flush()  # GF012: I/O with the lock held

    def indirect(self):
        with self._lock:
            self._do_io()  # GF012: callee blocks (transitively)

    def _do_io(self):
        self._sink.write("x")
