"""Clean: every guarded access happens under the declared lock."""

import threading


class SafeTally:
    def __init__(self):
        self._lock = threading.Lock()
        # Constructor writes are exempt: the object is not shared yet.
        self.count = 0  # guarded-by: self._lock

    def bump(self):
        with self._lock:
            self._bump_locked()

    def drain(self):
        with self._lock:
            return self._bump_locked()

    def _bump_locked(self):
        # Private helper: every caller holds the lock, so the
        # interprocedural pass proves these accesses safe.
        self.count += 1
        return self.count

    def peek(self):
        with self._lock:
            return self.count
