"""GF004 self-test fixture: ad-hoc parameter validation."""


class AdHocValidated:
    def __init__(self, v: float, beta: float):
        if v < 0:
            raise ValueError(f"v must be non-negative, got {v}")
        assert beta >= 0, "beta must be non-negative"
        self.v = v
        self.beta = beta
