"""Clean fixture for GF009: sleeps and I/O stay off the tick path."""

import time


def pace_loop(stop_event, period):
    # Pacing lives outside the tick path, where sleeping is the point.
    time.sleep(period)
    return stop_event


def load_arrivals(path):
    with open(path, encoding="utf-8") as handle:
        return handle.read()


def tick_once(state):
    return state + 1
