"""Clean fixture for GF013: threads are fine anywhere; processes are not spawned."""

from concurrent.futures import ThreadPoolExecutor


def fan_out(tasks, handler):
    with ThreadPoolExecutor(max_workers=2) as pool:
        return list(pool.map(handler, tasks))


def summarise(results):
    return sum(results)
