"""GF007 self-test fixture: ad-hoc performance-clock reads.

Never imported — parsed by the staticcheck engine only.
"""

import time


def hand_rolled_timer():
    start = time.perf_counter()
    total = sum(range(1000))
    return total, time.perf_counter() - start


def monotonic_stamp():
    return time.monotonic()
