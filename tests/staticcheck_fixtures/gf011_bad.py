"""Deliberately bad: two methods acquire the same locks in opposite order."""

import threading


class Pair:
    def __init__(self):
        self.first = threading.Lock()
        self.second = threading.Lock()

    def forward(self):
        with self.first:
            with self.second:  # GF011: first -> second ...
                return 1

    def backward(self):
        with self.second:
            with self.first:  # GF011: ... and second -> first
                return 2
