"""GF003 self-test fixture: a conforming Scheduler subclass (must pass)."""

from repro.schedulers.base import Scheduler


class ConformingScheduler(Scheduler):
    def decide(self, t, state, queues):
        state = self.prepare_state(state)
        return self.plan(t, state, queues)

    def reset(self):
        super().reset()
        self.history = []
