"""GF002 self-test fixture: queue access through the public API (must pass)."""


def inspect_queues(queues):
    return queues.front.sum() + queues.dc.sum()


def drain_site(queues, dc: int):
    return queues.evict_dc(dc)
