"""GF002 self-test fixture: direct mutation of QueueNetwork internals."""


def corrupt_queues(queues):
    queues._front[0] = 99.0
    queues._dc += 1.0
    return len(queues._front_ledger)
