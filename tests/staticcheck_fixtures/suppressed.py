"""Suppression fixture: real violations silenced per line and per file.

Must produce zero findings.
"""
# staticcheck: ignore-file[GF005]

import numpy as np


def tolerated_unseeded():
    return np.random.default_rng()  # staticcheck: ignore[GF001]


def tolerated_float_eq(beta):
    return beta == 0.0
