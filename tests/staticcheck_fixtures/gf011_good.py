"""Clean: every path acquires the locks in the same global order."""

import threading


class OrderedPair:
    def __init__(self):
        self.first = threading.Lock()
        self.second = threading.Lock()

    def both(self):
        with self.first:
            with self.second:
                return 1

    def also_both(self):
        with self.first:
            with self.second:
                return 2

    def only_inner(self):
        with self.second:
            return 3
