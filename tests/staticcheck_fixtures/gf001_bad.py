"""GF001 self-test fixture: deliberately non-deterministic code.

Never imported — parsed by the staticcheck engine only.
"""

import random
import time
from datetime import datetime

import numpy as np


def unseeded_generator():
    return np.random.default_rng()


def global_numpy_draw():
    return np.random.rand(3)


def stdlib_draw():
    return random.random()


def wall_clock_time():
    return time.time()


def wall_clock_datetime():
    return datetime.now()
