"""Unparseable fixture: the engine must report GF000, not crash."""


def broken(:
    pass
