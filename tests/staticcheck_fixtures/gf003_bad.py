"""GF003 self-test fixture: Scheduler subclasses breaking the protocol."""

from repro.schedulers.base import Scheduler


class BypassScheduler(Scheduler):
    """decide() skips prepare_state; reset() drops super().reset()."""

    def decide(self, t, state, queues):
        return self.plan(state, queues)

    def reset(self):
        self.history = []


class NoDecideScheduler(Scheduler):
    """Subclasses Scheduler without overriding decide()."""

    name = "no-decide"
