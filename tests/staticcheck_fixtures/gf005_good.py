"""GF005 self-test fixture: tolerance-based float comparison (must pass)."""

import math


def choose_backend(problem):
    if math.isclose(problem.beta, 0.0, abs_tol=1e-12):
        return "greedy"
    if problem.v > 0:
        return "qp"
    return "lp"
