"""GF006 self-test fixture: experiment code routed through repro.runner."""

from repro.runner import RunSpec, ScenarioSpec, run_many


def run_sweep(v_values, horizon, seed):
    specs = [
        RunSpec(
            scenario=ScenarioSpec(kind="paper", horizon=horizon, seed=seed),
            scheduler="grefar",
            scheduler_kwargs={"v": float(v)},
        )
        for v in v_values
    ]
    return run_many(specs, jobs=2)
