"""Deliberately-bad fixture for GF013: process spawning outside runner//distrib/."""

import subprocess
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import Process


def launch_helper(args):
    subprocess.run(args, check=True)
    return args


def fan_out(tasks, handler):
    with ProcessPoolExecutor(max_workers=2) as pool:
        return list(pool.map(handler, tasks))


def background(worker):
    child = Process(target=worker)
    child.start()
    return child
