"""GF005 self-test fixture: exact float equality in numeric code."""


def choose_backend(problem):
    if problem.beta == 0:
        return "greedy"
    if problem.v != 0.0:
        return "qp"
    return "lp"
