"""Clean: critical sections stay pure; I/O happens after release."""

import threading


class BatchedJournal:
    def __init__(self, sink):
        self._lock = threading.Lock()
        self._sink = sink
        self.buffered = []  # guarded-by: self._lock

    def enqueue(self, item):
        with self._lock:
            self.buffered.append(item)

    def drain(self):
        with self._lock:
            batch = list(self.buffered)
            self.buffered.clear()
        # Lock released: the writes cannot stall other threads.
        for item in batch:
            self._sink.write(item)
