"""GF001 self-test fixture: deterministic RNG discipline (must pass)."""

import numpy as np


def seeded_generator(seed: int = 0):
    return np.random.default_rng(seed)


def threaded_draw(rng: np.random.Generator):
    return rng.normal(size=3)


def slot_time(t: int) -> int:
    return t + 1
