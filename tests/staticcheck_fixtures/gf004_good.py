"""GF004 self-test fixture: validation through the shared helpers (must pass)."""

from repro._validation import require_non_negative


class HelperValidated:
    def __init__(self, v: float, beta: float):
        self.v = require_non_negative(v, "v")
        self.beta = require_non_negative(beta, "beta")
