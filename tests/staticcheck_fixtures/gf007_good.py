"""GF007 self-test fixture: timing routed through repro.obs (must pass)."""

from repro.obs.instruments import timed
from repro.obs.registry import metrics_registry


@timed("fixture.work")
def decorated_work():
    return sum(range(1000))


def explicit_span():
    registry = metrics_registry()
    with registry.span("fixture.block"):
        total = sum(range(1000))
    return total


def raw_clock_via_registry():
    registry = metrics_registry()
    start = registry.clock()
    total = sum(range(1000))
    registry.timer_add("fixture.raw", registry.clock() - start)
    return total
