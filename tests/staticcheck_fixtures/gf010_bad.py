"""Deliberately bad: ``# guarded-by`` fields touched without their lock."""

import threading


class Tally:
    """Declares its counters guarded but touches them lock-free."""

    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0  # guarded-by: self._lock

    def bump(self):
        self.count += 1  # GF010: written without the lock

    def peek(self):
        return self.count  # GF010: read without the lock

    def reset(self):
        self.count = 0  # GF010: written without the lock

    # Interprocedural: one caller holds the lock, one does not, so the
    # helper's access is not *guaranteed* to be protected.
    def _snapshot(self):
        return self.count  # GF010: not every caller holds the lock

    def locked_read(self):
        with self._lock:
            return self._snapshot()

    def unlocked_read(self):
        return self._snapshot()
