"""GF008 self-test fixture: slot solves routed through the supervisor."""

from repro.resilient import SupervisedSolver
from repro.resilient.supervisor import solve_service


def decide(problem, t):
    return solve_service(problem, primary="greedy", slot=t)


def decide_supervised(problem, t, supervisor=None):
    supervisor = supervisor or SupervisedSolver()
    return supervisor.solve(problem, primary="lp", slot=t).h
