"""Unit tests for the metric collector and the footnote-8 running averages."""

import numpy as np
import pytest

from repro.model.action import Action
from repro.model.queues import QueueNetwork
from repro.simulation.metrics import MetricsCollector


def _record_constant(collector, queues, energy, slots):
    for _ in range(slots):
        collector.record(
            energy=energy,
            fairness=-0.1,
            combined=energy + 0.1,
            work_per_dc=np.array([1.0, 2.0]),
            served_jobs=3.0,
            queues=queues,
        )


class TestRunningAverages:
    def test_constant_series(self, cluster):
        q = QueueNetwork(cluster)
        m = MetricsCollector(num_datacenters=2)
        _record_constant(m, q, energy=5.0, slots=4)
        np.testing.assert_allclose(m.avg_energy_series(), 5.0)

    def test_footnote8_definition(self, cluster):
        """avg(t) = (sum up to t) / t, exactly."""
        q = QueueNetwork(cluster)
        m = MetricsCollector(num_datacenters=2)
        for e in [2.0, 4.0, 6.0]:
            m.record(
                energy=e,
                fairness=0.0,
                combined=e,
                work_per_dc=np.zeros(2),
                served_jobs=0.0,
                queues=q,
            )
        np.testing.assert_allclose(m.avg_energy_series(), [2.0, 3.0, 4.0])

    def test_fairness_and_combined_series(self, cluster):
        q = QueueNetwork(cluster)
        m = MetricsCollector(num_datacenters=2)
        _record_constant(m, q, energy=1.0, slots=3)
        np.testing.assert_allclose(m.avg_fairness_series(), -0.1)
        np.testing.assert_allclose(m.avg_combined_series(), 1.1)

    def test_work_per_dc_series(self, cluster):
        q = QueueNetwork(cluster)
        m = MetricsCollector(num_datacenters=2)
        _record_constant(m, q, energy=1.0, slots=2)
        assert m.work_per_dc_series().shape == (2, 2)
        np.testing.assert_allclose(m.work_per_dc_series()[0], [1.0, 2.0])


class TestDelaySeries:
    def test_delay_series_tracks_ledger(self, cluster):
        q = QueueNetwork(cluster)
        m = MetricsCollector(num_datacenters=2)
        # Arrive 2 jobs at t=0, route at t=1, serve at t=3 -> DC delay 2.
        q.step(Action.idle(cluster), np.array([2.0, 0.0]), t=0)
        m.record(0.0, 0.0, 0.0, np.zeros(2), 0.0, q)
        route = np.zeros((2, 2))
        route[0, 0] = 2.0
        q.step(Action(route, np.zeros((2, 2)), np.zeros((2, 2))), np.zeros(2), t=1)
        m.record(0.0, 0.0, 0.0, np.zeros(2), 0.0, q)
        q.step(Action.idle(cluster), np.zeros(2), t=2)
        m.record(0.0, 0.0, 0.0, np.zeros(2), 0.0, q)
        serve = np.zeros((2, 2))
        serve[0, 0] = 2.0
        q.step(Action(np.zeros((2, 2)), serve, np.zeros((2, 2))), np.zeros(2), t=3)
        m.record(0.0, 0.0, 0.0, np.zeros(2), 2.0, q)

        series = m.avg_dc_delay_series(0)
        assert series[0] == 0.0  # nothing served yet
        assert series[3] == pytest.approx(2.0)

    def test_empty_series(self):
        m = MetricsCollector(num_datacenters=2)
        assert m.horizon == 0
        assert m.avg_energy_series().size == 0


class TestSummary:
    def test_summary_fields(self, cluster):
        q = QueueNetwork(cluster)
        m = MetricsCollector(num_datacenters=2)
        _record_constant(m, q, energy=5.0, slots=4)
        s = m.summary("test", q, arrived=12.0)
        assert s.scheduler == "test"
        assert s.horizon == 4
        assert s.avg_energy_cost == pytest.approx(5.0)
        assert s.total_served_jobs == pytest.approx(12.0)
        assert s.total_arrived_jobs == pytest.approx(12.0)
        assert len(s.avg_dc_delay) == 2
        assert len(s.avg_work_per_dc) == 2

    def test_as_dict_roundtrip(self, cluster):
        q = QueueNetwork(cluster)
        m = MetricsCollector(num_datacenters=2)
        _record_constant(m, q, energy=5.0, slots=2)
        d = m.summary("x", q, arrived=0.0).as_dict()
        assert d["scheduler"] == "x"
        assert isinstance(d["avg_dc_delay"], list)
