"""Unit tests for the project-aware engine behind GF010-GF012.

Covers the pieces that are easy to break silently: symbol-table/call-graph
construction, ``# guarded-by`` extraction, lock-alias normalization, the
interprocedural guarantees (locked-helper exemption, suppression
vetting), cross-file lock-order cycles, and the baseline CLI.
"""

from __future__ import annotations

import json
import textwrap

from repro.tools.staticcheck import check_paths
from repro.tools.staticcheck.cli import main as staticcheck_main
from repro.tools.staticcheck.engine import _parse_file
from repro.tools.staticcheck.project import build_project, extract_guarded_fields


def _write(tmp_path, name, source):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return path


def _project(tmp_path, **files):
    contexts = [
        _parse_file(_write(tmp_path, f"{name}.py", source))
        for name, source in files.items()
    ]
    return build_project(contexts)


BOX = """
    import threading


    class Box:
        def __init__(self):
            self._lock = threading.Lock()
            self.items = []  # guarded-by: self._lock

        def add(self, item):
            with self._lock:
                self._add_locked(item)

        def _add_locked(self, item):
            self.items.append(item)
"""


# ----------------------------------------------------------------------
# Project model: symbols, locks, call graph
# ----------------------------------------------------------------------
def test_symbol_table_discovers_class_lock_and_guard(tmp_path):
    project = _project(tmp_path, box=BOX)
    (box,) = project.classes_by_name["Box"]
    assert set(box.methods) == {"__init__", "add", "_add_locked"}
    assert "_lock" in box.locks
    assert not box.locks["_lock"].reentrant
    assert box.guarded == {"items": "_lock"}
    assert ("Box", "_lock") in project.lock_reentrant


def test_call_graph_resolves_self_methods(tmp_path):
    project = _project(tmp_path, box=BOX)
    (box,) = project.classes_by_name["Box"]
    helper = box.methods["_add_locked"]
    callers = project.callers_of(helper)
    assert [site.function.name for site in callers] == ["add"]
    # The call happens with the lock held — recorded at the call site.
    assert ("Box", "_lock") in callers[0].held


def test_extract_guarded_fields_matches_engine_view():
    source = textwrap.dedent(BOX)
    assert extract_guarded_fields(source) == {"Box": {"items": "_lock"}}


def test_lock_alias_normalizes_to_one_node(tmp_path):
    project = _project(
        tmp_path,
        aliased="""
        import threading


        class Gateway:
            def __init__(self):
                self.lock = threading.RLock()


        class Worker:
            def __init__(self, lock):
                self.lock = lock  # lock-alias: Gateway.lock
        """,
    )
    assert project.normalize_lock(("Worker", "lock")) == ("Gateway", "lock")
    assert project.is_reentrant(("Worker", "lock"))


# ----------------------------------------------------------------------
# Interprocedural guarantees
# ----------------------------------------------------------------------
def test_gf010_locked_helper_is_exempt(tmp_path):
    path = _write(tmp_path, "box.py", textwrap.dedent(BOX))
    assert check_paths([path], select=["GF010"]) == []


def test_gf010_flags_one_unlocked_caller(tmp_path):
    path = _write(
        tmp_path,
        "leak.py",
        textwrap.dedent(
            """
            import threading


            class Leak:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.value = 0  # guarded-by: self._lock

                def _read(self):
                    return self.value

                def safe(self):
                    with self._lock:
                        return self._read()

                def unsafe(self):
                    return self._read()
            """
        ),
    )
    findings = check_paths([path], select=["GF010"])
    assert len(findings) == 1
    assert "Leak.value" in findings[0].message


def test_gf011_cycle_across_files(tmp_path):
    one = _write(
        tmp_path,
        "one.py",
        textwrap.dedent(
            """
            import threading


            class Alpha:
                def __init__(self, beta: "Beta"):
                    self._lock = threading.Lock()
                    self.beta = beta

                def forward(self):
                    with self._lock:
                        with self.beta._lock:
                            return 1
            """
        ),
    )
    two = _write(
        tmp_path,
        "two.py",
        textwrap.dedent(
            """
            import threading

            from one import Alpha


            class Beta:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.alpha: Alpha = None

                def backward(self):
                    with self._lock:
                        with self.alpha._lock:
                            return 2
            """
        ),
    )
    findings = check_paths([one, two], select=["GF011"])
    assert len(findings) == 2
    assert all("cycle" in f.message for f in findings)
    # The cycle names both lock nodes in every message.
    assert all(
        "Alpha._lock" in f.message and "Beta._lock" in f.message
        for f in findings
    )


def test_gf012_suppression_vets_transitive_callers(tmp_path):
    # One suppression at the inner lock-meets-I/O frontier clears the
    # outer caller too: the vetted callee no longer counts as blocking.
    path = _write(
        tmp_path,
        "vetted.py",
        textwrap.dedent(
            """
            import threading


            class Store:
                def __init__(self, sink):
                    self._lock = threading.Lock()
                    self._sink = sink

                def save(self):
                    with self._lock:
                        self._sink.flush()  # staticcheck: ignore[GF012] -- durability demo

                def outer(self):
                    with self._lock:
                        self.save()
            """
        ),
    )
    assert check_paths([path], select=["GF012"]) == []


def test_gf011_self_deadlock_on_nonreentrant_reacquire(tmp_path):
    path = _write(
        tmp_path,
        "redo.py",
        textwrap.dedent(
            """
            import threading


            class Redo:
                def __init__(self):
                    self._lock = threading.Lock()

                def once(self):
                    with self._lock:
                        self._again()

                def _again(self):
                    with self._lock:
                        return 1
            """
        ),
    )
    findings = check_paths([path], select=["GF011"])
    assert len(findings) == 1
    assert "non-reentrant" in findings[0].message


def test_gf011_reentrant_reacquire_is_fine(tmp_path):
    path = _write(
        tmp_path,
        "redo_ok.py",
        textwrap.dedent(
            """
            import threading


            class RedoOK:
                def __init__(self):
                    self._lock = threading.RLock()

                def once(self):
                    with self._lock:
                        self._again()

                def _again(self):
                    with self._lock:
                        return 1
            """
        ),
    )
    assert check_paths([path], select=["GF011"]) == []


# ----------------------------------------------------------------------
# GF000 parse errors carry a column
# ----------------------------------------------------------------------
def test_parse_error_message_has_line_and_column(tmp_path):
    path = _write(tmp_path, "broken.py", "def f(:\n    pass\n")
    (finding,) = check_paths([path])
    assert finding.rule == "GF000"
    assert "line 1" in finding.message
    assert "column" in finding.message


# ----------------------------------------------------------------------
# Baseline CLI
# ----------------------------------------------------------------------
def test_baseline_write_then_compare(tmp_path, capsys):
    bad = _write(
        tmp_path,
        "dirty.py",
        "import random\n\n\ndef pick(xs):\n    return random.choice(xs)\n",
    )
    baseline = tmp_path / "baseline.json"

    assert staticcheck_main([str(bad), "--write-baseline", str(baseline)]) == 0
    payload = json.loads(baseline.read_text())
    assert payload["version"] == 1
    assert len(payload["findings"]) == 1
    capsys.readouterr()

    # Same tree, baselined: clean exit, suppression surfaced in summary.
    assert staticcheck_main([str(bad), "--baseline", str(baseline)]) == 0
    assert "1 baselined" in capsys.readouterr().out

    # A new finding still fails, even with the baseline applied.
    bad.write_text(
        bad.read_text() + "\n\ndef pick2():\n    return random.random()\n"
    )
    assert staticcheck_main([str(bad), "--baseline", str(baseline)]) == 1
    out = capsys.readouterr().out
    assert "random.random" in out
    assert "1 baselined" in out


def test_baseline_is_keyed_by_content_not_line(tmp_path, capsys):
    bad = _write(
        tmp_path,
        "drift.py",
        "import random\n\n\ndef pick(xs):\n    return random.choice(xs)\n",
    )
    baseline = tmp_path / "baseline.json"
    assert staticcheck_main([str(bad), "--write-baseline", str(baseline)]) == 0
    # Unrelated edit above the finding shifts its line; still baselined.
    bad.write_text("X = 1\n" + bad.read_text())
    assert staticcheck_main([str(bad), "--baseline", str(baseline)]) == 0
    capsys.readouterr()


def test_corrupt_baseline_is_a_usage_error(tmp_path, capsys):
    bad = _write(tmp_path, "clean.py", "X = 1\n")
    baseline = tmp_path / "baseline.json"
    baseline.write_text("{}")
    assert staticcheck_main([str(bad), "--baseline", str(baseline)]) == 2
    assert "error:" in capsys.readouterr().err
