"""Unit tests for the analysis helpers."""

import pytest

from repro.analysis import (
    delay_percentile_bound,
    format_table,
    littles_law_delay,
    sweep_beta,
    sweep_v,
)


class TestLittlesLaw:
    def test_basic(self):
        assert littles_law_delay(10.0, 2.0) == pytest.approx(5.0)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            littles_law_delay(10.0, 0.0)
        with pytest.raises(ValueError):
            littles_law_delay(-1.0, 1.0)


class TestDelayBound:
    def test_basic(self):
        assert delay_percentile_bound(20.0, 1.0, 4.0) == pytest.approx(5.0)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            delay_percentile_bound(-1.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            delay_percentile_bound(1.0, 1.0, 0.0)
        with pytest.raises(ValueError):
            delay_percentile_bound(1.0, -1.0, 1.0)


class TestFormatTable:
    def test_renders_rows(self):
        out = format_table(["a", "b"], [(1, 2.5), ("x", 3.14159)])
        assert "a" in out and "b" in out
        assert "3.142" in out  # default 3-decimal precision

    def test_precision(self):
        out = format_table(["x"], [(1.23456,)], precision=1)
        assert "1.2" in out

    def test_title(self):
        out = format_table(["x"], [(1,)], title="hello")
        assert out.startswith("hello")

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [(1,)])

    def test_empty_rows_ok(self):
        out = format_table(["a"], [])
        assert "a" in out


class TestSweeps:
    def test_sweep_v(self, scenario):
        points = sweep_v(scenario, [0.5, 20.0], horizon=25)
        assert len(points) == 2
        assert points[0].v == 0.5
        assert points[1].max_queue_length >= 0

    def test_sweep_beta(self, scenario):
        points = sweep_beta(scenario, [0.0, 50.0], v=5.0, horizon=25)
        assert len(points) == 2
        assert points[1].beta == 50.0

    def test_sweeps_reject_empty(self, scenario):
        with pytest.raises(ValueError):
            sweep_v(scenario, [])
        with pytest.raises(ValueError):
            sweep_beta(scenario, [])
