"""Self-tests for the project static checker (repro.tools.staticcheck).

Each rule GF001-GF013 gets one deliberately-bad fixture it must flag and
one clean fixture it must pass; the fixtures live in
``tests/staticcheck_fixtures/`` and are parsed, never imported.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

import repro.cli
from repro.tools.staticcheck import check_file, check_paths, rule_ids
from repro.tools.staticcheck.cli import main as staticcheck_main
from repro.tools.staticcheck.engine import PARSE_ERROR_ID, iter_python_files
from repro.tools.staticcheck.reporters import render_json, render_text

REPO = Path(__file__).resolve().parents[1]
FIXTURES = REPO / "tests" / "staticcheck_fixtures"
SRC = REPO / "src" / "repro"

RULE_CASES = [
    ("GF001", "gf001_bad.py", 5, "gf001_good.py"),
    ("GF002", "gf002_bad.py", 3, "gf002_good.py"),
    ("GF003", "gf003_bad.py", 3, "gf003_good.py"),
    ("GF004", "gf004_bad.py", 2, "gf004_good.py"),
    ("GF005", "gf005_bad.py", 2, "gf005_good.py"),
    ("GF006", "gf006_bad.py", 2, "gf006_good.py"),
    ("GF007", "gf007_bad.py", 3, "gf007_good.py"),
    ("GF008", "gf008_bad.py", 2, "gf008_good.py"),
    ("GF009", "gf009_bad.py", 3, "gf009_good.py"),
    ("GF010", "gf010_bad.py", 4, "gf010_good.py"),
    ("GF011", "gf011_bad.py", 2, "gf011_good.py"),
    ("GF012", "gf012_bad.py", 3, "gf012_good.py"),
    ("GF013", "gf013_bad.py", 3, "gf013_good.py"),
]


# ----------------------------------------------------------------------
# Per-rule flag / pass behavior
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "rule,bad,count", [(r, b, c) for r, b, c, _ in RULE_CASES], ids=lambda v: str(v)
)
def test_rule_flags_bad_fixture(rule, bad, count):
    findings = check_file(FIXTURES / bad, select=[rule])
    assert len(findings) == count
    assert all(f.rule == rule for f in findings)


@pytest.mark.parametrize(
    "rule,good", [(r, g) for r, _, _, g in RULE_CASES], ids=lambda v: str(v)
)
def test_rule_passes_good_fixture(rule, good):
    assert check_file(FIXTURES / good, select=[rule]) == []


def test_bad_fixtures_flag_only_their_own_rule():
    # Running ALL rules on each bad fixture must not surface unrelated ids,
    # otherwise the per-rule fixtures are entangled.
    for rule, bad, count, _ in RULE_CASES:
        findings = check_file(FIXTURES / bad)
        assert {f.rule for f in findings} == {rule}
        assert len(findings) == count


def test_findings_are_sorted_and_render():
    findings = check_file(FIXTURES / "gf001_bad.py")
    assert findings == sorted(findings)
    rendered = findings[0].render()
    assert "gf001_bad.py" in rendered
    assert "GF001" in rendered
    assert findings[0].as_dict()["rule"] == "GF001"


# ----------------------------------------------------------------------
# Suppression comments and parse errors
# ----------------------------------------------------------------------
def test_line_and_file_suppression():
    assert check_file(FIXTURES / "suppressed.py") == []


def test_syntax_error_reports_gf000():
    findings = check_file(FIXTURES / "syntax_error.py")
    assert len(findings) == 1
    assert findings[0].rule == PARSE_ERROR_ID
    assert "could not parse" in findings[0].message
    # The message pinpoints the spot, column included (1-based).
    assert "line" in findings[0].message
    assert "column" in findings[0].message


def test_unknown_rule_selection_raises():
    with pytest.raises(ValueError, match="unknown rule"):
        check_file(FIXTURES / "gf001_good.py", select=["GF999"])


def test_rule_ids_registry():
    assert rule_ids() == [
        "GF001",
        "GF002",
        "GF003",
        "GF004",
        "GF005",
        "GF006",
        "GF007",
        "GF008",
        "GF009",
        "GF010",
        "GF011",
        "GF012",
        "GF013",
    ]


# ----------------------------------------------------------------------
# The real tree is clean (the CI gate)
# ----------------------------------------------------------------------
def test_src_repro_is_clean():
    findings = check_paths([SRC])
    assert findings == [], "\n" + render_text(findings)


def test_iter_python_files_skips_pycache(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "ok.py").write_text("x = 1\n")
    cache = tmp_path / "pkg" / "__pycache__"
    cache.mkdir()
    (cache / "ok.cpython-312.py").write_text("x = 1\n")
    files = list(iter_python_files([tmp_path]))
    assert files == [tmp_path / "pkg" / "ok.py"]


def test_iter_python_files_missing_path():
    with pytest.raises(FileNotFoundError):
        list(iter_python_files([FIXTURES / "no_such_dir"]))


# ----------------------------------------------------------------------
# Reporters
# ----------------------------------------------------------------------
def test_render_text_clean_and_dirty():
    assert "no issues" in render_text([])
    findings = check_file(FIXTURES / "gf005_bad.py")
    text = render_text(findings)
    assert "GF005" in text
    assert f"{len(findings)} finding" in text


def test_render_json_round_trips():
    findings = check_file(FIXTURES / "gf002_bad.py")
    payload = json.loads(render_json(findings))
    assert payload["count"] == len(findings)
    assert {entry["rule"] for entry in payload["findings"]} == {"GF002"}


# ----------------------------------------------------------------------
# CLI entry points
# ----------------------------------------------------------------------
def test_cli_exit_zero_on_clean(capsys):
    code = staticcheck_main([str(FIXTURES / "gf003_good.py")])
    assert code == 0
    assert "no issues" in capsys.readouterr().out


def test_cli_exit_one_on_findings_json(capsys):
    code = staticcheck_main(["--format", "json", str(FIXTURES / "gf004_bad.py")])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["count"] == 2


def test_cli_exit_two_on_missing_path(capsys):
    code = staticcheck_main([str(FIXTURES / "does_not_exist.py")])
    assert code == 2
    assert "error:" in capsys.readouterr().err


def test_cli_exit_two_on_unknown_rule(capsys):
    code = staticcheck_main(["--select", "GF999", str(FIXTURES / "gf001_good.py")])
    assert code == 2
    assert "unknown rule" in capsys.readouterr().err


def test_cli_select_narrows_rules(capsys):
    # gf004_bad.py has no GF001 violations, so selecting GF001 passes it.
    code = staticcheck_main(["--select", "GF001", str(FIXTURES / "gf004_bad.py")])
    assert code == 0
    capsys.readouterr()


def test_cli_list_rules(capsys):
    assert staticcheck_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in rule_ids():
        assert rule_id in out


def test_repro_lint_subcommand(capsys):
    assert repro.cli.main(["lint", str(FIXTURES / "gf001_good.py")]) == 0
    assert repro.cli.main(["lint", str(FIXTURES / "gf001_bad.py")]) == 1
    assert repro.cli.main(["lint", "--list-rules"]) == 0
    capsys.readouterr()


def test_module_entry_point_subprocess():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.tools.staticcheck", str(SRC)],
        capture_output=True,
        text=True,
        cwd=REPO,
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin:/usr/local/bin"},
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "no issues" in proc.stdout
