"""Tests for the O(1/V) convergence experiment."""

import pytest

from repro.experiments import convergence


class TestConvergence:
    @pytest.fixture(scope="class")
    def result(self):
        return convergence.run(horizon=120, lookahead=24, v_values=(2.0, 8.0, 32.0))

    def test_shapes(self, result):
        assert len(result.gaps) == 3
        assert len(result.grefar_costs) == 3

    def test_gap_monotone(self, result):
        assert result.gap_monotone_decreasing

    def test_gaps_positive(self, result):
        """GreFar cannot beat the full-information comparator."""
        assert all(g > -1e-6 for g in result.gaps)

    def test_fit_slope_positive(self, result):
        # More 1/V -> more gap: the fitted b must be positive.
        assert result.fit_slope > 0

    def test_rejects_bad_horizon(self):
        with pytest.raises(ValueError, match="multiple"):
            convergence.run(horizon=100, lookahead=24)

    def test_main_prints(self, capsys):
        convergence.main(horizon=48)
        out = capsys.readouterr().out
        assert "convergence" in out
        assert "R^2" in out
