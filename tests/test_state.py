"""Unit tests for :class:`repro.model.state.ClusterState`."""

import numpy as np
import pytest

from repro.model.state import ClusterState


class TestConstruction:
    def test_valid(self):
        s = ClusterState(np.ones((2, 3)), [0.4, 0.5])
        assert s.num_datacenters == 2
        assert s.num_server_classes == 3

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            ClusterState(np.ones(3), [0.4])
        with pytest.raises(ValueError):
            ClusterState(np.ones((2, 3)), [[0.4]])

    def test_rejects_site_count_mismatch(self):
        with pytest.raises(ValueError):
            ClusterState(np.ones((2, 3)), [0.4, 0.5, 0.6])

    def test_rejects_negative_values(self):
        with pytest.raises(ValueError):
            ClusterState(-np.ones((1, 1)), [0.4])
        with pytest.raises(ValueError):
            ClusterState(np.ones((1, 1)), [-0.4])

    def test_arrays_readonly_and_copied(self):
        avail = np.ones((1, 1))
        s = ClusterState(avail, [0.4])
        avail[0, 0] = 99
        assert s.availability[0, 0] == 1.0
        with pytest.raises(ValueError):
            s.availability[0, 0] = 5


class TestDerived:
    def test_capacities(self, cluster, state):
        caps = state.capacities(cluster)
        # Each site: 10 * 1.0 + 10 * 0.8 = 18.
        np.testing.assert_allclose(caps, [18.0, 18.0])

    def test_total_resource(self, cluster, state):
        assert state.total_resource(cluster) == pytest.approx(36.0)

    def test_validate_for_accepts(self, cluster, state):
        assert state.validate_for(cluster) is state

    def test_validate_for_rejects_over_plant(self, cluster):
        avail = np.stack([dc.max_servers for dc in cluster.datacenters]) + 1
        s = ClusterState(avail, [0.4, 0.5])
        with pytest.raises(ValueError):
            s.validate_for(cluster)

    def test_dim_mismatch_detected(self, cluster):
        s = ClusterState(np.ones((3, 2)), [0.1, 0.2, 0.3])
        with pytest.raises(ValueError, match="sites"):
            s.capacities(cluster)
        s2 = ClusterState(np.ones((2, 5)), [0.1, 0.2])
        with pytest.raises(ValueError, match="server classes"):
            s2.capacities(cluster)
