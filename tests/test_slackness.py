"""Unit tests for the slackness condition checker."""

import numpy as np
import pytest

from repro.core.slackness import check_slackness
from repro.scenarios import small_cluster, small_scenario


class TestCheckSlackness:
    def test_underloaded_scenario_is_feasible(self):
        cluster = small_cluster()
        horizon = 10
        arrivals = np.ones((horizon, 2))
        availability = np.tile(
            np.stack([dc.max_servers for dc in cluster.datacenters]),
            (horizon, 1, 1),
        )
        report = check_slackness(cluster, arrivals, availability)
        assert report.feasible
        assert report.max_delta > 0
        assert report.worst_utilization < 1.0

    def test_overloaded_scenario_is_infeasible(self):
        cluster = small_cluster()
        horizon = 5
        # Total capacity is 36 work/slot; send 50 jobs x demand 1 + more.
        arrivals = np.full((horizon, 2), 25.0)
        availability = np.tile(
            np.stack([dc.max_servers for dc in cluster.datacenters]),
            (horizon, 1, 1),
        )
        report = check_slackness(cluster, arrivals, availability)
        assert not report.feasible
        assert report.max_delta == 0.0
        assert report.worst_utilization > 1.0

    def test_eligibility_restricts_placement(self):
        """Type 1 can only run at site 1: overloading site 1 alone fails."""
        cluster = small_cluster()
        horizon = 3
        arrivals = np.zeros((horizon, 2))
        arrivals[:, 1] = 12.0  # 24 units of work, site 1 capacity is 18
        availability = np.tile(
            np.stack([dc.max_servers for dc in cluster.datacenters]),
            (horizon, 1, 1),
        )
        report = check_slackness(cluster, arrivals, availability)
        assert not report.feasible

    def test_worst_slot_identified(self):
        cluster = small_cluster()
        horizon = 6
        arrivals = np.ones((horizon, 2))
        arrivals[4, 0] = 30.0  # slot 4 is the crunch
        availability = np.tile(
            np.stack([dc.max_servers for dc in cluster.datacenters]),
            (horizon, 1, 1),
        )
        report = check_slackness(cluster, arrivals, availability)
        assert report.worst_slot == 4

    def test_rejects_bad_shapes(self):
        cluster = small_cluster()
        with pytest.raises(ValueError):
            check_slackness(cluster, np.zeros((5, 3)), np.zeros((5, 2, 2)))
        with pytest.raises(ValueError):
            check_slackness(cluster, np.zeros((5, 2)), np.zeros((5, 3, 2)))

    def test_default_scenarios_satisfy_slackness(self):
        scn = small_scenario(horizon=100, seed=0)
        report = check_slackness(scn.cluster, scn.arrivals, scn.availability)
        assert report.feasible
