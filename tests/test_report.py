"""Tests for the one-shot reproduction report generator."""

from pathlib import Path

from repro.experiments import report


class TestGenerateReport:
    def test_writes_report_and_csvs(self, tmp_path):
        path = report.generate_report(tmp_path, horizon=48, seed=0)
        assert path.exists()
        text = path.read_text()
        for heading in (
            "Table I",
            "Fig. 1",
            "Fig. 2",
            "Fig. 3",
            "Fig. 4",
            "Fig. 5",
            "Work distribution",
            "Theorem 1",
        ):
            assert heading in text
        for csv_name in (
            "fig1_prices.csv",
            "fig1_org_work.csv",
            "fig2_energy.csv",
            "fig2_delay_dc1.csv",
            "fig3_series.csv",
            "fig5_snapshot.csv",
        ):
            assert (tmp_path / csv_name).exists()

    def test_csv_contents_parse(self, tmp_path):
        import csv

        report.generate_report(tmp_path, horizon=48, seed=1)
        with open(tmp_path / "fig2_energy.csv") as handle:
            rows = list(csv.reader(handle))
        assert rows[0][0] == "slot"
        assert len(rows) == 49  # header + one row per slot
        float(rows[1][1])  # values parse as numbers

    def test_main_cli(self, tmp_path, capsys):
        code = report.main(["--out", str(tmp_path / "r"), "--horizon", "48"])
        assert code == 0
        assert "report.md" in capsys.readouterr().out
        assert Path(tmp_path / "r" / "report.md").exists()
