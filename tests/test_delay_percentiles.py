"""Tests for the delay-percentile histograms in DelayStats."""

import pytest

from repro.core.grefar import GreFarScheduler
from repro.model.queues import DelayStats
from repro.simulation.simulator import Simulator


class TestHistogramPercentile:
    def test_single_value(self):
        stats = DelayStats(1, 1)
        stats.record_served(0, 0, count=5.0, delay=3.0)
        assert stats.dc_delay_percentile(0.5, dc=0) == 3.0
        assert stats.dc_delay_percentile(1.0, dc=0) == 3.0

    def test_median_of_two_masses(self):
        stats = DelayStats(1, 1)
        stats.record_served(0, 0, count=9.0, delay=1.0)
        stats.record_served(0, 0, count=1.0, delay=10.0)
        assert stats.dc_delay_percentile(0.5, dc=0) == 1.0
        assert stats.dc_delay_percentile(0.95, dc=0) == 10.0

    def test_merged_across_sites(self):
        stats = DelayStats(2, 1)
        stats.record_served(0, 0, count=1.0, delay=1.0)
        stats.record_served(1, 0, count=1.0, delay=9.0)
        assert stats.dc_delay_percentile(1.0) == 9.0
        assert stats.dc_delay_percentile(0.25) == 1.0

    def test_front_percentile(self):
        stats = DelayStats(1, 2)
        stats.record_routed(0, count=4.0, delay=2.0)
        stats.record_routed(1, count=1.0, delay=7.0)
        assert stats.front_delay_percentile(0.5) == 2.0
        assert stats.front_delay_percentile(1.0) == 7.0

    def test_empty_is_zero(self):
        stats = DelayStats(1, 1)
        assert stats.dc_delay_percentile(0.9, dc=0) == 0.0
        assert stats.front_delay_percentile(0.9) == 0.0

    def test_rejects_bad_quantile(self):
        stats = DelayStats(1, 1)
        with pytest.raises(ValueError):
            stats.dc_delay_percentile(1.5, dc=0)


class TestEndToEnd:
    def test_percentiles_bound_the_mean(self, scenario):
        result = Simulator(scenario, GreFarScheduler(scenario.cluster, v=20.0)).run()
        stats = result.queues.stats
        p50 = stats.dc_delay_percentile(0.5)
        p95 = stats.dc_delay_percentile(0.95)
        mean = stats.mean_dc_delay()
        assert p50 <= p95
        assert p50 <= mean + 1.0  # integer buckets vs fractional mean
        assert p95 >= mean - 1.0

    def test_tail_grows_with_v(self, scenario):
        tails = []
        for v in (0.5, 50.0):
            result = Simulator(scenario, GreFarScheduler(scenario.cluster, v=v)).run()
            tails.append(result.queues.stats.dc_delay_percentile(0.95))
        assert tails[1] >= tails[0]

    def test_histogram_mass_equals_completions(self, scenario):
        result = Simulator(scenario, GreFarScheduler(scenario.cluster, v=5.0)).run()
        stats = result.queues.stats
        hist_mass = sum(
            sum(h.values()) for h in stats.dc_delay_histogram
        )
        assert hist_mass == pytest.approx(stats.dc_completed.sum(), rel=1e-9)
