"""Tests for the bandwidth (ingress-cost) routing extension."""

import numpy as np
import pytest

from repro.core.grefar import GreFarScheduler
from repro.core.objective import CostModel
from repro.model.action import Action
from repro.model.cluster import Cluster
from repro.model.datacenter import DataCenter
from repro.model.job import Account, JobType
from repro.model.queues import QueueNetwork
from repro.model.server import ServerClass
from repro.model.state import ClusterState
from repro.simulation.simulator import Simulator
from repro.simulation.trace import Scenario


def _bw_cluster(ingress=(0.0, 1.0)) -> Cluster:
    """Two identical sites; site 1 charges for ingress."""
    return Cluster(
        server_classes=(ServerClass(name="s", speed=1.0, active_power=0.5),),
        datacenters=(
            DataCenter(name="free", max_servers=[10], ingress_cost=ingress[0]),
            DataCenter(name="toll", max_servers=[10], ingress_cost=ingress[1]),
        ),
        job_types=(
            JobType(name="j", demand=1.0, eligible_dcs=(0, 1), account=0,
                    max_arrivals=20, max_route=20, max_service=20.0),
        ),
        accounts=(Account(name="a", fair_share=1.0),),
    )


class TestModelField:
    def test_default_is_zero(self):
        dc = DataCenter(name="d", max_servers=[1])
        assert dc.ingress_cost == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            DataCenter(name="d", max_servers=[1], ingress_cost=-1.0)

    def test_cluster_vector(self):
        c = _bw_cluster()
        np.testing.assert_allclose(c.ingress_costs, [0.0, 1.0])


class TestRouting:
    def _queues_with_front(self, cluster, jobs=4.0):
        q = QueueNetwork(cluster)
        q.step(Action.idle(cluster), np.array([jobs]), t=0)
        return q

    def test_avoids_tolled_site(self):
        cluster = _bw_cluster(ingress=(0.0, 5.0))
        state = ClusterState(np.array([[10.0], [10.0]]), [0.4, 0.4])
        scheduler = GreFarScheduler(cluster, v=2.0)
        queues = self._queues_with_front(cluster)
        action = scheduler.decide(1, state, queues)
        assert action.route[0, 0] > 0
        assert action.route[1, 0] == 0.0

    def test_zero_v_ignores_toll(self):
        """With V = 0 the transfer cost has zero weight in (14)."""
        cluster = _bw_cluster(ingress=(0.0, 100.0))
        state = ClusterState(np.array([[10.0], [10.0]]), [0.4, 0.4])
        scheduler = GreFarScheduler(cluster, v=0.0)
        queues = self._queues_with_front(cluster)
        action = scheduler.decide(1, state, queues)
        # Toll site still receives jobs (backpressure only).
        assert action.route.sum() == pytest.approx(4.0)

    def test_toll_overridden_by_large_backlog_gap(self):
        """Enough backpressure beats a small toll."""
        cluster = _bw_cluster(ingress=(0.0, 0.1))
        state = ClusterState(np.array([[10.0], [10.0]]), [0.4, 0.4])
        scheduler = GreFarScheduler(cluster, v=1.0)
        q = QueueNetwork(cluster)
        q.step(Action.idle(cluster), np.array([6.0]), t=0)
        # Pile backlog on the free site only.
        route = np.array([[6.0], [0.0]])
        q.step(Action(route, np.zeros((2, 1)), np.zeros((2, 1))),
               np.array([6.0]), t=1)
        action = scheduler.decide(2, state, q)
        # Free site has q=6, toll site q=0: the toll (0.1) is tiny
        # against the 6-job backlog gap, so the toll site gets jobs.
        assert action.route[1, 0] > 0


class TestCostAccounting:
    def test_bandwidth_cost_measured(self):
        cluster = _bw_cluster(ingress=(0.0, 2.0))
        state = ClusterState(np.array([[10.0], [10.0]]), [0.4, 0.4])
        route = np.array([[1.0], [3.0]])
        action = Action(route, np.zeros((2, 1)), np.zeros((2, 1)))
        cost = CostModel().evaluate(cluster, state, action)
        assert cost.bandwidth == pytest.approx(6.0)
        assert cost.combined == pytest.approx(cost.energy + 6.0)

    def test_zero_ingress_means_zero_bandwidth(self, cluster, state):
        action = Action.idle(cluster)
        cost = CostModel().evaluate(cluster, state, action)
        assert cost.bandwidth == 0.0


class TestEndToEnd:
    def test_toll_shifts_work_distribution(self):
        horizon = 80
        rng = np.random.default_rng(4)
        arrivals = rng.integers(0, 6, size=(horizon, 1)).astype(float)
        availability = np.full((horizon, 2, 1), 10.0)
        prices = np.full((horizon, 2), 0.4)

        def work_share_toll(ingress):
            cluster = _bw_cluster(ingress=(0.0, ingress))
            scn = Scenario(
                cluster=cluster,
                arrivals=arrivals,
                availability=availability,
                prices=prices,
            )
            result = Simulator(scn, GreFarScheduler(cluster, v=5.0)).run()
            work = result.metrics.work_per_dc_series().sum(axis=0)
            return float(work[1] / max(work.sum(), 1e-9))

        assert work_share_toll(2.0) < work_share_toll(0.0)
