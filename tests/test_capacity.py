"""Unit + property tests for the per-site supply curves."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.state import ClusterState
from repro.optimize.capacity import build_supply_curves
from repro.scenarios import small_cluster


def _curves(availability, prices=(0.4, 0.5)):
    cluster = small_cluster()
    state = ClusterState(np.asarray(availability, dtype=float), list(prices))
    return cluster, build_supply_curves(cluster, state)


class TestOrdering:
    def test_cheapest_class_first(self):
        # "efficient": 0.5/0.8 = 0.625 per work; "fast": 1.0 per work.
        _, curves = _curves([[10, 10], [10, 10]])
        curve = curves[0]
        assert curve.class_order[0] == 1  # efficient first
        assert curve.unit_powers[0] == pytest.approx(0.625)
        assert curve.unit_powers[1] == pytest.approx(1.0)

    def test_total_capacity(self):
        _, curves = _curves([[10, 10], [5, 0]])
        assert curves[0].total_capacity == pytest.approx(10 * 1.0 + 10 * 0.8)
        assert curves[1].total_capacity == pytest.approx(5.0)


class TestMinPower:
    def test_zero_capacity_zero_power(self):
        _, curves = _curves([[10, 10], [10, 10]])
        assert curves[0].min_power(0.0) == pytest.approx(0.0)

    def test_fills_cheapest_first(self):
        _, curves = _curves([[10, 10], [10, 10]])
        # 4 units of work fit entirely on efficient servers (8 capacity).
        assert curves[0].min_power(4.0) == pytest.approx(4.0 * 0.625)

    def test_spills_to_next_class(self):
        _, curves = _curves([[10, 10], [10, 10]])
        # 10 units: 8 on efficient (0.625/w), 2 on fast (1.0/w).
        assert curves[0].min_power(10.0) == pytest.approx(8 * 0.625 + 2 * 1.0)

    def test_rejects_over_capacity(self):
        _, curves = _curves([[10, 10], [10, 10]])
        with pytest.raises(ValueError):
            curves[0].min_power(100.0)

    def test_rejects_negative(self):
        _, curves = _curves([[10, 10], [10, 10]])
        with pytest.raises(ValueError):
            curves[0].min_power(-1.0)


class TestBusyCounts:
    def test_busy_counts_achieve_capacity_and_power(self):
        cluster, curves = _curves([[10, 10], [10, 10]])
        speeds = cluster.speeds
        powers = cluster.active_powers
        for cap in [0.0, 3.0, 8.0, 12.5, 18.0]:
            busy = curves[0].busy_counts(cap, 2, speeds)
            assert float(busy @ speeds) == pytest.approx(cap)
            assert float(busy @ powers) == pytest.approx(curves[0].min_power(cap))

    def test_busy_counts_respect_availability(self):
        cluster, curves = _curves([[3, 2], [10, 10]])
        busy = curves[0].busy_counts(curves[0].total_capacity, 2, cluster.speeds)
        assert busy[0] <= 3 + 1e-9
        assert busy[1] <= 2 + 1e-9


class TestSubgradient:
    def test_marginal_power_on_segments(self):
        _, curves = _curves([[10, 10], [10, 10]])
        assert curves[0].subgradient(1.0) == pytest.approx(0.625)
        assert curves[0].subgradient(12.0) == pytest.approx(1.0)

    def test_marginal_segments_skip_empty(self):
        _, curves = _curves([[10, 0], [10, 10]])
        segments = curves[0].marginal_segments()
        assert len(segments) == 1
        assert segments[0][1] == pytest.approx(1.0)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=10), min_size=2, max_size=2),
    st.floats(min_value=0.0, max_value=18.0),
)
def test_min_power_is_convex_and_increasing(avail, cap):
    _, curves = _curves([avail, [1, 1]])
    curve = curves[0]
    total = curve.total_capacity
    cap = min(cap, total)
    mid = cap / 2
    # Increasing.
    assert curve.min_power(cap) >= curve.min_power(mid) - 1e-9
    # Midpoint convexity: P(c/2) <= (P(0) + P(c)) / 2.
    assert curve.min_power(mid) <= 0.5 * curve.min_power(cap) + 1e-9
