"""Unit tests for the energy-fairness cost model (eq. 6)."""

import numpy as np
import pytest

from repro.core.objective import CostModel
from repro.fairness import QuadraticFairness
from repro.model.action import Action


def _serving_action(cluster, h00=2.0):
    h = np.zeros((2, 2))
    h[0, 0] = h00
    b = np.zeros((2, 2))
    b[0, 0] = h00  # speed 1.0: capacity = count
    return Action(np.zeros((2, 2)), h, b)


class TestCostModel:
    def test_rejects_negative_beta(self):
        with pytest.raises(ValueError):
            CostModel(beta=-1.0)

    def test_energy_component(self, cluster, state):
        model = CostModel(beta=0.0)
        action = _serving_action(cluster)
        cost = model.evaluate(cluster, state, action)
        assert cost.energy == pytest.approx(0.4 * 2.0 * 1.0)
        assert cost.combined == pytest.approx(cost.energy)

    def test_fairness_component(self, cluster, state):
        model = CostModel(beta=10.0)
        action = _serving_action(cluster)
        cost = model.evaluate(cluster, state, action)
        expected_f = QuadraticFairness().score(
            action.account_work(cluster),
            state.total_resource(cluster),
            cluster.fair_shares,
        )
        assert cost.fairness == pytest.approx(expected_f)
        assert cost.combined == pytest.approx(cost.energy - 10.0 * expected_f)

    def test_beta_zero_still_reports_fairness(self, cluster, state):
        """Fairness is measured even when it isn't part of the objective."""
        model = CostModel(beta=0.0)
        cost = model.evaluate(cluster, state, _serving_action(cluster))
        assert cost.fairness < 0  # imperfect allocation scores negative

    def test_idle_action(self, cluster, state):
        model = CostModel(beta=5.0)
        cost = model.evaluate(cluster, state, Action.idle(cluster))
        assert cost.energy == 0.0
        # Idle fairness: -sum gamma_m^2.
        assert cost.fairness == pytest.approx(-float(np.sum(cluster.fair_shares**2)))
        assert cost.combined == pytest.approx(-5.0 * cost.fairness)
