"""Fast versions of the paper-shape checks (CI-friendly).

The benchmarks assert these at full scale; this module keeps a compact
set in the unit suite so a plain ``pytest tests/`` still guards the
headline claims.  Horizons are short, so tolerances are loose — the
*direction* of every effect is what must never regress.
"""

import pytest

from repro.core.grefar import GreFarScheduler
from repro.scenarios import paper_scenario
from repro.schedulers import AlwaysScheduler
from repro.simulation.simulator import Simulator


@pytest.fixture(scope="module")
def scenario():
    return paper_scenario(horizon=300, seed=0)


@pytest.fixture(scope="module")
def summaries(scenario):
    cluster = scenario.cluster
    out = {}
    for key, scheduler in {
        "v_low": GreFarScheduler(cluster, v=0.1),
        "v_high": GreFarScheduler(cluster, v=20.0),
        "fair": GreFarScheduler(cluster, v=15.0, beta=250.0),
        "always": AlwaysScheduler(cluster),
    }.items():
        out[key] = Simulator(scenario, scheduler).run().summary
    return out


class TestFig2Shapes:
    def test_energy_decreases_with_v(self, summaries):
        assert summaries["v_high"].avg_energy_cost < summaries["v_low"].avg_energy_cost

    def test_delay_increases_with_v(self, summaries):
        assert (
            summaries["v_high"].avg_dc_delay[0]
            > summaries["v_low"].avg_dc_delay[0]
        )

    def test_low_v_behaves_like_always(self, summaries):
        assert summaries["v_low"].avg_dc_delay[0] == pytest.approx(
            summaries["always"].avg_dc_delay[0], abs=0.15
        )


class TestFig4Shapes:
    def test_grefar_saves_energy(self, summaries):
        assert summaries["fair"].avg_energy_cost < summaries["always"].avg_energy_cost

    def test_grefar_fairer(self, summaries):
        assert summaries["fair"].avg_fairness > summaries["always"].avg_fairness

    def test_always_delay_one(self, summaries):
        assert summaries["always"].avg_dc_delay[0] == pytest.approx(1.0, abs=0.2)


class TestWorkDistributionShape:
    def test_cheap_sites_get_more_work(self, summaries):
        work = summaries["fair"].avg_work_per_dc
        # Table I costs: DC#2 < DC#1 < DC#3.
        assert work[1] > work[2]
        assert work[0] > work[2]


class TestConservationEverywhere:
    def test_every_run_conserves_jobs(self, scenario, summaries):
        for key in summaries:
            # Conservation is checked in detail elsewhere; here: served
            # cannot exceed arrived for any configuration.
            s = summaries[key]
            assert s.total_served_jobs <= s.total_arrived_jobs + 1e-6
