"""Unit tests for :class:`repro.simulation.trace.Scenario`."""

import numpy as np
import pytest

from repro.scenarios import small_cluster
from repro.simulation.trace import Scenario


def _arrays(cluster, horizon=10):
    rng = np.random.default_rng(0)
    arrivals = rng.integers(0, 4, size=(horizon, 2)).astype(float)
    availability = np.tile(
        np.stack([dc.max_servers for dc in cluster.datacenters]), (horizon, 1, 1)
    )
    prices = rng.uniform(0.2, 0.8, size=(horizon, 2))
    return arrivals, availability, prices


class TestConstruction:
    def test_valid(self):
        cluster = small_cluster()
        scn = Scenario(cluster, *_arrays(cluster))
        assert scn.horizon == 10

    def test_rejects_shape_mismatches(self):
        cluster = small_cluster()
        arrivals, availability, prices = _arrays(cluster)
        with pytest.raises(ValueError):
            Scenario(cluster, arrivals[:, :1], availability, prices)
        with pytest.raises(ValueError):
            Scenario(cluster, arrivals, availability[:, :1], prices)
        with pytest.raises(ValueError):
            Scenario(cluster, arrivals, availability, prices[:, :1])

    def test_rejects_negative_values(self):
        cluster = small_cluster()
        arrivals, availability, prices = _arrays(cluster)
        arrivals[0, 0] = -1
        with pytest.raises(ValueError):
            Scenario(cluster, arrivals, availability, prices)


class TestAccessors:
    def test_state_at(self):
        cluster = small_cluster()
        scn = Scenario(cluster, *_arrays(cluster))
        state = scn.state_at(3)
        np.testing.assert_allclose(state.availability, scn.availability[3])
        np.testing.assert_allclose(state.prices, scn.prices[3])

    def test_state_at_out_of_range(self):
        cluster = small_cluster()
        scn = Scenario(cluster, *_arrays(cluster))
        with pytest.raises(IndexError):
            scn.state_at(10)
        with pytest.raises(IndexError):
            scn.state_at(-1)

    def test_arrival_work(self):
        cluster = small_cluster()
        scn = Scenario(cluster, *_arrays(cluster))
        expected = scn.arrivals @ cluster.demands
        np.testing.assert_allclose(scn.arrival_work(), expected)

    def test_truncated(self):
        cluster = small_cluster()
        scn = Scenario(cluster, *_arrays(cluster))
        short = scn.truncated(4)
        assert short.horizon == 4
        np.testing.assert_allclose(short.prices, scn.prices[:4])
        with pytest.raises(ValueError):
            scn.truncated(0)
        with pytest.raises(ValueError):
            scn.truncated(11)


class TestGenerate:
    def test_default_generation(self):
        cluster = small_cluster()
        scn = Scenario.generate(cluster, horizon=30, seed=1)
        assert scn.horizon == 30
        assert scn.arrivals.shape == (30, 2)

    def test_seed_determinism(self):
        cluster = small_cluster()
        a = Scenario.generate(cluster, horizon=30, seed=9)
        b = Scenario.generate(cluster, horizon=30, seed=9)
        np.testing.assert_array_equal(a.arrivals, b.arrivals)
        np.testing.assert_allclose(a.prices, b.prices)
        np.testing.assert_allclose(a.availability, b.availability)

    def test_different_seeds_differ(self):
        cluster = small_cluster()
        a = Scenario.generate(cluster, horizon=30, seed=1)
        b = Scenario.generate(cluster, horizon=30, seed=2)
        assert not np.array_equal(a.arrivals, b.arrivals)

    def test_rejects_bad_horizon(self):
        with pytest.raises(ValueError):
            Scenario.generate(small_cluster(), horizon=0)


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        cluster = small_cluster()
        scn = Scenario.generate(cluster, horizon=20, seed=4)
        path = tmp_path / "trace.npz"
        scn.save(path)
        loaded = Scenario.load(cluster, path)
        np.testing.assert_array_equal(loaded.arrivals, scn.arrivals)
        np.testing.assert_allclose(loaded.availability, scn.availability)
        np.testing.assert_allclose(loaded.prices, scn.prices)
