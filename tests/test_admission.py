"""Tests for the admission control policies."""

import numpy as np
import pytest

from repro.core.admission import (
    AccountQuotaAdmission,
    AdmitAll,
    BacklogCapAdmission,
)
from repro.model.action import Action
from repro.model.queues import QueueNetwork
from repro.schedulers import AlwaysScheduler
from repro.simulation.simulator import Simulator


class TestAdmitAll:
    def test_passthrough(self, cluster):
        policy = AdmitAll()
        arrivals = np.array([3.0, 2.0])
        out = policy.admit(0, arrivals, QueueNetwork(cluster), cluster)
        np.testing.assert_allclose(out, arrivals)

    def test_returns_copy(self, cluster):
        policy = AdmitAll()
        arrivals = np.array([3.0, 2.0])
        out = policy.admit(0, arrivals, QueueNetwork(cluster), cluster)
        out[0] = 99
        assert arrivals[0] == 3.0


class TestBacklogCap:
    def test_admits_under_cap(self, cluster):
        policy = BacklogCapAdmission(max_backlog_work=100.0)
        out = policy.admit(0, np.array([3.0, 2.0]), QueueNetwork(cluster), cluster)
        np.testing.assert_allclose(out, [3.0, 2.0])

    def test_rejects_over_cap(self, cluster):
        # demands are [1, 2]: offered work = 3 + 4 = 7 > cap 4.
        policy = BacklogCapAdmission(max_backlog_work=4.0)
        out = policy.admit(0, np.array([3.0, 2.0]), QueueNetwork(cluster), cluster)
        demands = cluster.demands
        assert float(out @ demands) <= 4.0 + 1e-9
        assert np.all(out >= 0)

    def test_rejects_biggest_jobs_first(self, cluster):
        policy = BacklogCapAdmission(max_backlog_work=5.0)
        out = policy.admit(0, np.array([3.0, 2.0]), QueueNetwork(cluster), cluster)
        # Type 1 (demand 2) loses jobs before type 0 (demand 1).
        assert out[1] < 2.0
        assert out[0] == pytest.approx(3.0)

    def test_existing_backlog_counts(self, cluster):
        policy = BacklogCapAdmission(max_backlog_work=5.0)
        queues = QueueNetwork(cluster)
        queues.step(Action.idle(cluster), np.array([5.0, 0.0]), t=0)  # 5 work queued
        out = policy.admit(1, np.array([3.0, 0.0]), queues, cluster)
        assert float(out.sum()) == pytest.approx(0.0)

    def test_rejects_bad_cap(self):
        with pytest.raises(ValueError):
            BacklogCapAdmission(max_backlog_work=0.0)


class TestAccountQuota:
    def test_quota_enforced(self, cluster):
        # Account 0 (type 0, demand 1): 2 work/slot; account 1: 0.
        policy = AccountQuotaAdmission(cluster, rates=[2.0, 0.0], burst=1.0)
        out = policy.admit(0, np.array([5.0, 3.0]), QueueNetwork(cluster), cluster)
        assert out[0] <= 2.0 + 1e-9
        assert out[1] == pytest.approx(0.0)

    def test_credit_accumulates_up_to_burst(self, cluster):
        policy = AccountQuotaAdmission(cluster, rates=[1.0, 0.0], burst=3.0)
        queues = QueueNetwork(cluster)
        # Idle slots bank credit (capped at 3).
        for t in range(5):
            policy.admit(t, np.zeros(2), queues, cluster)
        out = policy.admit(5, np.array([10.0, 0.0]), queues, cluster)
        assert out[0] <= 3.0 + 1e-9
        assert out[0] >= 2.0  # banked credit was actually usable

    def test_reset_restores_initial_credit(self, cluster):
        policy = AccountQuotaAdmission(cluster, rates=[1.0, 1.0], burst=2.0)
        policy.admit(0, np.array([10.0, 10.0]), QueueNetwork(cluster), cluster)
        policy.reset()
        np.testing.assert_allclose(policy._credit, [2.0, 2.0])

    def test_validation(self, cluster):
        with pytest.raises(ValueError):
            AccountQuotaAdmission(cluster, rates=[1.0])
        with pytest.raises(ValueError):
            AccountQuotaAdmission(cluster, rates=[-1.0, 1.0])
        with pytest.raises(ValueError):
            AccountQuotaAdmission(cluster, rates=[1.0, 1.0], burst=0.0)


class TestSimulatorIntegration:
    def test_dropped_jobs_counted(self, scenario):
        result = Simulator(
            scenario,
            AlwaysScheduler(scenario.cluster),
            admission=BacklogCapAdmission(max_backlog_work=3.0),
        ).run(40)
        total_offered = float(scenario.arrivals[:40].sum())
        s = result.summary
        assert s.total_dropped_jobs > 0
        assert s.total_arrived_jobs + s.total_dropped_jobs == pytest.approx(
            total_offered
        )

    def test_conservation_with_admission(self, scenario):
        result = Simulator(
            scenario,
            AlwaysScheduler(scenario.cluster),
            admission=BacklogCapAdmission(max_backlog_work=10.0),
        ).run(40)
        s = result.summary
        assert s.total_served_jobs + result.queues.total_backlog() == pytest.approx(
            s.total_arrived_jobs, abs=1e-6
        )

    def test_admit_all_changes_nothing(self, scenario):
        base = Simulator(scenario, AlwaysScheduler(scenario.cluster)).run(40)
        gated = Simulator(
            scenario, AlwaysScheduler(scenario.cluster), admission=AdmitAll()
        ).run(40)
        assert gated.summary.total_dropped_jobs == 0.0
        assert gated.summary.avg_energy_cost == pytest.approx(
            base.summary.avg_energy_cost
        )

    def test_backlog_cap_bounds_queue(self, scenario):
        """With a work cap and a non-serving window, queues stay bounded."""
        result = Simulator(
            scenario,
            AlwaysScheduler(scenario.cluster),
            admission=BacklogCapAdmission(max_backlog_work=12.0),
        ).run()
        max_backlog_seen = max(result.metrics.queue_total_series())
        arrivals_bound = max(scenario.arrivals.sum(axis=1))
        # Queue jobs <= cap (all demand >= 1 here) + one slot of arrivals.
        assert max_backlog_seen <= 12.0 + arrivals_bound
