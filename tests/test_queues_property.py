"""Property-based tests for the queue dynamics (eqs. 12-13).

Invariants checked against random action sequences:

* the scalar queues follow the recursions *exactly*;
* queues never go negative;
* conservation: jobs arrived = jobs served + jobs still queued
  (for physical actions);
* ledger totals equal the scalar queues (for physical actions);
* all recorded delays are at least one slot.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.action import Action
from repro.model.queues import QueueNetwork
from repro.scenarios import small_cluster


@st.composite
def slot_sequences(draw):
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    horizon = draw(st.integers(min_value=1, max_value=30))
    physical = draw(st.booleans())
    return seed, horizon, physical


@settings(max_examples=60, deadline=None)
@given(slot_sequences())
def test_scalar_queues_follow_recursions_exactly(params):
    seed, horizon, physical = params
    cluster = small_cluster()
    rng = np.random.default_rng(seed)
    q = QueueNetwork(cluster)
    n, j = cluster.num_datacenters, cluster.num_job_types
    elig = cluster.eligibility_matrix()

    front_ref = np.zeros(j)
    dc_ref = np.zeros((n, j))
    for t in range(horizon):
        route = rng.integers(0, 5, size=(n, j)).astype(float) * elig
        serve = rng.uniform(0, 4, size=(n, j)) * elig
        arrivals = rng.integers(0, 6, size=j).astype(float)
        action = Action(route, serve, np.zeros((n, cluster.num_server_classes)))
        if physical:
            action = q.clip_to_content(action)
            route = np.array(action.route)
            serve = np.array(action.serve)
        q.step(action, arrivals, t)

        # Reference recursions (12)-(13).
        dc_ref = np.maximum(dc_ref - serve, 0.0) + route
        front_ref = np.maximum(front_ref - route.sum(axis=0), 0.0) + arrivals

        np.testing.assert_allclose(q.front, front_ref, atol=1e-9)
        np.testing.assert_allclose(q.dc, dc_ref, atol=1e-9)
        assert np.all(q.front >= 0)
        assert np.all(q.dc >= 0)


@settings(max_examples=60, deadline=None)
@given(slot_sequences())
def test_conservation_for_physical_actions(params):
    seed, horizon, _ = params
    cluster = small_cluster()
    rng = np.random.default_rng(seed)
    q = QueueNetwork(cluster)
    n, j = cluster.num_datacenters, cluster.num_job_types
    elig = cluster.eligibility_matrix()

    total_arrived = 0.0
    total_served = 0.0
    for t in range(horizon):
        route = rng.integers(0, 5, size=(n, j)).astype(float) * elig
        serve = rng.uniform(0, 4, size=(n, j)) * elig
        arrivals = rng.integers(0, 6, size=j).astype(float)
        action = q.clip_to_content(
            Action(route, serve, np.zeros((n, cluster.num_server_classes)))
        )
        outcome = q.step(action, arrivals, t)
        total_arrived += arrivals.sum()
        total_served += outcome["served"].sum()

    backlog = q.total_backlog()
    np.testing.assert_allclose(total_served + backlog, total_arrived, atol=1e-6)


@settings(max_examples=60, deadline=None)
@given(slot_sequences())
def test_ledger_matches_scalars_for_physical_actions(params):
    seed, horizon, _ = params
    cluster = small_cluster()
    rng = np.random.default_rng(seed)
    q = QueueNetwork(cluster)
    n, j = cluster.num_datacenters, cluster.num_job_types
    elig = cluster.eligibility_matrix()

    for t in range(horizon):
        route = rng.integers(0, 5, size=(n, j)).astype(float) * elig
        serve = rng.uniform(0, 4, size=(n, j)) * elig
        arrivals = rng.integers(0, 6, size=j).astype(float)
        action = q.clip_to_content(
            Action(route, serve, np.zeros((n, cluster.num_server_classes)))
        )
        q.step(action, arrivals, t)

    # Ledger contents must equal the scalar queues.
    front_ledger_totals = np.array(
        [sum(batch[1] for batch in q._front_ledger[jj]) for jj in range(j)]
    )
    np.testing.assert_allclose(front_ledger_totals, q.front, atol=1e-6)
    dc_ledger_totals = np.array(
        [
            [sum(batch[1] for batch in q._dc_ledger[(i, jj)]) for jj in range(j)]
            for i in range(n)
        ]
    )
    np.testing.assert_allclose(dc_ledger_totals, q.dc, atol=1e-6)


@settings(max_examples=40, deadline=None)
@given(slot_sequences())
def test_all_recorded_delays_at_least_one_slot(params):
    seed, horizon, _ = params
    cluster = small_cluster()
    rng = np.random.default_rng(seed)
    q = QueueNetwork(cluster)
    n, j = cluster.num_datacenters, cluster.num_job_types
    elig = cluster.eligibility_matrix()

    for t in range(horizon):
        route = rng.integers(0, 5, size=(n, j)).astype(float) * elig
        serve = rng.uniform(0, 4, size=(n, j)) * elig
        arrivals = rng.integers(0, 6, size=j).astype(float)
        action = q.clip_to_content(
            Action(route, serve, np.zeros((n, cluster.num_server_classes)))
        )
        q.step(action, arrivals, t)

    stats = q.stats
    served = stats.dc_completed.sum()
    if served > 0:
        # Mean delay >= 1 because serving happens before routing in-slot.
        assert stats.mean_dc_delay() >= 1.0 - 1e-9
    routed = stats.front_completed.sum()
    if routed > 0:
        assert stats.mean_front_delay() >= 1.0 - 1e-9
