"""Tests for the fault-injection & resilience subsystem (repro.faults)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.grefar import GreFarScheduler
from repro.faults import (
    FaultEvent,
    FaultInjector,
    FaultSchedule,
    RandomFaultProcess,
    RequeuePolicy,
    ResilienceObserver,
)
from repro.faults.events import FAULT_KINDS
from repro.model.action import Action
from repro.model.queues import QueueNetwork
from repro.model.state import ClusterState
from repro.scenarios import small_scenario
from repro.schedulers import AlwaysScheduler
from repro.simulation.simulator import Simulator
from repro.workloads import apply_capacity_faults, apply_price_faults


def _zero_action(cluster) -> Action:
    n, j, k = (
        cluster.num_datacenters,
        cluster.num_job_types,
        cluster.num_server_classes,
    )
    return Action(np.zeros((n, j)), np.zeros((n, j)), np.zeros((n, k)))


class TestFaultEvent:
    def test_window_and_activity(self):
        event = FaultEvent("outage", dc=0, start=5, duration=3)
        assert event.end == 8
        assert not event.active_at(4)
        assert event.active_at(5)
        assert event.active_at(7)
        assert not event.active_at(8)

    def test_capacity_factor_by_kind(self):
        assert FaultEvent("outage", 0, 0, 1).capacity_factor == 0.0
        loss = FaultEvent("capacity_loss", 0, 0, 1, severity=0.4)
        assert loss.capacity_factor == pytest.approx(0.6)
        assert FaultEvent("stale_price", 0, 0, 1).capacity_factor == 1.0
        assert FaultEvent("partition", 0, 0, 1).capacity_factor == 1.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            FaultEvent("meteor", dc=0, start=0, duration=1)
        with pytest.raises(ValueError):
            FaultEvent("outage", dc=-1, start=0, duration=1)
        with pytest.raises(ValueError):
            FaultEvent("outage", dc=0, start=-1, duration=1)
        with pytest.raises(ValueError):
            FaultEvent("outage", dc=0, start=0, duration=0)
        with pytest.raises(ValueError):
            FaultEvent("capacity_loss", dc=0, start=0, duration=1, severity=0.0)
        with pytest.raises(ValueError):
            FaultEvent("capacity_loss", dc=0, start=0, duration=1, severity=1.5)


class TestFaultSchedule:
    def test_sorts_events_by_start(self):
        late = FaultEvent("outage", dc=0, start=20, duration=2)
        early = FaultEvent("stale_price", dc=1, start=3, duration=2)
        schedule = FaultSchedule((late, early))
        assert schedule.events == (early, late)
        assert len(schedule) == 2
        assert list(schedule) == [early, late]

    def test_active_and_starting_queries(self):
        a = FaultEvent("outage", dc=0, start=2, duration=4)
        b = FaultEvent("partition", dc=1, start=4, duration=2)
        schedule = FaultSchedule((a, b))
        assert schedule.active(1) == ()
        assert schedule.active(3) == (a,)
        assert schedule.active(4) == (a, b)
        assert schedule.starting(4) == (b,)
        assert schedule.starting(3) == ()

    def test_empty_and_single_outage_constructors(self):
        assert FaultSchedule.empty().is_empty
        drill = FaultSchedule.single_outage(dc=1, start=10, duration=5)
        assert not drill.is_empty
        assert drill.events[0].kind == "outage"
        assert drill.events[0].end == 15

    def test_rejects_non_events(self):
        with pytest.raises(TypeError):
            FaultSchedule(("not-an-event",))

    def test_validate_for_checks_site_and_horizon(self, cluster):
        bad_dc = FaultSchedule((FaultEvent("outage", dc=9, start=0, duration=1),))
        with pytest.raises(ValueError):
            bad_dc.validate_for(cluster)
        late = FaultSchedule((FaultEvent("outage", dc=0, start=50, duration=1),))
        with pytest.raises(ValueError):
            late.validate_for(cluster, horizon=50)
        # In-range schedules validate and return themselves for chaining.
        ok = FaultSchedule.single_outage(dc=1, start=5, duration=5)
        assert ok.validate_for(cluster, horizon=20) is ok

    def test_bake_truth_applies_capacity_faults(self):
        scenario = small_scenario(horizon=30, seed=1)
        schedule = FaultSchedule.single_outage(dc=1, start=10, duration=5)
        baked = schedule.bake_truth(scenario)
        assert np.all(baked.availability[10:15, 1, :] == 0)
        np.testing.assert_array_equal(baked.availability[:10], scenario.availability[:10])
        np.testing.assert_array_equal(baked.prices, scenario.prices)


class TestRandomFaultProcess:
    def test_deterministic_for_fixed_seed(self):
        process = RandomFaultProcess(outage_rate=0.02, stale_price_rate=0.05)
        first = process.generate(horizon=300, num_datacenters=3, seed=7)
        second = process.generate(horizon=300, num_datacenters=3, seed=7)
        assert first.events == second.events
        different = process.generate(horizon=300, num_datacenters=3, seed=8)
        assert first.events != different.events

    def test_zero_rates_yield_empty_schedule(self):
        schedule = RandomFaultProcess().generate(horizon=100, num_datacenters=2)
        assert schedule.is_empty

    def test_events_within_bounds_and_non_overlapping(self):
        process = RandomFaultProcess(
            outage_rate=0.05, capacity_loss_rate=0.05, mean_duration=5.0
        )
        schedule = process.generate(horizon=200, num_datacenters=2, seed=11)
        assert not schedule.is_empty
        for event in schedule:
            assert 0 <= event.dc < 2
            assert 0 <= event.start and event.end <= 200
            if event.kind == "capacity_loss":
                assert 0.3 <= event.severity <= 0.9
        for dc in range(2):
            mine = sorted(
                (e for e in schedule if e.dc == dc), key=lambda e: e.start
            )
            for a, b in zip(mine, mine[1:]):
                assert a.end <= b.start

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            RandomFaultProcess(outage_rate=1.5)
        with pytest.raises(ValueError):
            RandomFaultProcess(mean_duration=0.5)
        with pytest.raises(ValueError):
            RandomFaultProcess(severity_range=(0.9, 0.3))
        with pytest.raises(ValueError):
            RandomFaultProcess().generate(horizon=0, num_datacenters=1)


class TestTraceFaultHelpers:
    def test_capacity_faults_zero_outage_window(self):
        trace = np.full((10, 2, 2), 8.0)
        events = [FaultEvent("outage", dc=1, start=3, duration=4)]
        out = apply_capacity_faults(trace, events)
        assert np.all(out[3:7, 1, :] == 0)
        assert np.all(out[:3, 1, :] == 8.0)
        assert np.all(out[7:, 1, :] == 8.0)
        assert np.all(out[:, 0, :] == 8.0)
        assert np.all(trace == 8.0)  # input untouched

    def test_overlapping_faults_take_most_severe(self):
        trace = np.full((10, 1, 1), 10.0)
        events = [
            FaultEvent("capacity_loss", dc=0, start=0, duration=10, severity=0.5),
            FaultEvent("capacity_loss", dc=0, start=4, duration=2, severity=0.8),
        ]
        out = apply_capacity_faults(trace, events)
        assert np.all(out[:4] == 5.0)
        assert np.all(out[4:6] == pytest.approx(2.0))
        assert np.all(out[6:] == 5.0)

    def test_signal_kinds_do_not_touch_capacity(self):
        trace = np.full((5, 1, 1), 4.0)
        events = [FaultEvent("stale_price", dc=0, start=0, duration=5)]
        np.testing.assert_array_equal(apply_capacity_faults(trace, events), trace)

    def test_price_faults_freeze_last_pre_fault_value(self):
        prices = np.arange(10, dtype=np.float64).reshape(5, 2)
        events = [FaultEvent("stale_price", dc=1, start=2, duration=2)]
        out = apply_price_faults(prices, events)
        assert out[2, 1] == out[3, 1] == prices[1, 1]
        assert out[4, 1] == prices[4, 1]
        np.testing.assert_array_equal(out[:, 0], prices[:, 0])

    def test_price_fault_at_slot_zero_freezes_first_value(self):
        prices = np.arange(6, dtype=np.float64).reshape(3, 2)
        events = [FaultEvent("partition", dc=0, start=0, duration=2)]
        out = apply_price_faults(prices, events)
        assert out[0, 0] == out[1, 0] == prices[0, 0]

    def test_capacity_kinds_do_not_touch_prices(self):
        prices = np.arange(6, dtype=np.float64).reshape(3, 2)
        events = [FaultEvent("outage", dc=0, start=0, duration=3)]
        np.testing.assert_array_equal(apply_price_faults(prices, events), prices)

    def test_rejects_bad_shapes_and_sites(self):
        with pytest.raises(ValueError):
            apply_capacity_faults(np.zeros((5, 2)), [])
        with pytest.raises(ValueError):
            apply_price_faults(np.zeros((5, 2, 2)), [])
        with pytest.raises(ValueError):
            apply_capacity_faults(
                np.zeros((5, 1, 1)), [FaultEvent("outage", dc=3, start=0, duration=1)]
            )
        with pytest.raises(ValueError):
            apply_price_faults(
                np.zeros((5, 1)), [FaultEvent("partition", dc=3, start=0, duration=1)]
            )


class TestClusterStateMissing:
    def test_nan_rejected_without_missing_ok(self):
        with pytest.raises(ValueError):
            ClusterState(np.ones((2, 1)), [np.nan, 0.5])

    def test_nan_accepted_with_missing_ok(self):
        state = ClusterState(
            np.array([[np.nan], [3.0]]), [0.4, np.nan], missing_ok=True
        )
        assert state.has_missing
        np.testing.assert_array_equal(state.missing_prices, [False, True])
        np.testing.assert_array_equal(
            state.missing_availability, [[True], [False]]
        )

    def test_missing_ok_still_rejects_negatives_and_inf(self):
        with pytest.raises(ValueError):
            ClusterState(np.ones((2, 1)), [-0.1, 0.5], missing_ok=True)
        with pytest.raises(ValueError):
            ClusterState(np.ones((2, 1)), [np.inf, 0.5], missing_ok=True)

    def test_clean_state_reports_nothing_missing(self):
        state = ClusterState(np.ones((2, 1)), [0.4, 0.5])
        assert not state.has_missing
        assert not state.missing_prices.any()


class TestPrepareState:
    def test_clean_state_passes_through_unchanged(self, cluster, state):
        scheduler = GreFarScheduler(cluster, v=1.0)
        assert scheduler.prepare_state(state) is state

    def test_fills_from_last_known_good(self, cluster, state):
        scheduler = GreFarScheduler(cluster, v=1.0)
        scheduler.prepare_state(state)  # record the clean snapshot
        masked = ClusterState(
            state.availability, [np.nan, state.prices[1]], missing_ok=True
        )
        filled = scheduler.prepare_state(masked)
        assert not filled.has_missing
        assert filled.prices[0] == pytest.approx(state.prices[0])
        assert filled.prices[1] == pytest.approx(state.prices[1])

    def test_fail_safe_before_any_clean_observation(self, cluster, state):
        scheduler = GreFarScheduler(cluster, v=1.0)
        avail = np.array(state.availability)
        avail[0, :] = np.nan
        masked = ClusterState(avail, [np.nan, 0.5], missing_ok=True)
        filled = scheduler.prepare_state(masked)
        # Dark site: zero availability, priced at the max visible price.
        assert np.all(filled.availability[0] == 0)
        assert filled.prices[0] == pytest.approx(0.5)

    def test_substitution_persists_through_a_long_blackout(self, cluster, state):
        scheduler = GreFarScheduler(cluster, v=1.0)
        scheduler.prepare_state(state)
        masked = ClusterState(
            state.availability, [np.nan, state.prices[1]], missing_ok=True
        )
        for _ in range(5):
            filled = scheduler.prepare_state(masked)
        assert filled.prices[0] == pytest.approx(state.prices[0])

    def test_reset_clears_degraded_memory(self, cluster, state):
        scheduler = GreFarScheduler(cluster, v=1.0)
        scheduler.prepare_state(state)
        scheduler.reset()
        masked = ClusterState(
            state.availability, [np.nan, 0.5], missing_ok=True
        )
        filled = scheduler.prepare_state(masked)
        # After reset the fail-safe applies, not the pre-reset snapshot.
        assert filled.prices[0] == pytest.approx(0.5)


class TestRequeuePolicy:
    def test_default_offsets_are_exponential(self):
        assert RequeuePolicy().offsets() == (1, 2, 4, 8)
        assert RequeuePolicy(base_delay=2, factor=3.0, tranches=3).offsets() == (
            2,
            6,
            18,
        )

    def test_split_conserves_and_front_loads(self):
        parts = RequeuePolicy().split(np.array([7.0, 3.0]))
        assert len(parts) == 4
        total = sum(parts)
        np.testing.assert_allclose(total, [7.0, 3.0])
        # Largest-remainder: earlier tranches get the extra whole jobs.
        assert [p[0] for p in parts] == [2.0, 2.0, 2.0, 1.0]
        assert [p[1] for p in parts] == [1.0, 1.0, 1.0, 0.0]

    def test_split_keeps_fractional_remainder_in_first_tranche(self):
        parts = RequeuePolicy().split(np.array([0.8]))
        assert parts[0][0] == pytest.approx(0.8)
        assert all(p[0] == 0.0 for p in parts[1:])

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            RequeuePolicy(base_delay=0)
        with pytest.raises(ValueError):
            RequeuePolicy(factor=0.5)
        with pytest.raises(ValueError):
            RequeuePolicy(tranches=0)


class TestEvictDc:
    def test_evicts_counts_and_clears_queues(self, cluster):
        queues = QueueNetwork(cluster)
        queues.step(_zero_action(cluster), np.array([4.0, 3.0]), 0)
        route = np.zeros((2, 2))
        route[1, 0] = 4.0
        route[1, 1] = 3.0
        queues.step(
            Action(route, np.zeros((2, 2)), np.zeros((2, 2))), np.zeros(2), 1
        )
        counts = queues.evict_dc(1)
        np.testing.assert_allclose(counts, [4.0, 3.0])
        assert np.all(queues.dc == 0)
        # Re-evicting an empty site is a harmless no-op.
        np.testing.assert_allclose(queues.evict_dc(1), [0.0, 0.0])

    def test_rejects_out_of_range_site(self, cluster):
        queues = QueueNetwork(cluster)
        with pytest.raises(IndexError):
            queues.evict_dc(2)
        with pytest.raises(IndexError):
            queues.evict_dc(-1)


class TestInjectorNoop:
    def test_hooks_pass_inputs_through_unchanged(self, cluster, state):
        injector = FaultInjector(cluster, FaultSchedule.empty())
        queues = QueueNetwork(cluster)
        action = _zero_action(cluster)
        assert injector.begin_slot(0, queues) is None
        assert injector.true_state(0, state) is state
        assert injector.observed_state(0, state) is state
        assert injector.filter_action(0, action, state) is action

    def test_empty_schedule_run_is_bit_identical(self, scenario):
        scheduler = GreFarScheduler(scenario.cluster, v=5.0)
        plain = Simulator(scenario, scheduler).run()
        injected = Simulator(
            scenario,
            scheduler,
            injector=FaultInjector(scenario.cluster, FaultSchedule.empty()),
        ).run()
        assert plain.summary == injected.summary

    def test_injector_accepts_raw_event_iterables(self, cluster):
        events = [FaultEvent("outage", dc=0, start=0, duration=1)]
        injector = FaultInjector(cluster, events)
        assert isinstance(injector.schedule, FaultSchedule)

    def test_injector_validates_schedule_against_cluster(self, cluster):
        bad = FaultSchedule((FaultEvent("outage", dc=5, start=0, duration=1),))
        with pytest.raises(ValueError):
            FaultInjector(cluster, bad)


class TestInjectorOutage:
    def test_eviction_and_backoff_timing(self, cluster):
        queues = QueueNetwork(cluster)
        queues.step(_zero_action(cluster), np.array([4.0, 3.0]), 0)
        route = np.zeros((2, 2))
        route[1, 0] = 4.0
        route[1, 1] = 3.0
        queues.step(
            Action(route, np.zeros((2, 2)), np.zeros((2, 2))), np.zeros(2), 1
        )
        schedule = FaultSchedule.single_outage(dc=1, start=2, duration=5)
        injector = FaultInjector(cluster, schedule)

        assert injector.begin_slot(2, queues) is None  # first release is t+1
        assert injector.evicted_jobs == pytest.approx(7.0)
        assert injector.pending_jobs == pytest.approx(7.0)
        assert np.all(queues.dc == 0)

        released = {}
        for t in range(3, 11):
            due = injector.begin_slot(t, queues)
            if due is not None:
                released[t] = due
        # Default policy: tranches at offsets 1, 2, 4, 8 after the onset.
        assert sorted(released) == [3, 4, 6, 10]
        # 4 jobs split [1,1,1,1]; 3 jobs front-load as [1,1,1,0].
        np.testing.assert_allclose(released[3], [1.0, 1.0])
        np.testing.assert_allclose(released[10], [1.0, 0.0])
        total = sum(released.values())
        np.testing.assert_allclose(total, [4.0, 3.0])
        assert injector.requeued_jobs == pytest.approx(7.0)
        assert injector.pending_jobs == 0.0

    def test_outage_drill_end_to_end(self):
        scenario = small_scenario(horizon=120, seed=3)
        cluster = scenario.cluster
        schedule = FaultSchedule.single_outage(dc=1, start=40, duration=20)
        injector = FaultInjector(cluster, schedule)
        observer = ResilienceObserver(cluster, schedule)
        result = Simulator(
            scenario,
            GreFarScheduler(cluster, v=5.0),
            validate=True,
            injector=injector,
            observers=[observer],
        ).run()

        # No work is served at the dark site while it is down.
        work = result.metrics.work_per_dc_series()
        assert np.all(work[40:60, 1] == 0)
        assert work[:40, 1].sum() > 0  # it was busy before

        # Everything evicted was re-admitted well before the run ended.
        summary = result.summary
        assert summary.total_evicted_jobs == injector.evicted_jobs
        assert summary.total_requeued_jobs == pytest.approx(
            summary.total_evicted_jobs
        )
        assert injector.pending_jobs == 0.0

        # Job conservation: re-queued jobs are not double-counted.
        assert summary.total_served_jobs + result.queues.total_backlog() == (
            pytest.approx(summary.total_arrived_jobs)
        )

        # The observer sees the disruption and the recovery.
        impact = observer.report("grefar").impacts[0]
        assert impact.recovered
        assert impact.peak_backlog >= impact.pre_backlog

    def test_evicted_jobs_delay_clock_restarts(self, cluster):
        # A job evicted at slot 2 and re-admitted later must re-enter the
        # front ledger with the re-admission slot, not its original one.
        queues = QueueNetwork(cluster)
        queues.step(_zero_action(cluster), np.array([1.0, 0.0]), 0)
        route = np.zeros((2, 2))
        route[0, 0] = 1.0
        queues.step(
            Action(route, np.zeros((2, 2)), np.zeros((2, 2))), np.zeros(2), 1
        )
        schedule = FaultSchedule.single_outage(dc=0, start=2, duration=2)
        injector = FaultInjector(cluster, schedule)
        injector.begin_slot(2, queues)
        due = injector.begin_slot(3, queues)
        before = float(queues.stats.front_delay_sum[0])
        queues.step(_zero_action(cluster), due, 3)
        # Route it again at slot 4; the re-routed job contributes a front
        # delay of 4-3=1 slot, measured from re-admission, not slot 0.
        route2 = np.zeros((2, 2))
        route2[1, 0] = 1.0
        queues.step(
            Action(route2, np.zeros((2, 2)), np.zeros((2, 2))), np.zeros(2), 4
        )
        assert queues.stats.front_delay_sum[0] - before == pytest.approx(1.0)


class TestInjectorSignalFaults:
    def test_stale_price_masks_observation_only(self, cluster, state):
        schedule = FaultSchedule(
            (FaultEvent("stale_price", dc=0, start=5, duration=3),)
        )
        injector = FaultInjector(cluster, schedule)
        truth = injector.true_state(6, state)
        assert truth is state  # signal faults leave the truth alone
        observed = injector.observed_state(6, state)
        assert np.isnan(observed.prices[0])
        assert observed.prices[1] == pytest.approx(state.prices[1])
        np.testing.assert_array_equal(observed.availability, state.availability)
        # Outside the window the observation is the truth itself.
        assert injector.observed_state(9, state) is state

    def test_partition_masks_both_signals(self, cluster, state):
        schedule = FaultSchedule(
            (FaultEvent("partition", dc=1, start=0, duration=4),)
        )
        injector = FaultInjector(cluster, schedule)
        observed = injector.observed_state(1, state)
        assert np.isnan(observed.prices[1])
        assert np.all(np.isnan(observed.availability[1]))
        assert not np.isnan(observed.prices[0])

    def test_partition_blocks_commands_to_the_site(self):
        scenario = small_scenario(horizon=60, seed=3)
        cluster = scenario.cluster
        schedule = FaultSchedule(
            (FaultEvent("partition", dc=1, start=20, duration=10),)
        )
        result = Simulator(
            scenario,
            GreFarScheduler(cluster, v=5.0),
            validate=True,
            injector=FaultInjector(cluster, schedule),
        ).run()
        work = result.metrics.work_per_dc_series()
        assert np.all(work[20:30, 1] == 0)
        # Nothing is evicted by a partition: the site's queue freezes.
        assert result.summary.total_evicted_jobs == 0.0

    def test_capacity_loss_shrinks_true_availability(self, cluster, state):
        schedule = FaultSchedule(
            (FaultEvent("capacity_loss", dc=0, start=0, duration=2, severity=0.5),)
        )
        injector = FaultInjector(cluster, schedule)
        truth = injector.true_state(0, state)
        np.testing.assert_allclose(
            truth.availability[0], state.availability[0] * 0.5
        )
        np.testing.assert_allclose(truth.availability[1], state.availability[1])
        # Capacity faults are observable: no masking on top.
        assert injector.observed_state(0, truth) is truth

    def test_all_kinds_run_clean_under_validation(self):
        scenario = small_scenario(horizon=50, seed=3)
        cluster = scenario.cluster
        for kind in FAULT_KINDS:
            schedule = FaultSchedule(
                (FaultEvent(kind, dc=1, start=15, duration=10, severity=0.7),)
            )
            for scheduler in (
                GreFarScheduler(cluster, v=5.0),
                AlwaysScheduler(cluster),
            ):
                Simulator(
                    scenario,
                    scheduler,
                    validate=True,
                    injector=FaultInjector(cluster, schedule),
                ).run()


class _FakeQueues:
    def __init__(self, backlog: float, front: float) -> None:
        self._backlog = float(backlog)
        self.front = np.array([front])

    def total_backlog(self) -> float:
        return self._backlog


class _FakeAction:
    def __init__(self, energy: float) -> None:
        self._energy = float(energy)

    def energy_cost(self, cluster, state) -> float:
        return self._energy


class TestResilienceObserver:
    def _drive(self, cluster, backlogs, energies, schedule):
        observer = ResilienceObserver(cluster, schedule)
        for t, (b, e) in enumerate(zip(backlogs, energies)):
            observer(t, None, _FakeAction(e), _FakeQueues(b, b))
        return observer

    def test_recovery_overshoot_and_inflation(self, cluster):
        schedule = FaultSchedule.single_outage(dc=0, start=3, duration=2)
        backlogs = [1, 1, 1, 5, 9, 7, 3, 1, 1, 1]
        energies = [1, 1, 1, 2, 2, 2, 2, 2, 1, 1]
        observer = self._drive(cluster, backlogs, energies, schedule)
        impact = observer.report("test").impacts[0]
        assert impact.pre_backlog == pytest.approx(1.0)
        assert impact.peak_backlog == pytest.approx(9.0)
        assert impact.overshoot == pytest.approx(8.0)
        assert impact.recovery_slots == 2  # cleared at 5, recovered at 7
        assert impact.recovered
        assert impact.cost_inflation == pytest.approx(2.0)

    def test_never_recovering_run(self, cluster):
        schedule = FaultSchedule.single_outage(dc=0, start=2, duration=2)
        backlogs = [1, 1, 5, 9, 9, 9]
        energies = [1.0] * 6
        observer = self._drive(cluster, backlogs, energies, schedule)
        report = observer.report("test")
        impact = report.impacts[0]
        assert impact.recovery_slots is None
        assert not impact.recovered
        assert not report.all_recovered
        assert report.max_recovery_slots is None

    def test_report_aggregates_and_bound_utilization(self, cluster):
        schedule = FaultSchedule.single_outage(dc=0, start=3, duration=2)
        backlogs = [1, 1, 1, 5, 9, 7, 3, 1, 1, 1]
        energies = [1.0] * 10
        observer = ResilienceObserver(cluster, schedule, queue_bound=18.0)
        for t, (b, e) in enumerate(zip(backlogs, energies)):
            observer(t, None, _FakeAction(e), _FakeQueues(b, b))
        report = observer.report("test")
        assert report.all_recovered
        assert report.max_recovery_slots == 2
        assert report.max_overshoot == pytest.approx(8.0)
        assert report.peak_front_queue == pytest.approx(9.0)
        assert report.bound_utilization() == pytest.approx(0.5)
        as_dict = report.as_dict()
        assert as_dict["scheduler"] == "test"
        assert as_dict["events"] == 1
        assert as_dict["bound_utilization"] == pytest.approx(0.5)

    def test_empty_schedule_gives_empty_report(self, cluster):
        observer = ResilienceObserver(cluster, FaultSchedule.empty())
        report = observer.report("idle")
        assert report.impacts == ()
        assert report.all_recovered
        assert report.max_recovery_slots == 0
        assert report.max_overshoot == 0.0
        assert report.bound_utilization() is None


class TestCliResilience:
    def test_resilience_drill_prints_table(self, capsys):
        from repro.cli import main

        code = main(
            [
                "resilience",
                "--horizon",
                "80",
                "--start",
                "30",
                "--duration",
                "10",
                "--v",
                "0",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "outage at dc2" in out
        assert "Recovery slots" in out

    def test_rejects_window_beyond_horizon(self, capsys):
        from repro.cli import main

        code = main(
            ["resilience", "--horizon", "50", "--start", "45", "--duration", "10"]
        )
        assert code == 2

    def test_rejects_bad_site_and_severity_cleanly(self, capsys):
        from repro.cli import main

        args = ["resilience", "--horizon", "50", "--start", "10", "--duration", "5"]
        assert main(args + ["--dc", "7"]) == 2
        assert "data center 7" in capsys.readouterr().err
        assert main(args + ["--severity", "0"]) == 2
        assert "severity" in capsys.readouterr().err
