"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.scheduler == "grefar"
        assert args.v == 7.5

    def test_rejects_unknown_scheduler(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--scheduler", "magic"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "grefar" in out
        assert "fig2" in out

    def test_run_grefar(self, capsys):
        code = main(["run", "--horizon", "30", "--v", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "GreFar" in out
        assert "Avg energy" in out

    def test_run_each_scheduler(self, capsys):
        for name in ("always", "threshold", "random", "roundrobin", "trough"):
            assert main(["run", "--scheduler", name, "--horizon", "20"]) == 0
        out = capsys.readouterr().out
        assert "Always" in out

    def test_compare(self, capsys):
        assert main(["compare", "--horizon", "25"]) == 0
        out = capsys.readouterr().out
        assert "GreFar" in out and "Always" in out and "TroughFilling" in out

    def test_sweep_v(self, capsys):
        assert main(["sweep-v", "--values", "0.5,10", "--horizon", "25"]) == 0
        out = capsys.readouterr().out
        assert "0.5" in out and "10" in out

    def test_sweep_v_rejects_empty(self, capsys):
        assert main(["sweep-v", "--values", "", "--horizon", "10"]) == 2

    def test_experiment_table1(self, capsys):
        assert main(["experiment", "table1", "--horizon", "50"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out

    def test_experiment_unknown(self, capsys):
        assert main(["experiment", "nope"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err

    def test_experiment_theorem1(self, capsys):
        assert main(["experiment", "theorem1", "--horizon", "48"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 1" in out


class TestSupervisionCommands:
    def test_run_json_is_machine_comparable(self, capsys):
        import json

        assert main(["run", "--horizon", "20", "--json", "--no-cache"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scheduler"].startswith("GreFar")

    def test_chaos_drill(self, capsys):
        code = main(
            ["chaos", "--scenario", "small", "--horizon", "40",
             "--fail-rate", "0.3", "--v", "5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "faults injected" in out
        assert "OK:" in out

    def test_chaos_rejects_bad_fail_rate(self, capsys):
        assert main(["chaos", "--fail-rate", "2.0"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_checkpoint_flags_rejected_when_invalid(self, capsys):
        assert main(["run", "--kill-at", "0", "--no-cache"]) == 2
        assert main(["run", "--checkpoint-every", "-5", "--no-cache"]) == 2
        assert main(["experiment", "table1", "--checkpoint-every", "0"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err

    def test_kill_and_resume_round_trip(self, tmp_path, monkeypatch, capsys):
        import json

        monkeypatch.chdir(tmp_path)
        base = ["run", "--horizon", "40", "--v", "5", "--json", "--no-cache"]
        assert main(base + ["--checkpoint-every", "10", "--kill-at", "20"]) == 3
        captured = capsys.readouterr()
        assert "resume" in captured.err
        assert list((tmp_path / ".repro_cache" / "checkpoints").glob("*.ckpt"))

        assert main(base + ["--resume"]) == 0
        resumed = json.loads(capsys.readouterr().out)
        assert main(base) == 0
        fresh = json.loads(capsys.readouterr().out)
        assert resumed == fresh
