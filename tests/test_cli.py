"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.scheduler == "grefar"
        assert args.v == 7.5

    def test_rejects_unknown_scheduler(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--scheduler", "magic"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "grefar" in out
        assert "fig2" in out

    def test_run_grefar(self, capsys):
        code = main(["run", "--horizon", "30", "--v", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "GreFar" in out
        assert "Avg energy" in out

    def test_run_each_scheduler(self, capsys):
        for name in ("always", "threshold", "random", "roundrobin", "trough"):
            assert main(["run", "--scheduler", name, "--horizon", "20"]) == 0
        out = capsys.readouterr().out
        assert "Always" in out

    def test_compare(self, capsys):
        assert main(["compare", "--horizon", "25"]) == 0
        out = capsys.readouterr().out
        assert "GreFar" in out and "Always" in out and "TroughFilling" in out

    def test_sweep_v(self, capsys):
        assert main(["sweep-v", "--values", "0.5,10", "--horizon", "25"]) == 0
        out = capsys.readouterr().out
        assert "0.5" in out and "10" in out

    def test_sweep_v_rejects_empty(self, capsys):
        assert main(["sweep-v", "--values", "", "--horizon", "10"]) == 2

    def test_experiment_table1(self, capsys):
        assert main(["experiment", "table1", "--horizon", "50"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out

    def test_experiment_unknown(self, capsys):
        assert main(["experiment", "nope"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err

    def test_experiment_theorem1(self, capsys):
        assert main(["experiment", "theorem1", "--horizon", "48"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 1" in out
