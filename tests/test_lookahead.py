"""Tests for the T-step lookahead policy (Theorem 1's comparator)."""

import numpy as np
import pytest

from repro.schedulers.lookahead import LookaheadPolicy
from repro.scenarios import small_scenario


@pytest.fixture(scope="module")
def scn():
    return small_scenario(horizon=48, seed=5)


def _policy(scn, lookahead, beta=0.0):
    return LookaheadPolicy(
        scn.cluster,
        scn.arrivals,
        scn.availability,
        scn.prices,
        lookahead=lookahead,
        beta=beta,
    )


class TestConstruction:
    def test_rejects_bad_horizon_multiple(self, scn):
        with pytest.raises(ValueError, match="multiple"):
            _policy(scn, lookahead=7)

    def test_rejects_bad_lookahead(self, scn):
        with pytest.raises(ValueError):
            _policy(scn, lookahead=0)

    def test_rejects_negative_beta(self, scn):
        with pytest.raises(ValueError):
            _policy(scn, lookahead=12, beta=-1.0)

    def test_rejects_shape_mismatch(self, scn):
        with pytest.raises(ValueError):
            LookaheadPolicy(
                scn.cluster,
                scn.arrivals[:, :1],
                scn.availability,
                scn.prices,
                lookahead=12,
            )


class TestSolutionFeasibility:
    def test_decisions_respect_capacity(self, scn):
        sol = _policy(scn, lookahead=12).solve()
        cluster = scn.cluster
        for t in range(scn.horizon):
            load = sol.service[t] @ cluster.demands
            cap = sol.busy[t] @ cluster.speeds
            assert np.all(load <= cap + 1e-6)
            assert np.all(sol.busy[t] <= scn.availability[t] + 1e-6)

    def test_aggregate_service_covers_arrivals(self, scn):
        lookahead = 12
        sol = _policy(scn, lookahead=lookahead).solve()
        frames = scn.horizon // lookahead
        for r in range(frames):
            sl = slice(r * lookahead, (r + 1) * lookahead)
            served = sol.service[sl].sum(axis=(0, 1))
            arrived = scn.arrivals[sl].sum(axis=0)
            assert np.all(served >= arrived - 1e-6)

    def test_service_respects_eligibility(self, scn):
        sol = _policy(scn, lookahead=12).solve()
        elig = scn.cluster.eligibility_matrix()
        assert np.all(sol.service[:, ~elig] <= 1e-9)


class TestOptimality:
    def test_mean_cost_is_frame_average(self, scn):
        sol = _policy(scn, lookahead=12).solve()
        assert sol.mean_cost == pytest.approx(float(sol.frame_costs.mean()))

    def test_longer_frames_cannot_cost_more(self, scn):
        """More lookahead = more flexibility = weakly lower optimal cost.

        (Exact when the frame boundaries nest, as with 12 | 24 | 48.)
        """
        costs = {
            t: _policy(scn, lookahead=t).solve().mean_cost for t in (12, 24, 48)
        }
        assert costs[24] <= costs[12] + 1e-6
        assert costs[48] <= costs[24] + 1e-6

    def test_costs_are_nonnegative(self, scn):
        sol = _policy(scn, lookahead=12).solve()
        assert np.all(sol.frame_costs >= -1e-9)

    def test_beta_zero_is_pure_energy(self, scn):
        """The beta = 0 frame cost equals the energy of its decisions."""
        sol = _policy(scn, lookahead=12).solve()
        cluster = scn.cluster
        total = 0.0
        for t in range(scn.horizon):
            total += float(scn.prices[t] @ (sol.busy[t] @ cluster.active_powers))
        assert sol.mean_cost * (scn.horizon // 12) == pytest.approx(
            total / 12, rel=1e-6
        )


class TestConvexFrames:
    def test_beta_positive_runs_and_is_feasible(self, scn):
        sol = _policy(scn, lookahead=12, beta=50.0).solve()
        cluster = scn.cluster
        for t in range(scn.horizon):
            load = sol.service[t] @ cluster.demands
            cap = sol.busy[t] @ cluster.speeds
            assert np.all(load <= cap + 1e-5)

    def test_beta_increases_combined_objective_vs_energy_only(self, scn):
        """With beta > 0 the optimal *energy* can only go up (fairness
        is traded against it), while the combined cost stays coherent."""
        base = _policy(scn, lookahead=12).solve()
        fair = _policy(scn, lookahead=12, beta=50.0).solve()
        cluster = scn.cluster

        def energy(sol):
            return sum(
                float(scn.prices[t] @ (sol.busy[t] @ cluster.active_powers))
                for t in range(scn.horizon)
            )

        assert energy(fair) >= energy(base) - 1e-6
