"""Unit + property tests for the fairness functions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fairness import (
    AlphaFairness,
    JainFairness,
    MaxMinFairness,
    QuadraticFairness,
)

SHARES = np.array([0.4, 0.3, 0.15, 0.15])
R = 100.0

ALL_FUNCTIONS = [
    QuadraticFairness(),
    AlphaFairness(alpha=0.5),
    AlphaFairness(alpha=1.0),
    AlphaFairness(alpha=2.0),
    JainFairness(),
    MaxMinFairness(),
]


@st.composite
def allocations(draw):
    values = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=R, allow_nan=False),
            min_size=4,
            max_size=4,
        )
    )
    return np.array(values)


class TestQuadratic:
    def test_ideal_allocation_scores_zero(self):
        f = QuadraticFairness()
        assert f.score(SHARES * R, R, SHARES) == pytest.approx(0.0)

    def test_idle_scores_negative_sum_of_squares(self):
        f = QuadraticFairness()
        assert f.score(np.zeros(4), R, SHARES) == pytest.approx(-np.sum(SHARES**2))

    def test_score_is_nonpositive(self):
        f = QuadraticFairness()
        rng = np.random.default_rng(0)
        for _ in range(50):
            alloc = rng.uniform(0, R, size=4)
            assert f.score(alloc, R, SHARES) <= 1e-12

    def test_gradient_matches_numerical(self):
        f = QuadraticFairness()
        alloc = np.array([10.0, 20.0, 5.0, 1.0])
        grad = f.gradient(alloc, R, SHARES)
        eps = 1e-5
        for m in range(4):
            bump = alloc.copy()
            bump[m] += eps
            numerical = (f.score(bump, R, SHARES) - f.score(alloc, R, SHARES)) / eps
            assert grad[m] == pytest.approx(numerical, abs=1e-6)

    def test_hessian_diagonal(self):
        f = QuadraticFairness()
        np.testing.assert_allclose(
            f.hessian_diagonal(10.0, 3), np.full(3, -0.02)
        )

    def test_rejects_bad_inputs(self):
        f = QuadraticFairness()
        with pytest.raises(ValueError):
            f.score(np.zeros(3), R, SHARES)  # shape mismatch
        with pytest.raises(ValueError):
            f.score(np.zeros(4), 0.0, SHARES)  # zero resource
        with pytest.raises(ValueError):
            f.score(-np.ones(4), R, SHARES)  # negative allocation


class TestAlphaFair:
    def test_log_case_at_alpha_one(self):
        f = AlphaFairness(alpha=1.0, epsilon=1e-3)
        alloc = SHARES * R
        expected = np.sum(SHARES * np.log(SHARES + 1e-3))
        assert f.score(alloc, R, SHARES) == pytest.approx(expected)

    def test_monotone_in_allocation(self):
        f = AlphaFairness(alpha=2.0)
        low = f.score(np.array([1.0, 1, 1, 1]), R, SHARES)
        high = f.score(np.array([10.0, 10, 10, 10]), R, SHARES)
        assert high > low

    def test_gradient_positive(self):
        f = AlphaFairness(alpha=1.0)
        grad = f.gradient(np.array([5.0, 5, 5, 5]), R, SHARES)
        assert np.all(grad > 0)

    def test_rejects_negative_alpha(self):
        with pytest.raises(ValueError):
            AlphaFairness(alpha=-1.0)

    def test_rejects_zero_epsilon(self):
        with pytest.raises(ValueError):
            AlphaFairness(epsilon=0.0)


class TestJain:
    def test_perfectly_proportional_scores_one(self):
        f = JainFairness()
        assert f.score(SHARES * 50.0, R, SHARES) == pytest.approx(1.0)

    def test_single_account_hog_scores_one_over_m(self):
        f = JainFairness()
        alloc = np.array([50.0, 0.0, 0.0, 0.0])
        assert f.score(alloc, R, SHARES) == pytest.approx(0.25)

    def test_zero_allocation_scores_one_over_m(self):
        f = JainFairness()
        assert f.score(np.zeros(4), R, SHARES) == pytest.approx(0.25)

    def test_range(self):
        f = JainFairness()
        rng = np.random.default_rng(1)
        for _ in range(50):
            alloc = rng.uniform(0, R, size=4)
            score = f.score(alloc, R, SHARES)
            assert 0.0 < score <= 1.0 + 1e-12


class TestMaxMin:
    def test_proportional_ratio(self):
        f = MaxMinFairness()
        assert f.score(SHARES * R, R, SHARES) == pytest.approx(1.0)

    def test_starved_account_scores_zero(self):
        f = MaxMinFairness()
        alloc = np.array([40.0, 30.0, 15.0, 0.0])
        assert f.score(alloc, R, SHARES) == pytest.approx(0.0)

    def test_zero_share_accounts_ignored(self):
        f = MaxMinFairness()
        shares = np.array([1.0, 0.0])
        alloc = np.array([50.0, 0.0])
        assert f.score(alloc, 100.0, shares) == pytest.approx(0.5)

    def test_subgradient_on_worst_account(self):
        f = MaxMinFairness()
        alloc = np.array([40.0, 30.0, 1.0, 15.0])
        grad = f.gradient(alloc, R, SHARES)
        assert grad[2] > 0
        assert grad[0] == grad[1] == grad[3] == 0.0


class TestConcavityProperties:
    @settings(max_examples=40, deadline=None)
    @given(allocations(), allocations(), st.floats(min_value=0.0, max_value=1.0))
    def test_concavity_along_segments(self, a, b, lam):
        """f(lam a + (1-lam) b) >= lam f(a) + (1-lam) f(b) for concave scores."""
        for fn in [QuadraticFairness(), AlphaFairness(alpha=1.0), MaxMinFairness()]:
            mid = lam * a + (1 - lam) * b
            lhs = fn.score(mid, R, SHARES)
            rhs = lam * fn.score(a, R, SHARES) + (1 - lam) * fn.score(b, R, SHARES)
            assert lhs >= rhs - 1e-8

    @settings(max_examples=40, deadline=None)
    @given(allocations())
    def test_ideal_allocation_is_quadratic_maximizer(self, alloc):
        fn = QuadraticFairness()
        ideal = fn.ideal_allocation(R, SHARES)
        assert fn.score(ideal, R, SHARES) >= fn.score(alloc, R, SHARES) - 1e-12

    @settings(max_examples=40, deadline=None)
    @given(allocations())
    def test_gradients_are_finite(self, alloc):
        for fn in ALL_FUNCTIONS:
            grad = fn.gradient(alloc, R, SHARES)
            assert np.all(np.isfinite(grad))
