"""Runtime sanitizer drills (``repro.tools.tsan``).

Two directions.  Positive: the real service, exercised end-to-end with
``REPRO_TSAN=1`` — including concurrent submitters — produces **zero**
sanitizer reports while the live-vs-replay metrics stay bit-identical,
so enabling the sanitizer never changes behavior.  Negative: each TSAN
rule demonstrably fires on deliberate misuse, so "zero reports" means
the discipline holds, not that the sanitizer is asleep.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.objective import CostModel
from repro.schedulers import build_scheduler
from repro.service import SchedulerService, ServiceConfig
from repro.simulation.simulator import Simulator
from repro.tools import tsan


def make_config(tmp_path, **overrides) -> ServiceConfig:
    defaults = dict(
        scenario_kind="small",
        scenario_seed=0,
        capacity_slots=30,
        scheduler="grefar",
        scheduler_kwargs={"v": 10.0},
        data_dir=str(tmp_path / "svc"),
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


@pytest.fixture
def tsan_on(monkeypatch):
    monkeypatch.setenv("REPRO_TSAN", "1")
    tsan.reset()
    yield
    tsan.reset()


def _submit_ok(service, account, job_type, count):
    status, body, _headers = service.submit(
        {"account": account, "job_type": job_type, "count": count}
    )
    assert status == 202, body


# ----------------------------------------------------------------------
# Positive: the service is clean under the sanitizer
# ----------------------------------------------------------------------
def test_service_locks_are_tracked_when_enabled(tmp_path, tsan_on):
    service = SchedulerService(make_config(tmp_path))
    assert isinstance(service.lock, tsan.TsanLock)
    assert service.lock.name == "SchedulerService.lock"
    assert isinstance(service.ingestor._seq_lock, tsan.TsanLock)
    assert isinstance(service.limiter._lock, tsan.TsanLock)
    service.shutdown()
    assert tsan.reports() == []


def test_full_drill_zero_reports_and_bit_identical_replay(tmp_path, tsan_on):
    service = SchedulerService(make_config(tmp_path))
    schedule = [
        [(0, 0, 12), (1, 1, 4)],
        [],
        [(0, 0, 30), (0, 0, 8), (1, 1, 5)],
        [(1, 1, 2)],
        [(0, 0, 50)],
        [],
    ]
    for batch in schedule:
        for account, job_type, count in batch:
            _submit_ok(service, account, job_type, count)
        service.ticker.tick(1)
    state = service.state

    scenario = state.replay_scenario()
    simulator = Simulator(
        scenario,
        build_scheduler("grefar", scenario.cluster, v=10.0),
        cost_model=CostModel(beta=service.config.cost_beta),
    )
    result = simulator.run()
    # The sanitizer must observe, never perturb: still bit-identical.
    assert result.metrics.energy_cost == state.metrics.energy_cost
    assert result.metrics.combined_cost == state.metrics.combined_cost
    offline = result.metrics.work_per_dc_series()
    live = np.stack([r["work_per_dc"] for r in state.slot_records])
    assert np.array_equal(offline, live)

    service.shutdown()
    assert tsan.reports() == [], "\n".join(
        f.render() for f in tsan.reports()
    )


def test_concurrent_submitters_and_ticks_zero_reports(tmp_path, tsan_on):
    service = SchedulerService(make_config(tmp_path))
    errors = []

    def hammer(account, job_type):
        try:
            for _ in range(20):
                service.submit(
                    {"account": account, "job_type": job_type, "count": 1}
                )
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [
        threading.Thread(target=hammer, args=(0, 0)),
        threading.Thread(target=hammer, args=(1, 1)),
    ]
    for thread in threads:
        thread.start()
    for _ in range(5):
        service.ticker.tick(1)
    for thread in threads:
        thread.join()
    service.ticker.tick(2)
    service.shutdown()

    assert errors == []
    assert tsan.reports() == [], "\n".join(
        f.render() for f in tsan.reports()
    )


def test_disabled_means_plain_locks(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_TSAN", raising=False)
    service = SchedulerService(make_config(tmp_path))
    assert not isinstance(service.lock, tsan.TsanLock)
    service.shutdown()


# ----------------------------------------------------------------------
# Negative: each rule fires on deliberate misuse
# ----------------------------------------------------------------------
def test_order_inversion_is_recorded(tsan_on):
    first = tsan.named_lock("t.first")
    second = tsan.named_lock("t.second")
    with first:
        with second:
            pass
    with second:
        with first:  # opposite order: the inversion site
            pass
    rules = [f.rule for f in tsan.reports()]
    assert rules == [tsan.ORDER_INVERSION]
    assert "t.first" in tsan.reports()[0].message


def test_self_deadlock_raises_instead_of_hanging(tsan_on):
    lock = tsan.named_lock("t.once")
    with lock:
        with pytest.raises(tsan.TsanError, match="t.once"):
            lock.acquire()
    assert [f.rule for f in tsan.reports()] == [tsan.SELF_DEADLOCK]


def test_reentrant_lock_may_reacquire(tsan_on):
    lock = tsan.named_lock("t.again", reentrant=True)
    with lock:
        with lock:
            pass
    assert tsan.reports() == []


class _Guinea:
    """Watched test subject; the comment drives the runtime guard."""

    def __init__(self):
        self._lock = tsan.named_lock("_Guinea._lock")
        self.value = 0  # guarded-by: self._lock
        tsan.watch(self)


def test_unguarded_access_is_recorded(tsan_on):
    guinea = _Guinea()
    with guinea._lock:
        guinea.value += 1  # held: silent
    assert tsan.reports() == []
    guinea.value += 1  # not held: one read + one write report
    rules = [f.rule for f in tsan.reports()]
    assert rules == [tsan.UNGUARDED_ACCESS, tsan.UNGUARDED_ACCESS]
    assert "_Guinea.value" in tsan.reports()[0].message


def test_watch_is_noop_when_disabled(monkeypatch):
    monkeypatch.delenv("REPRO_TSAN", raising=False)
    guinea = _Guinea()
    guinea.value += 1  # plain object, no shadow class, no reports
    assert type(guinea).__name__ == "_Guinea"
    assert tsan.reports() == []
