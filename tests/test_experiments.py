"""Smoke + shape tests for the experiment harness (short horizons).

The full-length shape assertions live in ``benchmarks/``; these tests
ensure every experiment module runs end-to-end, returns well-formed
results and prints without raising.
"""

import numpy as np
import pytest

from repro.experiments import (
    fig1_trace,
    fig2_v_sweep,
    fig3_beta,
    fig4_vs_always,
    fig5_snapshot,
    table1,
    theorem1,
    work_distribution,
)


class TestTable1:
    def test_run(self):
        result = table1.run(horizon=200, seed=0)
        np.testing.assert_allclose(result.speeds, [1.00, 0.75, 1.15])
        np.testing.assert_allclose(result.powers, [1.00, 0.60, 1.20])
        assert all(p > 0 for p in result.avg_prices)
        for i in range(3):
            assert result.cost_per_unit_work[i] == pytest.approx(
                result.avg_prices[i] * result.powers[i] / result.speeds[i]
            )

    def test_main_prints(self, capsys):
        table1.main(horizon=100)
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "#1" in out


class TestFig1:
    def test_run(self):
        result = fig1_trace.run(horizon=72, seed=0)
        assert result.prices.shape == (72, 3)
        assert result.org_work.shape == (72, 4)
        assert len(result.price_means) == 3
        # Prices vary hour to hour.
        assert all(cv > 0.05 for cv in result.price_cv)
        # Workloads are bursty (peaks well above the mean).
        assert all(p > 1.5 for p in result.org_peak_to_mean)

    def test_main_prints(self, capsys):
        fig1_trace.main(horizon=48)
        out = capsys.readouterr().out
        assert "Fig. 1" in out


class TestFig2:
    def test_run_short(self):
        result = fig2_v_sweep.run(horizon=60, seed=0, v_values=(0.1, 20.0))
        assert len(result.final_energy) == 2
        assert len(result.energy_series[0]) == 60
        # Delay ordering is already visible on short runs.
        assert result.final_delay_dc1[1] >= result.final_delay_dc1[0] - 0.1

    def test_main_prints(self, capsys):
        fig2_v_sweep.main(horizon=40)
        out = capsys.readouterr().out
        assert "Fig. 2" in out


class TestFig3:
    def test_run_short(self):
        result = fig3_beta.run(horizon=40, seed=0)
        assert result.beta_values == (0.0, 100.0)
        assert len(result.final_fairness) == 2

    def test_main_prints(self, capsys):
        fig3_beta.main(horizon=30)
        out = capsys.readouterr().out
        assert "Fig. 3" in out


class TestFig4:
    def test_run_short(self):
        result = fig4_vs_always.run(horizon=40, seed=0)
        assert result.always_delay_dc1[1] == pytest.approx(1.0, abs=0.3)

    def test_main_prints(self, capsys):
        fig4_vs_always.main(horizon=30)
        out = capsys.readouterr().out
        assert "Always" in out


class TestFig5:
    def test_run_short(self):
        result = fig5_snapshot.run(warmup=48, window=24, seed=0)
        assert result.prices_dc1.shape == (24,)
        assert result.grefar_work_dc1.shape == (24,)

    def test_main_prints(self, capsys):
        fig5_snapshot.main(warmup=24, window=24)
        out = capsys.readouterr().out
        assert "Fig. 5" in out
        assert "correlation" in out


class TestWorkDistribution:
    def test_run_short(self):
        result = work_distribution.run(horizon=80, seed=0)
        assert len(result.avg_work_per_dc) == 3
        assert len(result.cost_per_unit_work) == 3

    def test_main_prints(self, capsys):
        work_distribution.main(horizon=60)
        out = capsys.readouterr().out
        assert "Work distribution" in out


class TestTheorem1:
    def test_run_short(self):
        result = theorem1.run(horizon=96, lookahead=24, seed=0, v_values=(1.0, 10.0))
        assert result.queue_bound_holds
        assert result.cost_bound_holds
        assert result.delta > 0
        # The analytic cost bound shrinks with V.
        assert result.cost_bounds[1] < result.cost_bounds[0]

    def test_rejects_bad_horizon(self):
        with pytest.raises(ValueError):
            theorem1.run(horizon=100, lookahead=24)

    def test_main_prints(self, capsys):
        theorem1.main(horizon=48, lookahead=24)
        out = capsys.readouterr().out
        assert "Theorem 1" in out
