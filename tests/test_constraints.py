"""Tests for the parallelism constraint (Section III-B extension)."""

import numpy as np
import pytest

from repro.core.constraints import parallelism_service_bounds
from repro.core.grefar import GreFarScheduler
from repro.model.action import Action
from repro.model.cluster import Cluster
from repro.model.datacenter import DataCenter
from repro.model.job import Account, JobType
from repro.model.queues import QueueNetwork
from repro.model.server import ServerClass
from repro.model.state import ClusterState
from repro.schedulers import AlwaysScheduler


def _limited_cluster(parallelism: float | None = 2.0) -> Cluster:
    """One site, one server class (speed 1), one big-job type."""
    return Cluster(
        server_classes=(ServerClass(name="s", speed=1.0, active_power=0.5),),
        datacenters=(DataCenter(name="d", max_servers=[20]),),
        job_types=(
            JobType(
                name="big",
                demand=10.0,
                eligible_dcs=(0,),
                account=0,
                max_arrivals=5,
                max_route=5,
                max_service=5.0,
                max_parallelism=parallelism,
            ),
        ),
        accounts=(Account(name="a", fair_share=1.0),),
    )


class TestJobTypeField:
    def test_default_is_unbounded(self):
        jt = JobType(name="t", demand=1.0, eligible_dcs=[0], account=0)
        assert jt.max_parallelism is None

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            JobType(
                name="t", demand=1.0, eligible_dcs=[0], account=0, max_parallelism=0.0
            )


class TestBoundsComputation:
    def test_unbounded_types_get_inf(self, cluster, state):
        bounds = parallelism_service_bounds(cluster, state, np.full((2, 2), 3.0))
        assert np.all(np.isinf(bounds))

    def test_bound_formula(self):
        cluster = _limited_cluster(parallelism=2.0)
        state = ClusterState(np.array([[20.0]]), [0.3])
        q = np.array([[3.0]])
        bounds = parallelism_service_bounds(cluster, state, q)
        # 3 jobs x 2 servers x speed 1 / demand 10 = 0.6 jobs per slot.
        assert bounds[0, 0] == pytest.approx(0.6)

    def test_no_servers_means_zero_bound(self):
        cluster = _limited_cluster(parallelism=2.0)
        state = ClusterState(np.array([[0.0]]), [0.3])
        bounds = parallelism_service_bounds(cluster, state, np.array([[3.0]]))
        assert bounds[0, 0] == pytest.approx(0.0)

    def test_rejects_bad_shape(self, cluster, state):
        with pytest.raises(ValueError):
            parallelism_service_bounds(cluster, state, np.zeros((3, 3)))


class TestSchedulerIntegration:
    def _queues_with_one_job(self, cluster):
        q = QueueNetwork(cluster)
        q.step(Action.idle(cluster), np.array([1.0]), t=0)
        route = np.array([[1.0]])
        q.step(
            Action(route, np.zeros((1, 1)), np.zeros((1, 1))),
            np.zeros(1),
            t=1,
        )
        return q

    def test_limited_job_takes_multiple_slots(self):
        """One 10-work job, 2-server cap: at most 0.2 job/slot progress,
        even though 20 servers sit idle."""
        cluster = _limited_cluster(parallelism=2.0)
        state = ClusterState(np.array([[20.0]]), [0.001])  # nearly free power
        scheduler = AlwaysScheduler(cluster)
        queues = self._queues_with_one_job(cluster)
        action = scheduler.decide(2, state, queues)
        assert action.serve[0, 0] <= 0.2 + 1e-9
        assert action.serve[0, 0] > 0

    def test_unlimited_job_finishes_in_one_slot(self):
        cluster = _limited_cluster(parallelism=None)
        state = ClusterState(np.array([[20.0]]), [0.001])
        scheduler = AlwaysScheduler(cluster)
        queues = self._queues_with_one_job(cluster)
        action = scheduler.decide(2, state, queues)
        assert action.serve[0, 0] == pytest.approx(1.0)

    def test_grefar_respects_parallelism(self):
        cluster = _limited_cluster(parallelism=4.0)
        state = ClusterState(np.array([[20.0]]), [0.001])
        scheduler = GreFarScheduler(cluster, v=1.0)
        queues = self._queues_with_one_job(cluster)
        action = scheduler.decide(2, state, queues)
        # 1 job x 4 servers x speed 1 / demand 10 = 0.4 jobs max.
        assert action.serve[0, 0] <= 0.4 + 1e-9
