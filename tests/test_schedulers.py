"""Unit tests for the baseline schedulers."""

import numpy as np
import pytest

from repro.model.action import Action
from repro.model.queues import QueueNetwork
from repro.model.state import ClusterState
from repro.schedulers import (
    AlwaysScheduler,
    PriceThresholdScheduler,
    RandomRoutingScheduler,
    RoundRobinScheduler,
)
from repro.schedulers.base import route_greedily
from repro.simulation.simulator import Simulator


class TestRouteGreedily:
    def test_routes_everything_when_bounds_allow(self, cluster):
        front = np.array([3.0, 2.0])
        dc = np.zeros((2, 2))
        route = route_greedily(cluster, front, dc)
        np.testing.assert_allclose(route.sum(axis=0), front)

    def test_prefers_smaller_backlog(self, cluster):
        front = np.array([2.0, 0.0])
        dc = np.array([[5.0, 0.0], [0.0, 0.0]])
        route = route_greedily(cluster, front, dc)
        assert route[1, 0] == pytest.approx(2.0)
        assert route[0, 0] == pytest.approx(0.0)

    def test_respects_eligibility(self, cluster):
        front = np.array([0.0, 4.0])
        route = route_greedily(cluster, front, np.zeros((2, 2)))
        assert route[0, 1] == 0.0  # type 1 only eligible at site 1
        assert route[1, 1] == pytest.approx(4.0)

    def test_respects_route_bound(self, cluster):
        front = np.array([0.0, 30.0])
        route = route_greedily(cluster, front, np.zeros((2, 2)))
        assert route[1, 1] <= 25.0  # max_route for type 1


class TestAlways:
    def test_delay_is_one_when_capacity_suffices(self, scenario):
        result = Simulator(scenario, AlwaysScheduler(scenario.cluster)).run()
        assert result.summary.avg_dc_delay[0] == pytest.approx(1.0, abs=0.2)
        assert result.summary.avg_front_delay == pytest.approx(1.0, abs=0.2)

    def test_serves_regardless_of_price(self, cluster):
        scheduler = AlwaysScheduler(cluster)
        q = QueueNetwork(cluster)
        route = np.zeros((2, 2))
        route[0, 0] = 3.0
        q.step(Action(route, np.zeros((2, 2)), np.zeros((2, 2))), np.zeros(2), t=0)
        expensive = ClusterState(
            np.stack([dc.max_servers for dc in cluster.datacenters]),
            [100.0, 100.0],
        )
        action = scheduler.decide(1, expensive, q)
        assert action.serve[0, 0] == pytest.approx(3.0)

    def test_actions_valid(self, cluster, state):
        scheduler = AlwaysScheduler(cluster)
        q = QueueNetwork(cluster)
        rng = np.random.default_rng(1)
        for t in range(10):
            action = scheduler.decide(t, state, q)
            action.validate(cluster, state)
            q.step(action, rng.integers(0, 4, size=2).astype(float), t)


class TestPriceThreshold:
    def test_serves_only_below_threshold(self, cluster):
        scheduler = PriceThresholdScheduler(cluster, threshold=0.45)
        q = QueueNetwork(cluster)
        route = np.zeros((2, 2))
        route[0, 0] = 2.0
        route[1, 0] = 2.0
        q.step(Action(route, np.zeros((2, 2)), np.zeros((2, 2))), np.zeros(2), t=0)
        state = ClusterState(
            np.stack([dc.max_servers for dc in cluster.datacenters]),
            [0.4, 0.5],  # site 0 below, site 1 above
        )
        action = scheduler.decide(1, state, q)
        assert action.serve[0, 0] > 0
        assert action.serve[1, 0] == pytest.approx(0.0)

    def test_rejects_negative_threshold(self, cluster):
        with pytest.raises(ValueError):
            PriceThresholdScheduler(cluster, threshold=-1.0)


class TestRandomRouting:
    def test_routes_within_eligibility(self, cluster, state):
        scheduler = RandomRoutingScheduler(cluster, seed=3)
        q = QueueNetwork(cluster)
        q.step(Action.idle(cluster), np.array([10.0, 10.0]), t=0)
        action = scheduler.decide(1, state, q)
        assert action.route[0, 1] == 0.0  # ineligible pair
        assert action.route.sum() > 0

    def test_reset_reproduces_decisions(self, cluster, state):
        scheduler = RandomRoutingScheduler(cluster, seed=3)
        q = QueueNetwork(cluster)
        q.step(Action.idle(cluster), np.array([10.0, 10.0]), t=0)
        first = scheduler.decide(1, state, q)
        scheduler.reset()
        second = scheduler.decide(1, state, q)
        np.testing.assert_allclose(first.route, second.route)

    def test_actions_valid(self, cluster, state, scenario):
        result = Simulator(
            scenario, RandomRoutingScheduler(scenario.cluster), validate=True
        ).run(20)
        assert result.summary.horizon == 20


class TestRoundRobin:
    def test_rotates_over_eligible_sites(self, cluster, state):
        scheduler = RoundRobinScheduler(cluster)
        q = QueueNetwork(cluster)
        q.step(Action.idle(cluster), np.array([1.0, 0.0]), t=0)
        first = scheduler.decide(1, state, q)
        q2 = QueueNetwork(cluster)
        q2.step(Action.idle(cluster), np.array([1.0, 0.0]), t=0)
        second = scheduler.decide(1, state, q2)
        # Consecutive single jobs go to different sites.
        assert first.route[0, 0] + second.route[0, 0] == pytest.approx(1.0)
        assert first.route[1, 0] + second.route[1, 0] == pytest.approx(1.0)

    def test_reset_restarts_rotation(self, cluster, state):
        scheduler = RoundRobinScheduler(cluster)
        q = QueueNetwork(cluster)
        q.step(Action.idle(cluster), np.array([1.0, 0.0]), t=0)
        first = scheduler.decide(1, state, q)
        scheduler.reset()
        q2 = QueueNetwork(cluster)
        q2.step(Action.idle(cluster), np.array([1.0, 0.0]), t=0)
        again = scheduler.decide(1, state, q2)
        np.testing.assert_allclose(first.route, again.route)

    def test_actions_valid(self, scenario):
        result = Simulator(
            scenario, RoundRobinScheduler(scenario.cluster), validate=True
        ).run(20)
        assert result.summary.horizon == 20
