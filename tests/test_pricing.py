"""Unit + property tests for the electricity pricing models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.pricing import LinearPricing, TieredPricing


class TestLinearPricing:
    def test_total_cost(self):
        p = LinearPricing()
        assert p.total_cost(10.0, 0.5) == pytest.approx(5.0)

    def test_marginal_is_constant(self):
        p = LinearPricing()
        assert p.marginal_price(0.0, 0.5) == 0.5
        assert p.marginal_price(1000.0, 0.5) == 0.5

    def test_tiers(self):
        (width, unit), = LinearPricing().tiers(0.4)
        assert width == float("inf")
        assert unit == 0.4

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            LinearPricing().total_cost(-1.0, 0.5)
        with pytest.raises(ValueError):
            LinearPricing().total_cost(1.0, -0.5)


class TestTieredPricing:
    @pytest.fixture
    def tiered(self):
        return TieredPricing(boundaries=(10.0, 20.0), multipliers=(1.0, 2.0, 4.0))

    def test_first_tier_is_base_price(self, tiered):
        assert tiered.total_cost(5.0, 0.5) == pytest.approx(2.5)

    def test_crosses_tiers(self, tiered):
        # 10 @ 0.5 + 10 @ 1.0 + 5 @ 2.0 = 5 + 10 + 10 = 25.
        assert tiered.total_cost(25.0, 0.5) == pytest.approx(25.0)

    def test_marginal_steps_up(self, tiered):
        assert tiered.marginal_price(5.0, 0.5) == pytest.approx(0.5)
        assert tiered.marginal_price(15.0, 0.5) == pytest.approx(1.0)
        assert tiered.marginal_price(50.0, 0.5) == pytest.approx(2.0)

    def test_tiers_structure(self, tiered):
        tiers = tiered.tiers(1.0)
        assert tiers[0] == (10.0, 1.0)
        assert tiers[1] == (10.0, 2.0)
        assert tiers[2][0] == float("inf")
        assert tiers[2][1] == 4.0

    def test_validation(self):
        with pytest.raises(ValueError, match="multipliers"):
            TieredPricing(boundaries=(10.0,), multipliers=(1.0,))
        with pytest.raises(ValueError, match="increasing"):
            TieredPricing(boundaries=(10.0, 5.0), multipliers=(1.0, 2.0, 3.0))
        with pytest.raises(ValueError, match="non-decreasing"):
            TieredPricing(boundaries=(10.0,), multipliers=(2.0, 1.0))
        with pytest.raises(ValueError, match="positive"):
            TieredPricing(boundaries=(-1.0,), multipliers=(1.0, 2.0))

    @settings(max_examples=50, deadline=None)
    @given(
        st.floats(min_value=0.0, max_value=100.0),
        st.floats(min_value=0.0, max_value=100.0),
    )
    def test_convexity(self, e1, e2):
        """Midpoint convexity of the total cost in energy."""
        p = TieredPricing(boundaries=(10.0, 30.0), multipliers=(1.0, 1.5, 3.0))
        mid = 0.5 * (e1 + e2)
        lhs = p.total_cost(mid, 0.5)
        rhs = 0.5 * (p.total_cost(e1, 0.5) + p.total_cost(e2, 0.5))
        assert lhs <= rhs + 1e-9

    @settings(max_examples=50, deadline=None)
    @given(st.floats(min_value=0.0, max_value=100.0))
    def test_total_is_integral_of_marginal(self, energy):
        """total_cost(E) == integral of marginal over [0, E] (piecewise)."""
        p = TieredPricing(boundaries=(10.0, 30.0), multipliers=(1.0, 1.5, 3.0))
        # Numerically integrate the marginal price.
        grid = np.linspace(0, energy, 2001)
        marginals = np.array([p.marginal_price(e, 0.5) for e in grid[:-1]])
        integral = float(np.sum(marginals * np.diff(grid)))
        # Left Riemann sums under-count at the tier jumps by up to
        # step * total-jump, so allow that discretization slack.
        assert p.total_cost(energy, 0.5) == pytest.approx(integral, abs=0.2)

    def test_reduces_to_linear_with_unit_multiplier(self):
        p = TieredPricing(boundaries=(10.0,), multipliers=(1.0, 1.0))
        lin = LinearPricing()
        for e in (0.0, 5.0, 10.0, 50.0):
            assert p.total_cost(e, 0.7) == pytest.approx(lin.total_cost(e, 0.7))
