"""Tests for the declarative run engine (repro.runner).

Covers the tentpole guarantees: specs are frozen/hashable/picklable
and rebuild through the scheduler registry; ``jobs=2`` results are
bit-identical to the serial ``jobs=1`` reference; the content-addressed
cache hits on identical specs and misses on any spec change or a
schema-tag bump.

The suite-wide ``REPRO_CONTRACTS=1`` (see conftest) makes ``run_many``
bypass caches so contract observers always execute — the cache tests
therefore monkeypatch it off and use a ``tmp_path`` cache root.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle

import numpy as np
import pytest

from repro.runner import (
    DEFAULT_CACHE_DIR,
    ResultCache,
    RunResult,
    RunSpec,
    ScenarioSpec,
    cache_key,
    default_cache,
    reset_stats,
    run_many,
    run_spec,
    runner_stats,
    scenario_fingerprint,
)
from repro.runner.cache import SCHEMA_TAG
from repro.schedulers import build_scheduler, scheduler_entry, scheduler_names
from repro.schedulers.always import AlwaysScheduler

SMALL = ScenarioSpec(kind="small", horizon=40, seed=3)


def small_spec(**changes) -> RunSpec:
    spec = RunSpec(
        scenario=SMALL,
        scheduler="grefar",
        scheduler_kwargs={"v": 7.5, "beta": 50.0},
        collect=("energy_series", "dc_delay_series:0"),
    )
    return spec.replace(**changes) if changes else spec


@pytest.fixture
def cache(tmp_path, monkeypatch):
    """A tmp-rooted cache with runtime contracts off so it is honored."""
    monkeypatch.setenv("REPRO_CONTRACTS", "0")
    return ResultCache(tmp_path / "cache")


# ----------------------------------------------------------------------
# Spec semantics
# ----------------------------------------------------------------------
def test_spec_is_frozen_hashable_picklable():
    spec = small_spec()
    with pytest.raises(Exception):
        spec.scheduler = "always"
    assert spec == small_spec()
    assert hash(spec) == hash(small_spec())
    assert pickle.loads(pickle.dumps(spec)) == spec
    assert len({spec, small_spec(), small_spec(scheduler_kwargs={"v": 1.0})}) == 2


def test_spec_kwargs_normalized_order_insensitive():
    a = RunSpec(scheduler="grefar", scheduler_kwargs={"v": 1.0, "beta": 2.0})
    b = RunSpec(scheduler="grefar", scheduler_kwargs={"beta": 2.0, "v": 1.0})
    assert a == b
    assert a.spec_hash == b.spec_hash


def test_spec_rejects_unknown_scheduler_and_kwargs():
    with pytest.raises(ValueError, match="unknown scheduler"):
        RunSpec(scheduler="nope")
    with pytest.raises(ValueError, match="does not accept"):
        RunSpec(scheduler="always", scheduler_kwargs={"v": 1.0})
    with pytest.raises(ValueError, match="unknown scenario kind"):
        ScenarioSpec(kind="nope")
    with pytest.raises(ValueError, match="unknown collector"):
        RunSpec(collect=("no_such_series",))
    with pytest.raises(ValueError, match="scenario-only"):
        RunSpec(scheduler=None, collect=("energy_series",))


def test_registry_round_trip(tiny_cluster):
    """Every registry name builds the class its entry lazily loads."""
    required = {"threshold": {"threshold": 0.5}}
    assert scheduler_names() == sorted(scheduler_names())
    for name in scheduler_names():
        entry = scheduler_entry(name)
        scheduler = build_scheduler(name, tiny_cluster, **required.get(name, {}))
        assert type(scheduler) is entry.load()
        # The spec accepts the registry name and every declared param
        # is rejected-checked at construction time, not in a worker.
        RunSpec(scenario=SMALL, scheduler=name)


def test_spec_worker_round_trip_matches_inline():
    """A pickled spec executed 'worker-style' matches the in-process run."""
    spec = small_spec()
    shipped = pickle.loads(pickle.dumps(spec))
    direct = run_spec(spec)
    rebuilt = run_spec(shipped)
    assert direct.summary.as_dict() == rebuilt.summary.as_dict()


# ----------------------------------------------------------------------
# Parallel execution
# ----------------------------------------------------------------------
def test_jobs2_bit_identical_to_jobs1():
    specs = [small_spec(scheduler_kwargs={"v": v, "beta": 50.0}) for v in (2.0, 7.5, 15.0)]
    serial = run_many(specs, jobs=1)
    parallel = run_many(specs, jobs=2)
    assert len(serial) == len(parallel) == len(specs)
    for one, two in zip(serial, parallel):
        assert one.summary.as_dict() == two.summary.as_dict()
        assert set(one.series) == set(two.series)
        for name in one.series:
            np.testing.assert_array_equal(one.series[name], two.series[name])


def test_results_in_spec_order():
    specs = [small_spec(horizon=h) for h in (10, 30, 20)]
    results = run_many(specs, jobs=2)
    assert [r.summary.horizon for r in results] == [10, 30, 20]


def test_scenario_only_spec_collects_without_simulating():
    spec = RunSpec(
        scenario=SMALL,
        scheduler=None,
        collect=("scenario.price_mean", "scenario.price_max"),
    )
    result = run_spec(spec)
    assert result.summary is None
    assert result.series["scenario.price_mean"].shape[0] > 0
    assert result.series["scenario.price_max"] > 0.0


def test_scenario_override_matches_declarative(scenario):
    declarative = RunSpec(
        scenario=ScenarioSpec(kind="small", horizon=scenario.horizon, seed=3),
        scheduler="grefar",
    )
    inline = RunSpec(scenario=None, scheduler="grefar", horizon=scenario.horizon)
    a = run_spec(declarative)
    b = run_many([inline], scenario=scenario)[0]
    assert a.summary.as_dict() == b.summary.as_dict()


# ----------------------------------------------------------------------
# Cache behavior
# ----------------------------------------------------------------------
def test_cache_miss_then_hit_bit_identical(cache):
    spec = small_spec()
    first = run_many([spec], cache=cache)[0]
    assert not first.cached
    assert len(cache.entries()) == 1

    second = run_many([spec], cache=cache)[0]
    assert second.cached
    assert second.summary.as_dict() == first.summary.as_dict()
    for name in first.series:
        np.testing.assert_array_equal(first.series[name], second.series[name])


def test_cache_spec_change_misses(cache):
    run_many([small_spec()], cache=cache)
    for changed in (
        small_spec(scheduler_kwargs={"v": 1.0, "beta": 50.0}),
        small_spec(horizon=17),
        small_spec(scenario=SMALL.__class__(kind="small", horizon=40, seed=4)),
        small_spec(collect=("energy_series",)),
    ):
        result = run_many([changed], cache=cache)[0]
        assert not result.cached, f"spec change should miss: {changed.describe()}"


def test_cache_schema_tag_bump_misses(cache):
    spec = small_spec()
    run_many([spec], cache=cache)
    bumped = ResultCache(cache.root, schema=SCHEMA_TAG + "-bumped")
    result = run_many([spec], cache=bumped)[0]
    assert not result.cached
    # Both schemas now hold one entry each; clear() removes them all.
    assert len(cache.entries()) == len(bumped.entries()) == 1
    assert bumped.clear() == 2
    assert cache.entries() == []


def test_cache_corrupt_entry_is_a_miss(cache):
    spec = small_spec()
    run_many([spec], cache=cache)
    (entry,) = cache.entries()
    entry.write_text("{not json", encoding="utf-8")
    result = run_many([spec], cache=cache)[0]
    assert not result.cached


def test_cache_key_honors_scenario_fingerprint(scenario):
    inline = RunSpec(scenario=None, scheduler="grefar", horizon=20)
    keyed = cache_key(inline, scenario)
    assert keyed != cache_key(inline, None)
    assert keyed == cache_key(inline, scenario)
    assert scenario_fingerprint(scenario) == scenario_fingerprint(scenario)


def test_live_overrides_never_cached(cache, scenario):
    from repro.schedulers.always import AlwaysScheduler

    spec = RunSpec(scenario=None, scheduler=None, horizon=20)
    live = AlwaysScheduler(scenario.cluster)
    result = run_many([spec], cache=cache, scenario=scenario, schedulers=[live])[0]
    assert result.summary is not None
    assert not result.cached
    assert cache.entries() == []


def test_contracts_bypass_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CONTRACTS", "1")
    cache = ResultCache(tmp_path / "cache")
    spec = small_spec()
    run_many([spec], cache=cache)
    # Contracts force execution and skip the store entirely.
    assert cache.entries() == []


def test_default_cache_env_escape_hatches(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
    relocated = default_cache()
    assert relocated is not None
    assert relocated.root == tmp_path / "elsewhere"
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    assert default_cache().root.name == DEFAULT_CACHE_DIR
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    assert default_cache() is None


def test_result_payload_round_trip():
    result = run_spec(small_spec())
    payload = RunResult.from_payload(result.to_payload())
    assert payload.summary.as_dict() == result.summary.as_dict()
    for name in result.series:
        np.testing.assert_array_equal(payload.series[name], result.series[name])


# ----------------------------------------------------------------------
# Worker-death robustness
# ----------------------------------------------------------------------
class _PoolWorkerKiller(AlwaysScheduler):
    """Live scheduler that hard-kills any pool worker running it.

    ``os._exit`` inside a ProcessPoolExecutor worker surfaces to the
    parent as ``BrokenProcessPool`` — the same signature as an OOM kill
    or segfault.  In the parent process (``parent_process() is None``)
    it behaves normally, so the engine's in-process retry succeeds.
    """

    def decide(self, t, state, queues):
        if multiprocessing.parent_process() is not None:
            os._exit(1)
        return super().decide(t, state, queues)


def test_pool_worker_death_retried_in_process(scenario):
    specs = [
        RunSpec(scenario=None, scheduler=None, horizon=10) for _ in range(2)
    ]
    serial = run_many(
        specs,
        jobs=1,
        scenario=scenario,
        schedulers=[_PoolWorkerKiller(scenario.cluster) for _ in specs],
    )
    reset_stats()
    survived = run_many(
        specs,
        jobs=2,
        scenario=scenario,
        schedulers=[_PoolWorkerKiller(scenario.cluster) for _ in specs],
    )
    stats = runner_stats()
    assert stats.incidents == 2
    assert "2 incident(s)" in stats.render()
    for reference, result in zip(serial, survived):
        assert result.summary.as_dict() == reference.summary.as_dict()
    reset_stats()


# ----------------------------------------------------------------------
# Stats
# ----------------------------------------------------------------------
def test_runner_stats_counts_hits_and_executions(cache):
    reset_stats()
    spec = small_spec()
    run_many([spec], cache=cache)
    run_many([spec], cache=cache)
    stats = runner_stats()
    assert stats.executed == 1
    assert stats.cache_hits == 1
    assert stats.render() == "runner: 1 executed, 1 cached (jobs=1)"
    reset_stats()
    assert runner_stats().executed == 0
