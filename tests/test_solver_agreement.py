"""Property-based cross-checks of the slot-problem solver backends.

The four backends (greedy, LP, QP/SLSQP, projected gradient) implement
the *same* convex slot objective (14) from independent derivations, so
agreement between them on random feasible instances is strong evidence
none of them mis-encodes the formulation:

* with ``beta = 0`` the greedy matching and the LP are both exact, so
  their objective values must agree to float tolerance;
* every backend's raw output must already satisfy the box, capacity and
  memory constraints (``is_feasible``), and ``clip_feasible`` must be
  the identity on it (idempotence);
* with ``beta > 0`` the fairness-aware QP may only improve on the
  beta-blind greedy warm start, never regress below it.

Runs as a seeded random search always; when ``hypothesis`` is
installed, an extra fuzzing pass searches the (seed, V, beta) space.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.optimize.greedy import solve_greedy
from repro.optimize.lp import solve_lp
from repro.optimize.projected_gradient import solve_projected_gradient
from repro.optimize.qp import solve_qp
from repro.optimize.slot_problem import SlotServiceProblem
from repro.scenarios import small_scenario

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - exercised only without dev extras
    HAVE_HYPOTHESIS = False

SOLVERS = {
    "greedy": solve_greedy,
    "lp": solve_lp,
    "qp": solve_qp,
    "projected_gradient": solve_projected_gradient,
}

#: Relative tolerance for "two exact solvers found the same optimum".
AGREEMENT_RTOL = 1e-6


def random_problem(seed: int, v=None, beta: float = 0.0) -> SlotServiceProblem:
    """A random feasible slot instance on the small cluster."""
    rng = np.random.default_rng(seed)
    scenario = small_scenario(horizon=8, seed=seed)
    state = scenario.state_at(int(rng.integers(0, 8)))
    cluster = scenario.cluster
    shape = (cluster.num_datacenters, cluster.num_job_types)
    return SlotServiceProblem(
        cluster=cluster,
        state=state,
        queue_weights=rng.uniform(0.0, 12.0, size=shape),
        h_upper=rng.uniform(0.0, 6.0, size=shape),
        v=float(rng.uniform(0.5, 15.0)) if v is None else float(v),
        beta=float(beta),
    )


def _assert_agreement(problem: SlotServiceProblem) -> None:
    greedy_value = problem.objective(solve_greedy(problem))
    lp_value = problem.objective(solve_lp(problem))
    assert lp_value == pytest.approx(
        greedy_value, rel=AGREEMENT_RTOL, abs=AGREEMENT_RTOL
    ), f"greedy={greedy_value!r} lp={lp_value!r}"


def _assert_feasible_and_stable(problem: SlotServiceProblem, solver) -> None:
    h = solver(problem)
    assert problem.is_feasible(h), f"{solver.__name__} returned infeasible h"
    clipped = problem.clip_feasible(h)
    # clip_feasible must be idempotent: projecting an already-feasible
    # point twice gives exactly the once-projected point.
    assert np.array_equal(problem.clip_feasible(clipped), clipped)


# ----------------------------------------------------------------------
# Seeded random search (always runs)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(24))
def test_greedy_and_lp_agree_when_beta_zero(seed):
    _assert_agreement(random_problem(seed))


@pytest.mark.parametrize("name", sorted(SOLVERS))
@pytest.mark.parametrize("seed", range(8))
def test_solver_output_feasible_and_clip_idempotent(name, seed):
    # greedy and lp refuse beta > 0 outright; alternate the fairness
    # pull on the backends that accept it.
    beta = 50.0 if name in ("qp", "projected_gradient") and seed % 2 else 0.0
    _assert_feasible_and_stable(random_problem(seed, beta=beta), SOLVERS[name])


@pytest.mark.parametrize("seed", range(8))
def test_qp_never_worse_than_greedy_warm_start(seed):
    problem = random_problem(seed, beta=100.0)
    relaxed = random_problem(seed, beta=0.0)
    warm = problem.clip_feasible(solve_greedy(relaxed))
    qp_value = problem.objective(solve_qp(problem))
    assert qp_value <= problem.objective(warm) + 1e-9


# ----------------------------------------------------------------------
# Hypothesis fuzzing (runs when the dev extra is installed)
# ----------------------------------------------------------------------
if HAVE_HYPOTHESIS:

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        v=st.floats(min_value=0.1, max_value=25.0),
    )
    def test_hypothesis_greedy_lp_agreement(seed, v):
        _assert_agreement(random_problem(seed, v=v))

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        beta=st.floats(min_value=0.0, max_value=200.0),
    )
    def test_hypothesis_all_solvers_feasible(seed, beta):
        # greedy and lp refuse beta > 0 outright, so they fuzz the
        # beta = 0 instance; the fairness-capable backends (qp,
        # projected gradient) get the fuzzed beta.
        relaxed = random_problem(seed, beta=0.0)
        fair = random_problem(seed, beta=beta)
        for name in ("greedy", "lp"):
            _assert_feasible_and_stable(relaxed, SOLVERS[name])
        for name in ("qp", "projected_gradient"):
            _assert_feasible_and_stable(fair, SOLVERS[name])
