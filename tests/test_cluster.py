"""Unit tests for :class:`repro.model.cluster.Cluster`."""

import numpy as np
import pytest

from repro.model.cluster import Cluster
from repro.model.datacenter import DataCenter
from repro.model.job import Account, JobType
from repro.model.server import ServerClass


def _classes():
    return (
        ServerClass(name="a", speed=1.0, active_power=1.0),
        ServerClass(name="b", speed=0.5, active_power=0.3),
    )


def _dcs():
    return (
        DataCenter(name="d0", max_servers=[2, 0]),
        DataCenter(name="d1", max_servers=[1, 4]),
    )


def _accounts():
    return (Account(name="m0", fair_share=0.7), Account(name="m1", fair_share=0.3))


def _types():
    return (
        JobType(name="t0", demand=1.0, eligible_dcs=[0, 1], account=0),
        JobType(name="t1", demand=2.0, eligible_dcs=[1], account=1),
    )


class TestConstruction:
    def test_valid(self):
        c = Cluster(_classes(), _dcs(), _types(), _accounts())
        assert c.num_datacenters == 2
        assert c.num_server_classes == 2
        assert c.num_job_types == 2
        assert c.num_accounts == 2

    def test_rejects_empty_components(self):
        with pytest.raises(ValueError):
            Cluster((), _dcs(), _types(), _accounts())
        with pytest.raises(ValueError):
            Cluster(_classes(), (), _types(), _accounts())
        with pytest.raises(ValueError):
            Cluster(_classes(), _dcs(), (), _accounts())
        with pytest.raises(ValueError):
            Cluster(_classes(), _dcs(), _types(), ())

    def test_rejects_dc_class_mismatch(self):
        bad_dc = (DataCenter(name="d0", max_servers=[2]),)
        with pytest.raises(ValueError, match="dimensioned"):
            Cluster(_classes(), bad_dc, _types(), _accounts())

    def test_rejects_unknown_dc_reference(self):
        bad_type = (JobType(name="t", demand=1.0, eligible_dcs=[5], account=0),)
        with pytest.raises(ValueError, match="unknown data center"):
            Cluster(_classes(), _dcs(), bad_type, _accounts())

    def test_rejects_unknown_account_reference(self):
        bad_type = (JobType(name="t", demand=1.0, eligible_dcs=[0], account=9),)
        with pytest.raises(ValueError, match="unknown account"):
            Cluster(_classes(), _dcs(), bad_type, _accounts())

    def test_rejects_overcommitted_shares(self):
        bad_accounts = (
            Account(name="m0", fair_share=0.8),
            Account(name="m1", fair_share=0.5),
        )
        with pytest.raises(ValueError, match="fair shares"):
            Cluster(_classes(), _dcs(), _types(), bad_accounts)


class TestDerived:
    @pytest.fixture
    def c(self):
        return Cluster(_classes(), _dcs(), _types(), _accounts())

    def test_speeds_and_powers(self, c):
        np.testing.assert_allclose(c.speeds, [1.0, 0.5])
        np.testing.assert_allclose(c.active_powers, [1.0, 0.3])

    def test_demands(self, c):
        np.testing.assert_allclose(c.demands, [1.0, 2.0])

    def test_fair_shares(self, c):
        np.testing.assert_allclose(c.fair_shares, [0.7, 0.3])

    def test_account_of_type(self, c):
        np.testing.assert_array_equal(c.account_of_type, [0, 1])

    def test_eligibility_matrix(self, c):
        expected = np.array([[True, False], [True, True]])
        np.testing.assert_array_equal(c.eligibility_matrix(), expected)

    def test_account_matrix(self, c):
        expected = np.array([[True, False], [False, True]])
        np.testing.assert_array_equal(c.account_matrix(), expected)

    def test_max_route_matrix_zero_when_ineligible(self, c):
        mat = c.max_route_matrix()
        assert mat[0, 1] == 0.0
        assert mat[1, 1] > 0

    def test_max_service_matrix_zero_when_ineligible(self, c):
        mat = c.max_service_matrix()
        assert mat[0, 1] == 0.0

    def test_max_total_capacity(self, c):
        # d0: 2*1.0; d1: 1*1.0 + 4*0.5 = 3.0 -> total 5.0
        assert c.max_total_capacity() == pytest.approx(5.0)

    def test_describe_mentions_all_parts(self, c):
        text = c.describe()
        assert "d0" in text and "d1" in text
        assert "m0" in text and "m1" in text
