"""Tests for simulation observers and the weekly rate profile."""

import numpy as np
import pytest

from repro.core.grefar import GreFarScheduler
from repro.simulation.observers import PeakTracker, SnapshotRecorder
from repro.simulation.simulator import Simulator
from repro.workloads.arrivals import CompositeRate, ConstantRate, WeeklyRate


class TestSnapshotRecorder:
    def test_records_every_slot_by_default(self, scenario):
        recorder = SnapshotRecorder()
        Simulator(
            scenario,
            GreFarScheduler(scenario.cluster, v=5.0),
            observers=[recorder],
        ).run(20)
        assert recorder.slots == list(range(20))
        assert len(recorder.front_snapshots) == 20
        assert recorder.dc_snapshots[0].shape == (2, 2)

    def test_period_skips_slots(self, scenario):
        recorder = SnapshotRecorder(every=5)
        Simulator(
            scenario,
            GreFarScheduler(scenario.cluster, v=5.0),
            observers=[recorder],
        ).run(20)
        assert recorder.slots == [0, 5, 10, 15]

    def test_backlog_series(self, scenario):
        recorder = SnapshotRecorder()
        result = Simulator(
            scenario,
            GreFarScheduler(scenario.cluster, v=5.0),
            observers=[recorder],
        ).run(20)
        series = recorder.backlog_series()
        assert series.shape == (20,)
        # Final snapshot equals the queue network's final backlog.
        assert series[-1] == pytest.approx(result.queues.total_backlog())

    def test_rejects_bad_period(self):
        with pytest.raises(ValueError):
            SnapshotRecorder(every=0)
        with pytest.raises(ValueError):
            SnapshotRecorder(every=-3)

    def test_period_longer_than_run_keeps_only_slot_zero(self, scenario):
        recorder = SnapshotRecorder(every=50)
        Simulator(
            scenario,
            GreFarScheduler(scenario.cluster, v=5.0),
            observers=[recorder],
        ).run(20)
        assert recorder.slots == [0]
        assert len(recorder.front_snapshots) == 1

    def test_snapshots_are_independent_copies(self, scenario):
        recorder = SnapshotRecorder()
        Simulator(
            scenario,
            GreFarScheduler(scenario.cluster, v=5.0),
            observers=[recorder],
        ).run(10)
        first = recorder.front_snapshots[0].copy()
        recorder.front_snapshots[1][:] = -1.0  # mutate a later snapshot
        np.testing.assert_array_equal(recorder.front_snapshots[0], first)


class TestPeakTracker:
    def test_tracks_peaks(self, scenario):
        tracker = PeakTracker()
        result = Simulator(
            scenario,
            GreFarScheduler(scenario.cluster, v=5.0),
            observers=[tracker],
        ).run(30)
        work = result.metrics.work_per_dc_series()
        np.testing.assert_allclose(tracker.peak_work, work.max(axis=0))
        assert np.all(tracker.peak_power >= 0)
        assert np.all(tracker.peak_queue >= 0)

    def test_peak_queue_matches_snapshot_series(self, scenario):
        # With a per-slot recorder alongside, the tracker's peaks must
        # equal the max over the recorded snapshots.
        recorder = SnapshotRecorder()
        tracker = PeakTracker()
        Simulator(
            scenario,
            GreFarScheduler(scenario.cluster, v=5.0),
            observers=[recorder, tracker],
        ).run(25)
        per_site = np.stack([snap.sum(axis=1) for snap in recorder.dc_snapshots])
        np.testing.assert_allclose(tracker.peak_queue, per_site.max(axis=0))

    def test_single_slot_run_seeds_peaks(self, scenario):
        tracker = PeakTracker()
        Simulator(
            scenario,
            GreFarScheduler(scenario.cluster, v=5.0),
            observers=[tracker],
        ).run(1)
        assert tracker.peak_work.shape == (2,)
        assert np.all(tracker.peak_power >= 0)

    def test_multiple_observers_compose(self, scenario):
        recorder = SnapshotRecorder(every=3)
        tracker = PeakTracker()
        Simulator(
            scenario,
            GreFarScheduler(scenario.cluster, v=5.0),
            observers=[recorder, tracker],
        ).run(12)
        assert recorder.slots == [0, 3, 6, 9]
        assert tracker.peak_work is not None


class TestWeeklyRate:
    def test_weekday_weekend_levels(self, rng):
        profile = WeeklyRate(weekday_level=1.0, weekend_level=0.25, slots_per_day=24)
        rates = profile.rates(24 * 14, rng)  # two weeks
        # First five days at 1.0, then two at 0.25, repeating.
        assert np.all(rates[: 24 * 5] == 1.0)
        assert np.all(rates[24 * 5 : 24 * 7] == 0.25)
        assert np.all(rates[24 * 7 : 24 * 12] == 1.0)

    def test_composes_with_constant(self, rng):
        combo = CompositeRate(ConstantRate(4.0), WeeklyRate(weekend_level=0.5))
        rates = combo.rates(24 * 7, rng)
        assert rates[0] == pytest.approx(4.0)
        assert rates[-1] == pytest.approx(2.0)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            WeeklyRate(weekday_level=-1.0)
        with pytest.raises(ValueError):
            WeeklyRate(slots_per_day=0)


class TestDelayDistributionExperiment:
    def test_run_short(self):
        from repro.experiments import delay_distribution

        result = delay_distribution.run(horizon=60, seed=0, v_values=(0.5, 20.0))
        assert len(result.p95) == 2
        # Tail grows (weakly) with V.
        assert result.p95[1] >= result.p95[0]
        # Percentile ordering holds per V.
        for i in range(2):
            assert result.p50[i] <= result.p95[i] <= result.p99[i]

    def test_main_prints(self, capsys):
        from repro.experiments import delay_distribution

        delay_distribution.main(horizon=40)
        out = capsys.readouterr().out
        assert "p95" in out

    def test_cli_hookup(self, capsys):
        from repro.cli import main

        assert main(["experiment", "delays", "--horizon", "40"]) == 0
        assert "p95" in capsys.readouterr().out
