"""Unit + property tests for the workload substrates."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scenarios import small_cluster
from repro.workloads import (
    AvailabilityModel,
    CompositeRate,
    ConstantRate,
    CosmosWorkload,
    DiurnalRate,
    OnOffBurstRate,
    PoissonCounts,
    PriceModel,
    sample_bounded_poisson,
)


class TestRateProfiles:
    def test_constant(self, rng):
        rates = ConstantRate(3.0).rates(10, rng)
        np.testing.assert_allclose(rates, 3.0)

    def test_constant_rejects_negative(self):
        with pytest.raises(ValueError):
            ConstantRate(-1.0)

    def test_diurnal_mean_is_base(self, rng):
        rates = DiurnalRate(base=2.0, amplitude=0.5, period=24).rates(240, rng)
        assert rates.mean() == pytest.approx(2.0, rel=0.01)
        assert np.all(rates >= 0)

    def test_diurnal_has_period(self, rng):
        rates = DiurnalRate(base=1.0, amplitude=0.9, period=24).rates(48, rng)
        np.testing.assert_allclose(rates[:24], rates[24:], atol=1e-12)

    def test_diurnal_rejects_bad_amplitude(self):
        with pytest.raises(ValueError):
            DiurnalRate(base=1.0, amplitude=1.5)

    def test_onoff_two_levels(self, rng):
        rates = OnOffBurstRate(on_rate=5.0, off_rate=1.0).rates(500, rng)
        values = set(np.round(rates, 6))
        assert values <= {1.0, 5.0}
        assert len(values) == 2  # both states visited over 500 slots

    def test_onoff_dwell_fractions(self, rng):
        rates = OnOffBurstRate(
            on_rate=1.0, off_rate=0.0, mean_on=10.0, mean_off=10.0
        ).rates(5000, rng)
        on_fraction = float(np.mean(rates > 0.5))
        assert on_fraction == pytest.approx(0.5, abs=0.1)

    def test_composite_multiplies(self, rng):
        comp = CompositeRate(ConstantRate(2.0), ConstantRate(3.0))
        np.testing.assert_allclose(comp.rates(5, rng), 6.0)

    def test_composite_rejects_empty(self):
        with pytest.raises(ValueError):
            CompositeRate()


class TestBoundedPoisson:
    def test_respects_cap(self, rng):
        counts = sample_bounded_poisson(np.full(1000, 50.0), cap=10, rng=rng)
        assert counts.max() <= 10

    def test_mean_tracks_rate_when_cap_loose(self, rng):
        counts = sample_bounded_poisson(np.full(5000, 3.0), cap=100, rng=rng)
        assert counts.mean() == pytest.approx(3.0, rel=0.1)

    def test_rejects_bad_inputs(self, rng):
        with pytest.raises(ValueError):
            sample_bounded_poisson(np.array([1.0]), cap=0, rng=rng)
        with pytest.raises(ValueError):
            sample_bounded_poisson(np.array([-1.0]), cap=5, rng=rng)

    def test_poisson_counts_wrapper(self, rng):
        pc = PoissonCounts(ConstantRate(2.0), cap=7)
        counts = pc.generate(100, rng)
        assert counts.shape == (100,)
        assert counts.max() <= 7


class TestPriceModel:
    def test_shape_and_positivity(self, rng):
        model = PriceModel([0.4, 0.5, 0.6])
        prices = model.generate(200, rng)
        assert prices.shape == (200, 3)
        assert np.all(prices >= model.floor)

    def test_means_approximately_match(self, rng):
        model = PriceModel([0.4, 0.6], volatility=0.1, daily_amplitude=0.2)
        prices = model.generate(5000, rng)
        np.testing.assert_allclose(prices.mean(axis=0), [0.4, 0.6], rtol=0.1)

    def test_mean_ordering_preserved(self, rng):
        model = PriceModel([0.392, 0.433, 0.548])
        prices = model.generate(3000, rng)
        means = prices.mean(axis=0)
        assert means[0] < means[1] < means[2]

    def test_correlation_between_sites(self, rng):
        model = PriceModel([0.5, 0.5], correlation=0.9, daily_amplitude=0.0)
        prices = model.generate(3000, rng)
        corr = np.corrcoef(prices[:, 0], prices[:, 1])[0, 1]
        assert corr > 0.5

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            PriceModel([])
        with pytest.raises(ValueError):
            PriceModel([0.0])
        with pytest.raises(ValueError):
            PriceModel([0.4], correlation=1.5)
        with pytest.raises(ValueError):
            PriceModel([0.4], phase_offsets=[1.0, 2.0])

    def test_rejects_bad_horizon(self, rng):
        with pytest.raises(ValueError):
            PriceModel([0.4]).generate(0, rng)


class TestAvailabilityModel:
    def test_within_plant_and_floor(self, rng):
        cluster = small_cluster()
        model = AvailabilityModel(cluster, floor_fraction=0.6)
        avail = model.generate(200, rng)
        maxima = np.stack([dc.max_servers for dc in cluster.datacenters])
        assert np.all(avail <= maxima + 1e-9)
        assert np.all(avail >= 0.6 * maxima - 1.0)  # integer rounding slack

    def test_integer_counts(self, rng):
        cluster = small_cluster()
        avail = AvailabilityModel(cluster).generate(50, rng)
        np.testing.assert_allclose(avail, np.round(avail))

    def test_fractional_counts_option(self, rng):
        cluster = small_cluster()
        avail = AvailabilityModel(cluster, integer_counts=False).generate(50, rng)
        assert not np.allclose(avail, np.round(avail))

    def test_min_capacity_is_lower_bound(self, rng):
        cluster = small_cluster()
        model = AvailabilityModel(cluster, floor_fraction=0.7)
        avail = model.generate(300, rng)
        caps = np.einsum("tnk,k->t", avail, cluster.speeds)
        assert caps.min() >= model.min_capacity() - 1e-9

    def test_rejects_bad_params(self):
        cluster = small_cluster()
        with pytest.raises(ValueError):
            AvailabilityModel(cluster, floor_fraction=1.5)
        with pytest.raises(ValueError):
            AvailabilityModel(cluster).generate(0, np.random.default_rng(0))


class TestCosmosWorkload:
    def test_arrivals_shape_and_bounds(self, rng):
        cluster = small_cluster()
        wl = CosmosWorkload(cluster, mean_total_work=10.0)
        arrivals = wl.generate(300, rng)
        assert arrivals.shape == (300, 2)
        for j, jt in enumerate(cluster.job_types):
            assert arrivals[:, j].max() <= jt.max_arrivals

    def test_mean_work_calibrated(self, rng):
        cluster = small_cluster()
        wl = CosmosWorkload(cluster, mean_total_work=10.0)
        arrivals = wl.generate(5000, rng)
        work = (arrivals @ cluster.demands).mean()
        assert work == pytest.approx(10.0, rel=0.25)

    def test_account_work_split_follows_shares(self, rng):
        cluster = small_cluster()
        wl = CosmosWorkload(cluster, mean_total_work=10.0)
        arrivals = wl.generate(8000, rng)
        per_org = wl.work_by_account(arrivals).mean(axis=0)
        ratio = per_org / per_org.sum()
        np.testing.assert_allclose(ratio, [0.6, 0.4], atol=0.08)

    def test_admission_control_caps_total_work(self, rng):
        cluster = small_cluster()
        wl = CosmosWorkload(cluster, mean_total_work=10.0, max_total_work=18.0)
        arrivals = wl.generate(2000, rng)
        work = arrivals @ cluster.demands
        assert work.max() <= 18.0 + 1e-9

    def test_admission_control_validation(self):
        cluster = small_cluster()
        with pytest.raises(ValueError):
            CosmosWorkload(cluster, mean_total_work=10.0, max_total_work=5.0)
        with pytest.raises(ValueError):
            CosmosWorkload(cluster, max_total_work=-1.0)

    def test_work_targets_renormalize_shares(self):
        cluster = small_cluster()
        wl = CosmosWorkload(cluster, mean_total_work=10.0)
        targets = wl.account_work_targets()
        assert targets.sum() == pytest.approx(10.0)

    def test_custom_profiles_override(self, rng):
        cluster = small_cluster()
        wl = CosmosWorkload(
            cluster,
            mean_total_work=10.0,
            custom_profiles=[ConstantRate(0.0), None],
        )
        arrivals = wl.generate(200, rng)
        assert arrivals[:, 0].sum() == 0  # account 0 silenced
        assert arrivals[:, 1].sum() > 0

    def test_custom_profiles_length_checked(self):
        cluster = small_cluster()
        with pytest.raises(ValueError):
            CosmosWorkload(cluster, custom_profiles=[None])

    def test_work_by_account_validates_shape(self):
        cluster = small_cluster()
        wl = CosmosWorkload(cluster)
        with pytest.raises(ValueError):
            wl.work_by_account(np.zeros((10, 5)))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_generation_is_seed_deterministic(self, seed):
        cluster = small_cluster()
        wl = CosmosWorkload(cluster, mean_total_work=8.0)
        a = wl.generate(50, np.random.default_rng(seed))
        b = wl.generate(50, np.random.default_rng(seed))
        np.testing.assert_array_equal(a, b)
