"""Unit tests for accounts, job types and job batches."""

import pytest

from repro.model.job import Account, JobBatch, JobType


class TestAccount:
    def test_valid(self):
        acc = Account(name="org", fair_share=0.4)
        assert acc.fair_share == 0.4

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            Account(name="", fair_share=0.1)

    def test_rejects_negative_share(self):
        with pytest.raises(ValueError):
            Account(name="a", fair_share=-0.1)

    def test_rejects_share_above_one(self):
        with pytest.raises(ValueError):
            Account(name="a", fair_share=1.1)

    def test_zero_share_allowed(self):
        assert Account(name="a", fair_share=0.0).fair_share == 0.0


class TestJobType:
    def test_valid(self):
        jt = JobType(name="t", demand=2.0, eligible_dcs=[0, 2], account=1)
        assert jt.demand == 2.0
        assert jt.eligible_dcs == frozenset({0, 2})
        assert jt.account == 1

    def test_rejects_zero_demand(self):
        with pytest.raises(ValueError):
            JobType(name="t", demand=0.0, eligible_dcs=[0], account=0)

    def test_rejects_empty_eligibility(self):
        with pytest.raises(ValueError):
            JobType(name="t", demand=1.0, eligible_dcs=[], account=0)

    def test_rejects_negative_dc_index(self):
        with pytest.raises(ValueError):
            JobType(name="t", demand=1.0, eligible_dcs=[-1], account=0)

    def test_rejects_negative_account(self):
        with pytest.raises(ValueError):
            JobType(name="t", demand=1.0, eligible_dcs=[0], account=-1)

    def test_rejects_nonpositive_bounds(self):
        with pytest.raises(ValueError):
            JobType(name="t", demand=1.0, eligible_dcs=[0], account=0, max_arrivals=0)
        with pytest.raises(ValueError):
            JobType(name="t", demand=1.0, eligible_dcs=[0], account=0, max_route=0)
        with pytest.raises(ValueError):
            JobType(name="t", demand=1.0, eligible_dcs=[0], account=0, max_service=0.0)

    def test_work_of(self):
        jt = JobType(name="t", demand=3.0, eligible_dcs=[0], account=0)
        assert jt.work_of(2.5) == pytest.approx(7.5)

    def test_work_of_rejects_negative(self):
        jt = JobType(name="t", demand=1.0, eligible_dcs=[0], account=0)
        with pytest.raises(ValueError):
            jt.work_of(-1.0)

    def test_eligible_dcs_deduplicated(self):
        jt = JobType(name="t", demand=1.0, eligible_dcs=[0, 0, 1], account=0)
        assert jt.eligible_dcs == frozenset({0, 1})


class TestJobBatch:
    def test_valid(self):
        b = JobBatch(job_type=1, count=2.5, arrival_slot=3)
        assert b.count == 2.5

    def test_rejects_negative_count(self):
        with pytest.raises(ValueError):
            JobBatch(job_type=0, count=-1.0, arrival_slot=0)

    def test_rejects_negative_slot(self):
        with pytest.raises(ValueError):
            JobBatch(job_type=0, count=1.0, arrival_slot=-1)

    def test_rejects_negative_type(self):
        with pytest.raises(ValueError):
            JobBatch(job_type=-1, count=1.0, arrival_slot=0)
