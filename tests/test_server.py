"""Unit tests for :class:`repro.model.server.ServerClass`."""

import pytest

from repro.model.server import ServerClass


class TestConstruction:
    def test_valid(self):
        s = ServerClass(name="a", speed=1.5, active_power=2.0)
        assert s.speed == 1.5
        assert s.active_power == 2.0
        assert s.idle_power == 0.0

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError, match="name"):
            ServerClass(name="", speed=1.0, active_power=1.0)

    def test_rejects_zero_speed(self):
        with pytest.raises(ValueError, match="speed"):
            ServerClass(name="a", speed=0.0, active_power=1.0)

    def test_rejects_negative_power(self):
        with pytest.raises(ValueError):
            ServerClass(name="a", speed=1.0, active_power=-1.0)

    def test_rejects_idle_above_active(self):
        with pytest.raises(ValueError, match="idle_power"):
            ServerClass(name="a", speed=1.0, active_power=1.0, idle_power=1.5)

    def test_idle_equal_active_rejected(self):
        with pytest.raises(ValueError):
            ServerClass(name="a", speed=1.0, active_power=1.0, idle_power=1.0)

    def test_frozen(self):
        s = ServerClass(name="a", speed=1.0, active_power=1.0)
        with pytest.raises(AttributeError):
            s.speed = 2.0


class TestDerived:
    def test_energy_per_unit_work_table1(self):
        # Table I row 2: speed 0.75, power 0.60 -> 0.8 energy per work.
        s = ServerClass(name="dc2", speed=0.75, active_power=0.60)
        assert s.energy_per_unit_work == pytest.approx(0.8)

    def test_work_capacity(self):
        s = ServerClass(name="a", speed=2.0, active_power=1.0)
        assert s.work_capacity(3.0) == pytest.approx(6.0)

    def test_work_capacity_rejects_negative(self):
        s = ServerClass(name="a", speed=1.0, active_power=1.0)
        with pytest.raises(ValueError):
            s.work_capacity(-1.0)

    def test_power_draw(self):
        s = ServerClass(name="a", speed=1.0, active_power=0.5)
        assert s.power_draw(4.0) == pytest.approx(2.0)

    def test_power_draw_rejects_negative(self):
        s = ServerClass(name="a", speed=1.0, active_power=1.0)
        with pytest.raises(ValueError):
            s.power_draw(-0.5)
