"""Tests for the runtime contract layer (repro._contracts)."""

from __future__ import annotations

import numpy as np
import pytest

from repro._contracts import (
    ContractViolation,
    checked_step,
    contracts_enabled,
    queue_bound_observer,
    verify_action_capacity,
    verify_queue_invariants,
)
from repro.model.action import Action
from repro.model.queues import QueueNetwork
from repro.schedulers.base import Scheduler
from repro.simulation.simulator import Simulator


# ----------------------------------------------------------------------
# The REPRO_CONTRACTS toggle
# ----------------------------------------------------------------------
@pytest.mark.parametrize("value", ["1", "true", "on", "yes", "TRUE", " On "])
def test_contracts_enabled_truthy(monkeypatch, value):
    monkeypatch.setenv("REPRO_CONTRACTS", value)
    assert contracts_enabled()


@pytest.mark.parametrize("value", ["0", "", "no", "off", "false", "2"])
def test_contracts_enabled_falsy(monkeypatch, value):
    monkeypatch.setenv("REPRO_CONTRACTS", value)
    assert not contracts_enabled()


def test_contracts_disabled_when_unset(monkeypatch):
    monkeypatch.delenv("REPRO_CONTRACTS", raising=False)
    assert not contracts_enabled()


# ----------------------------------------------------------------------
# Queue invariants
# ----------------------------------------------------------------------
def test_healthy_network_passes(cluster):
    queues = QueueNetwork(cluster)
    queues.step(Action.idle(cluster), np.array([3.0, 2.0]), t=0)
    verify_queue_invariants(queues)


def test_negative_front_queue_is_caught(cluster):
    queues = QueueNetwork(cluster)
    queues._front[0] = -1.0  # staticcheck: ignore[GF002]
    with pytest.raises(ContractViolation, match="central queue went negative"):
        verify_queue_invariants(queues)


def test_negative_dc_queue_is_caught(cluster):
    queues = QueueNetwork(cluster)
    queues._dc[1, 0] = -0.5  # staticcheck: ignore[GF002]
    with pytest.raises(ContractViolation, match="data center queue went negative"):
        verify_queue_invariants(queues)


def test_ledger_exceeding_scalar_is_caught(cluster):
    queues = QueueNetwork(cluster)
    # A phantom ledger batch with no matching scalar mass desynchronizes
    # the eqs. (12)-(13) state.
    queues._front_ledger[0].append([0, 5.0])  # staticcheck: ignore[GF002]
    with pytest.raises(ContractViolation, match="desynchronized"):
        verify_queue_invariants(queues)


def test_phantom_scalar_mass_is_tolerated(cluster):
    # The converse is legal: non-physical actions inflate the scalars
    # with phantom jobs the ledgers never saw.
    queues = QueueNetwork(cluster)
    queues._front[0] = 4.0  # staticcheck: ignore[GF002]
    verify_queue_invariants(queues)


def test_checked_step_raises_on_corrupt_post_state(monkeypatch, cluster):
    monkeypatch.setenv("REPRO_CONTRACTS", "1")
    queues = QueueNetwork(cluster)
    queues._front_ledger[1].append([0, 2.0])  # staticcheck: ignore[GF002]
    with pytest.raises(ContractViolation):
        queues.step(Action.idle(cluster), np.zeros(2), t=0)


def test_checked_step_inactive_when_disabled(monkeypatch, cluster):
    monkeypatch.setenv("REPRO_CONTRACTS", "0")
    queues = QueueNetwork(cluster)
    queues._front_ledger[1].append([0, 2.0])  # staticcheck: ignore[GF002]
    queues.step(Action.idle(cluster), np.zeros(2), t=0)


def test_checked_step_preserves_metadata(monkeypatch):
    assert QueueNetwork.step.__name__ == "step"
    monkeypatch.setenv("REPRO_CONTRACTS", "0")

    class Stub:
        @checked_step
        def step(self, action, arrivals, t):
            """doc"""
            return {"ok": t}

    assert Stub().step(None, None, 7) == {"ok": 7}
    assert Stub.step.__doc__ == "doc"


# ----------------------------------------------------------------------
# Action capacity feasibility
# ----------------------------------------------------------------------
def test_feasible_action_passes(cluster, state):
    verify_action_capacity(cluster, state, Action.idle(cluster))


def test_ineligible_routing_is_caught(cluster, state):
    # Job type 1 is eligible only at DC 1 in the test cluster.
    route = np.zeros((2, 2))
    route[0, 1] = 1.0
    action = Action(route, np.zeros((2, 2)), np.zeros((2, 2)))
    with pytest.raises(ContractViolation, match="infeasible slot action"):
        verify_action_capacity(cluster, state, action)


def test_work_over_capacity_is_caught(cluster, state):
    # Serving with zero busy servers violates the eq. (11) coupling.
    serve = np.zeros((2, 2))
    serve[1, 0] = 3.0
    action = Action(np.zeros((2, 2)), serve, np.zeros((2, 2)))
    with pytest.raises(ContractViolation, match="infeasible slot action"):
        verify_action_capacity(cluster, state, action)


# ----------------------------------------------------------------------
# Theorem 1a queue bound observer
# ----------------------------------------------------------------------
@pytest.mark.parametrize("bad", [float("nan"), float("inf"), -1.0])
def test_queue_bound_observer_rejects_bad_bound(bad):
    with pytest.raises(ValueError, match="finite non-negative"):
        queue_bound_observer(bad)


def test_queue_bound_observer_raises_when_exceeded(cluster):
    queues = QueueNetwork(cluster)
    queues.step(Action.idle(cluster), np.array([10.0, 0.0]), t=0)
    observer = queue_bound_observer(bound=5.0, force=True)
    with pytest.raises(ContractViolation, match="Theorem 1a queue bound"):
        observer(0, None, None, queues)


def test_queue_bound_observer_passes_under_bound(cluster):
    queues = QueueNetwork(cluster)
    queues.step(Action.idle(cluster), np.array([3.0, 0.0]), t=0)
    queue_bound_observer(bound=5.0, force=True)(0, None, None, queues)


def test_queue_bound_observer_respects_toggle(monkeypatch, cluster):
    queues = QueueNetwork(cluster)
    queues.step(Action.idle(cluster), np.array([10.0, 0.0]), t=0)
    observer = queue_bound_observer(bound=5.0)
    monkeypatch.setenv("REPRO_CONTRACTS", "0")
    observer(0, None, None, queues)  # silent while disabled
    monkeypatch.setenv("REPRO_CONTRACTS", "1")
    with pytest.raises(ContractViolation):
        observer(0, None, None, queues)


# ----------------------------------------------------------------------
# Simulator integration
# ----------------------------------------------------------------------
class _RogueScheduler(Scheduler):
    """Routes a job to an ineligible site every slot."""

    name = "rogue"

    def decide(self, t, state, queues):
        state = self.prepare_state(state)
        route = np.zeros((2, 2))
        route[0, 1] = 1.0  # type 1 is not eligible at DC 0
        return Action(route, np.zeros((2, 2)), np.zeros((2, 2)))


def test_simulator_contract_catches_rogue_scheduler(monkeypatch, scenario):
    monkeypatch.setenv("REPRO_CONTRACTS", "1")
    sim = Simulator(scenario, _RogueScheduler(scenario.cluster), enforce_physical=False)
    with pytest.raises(ContractViolation, match="infeasible slot action"):
        sim.run(horizon=3)


def test_simulator_contract_off_lets_rogue_run(monkeypatch, scenario):
    monkeypatch.setenv("REPRO_CONTRACTS", "0")
    sim = Simulator(scenario, _RogueScheduler(scenario.cluster), enforce_physical=False)
    sim.run(horizon=3)
