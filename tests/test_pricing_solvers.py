"""Cross-checks of the solver backends under tiered (convex) pricing.

The merged marginal-cost curve keeps the greedy exact for any
piecewise-linear convex pricing; the QP evaluates the pricing directly.
Random instances verify they agree, and that tiered pricing changes
behaviour in the expected direction (spreading load off expensive
tiers).
"""

import numpy as np
import pytest

from repro.model.pricing import LinearPricing, TieredPricing
from repro.model.state import ClusterState
from repro.optimize import SlotServiceProblem, solve_greedy, solve_qp
from repro.scenarios import small_cluster


def _problem(pricing, seed=0, v=5.0, beta=0.0, q_scale=20.0):
    cluster = small_cluster()
    rng = np.random.default_rng(seed)
    n, j = cluster.num_datacenters, cluster.num_job_types
    availability = np.stack(
        [np.floor(dc.max_servers * rng.uniform(0.6, 1.0)) for dc in cluster.datacenters]
    )
    return SlotServiceProblem(
        cluster=cluster,
        state=ClusterState(availability, rng.uniform(0.2, 0.8, size=n)),
        queue_weights=rng.uniform(0.0, q_scale, size=(n, j)),
        h_upper=rng.uniform(0.0, 15.0, size=(n, j)),
        v=v,
        beta=beta,
        pricing=pricing,
    )


TIERED = TieredPricing(boundaries=(3.0, 8.0), multipliers=(1.0, 2.0, 5.0))


class TestMergedSegments:
    def test_linear_pricing_reproduces_supply_curve(self):
        problem = _problem(LinearPricing(), seed=1)
        for i in range(2):
            merged = problem.marginal_cost_segments(i)
            base = problem.supply_curves[i].marginal_segments()
            price = problem.state.prices[i]
            assert len(merged) == len(base)
            for (w_m, c_m), (w_b, u_b) in zip(merged, base):
                assert w_m == pytest.approx(w_b)
                assert c_m == pytest.approx(price * u_b)

    def test_segments_are_nondecreasing_in_cost(self):
        for seed in range(5):
            problem = _problem(TIERED, seed=seed)
            for i in range(2):
                costs = [c for _, c in problem.marginal_cost_segments(i)]
                assert all(c2 >= c1 - 1e-9 for c1, c2 in zip(costs, costs[1:]))

    def test_total_segment_work_equals_capacity(self):
        problem = _problem(TIERED, seed=2)
        for i in range(2):
            total = sum(w for w, _ in problem.marginal_cost_segments(i))
            assert total == pytest.approx(problem.site_capacity(i))


class TestEnergyCost:
    def test_energy_cost_uses_pricing(self):
        lin = _problem(LinearPricing(), seed=3)
        tier = _problem(TIERED, seed=3)
        h = np.minimum(lin.h_upper, 3.0)
        # Tiered pricing can only make the same service more expensive.
        assert tier.energy_cost(h) >= lin.energy_cost(h) - 1e-9

    def test_small_load_stays_in_first_tier(self):
        tier = _problem(TIERED, seed=3)
        lin = _problem(LinearPricing(), seed=3)
        h = np.zeros((2, 2))
        h[0, 0] = 0.5  # tiny load, below the first boundary
        assert tier.energy_cost(h) == pytest.approx(lin.energy_cost(h))


class TestGreedyExactUnderTiers:
    def test_greedy_matches_qp_on_tiered_instances(self):
        for seed in range(8):
            problem = _problem(TIERED, seed=seed, v=3.0)
            h_greedy = solve_greedy(problem)
            # Independent check: greedy must beat or match a fine grid of
            # proportional-scaling candidates of the QP warm start.
            h_qp = solve_qp(problem)
            assert problem.objective(h_greedy) <= problem.objective(h_qp) + 1e-6

    def test_tiered_pricing_reduces_served_work(self):
        """Steeper upper tiers make marginal work unprofitable sooner."""
        served_lin = solve_greedy(_problem(LinearPricing(), seed=4, v=8.0)).sum()
        served_tier = solve_greedy(_problem(TIERED, seed=4, v=8.0)).sum()
        assert served_tier <= served_lin + 1e-9

    def test_feasibility_maintained(self):
        for seed in range(5):
            problem = _problem(TIERED, seed=seed)
            assert problem.is_feasible(solve_greedy(problem))


class TestEndToEnd:
    def test_grefar_with_tiered_pricing_runs(self, scenario):
        from repro.core.grefar import GreFarScheduler
        from repro.simulation.simulator import Simulator

        scheduler = GreFarScheduler(
            scenario.cluster,
            v=10.0,
            pricing=TieredPricing(boundaries=(5.0,), multipliers=(1.0, 3.0)),
        )
        result = Simulator(scenario, scheduler, validate=True).run(40)
        assert result.summary.horizon == 40

    def test_tiered_pricing_spreads_load(self):
        """With steep tiers, concentrating work at one site is penalized:
        the peak per-site share drops versus linear pricing."""
        from repro.core.grefar import GreFarScheduler
        from repro.scenarios import small_scenario
        from repro.simulation.simulator import Simulator

        scn = small_scenario(horizon=150, seed=6)
        tiered = TieredPricing(boundaries=(4.0,), multipliers=(1.0, 6.0))

        def peak_share(pricing):
            scheduler = GreFarScheduler(scn.cluster, v=2.0, pricing=pricing)
            result = Simulator(scn, scheduler).run()
            work = result.metrics.work_per_dc_series().sum(axis=0)
            return float(work.max() / max(work.sum(), 1e-9))

        assert peak_share(tiered) <= peak_share(LinearPricing()) + 0.05
