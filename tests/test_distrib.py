"""Tests for the sharded scatter-gather execution layer (repro.distrib).

The tentpole guarantees:

* **bit-identity** — a beta = 0 sharded run (greedy backend, sites
  decompose) matches the serial :class:`GreFarScheduler` run metric for
  metric, asserted every slot by ``verify="assert"``;
* **bounded divergence** — for beta > 0 the per-slot objective gap
  stays within the computable fairness-superadditivity bound;
* **supervision** — a worker that is killed, hangs or straggles
  mid-run is detected (crash via pipe EOF; hang vs straggler by
  heartbeat), retried after respawn, and degraded to a fallback action
  when budgets run out — with no slot's metrics lost and every event
  recorded as a :class:`ShardIncident`;
* **crash-safety** — the controller pickles into the simulator's
  ckpt-v1 snapshots (workers dropped, lazily respawned), so a killed
  sharded run resumes bit-identically — including from a **fresh
  process** through the CLI, the pattern of
  ``test_checkpoint_resume.py``.
"""

from __future__ import annotations

import json
import pickle
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.distrib import (
    DRILL_KINDS,
    ShardController,
    ShardPolicy,
    partition_sites,
    run_shard_drill,
)
from repro.faults import ProcessFaultEvent, ProcessFaultSchedule
from repro.core.grefar import GreFarScheduler
from repro.resilient import Checkpointer, SimulationKilled
from repro.scenarios import small_scenario, wide_scenario
from repro.simulation.simulator import Simulator

REPO = Path(__file__).resolve().parents[1]


def _summary_metrics(summary) -> dict:
    """Every summary field except the scheduler's display name."""
    payload = summary.as_dict()
    payload.pop("scheduler", None)
    return payload


def _run_serial(scenario, horizon, v=5.0, beta=0.0):
    scheduler = GreFarScheduler(scenario.cluster, v=v, beta=beta)
    return Simulator(scenario, scheduler, validate=True).run(horizon)


def _run_sharded(scenario, horizon, v=5.0, beta=0.0, **kwargs):
    controller = ShardController(scenario.cluster, v=v, beta=beta, **kwargs)
    try:
        result = Simulator(scenario, controller, validate=True).run(horizon)
    finally:
        controller.shutdown()
    return result, controller


# ----------------------------------------------------------------------
# Partitioning and policy validation
# ----------------------------------------------------------------------
def test_partition_sites_contiguous_cover():
    parts = partition_sites(7, 3)
    assert [len(p) for p in parts] == [3, 2, 2]
    assert sorted(i for part in parts for i in part) == list(range(7))
    assert partition_sites(2, 2) == ((0,), (1,))


def test_partition_sites_validation():
    with pytest.raises(ValueError, match="cannot exceed"):
        partition_sites(2, 3)
    with pytest.raises(ValueError):
        partition_sites(0, 1)


def test_shard_policy_validation():
    with pytest.raises(ValueError, match="deadline"):
        ShardPolicy(deadline=0.0)
    with pytest.raises(ValueError, match="retries"):
        ShardPolicy(retries=-1)
    with pytest.raises(ValueError, match="fallback"):
        ShardPolicy(fallback="punt")
    with pytest.raises(ValueError, match="backoff_factor"):
        ShardPolicy(backoff_factor=0.5)
    with pytest.raises(ValueError, match="checkpoint_key"):
        ShardPolicy(checkpoint_key="")
    assert ShardPolicy(backoff_base=0.1).backoff_seconds(3) == pytest.approx(0.4)


def test_process_fault_validation():
    with pytest.raises(ValueError, match="kind"):
        ProcessFaultEvent("worker_melt", shard=0)
    with pytest.raises(ValueError, match="seconds"):
        ProcessFaultEvent("worker_hang", shard=0, slot=1)
    with pytest.raises(TypeError, match="ProcessFaultEvent"):
        ProcessFaultSchedule(("not-an-event",))
    schedule = ProcessFaultSchedule(
        (
            ProcessFaultEvent("worker_kill", shard=1, slot=4),
            ProcessFaultEvent("slow_start", shard=1, seconds=0.5),
        )
    )
    assert len(schedule) == 2
    assert not schedule.is_empty
    assert schedule.at(1, 4).kind == "worker_kill"
    assert schedule.at(1, 3) is None
    assert schedule.slow_start_seconds(1) == 0.5
    assert schedule.slow_start_seconds(0) == 0.0
    assert len(schedule.for_shard(0)) == 0
    assert ProcessFaultSchedule.empty().is_empty
    assert ProcessFaultSchedule.single_kill(0, 2).at(0, 2).kind == "worker_kill"


def test_controller_rejects_bad_config(cluster):
    with pytest.raises(ValueError, match="verify"):
        ShardController(cluster, verify="maybe")
    with pytest.raises(ValueError, match="cannot exceed"):
        ShardController(cluster, num_shards=5)


# ----------------------------------------------------------------------
# Equivalence with the serial slot body
# ----------------------------------------------------------------------
def test_beta0_sharded_bit_identical_to_serial():
    scenario = small_scenario(horizon=30, seed=3)
    serial = _run_serial(scenario, 30, v=5.0)
    sharded, controller = _run_sharded(scenario, 30, v=5.0, verify="assert")
    assert _summary_metrics(sharded.summary) == _summary_metrics(serial.summary)
    np.testing.assert_array_equal(
        sharded.metrics.energy_cost, serial.metrics.energy_cost
    )
    assert controller.incident_count == 0
    assert controller.fallback_slots == 0
    # verify="assert" also recorded the per-slot gap: all exactly zero.
    assert len(controller.divergence) == 30
    assert max(gap for _, gap, _ in controller.divergence) == 0.0


def test_beta_positive_gap_within_superadditivity_bound():
    scenario = small_scenario(horizon=25, seed=5)
    # verify="assert" raises ShardDivergenceError if any slot's gap is
    # negative or exceeds V*beta*(defect(serial) - defect(sharded)).
    sharded, controller = _run_sharded(
        scenario, 25, v=5.0, beta=0.5, verify="assert"
    )
    assert len(controller.divergence) == 25
    for _, gap, bound in controller.divergence:
        assert gap >= -1e-4
        assert gap <= bound + 1e-4


def test_wide_scenario_three_shards_bit_identical():
    scenario = wide_scenario(horizon=15, seed=2, num_datacenters=5)
    serial = _run_serial(scenario, 15, v=7.5)
    sharded, _ = _run_sharded(
        scenario, 15, v=7.5, num_shards=3, verify="assert"
    )
    assert _summary_metrics(sharded.summary) == _summary_metrics(serial.summary)


# ----------------------------------------------------------------------
# Fault drills: kill / hang / straggler
# ----------------------------------------------------------------------
def test_kill_drill_respawns_and_loses_nothing():
    scenario = small_scenario(horizon=24, seed=3)
    report = run_shard_drill(scenario, kind="kill", slot=8, v=5.0)
    assert report.survived, report.render()
    assert report.lost_slots == 0
    assert report.counters["resilient.shard.incident.crash"] == 1
    assert report.counters["resilient.shard.incident.respawn"] == 1
    assert report.respawns == 1
    assert report.retired_shards == ()
    assert "survived           : yes" in report.render()


def test_hang_drill_detected_by_missing_heartbeat():
    scenario = small_scenario(horizon=15, seed=3)
    report = run_shard_drill(
        scenario, kind="hang", slot=5, seconds=1.5, v=5.0
    )
    assert report.survived, report.render()
    assert report.counters["resilient.shard.incident.hang"] >= 1
    assert "resilient.shard.incident.straggler" not in report.counters


def test_straggler_drill_detected_despite_heartbeat():
    scenario = small_scenario(horizon=15, seed=3)
    report = run_shard_drill(
        scenario, kind="straggle", slot=5, seconds=1.5, v=5.0
    )
    assert report.survived, report.render()
    assert report.counters["resilient.shard.incident.straggler"] >= 1
    assert "resilient.shard.incident.hang" not in report.counters


def test_slow_start_drill_records_incident():
    scenario = small_scenario(horizon=10, seed=3)
    report = run_shard_drill(
        scenario, kind="slow-start", seconds=1.0, v=5.0
    )
    assert report.lost_slots == 0
    assert report.counters.get("resilient.shard.incident.slow-start", 0) >= 1


def test_drill_kinds_table_and_validation():
    assert set(DRILL_KINDS) == {"kill", "hang", "straggle", "slow-start"}
    with pytest.raises(ValueError, match="unknown drill kind"):
        run_shard_drill(small_scenario(horizon=5, seed=0), kind="meteor")


# ----------------------------------------------------------------------
# Degraded mode: budgets exhausted -> retired shard, fallback rows
# ----------------------------------------------------------------------
@pytest.mark.parametrize("fallback", ["greedy", "hold", "zero"])
def test_exhausted_budgets_retire_shard_into_fallback(fallback):
    scenario = small_scenario(horizon=16, seed=3)
    policy = ShardPolicy(retries=0, max_respawns=0, fallback=fallback)
    faults = ProcessFaultSchedule.single_kill(shard=0, slot=4)
    controller = ShardController(
        scenario.cluster, v=5.0, policy=policy, process_faults=faults
    )
    try:
        result = Simulator(scenario, controller, validate=True).run(16)
    finally:
        controller.shutdown()
    # Every slot still produced a feasible action and a metrics record.
    assert len(result.metrics.energy_cost) == 16
    assert controller.retired_shards == (0,)
    # Slots 4..15 were served by the fallback path for shard 0.
    assert controller.fallback_slots == 12
    reasons = {incident.reason for incident in controller.incidents}
    assert "crash" in reasons
    assert "fallback" in reasons


# ----------------------------------------------------------------------
# Checkpoint / resume (in-process and fresh-process)
# ----------------------------------------------------------------------
def test_controller_pickle_drops_workers():
    scenario = small_scenario(horizon=8, seed=3)
    _, controller = _run_sharded(scenario, 8, v=5.0)
    clone = pickle.loads(pickle.dumps(controller))
    assert clone._workers == [None, None]
    assert clone.slots_completed == controller.slots_completed
    assert clone.name == controller.name
    clone.shutdown()


def test_per_shard_checkpoints_written_and_resynced(tmp_path):
    scenario = small_scenario(horizon=12, seed=3)
    policy = ShardPolicy(checkpoint_every=4, checkpoint_dir=str(tmp_path))
    _, controller = _run_sharded(scenario, 12, v=5.0, policy=policy)
    files = sorted(p.name for p in tmp_path.glob("*.ckpt"))
    assert files == ["shard-s0.ckpt", "shard-s1.ckpt"]
    # A kill drill with per-shard checkpoints re-syncs the respawned
    # worker from its snapshot (visible in the respawn incident detail).
    faults = ProcessFaultSchedule.single_kill(shard=0, slot=6)
    controller = ShardController(
        scenario.cluster, v=5.0, policy=policy, process_faults=faults
    )
    try:
        Simulator(scenario, controller, validate=True).run(12)
    finally:
        controller.shutdown()
    respawns = [i for i in controller.incidents if i.reason == "respawn"]
    assert respawns and "re-synced from checkpoint" in respawns[0].detail


def test_sharded_kill_and_resume_bit_identical_in_process(tmp_path):
    scenario = small_scenario(horizon=20, seed=3)
    baseline = _run_sharded(scenario, 20, v=5.0)[0]

    def checkpointer(kill_at=None):
        return Checkpointer(
            "shard-test", every=5, directory=str(tmp_path), kill_at=kill_at
        )

    controller = ShardController(scenario.cluster, v=5.0)
    with pytest.raises(SimulationKilled):
        try:
            Simulator(scenario, controller, validate=True).run(
                20, checkpointer=checkpointer(kill_at=10)
            )
        finally:
            controller.shutdown()
    # A fresh controller object resumes purely from the snapshot (which
    # carries the pickled mid-run controller, workers re-spawned lazily).
    resumed_controller = ShardController(scenario.cluster, v=5.0)
    try:
        resumed = Simulator(scenario, resumed_controller, validate=True).run(
            20, checkpointer=checkpointer(), resume=True
        )
    finally:
        resumed_controller.shutdown()
    assert _summary_metrics(resumed.summary) == _summary_metrics(baseline.summary)


def _repro(args, cwd):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        cwd=cwd,
        env={
            "PYTHONPATH": str(REPO / "src"),
            "PATH": "/usr/bin:/bin:/usr/local/bin",
        },
        timeout=600,
    )


def test_cli_fresh_process_shard_kill_and_resume(tmp_path):
    base = [
        "shard",
        "--scenario",
        "small",
        "--horizon",
        "40",
        "--v",
        "5.0",
        "--json",
    ]

    killed = _repro(base + ["--checkpoint-every", "10", "--kill-at", "20"], tmp_path)
    assert killed.returncode == 3, killed.stdout + killed.stderr
    assert "resume" in killed.stderr
    ckpt_dir = tmp_path / ".repro_cache" / "checkpoints"
    # One whole-run snapshot plus the two per-shard ckpt-v1 snapshots.
    names = sorted(p.name for p in ckpt_dir.glob("*.ckpt"))
    assert "shard-s0.ckpt" in names and "shard-s1.ckpt" in names
    assert any(name.startswith("shard-small-") for name in names)

    resumed = _repro(base + ["--checkpoint-every", "10", "--resume"], tmp_path)
    assert resumed.returncode == 0, resumed.stdout + resumed.stderr

    fresh = _repro(base, tmp_path)
    assert fresh.returncode == 0, fresh.stdout + fresh.stderr

    assert resumed.stdout == fresh.stdout
    assert json.loads(resumed.stdout) == json.loads(fresh.stdout)


def test_cli_shard_drill_exit_codes(tmp_path):
    drill = _repro(
        [
            "shard",
            "--scenario",
            "small",
            "--horizon",
            "18",
            "--v",
            "5.0",
            "--drill",
            "kill",
            "--drill-slot",
            "6",
        ],
        tmp_path,
    )
    assert drill.returncode == 0, drill.stdout + drill.stderr
    assert "survived           : yes" in drill.stdout
