"""Tests for the trough-filling price-quantile baseline."""

import numpy as np
import pytest

from repro.model.action import Action
from repro.model.queues import QueueNetwork
from repro.model.state import ClusterState
from repro.schedulers.trough_filling import TroughFillingScheduler
from repro.simulation.simulator import Simulator


def _full_state(cluster, prices):
    return ClusterState(
        np.stack([dc.max_servers for dc in cluster.datacenters]), prices
    )


def _loaded_queues(cluster, jobs=3.0):
    q = QueueNetwork(cluster)
    q.step(Action.idle(cluster), np.array([jobs, 0.0]), t=0)
    route = np.zeros((2, 2))
    route[0, 0] = jobs
    q.step(Action(route, np.zeros((2, 2)), np.zeros((2, 2))), np.zeros(2), t=1)
    return q


class TestConstruction:
    def test_rejects_bad_params(self, cluster):
        with pytest.raises(ValueError):
            TroughFillingScheduler(cluster, quantile=1.5)
        with pytest.raises(ValueError):
            TroughFillingScheduler(cluster, window=1)
        with pytest.raises(ValueError):
            TroughFillingScheduler(cluster, max_backlog_work=0.0)


class TestBehaviour:
    def test_serves_at_cheap_prices(self, cluster):
        scheduler = TroughFillingScheduler(cluster, quantile=0.3, window=10)
        queues = _loaded_queues(cluster)
        # Feed history: mostly expensive slots.
        for t in range(2, 10):
            scheduler.decide(t, _full_state(cluster, [1.0, 1.0]), QueueNetwork(cluster))
        # A clearly cheap slot triggers service.
        action = scheduler.decide(10, _full_state(cluster, [0.01, 0.01]), queues)
        assert action.serve[0, 0] > 0

    def test_defers_at_expensive_prices(self, cluster):
        scheduler = TroughFillingScheduler(cluster, quantile=0.3, window=10)
        queues = _loaded_queues(cluster)
        for t in range(2, 10):
            scheduler.decide(t, _full_state(cluster, [0.1, 0.1]), QueueNetwork(cluster))
        action = scheduler.decide(10, _full_state(cluster, [5.0, 5.0]), queues)
        assert action.serve.sum() == pytest.approx(0.0)

    def test_backlog_cap_forces_service(self, cluster):
        scheduler = TroughFillingScheduler(
            cluster, quantile=0.1, window=10, max_backlog_work=1.0
        )
        queues = _loaded_queues(cluster, jobs=5.0)  # 5 work > cap
        for t in range(2, 10):
            scheduler.decide(t, _full_state(cluster, [0.1, 0.1]), QueueNetwork(cluster))
        # Price is expensive relative to history, but the cap triggers.
        action = scheduler.decide(10, _full_state(cluster, [5.0, 5.0]), queues)
        assert action.serve[0, 0] > 0

    def test_reset_clears_history(self, cluster):
        scheduler = TroughFillingScheduler(cluster, window=10)
        for t in range(5):
            scheduler.decide(t, _full_state(cluster, [0.5, 0.5]), QueueNetwork(cluster))
        scheduler.reset()
        assert all(len(h) == 0 for h in scheduler._history)

    def test_end_to_end_run(self, scenario):
        result = Simulator(
            scenario, TroughFillingScheduler(scenario.cluster), validate=True
        ).run(40)
        assert result.summary.horizon == 40

    def test_cheaper_than_always_on_volatile_prices(self, scenario):
        from repro.schedulers import AlwaysScheduler

        trough = Simulator(
            scenario,
            TroughFillingScheduler(scenario.cluster, quantile=0.4, max_backlog_work=60),
        ).run()
        always = Simulator(scenario, AlwaysScheduler(scenario.cluster)).run()
        assert trough.summary.avg_energy_cost <= always.summary.avg_energy_cost * 1.02
