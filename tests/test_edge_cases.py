"""Edge-case coverage across modules: boundaries the main suites skip."""

import numpy as np
import pytest

from repro.core.grefar import GreFarScheduler
from repro.model.action import Action
from repro.model.queues import QueueNetwork
from repro.model.state import ClusterState
from repro.optimize import SlotServiceProblem, solve_greedy
from repro.scenarios import small_scenario
from repro.schedulers import TroughFillingScheduler
from repro.schedulers.lookahead import LookaheadPolicy
from repro.simulation.metrics import MetricsCollector
from repro.workloads import DiurnalRate, PriceModel


class TestGreedyBoundaries:
    def test_zero_queue_weights_serve_nothing_at_positive_v(self, cluster, state):
        problem = SlotServiceProblem(
            cluster=cluster,
            state=state,
            queue_weights=np.zeros((2, 2)),
            h_upper=np.full((2, 2), 5.0),
            v=1.0,
        )
        np.testing.assert_allclose(solve_greedy(problem), 0.0)

    def test_zero_upper_bounds(self, cluster, state):
        problem = SlotServiceProblem(
            cluster=cluster,
            state=state,
            queue_weights=np.full((2, 2), 10.0),
            h_upper=np.zeros((2, 2)),
            v=0.0,
        )
        np.testing.assert_allclose(solve_greedy(problem), 0.0)

    def test_zero_availability_site(self, cluster):
        state = ClusterState(np.array([[0.0, 0.0], [10.0, 10.0]]), [0.4, 0.5])
        problem = SlotServiceProblem(
            cluster=cluster,
            state=state,
            queue_weights=np.full((2, 2), 10.0),
            h_upper=np.full((2, 2), 5.0),
            v=0.0,
        )
        h = solve_greedy(problem)
        assert h[0].sum() == 0.0
        assert h[1].sum() > 0

    def test_exact_threshold_does_not_serve(self, tiny_cluster):
        """Value == cost: the strict inequality means idle (saves energy)."""
        state = ClusterState(np.array([[4.0]]), [1.0])
        # value per work = q/d = 1.0; cost per work = V*price*p/s = 1*1*0.5.
        problem = SlotServiceProblem(
            cluster=tiny_cluster,
            state=state,
            queue_weights=np.array([[0.5]]),  # value 0.5 == cost 0.5
            h_upper=np.array([[5.0]]),
            v=1.0,
        )
        assert solve_greedy(problem).sum() == 0.0


class TestQueueNetworkEdges:
    def test_clip_reduces_largest_senders_first(self, cluster):
        q = QueueNetwork(cluster)
        q.step(Action.idle(cluster), np.array([3.0, 0.0]), t=0)
        route = np.zeros((2, 2))
        route[0, 0] = 1.0
        route[1, 0] = 4.0  # the big sender gets trimmed
        clipped = q.clip_to_content(
            Action(route, np.zeros((2, 2)), np.zeros((2, 2)))
        )
        assert clipped.route[0, 0] == pytest.approx(1.0)
        assert clipped.route[1, 0] == pytest.approx(2.0)

    def test_many_generations_fifo(self, cluster):
        """Ten single-job batches drain strictly oldest-first."""
        q = QueueNetwork(cluster)
        for t in range(10):
            q.step(Action.idle(cluster), np.array([1.0, 0.0]), t=t)
        route = np.zeros((2, 2))
        route[0, 0] = 10.0
        q.step(Action(route, np.zeros((2, 2)), np.zeros((2, 2))), np.zeros(2), t=10)
        serve = np.zeros((2, 2))
        serve[0, 0] = 1.0
        for t in range(11, 21):
            q.step(Action(np.zeros((2, 2)), serve, np.zeros((2, 2))), np.zeros(2), t=t)
        # All ten served; front delays were 10..1 -> mean 5.5.
        stats = q.stats
        assert stats.dc_completed[0, 0] == pytest.approx(10.0)
        assert stats.mean_front_delay(0) == pytest.approx(5.5)

    def test_zero_count_arrivals_leave_no_batches(self, cluster):
        q = QueueNetwork(cluster)
        q.step(Action.idle(cluster), np.zeros(2), t=0)
        assert all(len(ledger) == 0 for ledger in q._front_ledger)


class TestMetricsEdges:
    def test_front_delay_series(self, cluster):
        q = QueueNetwork(cluster)
        m = MetricsCollector(num_datacenters=2)
        q.step(Action.idle(cluster), np.array([2.0, 0.0]), t=0)
        m.record(0, 0, 0, np.zeros(2), 0, q)
        route = np.zeros((2, 2))
        route[0, 0] = 2.0
        q.step(Action(route, np.zeros((2, 2)), np.zeros((2, 2))), np.zeros(2), t=1)
        m.record(0, 0, 0, np.zeros(2), 0, q)
        series = m.avg_front_delay_series()
        assert series[0] == 0.0
        assert series[1] == pytest.approx(1.0)

    def test_running_average_with_matrix_values(self):
        m = MetricsCollector(num_datacenters=2)
        values = np.array([[1.0, 2.0], [3.0, 4.0]])
        avg = m._running_average(values)
        np.testing.assert_allclose(avg, [[1.0, 2.0], [2.0, 3.0]])


class TestLookaheadEdges:
    def test_single_slot_frames(self):
        scn = small_scenario(horizon=12, seed=3)
        policy = LookaheadPolicy(
            scn.cluster,
            scn.arrivals,
            scn.availability,
            scn.prices,
            lookahead=1,
        )
        solution = policy.solve()
        assert solution.frame_costs.shape == (12,)

    def test_whole_horizon_frame(self):
        scn = small_scenario(horizon=12, seed=3)
        policy = LookaheadPolicy(
            scn.cluster,
            scn.arrivals,
            scn.availability,
            scn.prices,
            lookahead=12,
        )
        solution = policy.solve()
        assert solution.frame_costs.shape == (1,)


class TestWorkloadEdges:
    def test_diurnal_zero_amplitude_is_flat(self, rng):
        rates = DiurnalRate(base=3.0, amplitude=0.0).rates(50, rng)
        np.testing.assert_allclose(rates, 3.0)

    def test_price_model_custom_phases(self, rng):
        model = PriceModel([0.5, 0.5], phase_offsets=[0.0, 12.0], volatility=0.0)
        prices = model.generate(48, rng)
        # Half-period offset: the two sites' diurnal cycles oppose.
        corr = np.corrcoef(prices[:, 0], prices[:, 1])[0, 1]
        assert corr < 0.0

    def test_price_model_zero_volatility_deterministic(self, rng):
        model = PriceModel([0.4], volatility=0.0)
        a = model.generate(24, np.random.default_rng(1))
        b = model.generate(24, np.random.default_rng(2))
        np.testing.assert_allclose(a, b)


class TestSchedulerEdges:
    def test_grefar_v_zero_serves_eagerly(self, scenario):
        from repro.simulation.simulator import Simulator

        result = Simulator(scenario, GreFarScheduler(scenario.cluster, v=0.0)).run(40)
        # V=0 ignores prices entirely: delay matches Always (~1 slot).
        assert result.summary.avg_dc_delay[1] < 1.3

    def test_trough_quantile_one_behaves_like_always(self, scenario):
        from repro.schedulers import AlwaysScheduler
        from repro.simulation.simulator import Simulator

        trough = Simulator(
            scenario,
            TroughFillingScheduler(scenario.cluster, quantile=1.0),
        ).run(60)
        always = Simulator(scenario, AlwaysScheduler(scenario.cluster)).run(60)
        assert trough.summary.avg_energy_cost == pytest.approx(
            always.summary.avg_energy_cost, rel=0.05
        )

    def test_fig2_custom_v_values(self):
        from repro.experiments import fig2_v_sweep

        result = fig2_v_sweep.run(horizon=40, seed=0, v_values=(1.0, 2.0, 3.0))
        assert len(result.final_energy) == 3
