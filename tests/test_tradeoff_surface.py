"""Tests for the (V, beta) tradeoff-surface experiment."""

import pytest

from repro.experiments import tradeoff_surface


class TestSurface:
    @pytest.fixture(scope="class")
    def result(self):
        return tradeoff_surface.run(
            horizon=120, seed=0, v_grid=(0.5, 20.0), beta_grid=(0.0, 200.0)
        )

    def test_shapes(self, result):
        assert result.energy.shape == (2, 2)
        assert result.fairness.shape == (2, 2)
        assert result.delay.shape == (2, 2)

    def test_point_accessor(self, result):
        p = result.point(1, 0)
        assert p["v"] == 20.0
        assert p["beta"] == 0.0
        assert p["energy"] == pytest.approx(float(result.energy[1, 0]))

    def test_delay_rises_along_v(self, result):
        assert result.delay[1, 0] >= result.delay[0, 0] - 0.05

    def test_fairness_scores_valid(self, result):
        assert (result.fairness <= 0).all()
        assert (result.fairness > -1).all()

    def test_main_prints(self, capsys):
        tradeoff_surface.main(horizon=60)
        out = capsys.readouterr().out
        assert "tradeoff surface" in out
        assert "beta" in out
