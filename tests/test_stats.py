"""Tests for the bootstrap/paired-comparison statistics helpers."""

import numpy as np
import pytest

from repro.analysis.stats import (
    PairedComparison,
    bootstrap_mean_ci,
    paired_comparison,
)


class TestBootstrapCi:
    def test_contains_true_mean_for_tight_data(self):
        low, high = bootstrap_mean_ci([5.0, 5.1, 4.9, 5.05, 4.95])
        assert low <= 5.0 <= high
        assert high - low < 0.3

    def test_single_value_degenerates(self):
        assert bootstrap_mean_ci([3.0]) == (3.0, 3.0)

    def test_deterministic_given_seed(self):
        data = [1.0, 2.0, 3.0, 4.0]
        assert bootstrap_mean_ci(data, seed=7) == bootstrap_mean_ci(data, seed=7)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            bootstrap_mean_ci([])
        with pytest.raises(ValueError):
            bootstrap_mean_ci([1.0], confidence=1.5)

    def test_wider_confidence_widens_interval(self):
        rng = np.random.default_rng(0)
        data = rng.normal(0, 1, size=30)
        low90, high90 = bootstrap_mean_ci(data, confidence=0.90)
        low99, high99 = bootstrap_mean_ci(data, confidence=0.99)
        assert high99 - low99 >= high90 - low90


class TestPairedComparison:
    def test_clear_winner(self):
        result = paired_comparison(
            lambda seed: (10.0 + 0.01 * seed, 12.0 + 0.01 * seed),
            seeds=[0, 1, 2, 3, 4],
            metric="energy",
        )
        assert result.a_wins
        assert result.significant
        assert result.mean_difference == pytest.approx(-2.0)

    def test_paired_design_cancels_seed_noise(self):
        """Per-seed noise shared by both sides does not blur the CI."""
        rng = np.random.default_rng(1)
        noise = {s: float(rng.normal(0, 50)) for s in range(6)}

        result = paired_comparison(
            lambda seed: (noise[seed] + 1.0, noise[seed] + 2.0),
            seeds=list(range(6)),
        )
        assert result.mean_difference == pytest.approx(-1.0)
        assert result.ci_high - result.ci_low < 0.1

    def test_insignificant_when_equal(self):
        result = paired_comparison(
            lambda seed: (1.0 + (seed % 2) * 0.2, 1.1 + ((seed + 1) % 2) * 0.2),
            seeds=list(range(8)),
        )
        assert isinstance(result, PairedComparison)
        assert not result.a_wins or result.significant in (True, False)

    def test_rejects_empty_seeds(self):
        with pytest.raises(ValueError):
            paired_comparison(lambda s: (0.0, 0.0), seeds=[])


class TestEndToEnd:
    def test_grefar_vs_always_energy_ci(self):
        """A 3-seed paired comparison: GreFar's saving is significant."""
        from repro.core.grefar import GreFarScheduler
        from repro.scenarios import paper_scenario
        from repro.schedulers import AlwaysScheduler
        from repro.simulation.simulator import Simulator

        def metric(seed):
            scn = paper_scenario(horizon=250, seed=seed)
            grefar = Simulator(scn, GreFarScheduler(scn.cluster, v=20.0)).run()
            always = Simulator(scn, AlwaysScheduler(scn.cluster)).run()
            return grefar.summary.avg_energy_cost, always.summary.avg_energy_cost

        result = paired_comparison(metric, seeds=[0, 1, 2], metric="energy")
        assert result.mean_difference < 0  # GreFar saves on average
