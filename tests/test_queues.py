"""Unit tests for the queue substrate (dynamics eqs. 12-13 and delays)."""

import numpy as np
import pytest

from repro.model.action import Action
from repro.model.queues import DelayStats, QueueNetwork


def _action(cluster, route=None, serve=None):
    n, j = cluster.num_datacenters, cluster.num_job_types
    k = cluster.num_server_classes
    r = np.zeros((n, j)) if route is None else np.asarray(route, dtype=float)
    h = np.zeros((n, j)) if serve is None else np.asarray(serve, dtype=float)
    return Action(r, h, np.zeros((n, k)))


class TestArrivals:
    def test_arrivals_extend_front_queue(self, cluster):
        q = QueueNetwork(cluster)
        q.step(_action(cluster), np.array([3.0, 1.0]), t=0)
        np.testing.assert_allclose(q.front, [3.0, 1.0])
        np.testing.assert_allclose(q.dc, 0.0)

    def test_rejects_negative_arrivals(self, cluster):
        q = QueueNetwork(cluster)
        with pytest.raises(ValueError):
            q.step(_action(cluster), np.array([-1.0, 0.0]), t=0)

    def test_rejects_wrong_shape(self, cluster):
        q = QueueNetwork(cluster)
        with pytest.raises(ValueError):
            q.step(_action(cluster), np.array([1.0]), t=0)


class TestRouting:
    def test_routing_moves_jobs(self, cluster):
        q = QueueNetwork(cluster)
        q.step(_action(cluster), np.array([4.0, 0.0]), t=0)
        route = np.zeros((2, 2))
        route[0, 0] = 3.0
        q.step(_action(cluster, route=route), np.zeros(2), t=1)
        np.testing.assert_allclose(q.front, [1.0, 0.0])
        assert q.dc[0, 0] == pytest.approx(3.0)

    def test_literal_overdraw_truncates_front(self, cluster):
        """Eq. (12)'s max[., 0]: routing more than queued leaves zero."""
        q = QueueNetwork(cluster)
        q.step(_action(cluster), np.array([2.0, 0.0]), t=0)
        route = np.zeros((2, 2))
        route[0, 0] = 5.0  # overdraw
        outcome = q.step(_action(cluster, route=route), np.zeros(2), t=1)
        assert q.front[0] == pytest.approx(0.0)
        # Literal dynamics add the full r to the site queue (phantoms).
        assert q.dc[0, 0] == pytest.approx(5.0)
        # The ledger only moved real jobs.
        assert outcome["routed"][0, 0] == pytest.approx(2.0)

    def test_routing_splits_across_sites(self, cluster):
        q = QueueNetwork(cluster)
        q.step(_action(cluster), np.array([4.0, 0.0]), t=0)
        route = np.zeros((2, 2))
        route[0, 0] = 2.0
        route[1, 0] = 2.0
        q.step(_action(cluster, route=route), np.zeros(2), t=1)
        np.testing.assert_allclose(q.dc[:, 0], [2.0, 2.0])


class TestService:
    def test_service_drains_dc_queue(self, cluster):
        q = QueueNetwork(cluster)
        q.step(_action(cluster), np.array([4.0, 0.0]), t=0)
        route = np.zeros((2, 2))
        route[0, 0] = 4.0
        q.step(_action(cluster, route=route), np.zeros(2), t=1)
        serve = np.zeros((2, 2))
        serve[0, 0] = 3.0
        outcome = q.step(_action(cluster, serve=serve), np.zeros(2), t=2)
        assert q.dc[0, 0] == pytest.approx(1.0)
        assert outcome["served"][0, 0] == pytest.approx(3.0)

    def test_literal_overserve_truncates(self, cluster):
        q = QueueNetwork(cluster)
        q.step(_action(cluster), np.array([2.0, 0.0]), t=0)
        route = np.zeros((2, 2))
        route[0, 0] = 2.0
        q.step(_action(cluster, route=route), np.zeros(2), t=1)
        serve = np.zeros((2, 2))
        serve[0, 0] = 10.0
        outcome = q.step(_action(cluster, serve=serve), np.zeros(2), t=2)
        assert q.dc[0, 0] == pytest.approx(0.0)
        assert outcome["served"][0, 0] == pytest.approx(2.0)

    def test_serve_before_route_within_slot(self, cluster):
        """A job routed in slot t cannot be served in slot t (eq. 13)."""
        q = QueueNetwork(cluster)
        q.step(_action(cluster), np.array([2.0, 0.0]), t=0)
        route = np.zeros((2, 2))
        route[0, 0] = 2.0
        serve = np.zeros((2, 2))
        serve[0, 0] = 2.0
        outcome = q.step(_action(cluster, route=route, serve=serve), np.zeros(2), t=1)
        assert outcome["served"][0, 0] == pytest.approx(0.0)
        assert q.dc[0, 0] == pytest.approx(2.0)

    def test_fractional_service(self, cluster):
        q = QueueNetwork(cluster)
        q.step(_action(cluster), np.array([1.0, 0.0]), t=0)
        route = np.zeros((2, 2))
        route[0, 0] = 1.0
        q.step(_action(cluster, route=route), np.zeros(2), t=1)
        serve = np.zeros((2, 2))
        serve[0, 0] = 0.25
        q.step(_action(cluster, serve=serve), np.zeros(2), t=2)
        assert q.dc[0, 0] == pytest.approx(0.75)


class TestDelayAccounting:
    def test_always_pattern_gives_delay_one(self, cluster):
        """Route everything each slot, serve everything each slot -> DC delay 1."""
        q = QueueNetwork(cluster)
        rng = np.random.default_rng(0)
        for t in range(20):
            front = q.front
            dc = q.dc
            route = np.zeros((2, 2))
            route[0, 0] = front[0]
            route[1, 1] = front[1]
            serve = dc.copy()
            arrivals = rng.integers(0, 4, size=2).astype(float)
            q.step(_action(cluster, route=route, serve=serve), arrivals, t)
        assert q.stats.mean_dc_delay() == pytest.approx(1.0)
        assert q.stats.mean_front_delay() == pytest.approx(1.0)

    def test_deferred_service_increases_delay(self, cluster):
        q = QueueNetwork(cluster)
        q.step(_action(cluster), np.array([2.0, 0.0]), t=0)
        route = np.zeros((2, 2))
        route[0, 0] = 2.0
        q.step(_action(cluster, route=route), np.zeros(2), t=1)
        # Wait until slot 5 to serve: DC delay should be 4.
        for t in range(2, 5):
            q.step(_action(cluster), np.zeros(2), t=t)
        serve = np.zeros((2, 2))
        serve[0, 0] = 2.0
        q.step(_action(cluster, serve=serve), np.zeros(2), t=5)
        assert q.stats.mean_dc_delay(0) == pytest.approx(4.0)

    def test_fifo_order(self, cluster):
        """Older batches complete first."""
        q = QueueNetwork(cluster)
        q.step(_action(cluster), np.array([1.0, 0.0]), t=0)
        route = np.zeros((2, 2))
        route[0, 0] = 1.0
        q.step(_action(cluster, route=route), np.array([1.0, 0.0]), t=1)
        q.step(_action(cluster, route=route), np.zeros(2), t=2)
        serve = np.zeros((2, 2))
        serve[0, 0] = 1.0
        q.step(_action(cluster, serve=serve), np.zeros(2), t=3)
        # The batch served must be the one routed at t=1 (delay 2), not t=2.
        assert q.stats.mean_dc_delay(0) == pytest.approx(2.0)


class TestHelpers:
    def test_lyapunov(self, cluster):
        q = QueueNetwork(cluster)
        q.step(_action(cluster), np.array([3.0, 4.0]), t=0)
        assert q.lyapunov() == pytest.approx(0.5 * (9 + 16))

    def test_total_backlog_and_work(self, cluster):
        q = QueueNetwork(cluster)
        q.step(_action(cluster), np.array([3.0, 4.0]), t=0)
        assert q.total_backlog() == pytest.approx(7.0)
        # demands [1, 2]
        assert q.backlog_work() == pytest.approx(3.0 + 8.0)

    def test_max_queue_length(self, cluster):
        q = QueueNetwork(cluster)
        q.step(_action(cluster), np.array([3.0, 7.0]), t=0)
        assert q.max_queue_length() == pytest.approx(7.0)

    def test_clip_to_content_routing(self, cluster):
        q = QueueNetwork(cluster)
        q.step(_action(cluster), np.array([3.0, 0.0]), t=0)
        route = np.zeros((2, 2))
        route[0, 0] = 5.0
        route[1, 0] = 5.0
        clipped = q.clip_to_content(_action(cluster, route=route))
        assert clipped.route[:, 0].sum() <= 3.0 + 1e-9

    def test_clip_to_content_service(self, cluster):
        q = QueueNetwork(cluster)
        q.step(_action(cluster), np.array([2.0, 0.0]), t=0)
        route = np.zeros((2, 2))
        route[0, 0] = 2.0
        q.step(_action(cluster, route=route), np.zeros(2), t=1)
        serve = np.full((2, 2), 9.0)
        clipped = q.clip_to_content(_action(cluster, serve=serve))
        assert clipped.serve[0, 0] == pytest.approx(2.0)
        assert clipped.serve[1, 1] == pytest.approx(0.0)


class TestDelayStats:
    def test_empty_stats_are_zero(self):
        stats = DelayStats(2, 3)
        assert stats.mean_dc_delay() == 0.0
        assert stats.mean_front_delay() == 0.0
        assert stats.mean_total_delay() == 0.0

    def test_weighted_means(self):
        stats = DelayStats(1, 1)
        stats.record_served(0, 0, count=1.0, delay=2.0)
        stats.record_served(0, 0, count=3.0, delay=4.0)
        assert stats.mean_dc_delay(0) == pytest.approx((2.0 + 12.0) / 4.0)

    def test_per_type_front_delay(self):
        stats = DelayStats(1, 2)
        stats.record_routed(0, count=2.0, delay=1.0)
        stats.record_routed(1, count=2.0, delay=3.0)
        assert stats.mean_front_delay(0) == pytest.approx(1.0)
        assert stats.mean_front_delay(1) == pytest.approx(3.0)
        assert stats.mean_front_delay() == pytest.approx(2.0)
