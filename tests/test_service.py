"""The scheduler-as-a-service gateway (repro.service).

Four layers, bottom up:

* **wire** — request parsing against the cluster's model bounds
  (unknown accounts/types, ownership, the eq. 3 arrival cap).
* **ratelimit / ingest** — token-bucket arithmetic with an injected
  clock; the bounded intake buffer's per-type FIFO drain; the
  write-ahead log (including torn final lines) and the atomic
  ``freeze`` partition checkpoints rely on.
* **service** — in-process :class:`SchedulerService`: checkpoint +
  write-ahead-log resume with no acknowledged-submission loss, and the
  decisive property: replaying the accepted-arrival log through the
  offline ``Simulator`` reproduces the live per-slot metrics
  bit-identically.
* **HTTP** — a real ``ServiceHTTPServer`` on an ephemeral port driven
  through :class:`ServiceClient`: submissions, backpressure 429s with
  ``Retry-After``, all query views, admin tick/checkpoint/shutdown.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.objective import CostModel
from repro.scenarios import small_scenario
from repro.schedulers import build_scheduler
from repro.service import (
    AccountRateLimiter,
    IntakeBuffer,
    Ingestor,
    SchedulerService,
    ServiceClient,
    ServiceClientError,
    ServiceConfig,
    ServiceHTTPServer,
    SubmissionLog,
    SubmissionRecord,
    TokenBucket,
    WireError,
    parse_json_body,
    parse_submission,
)
from repro.simulation.simulator import Simulator

CLUSTER = small_scenario(horizon=4, seed=0).cluster
# small cluster: account 0 owns type 0 (A_max = 50), account 1 owns
# type 1 (A_max = 5).


class FakeClock:
    """A controllable monotonic clock for deterministic bucket tests."""

    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


def make_config(tmp_path, **overrides) -> ServiceConfig:
    defaults = dict(
        scenario_kind="small",
        scenario_seed=0,
        capacity_slots=30,
        scheduler="grefar",
        scheduler_kwargs={"v": 10.0},
        data_dir=str(tmp_path / "svc"),
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


# ----------------------------------------------------------------------
# Wire layer
# ----------------------------------------------------------------------
def test_parse_submission_happy_path():
    request = parse_submission(
        {"account": 0, "job_type": 0, "count": 7}, CLUSTER
    )
    assert (request.account, request.job_type, request.count) == (0, 0, 7)
    assert request.as_dict() == {"account": 0, "job_type": 0, "count": 7}


@pytest.mark.parametrize(
    "payload,status,code",
    [
        ({"account": "x", "job_type": 0, "count": 1}, 400, "bad_field"),
        ({"account": True, "job_type": 0, "count": 1}, 400, "bad_field"),
        ({"account": 0, "job_type": 0, "count": 0}, 400, "bad_field"),
        ({"account": 0, "job_type": 0}, 400, "bad_field"),
        ({"account": 9, "job_type": 0, "count": 1}, 422, "unknown_account"),
        ({"account": 0, "job_type": 9, "count": 1}, 422, "unknown_job_type"),
        ({"account": 0, "job_type": 1, "count": 1}, 422, "wrong_account"),
        (
            {"account": 0, "job_type": 0, "count": 51},
            422,
            "count_exceeds_arrival_bound",
        ),
    ],
    ids=lambda v: str(v)[:40],
)
def test_parse_submission_rejections(payload, status, code):
    with pytest.raises(WireError) as excinfo:
        parse_submission(payload, CLUSTER)
    assert excinfo.value.status == status
    assert excinfo.value.code == code


def test_parse_json_body_errors():
    assert parse_json_body(b"") == {}
    assert parse_json_body(b'{"a": 1}') == {"a": 1}
    with pytest.raises(WireError) as excinfo:
        parse_json_body(b"not json")
    assert excinfo.value.status == 400
    with pytest.raises(WireError) as excinfo:
        parse_json_body(b"[1, 2]")
    assert excinfo.value.code == "bad_json"
    with pytest.raises(WireError) as excinfo:
        parse_json_body(b"x" * (64 * 1024 + 1))
    assert excinfo.value.status == 413


# ----------------------------------------------------------------------
# Rate limiting
# ----------------------------------------------------------------------
def test_token_bucket_spend_refill_and_retry_hint():
    bucket = TokenBucket(rate=2.0, burst=10.0)
    granted, wait = bucket.try_take(10.0, now=0.0)
    assert granted and wait == 0.0
    # Bucket empty: a 4-token request needs 4/2 = 2 seconds of refill.
    granted, wait = bucket.try_take(4.0, now=0.0)
    assert not granted
    assert wait == pytest.approx(2.0)
    # After 2 seconds the same request is covered exactly.
    granted, wait = bucket.try_take(4.0, now=2.0)
    assert granted
    # Refill never exceeds the burst.
    granted, _ = bucket.try_take(10.0, now=1e9)
    assert granted
    assert bucket.tokens == pytest.approx(0.0)


def test_token_bucket_state_round_trips():
    bucket = TokenBucket(rate=1.0, burst=5.0)
    bucket.try_take(3.0, now=7.0)
    clone = TokenBucket(rate=1.0, burst=5.0)
    clone.restore(bucket.state())
    assert clone.tokens == pytest.approx(2.0)


def test_account_limiter_isolated_buckets_and_integral_retry():
    clock = FakeClock()
    limiter = AccountRateLimiter(2, rate=2.0, burst=4.0, clock=clock)
    granted, retry = limiter.admit(0, 4)
    assert granted and retry == 0.0
    # Account 0 is drained; a 1-job request waits ceil(0.5) -> 1 second.
    granted, retry = limiter.admit(0, 1)
    assert not granted
    assert retry == 1.0 and retry == int(retry)
    # Account 1 is untouched by account 0's spending.
    granted, _ = limiter.admit(1, 4)
    assert granted
    clock.now += 2.0
    granted, _ = limiter.admit(0, 4)
    assert granted


def test_account_limiter_restore_resets_clock_epoch():
    clock = FakeClock()
    limiter = AccountRateLimiter(1, rate=1.0, burst=10.0, clock=clock)
    limiter.admit(0, 8)
    snapshot = limiter.state()
    # A restarted process has a new arbitrary clock epoch; restore must
    # keep the token level but not "refill" across the epoch change.
    reborn = AccountRateLimiter(1, rate=1.0, burst=10.0, clock=FakeClock())
    reborn.restore(snapshot)
    granted, _ = reborn.admit(0, 2)
    assert granted
    granted, _ = reborn.admit(0, 1)
    assert not granted


# ----------------------------------------------------------------------
# Ingestion: write-ahead log and intake buffer
# ----------------------------------------------------------------------
def test_submission_log_append_replay_and_torn_tail(tmp_path):
    log = SubmissionLog(tmp_path / "wal.jsonl")
    records = [
        SubmissionRecord(seq=1, account=0, job_type=0, count=3),
        SubmissionRecord(seq=2, account=1, job_type=1, count=2),
    ]
    for record in records:
        log.append(record)
    log.close()
    # Simulate a SIGKILL mid-append: a torn, never-acknowledged line.
    with open(tmp_path / "wal.jsonl", "a", encoding="utf-8") as handle:
        handle.write('{"seq": 3, "account": 0, "job_t')
    assert SubmissionLog(tmp_path / "wal.jsonl").replay() == records


def test_submission_log_rotate_moves_old_log_aside(tmp_path):
    log = SubmissionLog(tmp_path / "wal.jsonl")
    log.append(SubmissionRecord(seq=1, account=0, job_type=0, count=1))
    log.rotate()
    assert not (tmp_path / "wal.jsonl").exists()
    assert (tmp_path / "wal.jsonl.old").exists()
    assert log.replay() == []


def test_intake_buffer_backpressure_and_forced_recovery():
    buffer = IntakeBuffer(capacity=10, num_job_types=2)
    assert buffer.offer(SubmissionRecord(seq=1, account=0, job_type=0, count=8))
    assert not buffer.offer(
        SubmissionRecord(seq=2, account=0, job_type=0, count=5)
    )
    # Recovery bypasses the bound: the submission was already acked.
    assert buffer.offer(
        SubmissionRecord(seq=2, account=0, job_type=0, count=5), force=True
    )
    assert buffer.pending_jobs == 13


def test_intake_buffer_drain_respects_arrival_bounds_fifo():
    buffer = IntakeBuffer(capacity=100, num_job_types=2)
    for seq, jt, count in [(1, 1, 3), (2, 1, 3), (3, 0, 40), (4, 0, 20)]:
        assert buffer.offer(
            SubmissionRecord(seq=seq, account=jt, job_type=jt, count=count)
        )
    arrivals, consumed = buffer.drain_slot(np.array([50.0, 5.0]))
    # Type 1: only the older submission fits under A_max = 5 (3+3 > 5);
    # type 0: 40 fits, 40+20 would breach A_max = 50.
    assert arrivals.tolist() == [40.0, 3.0]
    assert sorted(consumed) == [1, 3]
    assert buffer.pending_jobs == 23
    arrivals, consumed = buffer.drain_slot(np.array([50.0, 5.0]))
    assert arrivals.tolist() == [20.0, 3.0]
    assert buffer.pending_jobs == 0


def test_intake_buffer_snapshot_round_trips():
    buffer = IntakeBuffer(capacity=100, num_job_types=2)
    records = [
        SubmissionRecord(seq=2, account=1, job_type=1, count=2),
        SubmissionRecord(seq=1, account=0, job_type=0, count=4),
    ]
    for record in records:
        buffer.offer(record)
    clone = IntakeBuffer(capacity=100, num_job_types=2)
    clone.restore(buffer.snapshot())
    assert clone.pending_jobs == 6
    assert clone.snapshot() == sorted(records, key=lambda r: r.seq)


def test_ingestor_pipeline_reasons_and_freeze_partition(tmp_path):
    clock = FakeClock()
    limiter = AccountRateLimiter(2, rate=1.0, burst=10.0, clock=clock)
    buffer = IntakeBuffer(capacity=8, num_job_types=2)
    log = SubmissionLog(tmp_path / "wal.jsonl")
    ingestor = Ingestor(buffer, log, limiter, retry_after_slots=2.0)

    from repro.service.wire import SubmissionRequest

    record, reason, retry = ingestor.submit(
        SubmissionRequest(account=0, job_type=0, count=6)
    )
    assert reason == "accepted" and record.seq == 1
    assert record.submission_id == "sub-1"
    # Buffer has 6/8: a 4-job batch is backpressure, not rate limit.
    record, reason, retry = ingestor.submit(
        SubmissionRequest(account=0, job_type=0, count=4)
    )
    assert record is None and reason == "backpressure"
    assert retry == 2.0
    # Account 0's bucket is down to 4 tokens: a 5-job batch that would
    # fit the buffer is rate-limited instead.
    record, reason, retry = ingestor.submit(
        SubmissionRequest(account=0, job_type=0, count=5)
    )
    assert record is None and reason == "rate_limited"
    assert retry >= 1.0

    pending, next_seq, counters = ingestor.freeze()
    assert [r.seq for r in pending] == [1]
    assert next_seq == 2
    assert counters == {
        "accepted_jobs": 6,
        "rejected_rate_limited": 1,
        "rejected_backpressure": 1,
        "pending_jobs": 6,
    }
    # Refused submissions were never logged: the WAL holds exactly the
    # acknowledged record.
    assert [r.seq for r in log.replay()] == [1]


def test_ingestor_recover_restages_and_advances_seq(tmp_path):
    clock = FakeClock()
    limiter = AccountRateLimiter(2, rate=100.0, burst=100.0, clock=clock)
    buffer = IntakeBuffer(capacity=5, num_job_types=2)
    ingestor = Ingestor(
        buffer, SubmissionLog(tmp_path / "wal.jsonl"), limiter
    )
    records = [
        SubmissionRecord(seq=4, account=0, job_type=0, count=4),
        SubmissionRecord(seq=7, account=1, job_type=1, count=3),
    ]
    assert ingestor.recover(records) == 2
    # Forced past the 5-job capacity (both were acknowledged pre-crash)
    # and the sequence counter resumes above the highest replayed seq.
    assert buffer.pending_jobs == 7
    assert ingestor.next_seq == 8


# ----------------------------------------------------------------------
# Service configuration identity
# ----------------------------------------------------------------------
def test_config_digest_tracks_scheduling_identity(tmp_path):
    base = make_config(tmp_path)
    same = make_config(tmp_path, rate=999.0, intake_capacity=7)
    different = make_config(tmp_path, scheduler_kwargs={"v": 20.0})
    # Gateway tuning does not change what the service computes...
    assert base.digest == same.digest
    # ...but the scheduler's parameters do.
    assert base.digest != different.digest
    assert base.checkpoint_key == f"service-{base.digest[:16]}"
    assert base.wal_path.parent == base.instance_dir


def test_config_rejects_bad_tuning(tmp_path):
    with pytest.raises(ValueError):
        make_config(tmp_path, intake_capacity=0)
    with pytest.raises(ValueError):
        make_config(tmp_path, rate=-1.0)
    with pytest.raises(ValueError):
        make_config(tmp_path, slot_seconds=0.0)


# ----------------------------------------------------------------------
# In-process service: replay equivalence and crash recovery
# ----------------------------------------------------------------------
def _submit_ok(service: SchedulerService, account: int, job_type: int, count: int):
    status, body, _headers = service.submit(
        {"account": account, "job_type": job_type, "count": count}
    )
    assert status == 202, body
    return body


def test_offline_replay_is_bit_identical(tmp_path):
    """The decisive property: live slots == batch replay of the log."""
    service = SchedulerService(make_config(tmp_path))
    schedule = [
        [(0, 0, 12), (1, 1, 4)],
        [],
        [(0, 0, 30), (0, 0, 8), (1, 1, 5)],
        [(1, 1, 2)],
        [(0, 0, 50)],
        [],
    ]
    for batch in schedule:
        for account, job_type, count in batch:
            _submit_ok(service, account, job_type, count)
        service.ticker.tick(1)
    state = service.state
    assert state.next_slot == len(schedule)

    scenario = state.replay_scenario()
    simulator = Simulator(
        scenario,
        build_scheduler("grefar", scenario.cluster, v=10.0),
        cost_model=CostModel(beta=service.config.cost_beta),
    )
    result = simulator.run()

    # Bit-identical, not approximately equal: same code, same order,
    # same floats.
    assert result.metrics.energy_cost == state.metrics.energy_cost
    assert result.metrics.fairness == state.metrics.fairness
    assert result.metrics.combined_cost == state.metrics.combined_cost
    assert result.metrics.served_jobs == state.metrics.served_jobs
    assert result.metrics.queue_total == state.metrics.queue_total
    offline = result.metrics.work_per_dc_series()
    live = np.stack([r["work_per_dc"] for r in state.slot_records])
    assert np.array_equal(offline, live)
    service.shutdown()


def test_checkpoint_resume_in_process_no_acked_loss(tmp_path):
    """Kill after acked-but-unticked submissions; resume loses nothing."""
    config = make_config(tmp_path, checkpoint_every=1)
    batch1 = [(0, 0, 10), (1, 1, 3)]
    batch2 = [(0, 0, 25), (1, 1, 5)]

    # Reference: one uninterrupted service over the same schedule.
    reference = SchedulerService(make_config(tmp_path, data_dir=str(tmp_path / "ref")))
    for account, job_type, count in batch1:
        _submit_ok(reference, account, job_type, count)
    reference.ticker.tick(3)
    for account, job_type, count in batch2:
        _submit_ok(reference, account, job_type, count)
    reference.ticker.tick(3)

    # Victim: same schedule, but the process "dies" (object dropped, no
    # shutdown) right after batch2 was acknowledged.
    victim = SchedulerService(config)
    for account, job_type, count in batch1:
        _submit_ok(victim, account, job_type, count)
    victim.ticker.tick(3)
    for account, job_type, count in batch2:
        _submit_ok(victim, account, job_type, count)
    victim.log.close()  # only the file handle; no checkpoint, no flush beyond acks
    del victim

    resumed = SchedulerService(config, resume=True)
    assert resumed.resumed_from_slot == 3
    # batch2 lived only in the write-ahead log; both records came back.
    assert resumed.recovered_submissions == len(batch2)
    assert resumed.ingestor.buffer.pending_jobs == sum(c for _, _, c in batch2)
    resumed.ticker.tick(3)

    assert resumed.state.slot_records == reference.state.slot_records
    assert resumed.state.next_slot == reference.state.next_slot == 6
    total_jobs = sum(c for _, _, c in batch1 + batch2)
    assert resumed.state.admitted_total == total_jobs
    assert resumed.ingestor.accepted_jobs == total_jobs
    reference.shutdown()
    resumed.shutdown()


def test_resume_refuses_foreign_checkpoint(tmp_path):
    config = make_config(tmp_path, checkpoint_every=1)
    service = SchedulerService(config)
    _submit_ok(service, 0, 0, 5)
    service.ticker.tick(1)
    service.shutdown()
    payload = config.checkpointer().load()
    assert payload is not None
    other = make_config(tmp_path, scheduler_kwargs={"v": 20.0})
    with pytest.raises(ValueError, match="differently-configured"):
        SchedulerService(other).state.restore(payload)


def test_fresh_start_rotates_log_and_clears_checkpoint(tmp_path):
    config = make_config(tmp_path, checkpoint_every=1)
    first = SchedulerService(config)
    _submit_ok(first, 0, 0, 5)
    first.ticker.tick(1)
    first.shutdown()
    # resume=False must not replay the old instance's acknowledged work.
    second = SchedulerService(config, resume=False)
    assert second.state.next_slot == 0
    assert second.ingestor.buffer.pending_jobs == 0
    assert config.wal_path.with_suffix(".jsonl.old").exists()
    second.shutdown()


def test_capacity_exhaustion_is_a_409_not_a_crash(tmp_path):
    service = SchedulerService(make_config(tmp_path, capacity_slots=2))
    status, body, _ = service.tick(2)
    assert status == 200 and body["ticked"] == 2
    status, body, _ = service.tick(1)
    assert status == 409
    assert body["error"] == "capacity_exhausted"
    service.shutdown()


# ----------------------------------------------------------------------
# HTTP round trip (real server, ephemeral port)
# ----------------------------------------------------------------------
@pytest.fixture
def live_gateway(tmp_path):
    """A ServiceHTTPServer on 127.0.0.1:<ephemeral> plus its client."""
    config = make_config(
        tmp_path, intake_capacity=60, rate=100.0, burst=120.0
    )
    service = SchedulerService(config)
    server = ServiceHTTPServer(("127.0.0.1", 0), service)
    thread = threading.Thread(
        target=server.serve_forever, kwargs={"poll_interval": 0.05}, daemon=True
    )
    thread.start()
    port = server.server_address[1]
    client = ServiceClient(f"http://127.0.0.1:{port}", timeout=10.0)
    try:
        yield service, client
    finally:
        server.shutdown()
        server.server_close()
        service.shutdown()
        thread.join(timeout=5.0)


def test_http_submit_tick_and_views(live_gateway):
    service, client = live_gateway
    health = client.health()
    assert health["status"] == "ok" and health["next_slot"] == 0

    config = client.config()
    assert config["scenario_kind"] == "small"
    assert config["digest"] == service.config.digest

    accounts = client.accounts()
    assert [a["account"] for a in accounts] == [0, 1]
    assert accounts[0]["job_types"][0]["max_arrivals"] == 50

    ack = client.submit(0, 0, 12)
    assert ack["schema"] == "svc-v1"
    assert ack["submission_id"] == "sub-1"
    assert ack["pending_jobs"] == 12
    client.submit(1, 1, 4)

    ticked = client.tick(2)
    assert ticked["ticked"] == 2 and ticked["next_slot"] == 2
    assert ticked["records"][0]["arrivals"] == [12.0, 4.0]
    assert ticked["records"][1]["arrivals"] == [0.0, 0.0]

    slots = client.slots()
    assert [r["slot"] for r in slots] == [0, 1]
    assert client.slots(start=1, count=1)[0]["slot"] == 1

    queues = client.queues()
    assert queues["next_slot"] == 2
    assert len(queues["front"]) == 2

    placement = client.placement()
    assert placement["last_slot"]["slot"] == 1
    assert placement["datacenters"] == 2

    fairness = client.fairness()
    assert fairness["completed_slots"] == 2
    assert fairness["fair_shares"] == [0.6, 0.4]
    assert len(fairness["cumulative_work"]) == 2

    stats = client.stats()
    assert stats["horizon"] == 2
    assert stats["total_arrived_jobs"] == 16.0

    metrics = client.metrics()
    assert metrics["service"]["accepted_jobs"] == 16
    assert metrics["service"]["ticks_completed"] == 2
    # The hot-path registry is off by default (REPRO_OBS=1 turns it on);
    # the envelope still carries both registry snapshots.
    assert "timers" in metrics["obs"]
    assert metrics["stats"]["counters"]["service.submissions.accepted"] >= 2

    checkpointed = client.checkpoint()
    assert checkpointed["checkpointed"] is True


def test_http_rejections_and_backpressure(live_gateway):
    service, client = live_gateway

    with pytest.raises(ServiceClientError) as excinfo:
        client.submit(0, 1, 1)  # type 1 belongs to account 1
    assert excinfo.value.status == 422
    assert excinfo.value.code == "wrong_account"

    with pytest.raises(ServiceClientError) as excinfo:
        client.submit(0, 0, 51)  # above A_max = 50
    assert excinfo.value.code == "count_exceeds_arrival_bound"

    with pytest.raises(ServiceClientError) as excinfo:
        client.get("/v1/nope")
    assert excinfo.value.status == 404

    with pytest.raises(ServiceClientError) as excinfo:
        client.post("/v1/admin/tick", {"slots": "three"})
    assert excinfo.value.status == 400 and excinfo.value.code == "bad_field"

    # Fill the 60-job intake: the 21-job overflow is an explicit 429
    # with a Retry-After, and the rejection is counted, not dropped.
    client.submit(0, 0, 50)
    with pytest.raises(ServiceClientError) as excinfo:
        client.submit(0, 0, 21)
    assert excinfo.value.status == 429
    assert excinfo.value.code == "backpressure"
    assert excinfo.value.retry_after >= 1.0
    # Account 0 has spent 50 + 12-from-fixture? No — fresh service per
    # fixture; 50 of its 120-token burst. A 100-job ask would breach the
    # remaining budget: rate limit, distinct from backpressure.
    with pytest.raises(ServiceClientError) as excinfo:
        client.submit(0, 0, 50)
    assert excinfo.value.code in {"rate_limited", "backpressure"}
    counters = client.metrics()["service"]
    assert counters["rejected_backpressure"] >= 1
    assert counters["accepted_jobs"] == 50
    # Draining a slot frees intake capacity again.
    client.tick(1)
    assert client.submit(1, 1, 5)["pending_jobs"] == 5


def test_http_malformed_body_is_400_not_500(live_gateway):
    _service, client = live_gateway
    request = urllib.request.Request(
        client.base_url + "/v1/jobs",
        data=b"this is not json",
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(request, timeout=10.0)
    assert excinfo.value.code == 400
    body = json.loads(excinfo.value.read().decode("utf-8"))
    assert body["error"] == "bad_json"


def test_http_shutdown_endpoint_stops_server(tmp_path):
    config = make_config(tmp_path)
    service = SchedulerService(config)
    server = ServiceHTTPServer(("127.0.0.1", 0), service)
    thread = threading.Thread(
        target=server.serve_forever, kwargs={"poll_interval": 0.05}, daemon=True
    )
    thread.start()
    client = ServiceClient(f"http://127.0.0.1:{server.server_address[1]}")
    client.submit(0, 0, 3)
    client.tick(1)
    assert client.shutdown()["stopping"] is True
    thread.join(timeout=10.0)
    assert not thread.is_alive()
    server.server_close()
    # The graceful path wrote a final checkpoint a resume can use.
    payload = config.checkpointer().load()
    assert payload is not None and payload["next_slot"] == 1
