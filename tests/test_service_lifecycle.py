"""SIGKILL-and-restart drill for the gateway, in fresh processes.

The in-process recovery tests (``test_service.py``) can cheat: objects
share memory.  Here nothing does — ``repro serve`` runs as a real
subprocess, gets ``SIGKILL``'d (no atexit, no finally, no final
checkpoint) after acknowledging submissions that were never ticked, and
a *second* process restarts with ``--resume``.  The suite pins:

* the restart resumes from the last completed checkpoint slot,
* every acknowledged submission survives (the write-ahead log is
  flushed before each 202 leaves the gateway),
* the continued run's per-slot records are bit-identical to a third,
  never-interrupted process over the same submission schedule,
* a graceful ``POST /v1/admin/shutdown`` exits 0.
"""

from __future__ import annotations

import os
import queue
import signal
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.service import ServiceClient, ServiceClientError

REPO = Path(__file__).resolve().parents[1]

SERVE_ARGS = [
    "serve",
    "--scenario",
    "small",
    "--seed",
    "0",
    "--v",
    "10.0",
    "--capacity-slots",
    "20",
    "--checkpoint-every",
    "1",
    "--port",
    "0",
]

BATCH_1 = [(0, 0, 10), (1, 1, 3)]
BATCH_2 = [(0, 0, 25), (1, 1, 5)]


def _spawn(data_dir: Path, cwd: Path, resume: bool = False) -> subprocess.Popen:
    args = SERVE_ARGS + ["--data-dir", str(data_dir)]
    if resume:
        args.append("--resume")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", *args],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        cwd=cwd,
        env={
            "PYTHONPATH": str(REPO / "src"),
            "PATH": "/usr/bin:/bin:/usr/local/bin",
            # Forward the sanitizer flag: the CI tsan leg reruns this
            # drill with REPRO_TSAN=1 and a dirty gateway exits 1.
            "REPRO_TSAN": os.environ.get("REPRO_TSAN", ""),
        },
    )
    # A reader thread, not select(): readline() may buffer several lines
    # in one read, after which the fd never polls readable again.
    lines: queue.Queue = queue.Queue()
    thread = threading.Thread(
        target=lambda: [lines.put(line) for line in proc.stdout],
        daemon=True,
    )
    thread.start()
    proc.lines = lines  # type: ignore[attr-defined]
    return proc


def _read_line(proc: subprocess.Popen, timeout: float = 30.0) -> str:
    """One stdout line, or fail loudly if the gateway never prints it."""
    try:
        return proc.lines.get(timeout=timeout).strip()  # type: ignore[attr-defined]
    except queue.Empty:
        stderr = proc.stderr.read() if proc.poll() is not None else ""
        pytest.fail(f"gateway produced no output within the timeout {stderr}")


def _connect(proc: subprocess.Popen) -> ServiceClient:
    line = _read_line(proc)
    assert line.startswith("listening on http://"), line
    return ServiceClient(line.split("listening on ", 1)[1], timeout=15.0)


def _submit_batch(client: ServiceClient, batch) -> list:
    return [
        client.submit(account, job_type, count)["submission_id"]
        for account, job_type, count in batch
    ]


def _kill_hard(proc: subprocess.Popen) -> None:
    os.kill(proc.pid, signal.SIGKILL)
    proc.wait(timeout=10)
    proc.stdout.close()
    proc.stderr.close()


def _finish(proc: subprocess.Popen, client: ServiceClient) -> None:
    client.shutdown()
    assert proc.wait(timeout=15) == 0
    proc.stdout.close()
    proc.stderr.close()


def test_sigkill_resume_is_bit_identical_and_loses_no_acks(tmp_path):
    # --- reference: one uninterrupted gateway over the same schedule ---
    ref_proc = _spawn(tmp_path / "ref", tmp_path)
    ref = _connect(ref_proc)
    _submit_batch(ref, BATCH_1)
    ref.tick(3)
    _submit_batch(ref, BATCH_2)
    ref.tick(3)
    ref_slots = ref.slots()
    ref_accepted = ref.metrics()["service"]["accepted_jobs"]
    _finish(ref_proc, ref)

    # --- victim: SIGKILL right after batch 2 was acknowledged ---------
    victim_proc = _spawn(tmp_path / "svc", tmp_path)
    victim = _connect(victim_proc)
    acked = _submit_batch(victim, BATCH_1)
    victim.tick(3)
    acked += _submit_batch(victim, BATCH_2)
    assert acked == ["sub-1", "sub-2", "sub-3", "sub-4"]
    _kill_hard(victim_proc)

    # --- restart: a brand-new process, only disk state survives -------
    resumed_proc = _spawn(tmp_path / "svc", tmp_path, resume=True)
    resumed = _connect(resumed_proc)
    assert _read_line(resumed_proc).startswith("resumed from checkpoint at slot 3")
    health = resumed.health()
    assert health["resumed_from_slot"] == 3
    # Batch 2 was acknowledged but never checkpointed: it lived only in
    # the write-ahead log, and both submissions came back.
    assert health["recovered_submissions"] == len(BATCH_2)
    assert health["pending_jobs"] == sum(c for _, _, c in BATCH_2)
    resumed.tick(3)

    slots = resumed.slots()
    assert len(slots) == 6
    assert slots == ref_slots
    metrics = resumed.metrics()["service"]
    assert metrics["accepted_jobs"] == ref_accepted
    assert metrics["admitted_jobs"] == float(
        sum(c for _, _, c in BATCH_1 + BATCH_2)
    )
    _finish(resumed_proc, resumed)


def test_sigkill_before_any_checkpoint_replays_the_whole_log(tmp_path):
    victim_proc = _spawn(tmp_path / "svc", tmp_path)
    victim = _connect(victim_proc)
    _submit_batch(victim, BATCH_1)  # acknowledged, never ticked
    _kill_hard(victim_proc)

    resumed_proc = _spawn(tmp_path / "svc", tmp_path, resume=True)
    resumed = _connect(resumed_proc)
    health = resumed.health()
    # No checkpoint existed, so there is no resume slot — but the log
    # still restores every acknowledged submission.
    assert health["resumed_from_slot"] is None
    assert health["recovered_submissions"] == len(BATCH_1)
    assert health["pending_jobs"] == sum(c for _, _, c in BATCH_1)
    record = resumed.tick(1)["records"][0]
    assert record["arrivals"] == [10.0, 3.0]
    _finish(resumed_proc, resumed)


def test_duplicate_resume_does_not_double_count(tmp_path):
    """Kill, resume, kill again without progress, resume again."""
    proc = _spawn(tmp_path / "svc", tmp_path)
    client = _connect(proc)
    _submit_batch(client, BATCH_1)
    client.tick(1)
    _kill_hard(proc)

    for _ in range(2):
        proc = _spawn(tmp_path / "svc", tmp_path, resume=True)
        client = _connect(proc)
        _kill_hard(proc)

    proc = _spawn(tmp_path / "svc", tmp_path, resume=True)
    client = _connect(proc)
    health = client.health()
    assert health["resumed_from_slot"] == 1
    # Slot 0 drained both submissions; repeated resumes must not
    # resurrect them from the log (their seqs predate the checkpoint).
    assert health["pending_jobs"] == 0
    assert client.metrics()["service"]["accepted_jobs"] == sum(
        c for _, _, c in BATCH_1
    )
    with pytest.raises(ServiceClientError) as excinfo:
        client.post("/v1/admin/tick", {"slots": 0})
    assert excinfo.value.status == 400
    _finish(proc, client)
