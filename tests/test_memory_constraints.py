"""Tests for the multi-resource (memory) extension of footnote 3."""

import numpy as np
import pytest

from repro.core.grefar import GreFarScheduler
from repro.model.action import Action
from repro.model.cluster import Cluster
from repro.model.datacenter import DataCenter
from repro.model.job import Account, JobType
from repro.model.server import ServerClass
from repro.model.state import ClusterState
from repro.optimize import SlotServiceProblem, solve_lp, solve_qp
from repro.schedulers import AlwaysScheduler
from repro.simulation.simulator import Simulator
from repro.simulation.trace import Scenario


def _memory_cluster(mem_cap: float = 8.0) -> Cluster:
    """One site with tight memory; two types with different footprints."""
    return Cluster(
        server_classes=(ServerClass(name="s", speed=1.0, active_power=0.5),),
        datacenters=(
            DataCenter(name="d", max_servers=[30], memory_capacity=mem_cap),
        ),
        job_types=(
            JobType(name="lean", demand=1.0, eligible_dcs=(0,), account=0, memory=1.0),
            JobType(name="fat", demand=1.0, eligible_dcs=(0,), account=0, memory=4.0),
        ),
        accounts=(Account(name="a", fair_share=1.0),),
    )


def _problem(cluster, q, v=0.0):
    state = ClusterState(
        np.stack([dc.max_servers for dc in cluster.datacenters]), [0.3]
    )
    return SlotServiceProblem(
        cluster=cluster,
        state=state,
        queue_weights=np.asarray(q, dtype=float),
        h_upper=np.full((1, 2), 20.0),
        v=v,
    )


class TestModelFields:
    def test_defaults_reproduce_base_model(self, cluster):
        assert not cluster.has_memory_constraints
        np.testing.assert_allclose(cluster.memory_demands, 0.0)
        assert np.all(np.isinf(cluster.memory_capacities))

    def test_memory_cluster_flags(self):
        c = _memory_cluster()
        assert c.has_memory_constraints
        np.testing.assert_allclose(c.memory_demands, [1.0, 4.0])
        np.testing.assert_allclose(c.memory_capacities, [8.0])

    def test_job_type_rejects_negative_memory(self):
        with pytest.raises(ValueError):
            JobType(name="t", demand=1.0, eligible_dcs=[0], account=0, memory=-1.0)

    def test_datacenter_rejects_nonpositive_memory(self):
        with pytest.raises(ValueError):
            DataCenter(name="d", max_servers=[1], memory_capacity=0.0)


class TestSlotProblem:
    def test_memory_used(self):
        c = _memory_cluster()
        problem = _problem(c, [[5.0, 5.0]])
        h = np.array([[2.0, 1.5]])
        assert problem.memory_used(h)[0] == pytest.approx(2.0 + 6.0)

    def test_is_feasible_checks_memory(self):
        c = _memory_cluster(mem_cap=8.0)
        problem = _problem(c, [[5.0, 5.0]])
        assert problem.is_feasible(np.array([[4.0, 1.0]]))  # 8 memory
        assert not problem.is_feasible(np.array([[4.0, 2.0]]))  # 12 memory

    def test_clip_feasible_respects_memory(self):
        c = _memory_cluster(mem_cap=8.0)
        problem = _problem(c, [[5.0, 5.0]])
        clipped = problem.clip_feasible(np.array([[8.0, 8.0]]))
        assert problem.memory_used(clipped)[0] <= 8.0 + 1e-9


class TestSolvers:
    def test_lp_respects_memory(self):
        c = _memory_cluster(mem_cap=8.0)
        # High queue reward: without the memory cap the LP would serve
        # everything (v=0 means energy is free to spend).
        problem = _problem(c, [[5.0, 5.0]], v=0.0)
        h = solve_lp(problem)
        assert problem.memory_used(h)[0] <= 8.0 + 1e-6

    def test_lp_prefers_memory_efficient_work(self):
        c = _memory_cluster(mem_cap=8.0)
        # Equal queue reward per job: lean jobs give more reward per
        # memory unit, so they fill the cap first.
        problem = _problem(c, [[5.0, 5.0]], v=0.0)
        h = solve_lp(problem)
        assert h[0, 0] > h[0, 1]

    def test_qp_respects_memory(self):
        c = _memory_cluster(mem_cap=8.0)
        state = ClusterState(np.array([[30.0]]), [0.3])
        problem = SlotServiceProblem(
            cluster=c,
            state=state,
            queue_weights=np.array([[5.0, 5.0]]),
            h_upper=np.full((1, 2), 20.0),
            v=1.0,
            beta=50.0,
        )
        h = solve_qp(problem)
        assert problem.memory_used(h)[0] <= 8.0 + 1e-5


class TestSchedulers:
    def _scenario(self, cluster, horizon=40):
        rng = np.random.default_rng(5)
        return Scenario(
            cluster=cluster,
            arrivals=rng.integers(0, 4, size=(horizon, 2)).astype(float),
            availability=np.full((horizon, 1, 1), 30.0),
            prices=rng.uniform(0.1, 0.6, size=(horizon, 1)),
        )

    def test_grefar_auto_uses_lp_and_validates(self):
        c = _memory_cluster(mem_cap=6.0)
        scn = self._scenario(c)
        result = Simulator(scn, GreFarScheduler(c, v=3.0), validate=True).run()
        assert result.summary.horizon == scn.horizon

    def test_always_respects_memory(self):
        c = _memory_cluster(mem_cap=6.0)
        scn = self._scenario(c)
        result = Simulator(scn, AlwaysScheduler(c), validate=True).run()
        # The memory cap slows fat jobs down: delays exceed the
        # unconstrained baseline's ~1 slot.
        assert result.summary.horizon == scn.horizon

    def test_action_validate_catches_memory_violation(self):
        c = _memory_cluster(mem_cap=4.0)
        state = ClusterState(np.array([[30.0]]), [0.3])
        h = np.array([[0.0, 2.0]])  # 8 memory > 4 cap
        b = np.array([[2.0]])
        action = Action(np.zeros((1, 2)), h, b)
        with pytest.raises(ValueError, match="memory"):
            action.validate(c, state)

    def test_memory_bound_reduces_throughput(self):
        """Same workload, tighter memory -> fewer jobs served early on."""
        loose = _memory_cluster(mem_cap=100.0)
        tight = _memory_cluster(mem_cap=3.0)
        horizon = 15
        arrivals = np.zeros((horizon, 2))
        arrivals[0] = [0.0, 10.0]  # burst of fat jobs
        def run(cluster):
            scn = Scenario(
                cluster=cluster,
                arrivals=arrivals,
                availability=np.full((horizon, 1, 1), 30.0),
                prices=np.full((horizon, 1), 0.1),
            )
            return Simulator(scn, AlwaysScheduler(cluster), validate=True).run()

        fast = run(loose).queues.stats.mean_dc_delay()
        slow = run(tight).queues.stats.mean_dc_delay()
        assert slow > fast
