"""Tests for the receding-horizon (MPC) scheduler."""

import numpy as np
import pytest

from repro.schedulers.receding_horizon import RecedingHorizonScheduler
from repro.simulation.simulator import Simulator
from repro.simulation.trace import Scenario


class TestConstruction:
    def test_valid_modes(self, cluster):
        RecedingHorizonScheduler(cluster, forecast="persistence")
        RecedingHorizonScheduler(cluster, forecast="diurnal")

    def test_oracle_mode(self, cluster, scenario):
        s = RecedingHorizonScheduler(cluster, forecast=scenario)
        assert "oracle" in s.name

    def test_rejects_bad_forecast(self, cluster):
        with pytest.raises(ValueError):
            RecedingHorizonScheduler(cluster, forecast="crystal-ball")

    def test_rejects_bad_window(self, cluster):
        with pytest.raises(ValueError):
            RecedingHorizonScheduler(cluster, window=0)
        with pytest.raises(ValueError):
            RecedingHorizonScheduler(cluster, replan_every=0)


class TestRuns:
    def test_persistence_run_is_valid(self, scenario):
        scheduler = RecedingHorizonScheduler(
            scenario.cluster, window=12, replan_every=4
        )
        result = Simulator(scenario, scheduler, validate=True).run(30)
        assert result.summary.horizon == 30

    def test_diurnal_run_is_valid(self, scenario):
        scheduler = RecedingHorizonScheduler(
            scenario.cluster, window=12, replan_every=4, forecast="diurnal"
        )
        result = Simulator(scenario, scheduler, validate=True).run(40)
        assert result.summary.horizon == 40

    def test_oracle_run_is_valid(self, scenario):
        scheduler = RecedingHorizonScheduler(
            scenario.cluster, window=12, replan_every=4, forecast=scenario
        )
        result = Simulator(scenario, scheduler, validate=True).run(30)
        assert result.summary.horizon == 30

    def test_serves_most_of_the_work(self, scenario):
        scheduler = RecedingHorizonScheduler(
            scenario.cluster, window=12, replan_every=3, forecast=scenario
        )
        result = Simulator(scenario, scheduler).run()
        s = result.summary
        assert s.total_served_jobs > 0.7 * s.total_arrived_jobs

    def test_reset_between_runs(self, scenario):
        scheduler = RecedingHorizonScheduler(scenario.cluster, window=8)
        sim = Simulator(scenario, scheduler)
        a = sim.run(25)
        b = sim.run(25)
        assert a.summary.avg_energy_cost == pytest.approx(
            b.summary.avg_energy_cost
        )


class TestOracleQuality:
    def test_oracle_beats_persistence_on_energy(self, scenario):
        """Perfect information can only help the planner."""

        def energy(forecast):
            scheduler = RecedingHorizonScheduler(
                scenario.cluster, window=12, replan_every=3, forecast=forecast
            )
            return Simulator(scenario, scheduler).run().summary.avg_energy_cost

        assert energy(scenario) <= energy("persistence") * 1.1

    def test_oracle_avoids_price_spike(self, cluster):
        """With a known future spike, the oracle planner pre-serves."""
        horizon = 30
        rng = np.random.default_rng(3)
        arrivals = rng.integers(0, 3, size=(horizon, 2)).astype(float)
        availability = np.tile(
            np.stack([dc.max_servers for dc in cluster.datacenters]), (horizon, 1, 1)
        )
        prices = np.full((horizon, 2), 0.3)
        prices[10:20] = 10.0  # announced spike
        scn = Scenario(
            cluster=cluster,
            arrivals=arrivals,
            availability=availability,
            prices=prices,
        )
        scheduler = RecedingHorizonScheduler(
            cluster, window=15, replan_every=1, forecast=scn
        )
        result = Simulator(scn, scheduler).run()
        work = result.metrics.work_per_dc_series().sum(axis=1)
        # The spike decade processes (almost) nothing.
        assert work[10:20].sum() < 0.2 * work.sum()
