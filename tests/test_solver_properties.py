"""Deep property tests on the solver machinery.

* The QP objective's analytic gradient matches finite differences.
* The greedy solution matches brute-force grid search on tiny problems.
* The merged marginal-cost curve prices exactly what ``energy_cost``
  charges (curve/evaluator consistency).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.cluster import Cluster
from repro.model.datacenter import DataCenter
from repro.model.job import Account, JobType
from repro.model.pricing import TieredPricing
from repro.model.server import ServerClass
from repro.model.state import ClusterState
from repro.optimize import SlotServiceProblem, solve_greedy
from repro.scenarios import small_cluster


def _tiny_cluster(demand=1.0):
    return Cluster(
        server_classes=(ServerClass(name="s", speed=1.0, active_power=1.0),),
        datacenters=(DataCenter(name="d", max_servers=[6]),),
        job_types=(
            JobType(name="a", demand=demand, eligible_dcs=(0,), account=0,
                    max_arrivals=10, max_route=10, max_service=10.0),
            JobType(name="b", demand=2 * demand, eligible_dcs=(0,), account=0,
                    max_arrivals=10, max_route=10, max_service=10.0),
        ),
        accounts=(Account(name="m", fair_share=1.0),),
    )


class TestGreedyVsBruteForce:
    @settings(max_examples=40, deadline=None)
    @given(
        st.floats(min_value=0.0, max_value=8.0),
        st.floats(min_value=0.0, max_value=8.0),
        st.floats(min_value=0.05, max_value=1.5),
        st.floats(min_value=0.0, max_value=10.0),
    )
    def test_greedy_optimal_on_grid(self, q0, q1, price, v):
        """Exhaustive grid search cannot beat the greedy solution."""
        cluster = _tiny_cluster()
        state = ClusterState(np.array([[6.0]]), [price])
        problem = SlotServiceProblem(
            cluster=cluster,
            state=state,
            queue_weights=np.array([[q0, q1]]),
            h_upper=np.array([[4.0, 3.0]]),
            v=v,
        )
        h_greedy = solve_greedy(problem)
        best = problem.objective(h_greedy)
        grid = np.linspace(0, 4, 9)
        for h0 in grid:
            for h1 in np.linspace(0, 3, 7):
                h = np.array([[h0, h1]])
                if not problem.is_feasible(h):
                    continue
                assert best <= problem.objective(h) + 1e-7

    @settings(max_examples=25, deadline=None)
    @given(
        st.floats(min_value=0.0, max_value=8.0),
        st.floats(min_value=0.0, max_value=8.0),
        st.floats(min_value=0.05, max_value=1.0),
    )
    def test_greedy_optimal_on_grid_with_tiers(self, q0, q1, price):
        """Same brute-force check under tiered pricing."""
        cluster = _tiny_cluster()
        state = ClusterState(np.array([[6.0]]), [price])
        problem = SlotServiceProblem(
            cluster=cluster,
            state=state,
            queue_weights=np.array([[q0, q1]]),
            h_upper=np.array([[4.0, 3.0]]),
            v=3.0,
            pricing=TieredPricing(boundaries=(2.0,), multipliers=(1.0, 3.0)),
        )
        h_greedy = solve_greedy(problem)
        best = problem.objective(h_greedy)
        for h0 in np.linspace(0, 4, 9):
            for h1 in np.linspace(0, 3, 7):
                h = np.array([[h0, h1]])
                if not problem.is_feasible(h):
                    continue
                assert best <= problem.objective(h) + 1e-7


class TestSegmentConsistency:
    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_segments_integrate_to_energy_cost(self, seed, load_fraction):
        """Summing the merged marginal-cost curve up to a load equals the
        evaluator's energy cost at that load (single-type probe)."""
        cluster = _tiny_cluster()
        rng = np.random.default_rng(seed)
        state = ClusterState(np.array([[6.0]]), [float(rng.uniform(0.1, 1.0))])
        pricing = TieredPricing(boundaries=(2.5,), multipliers=(1.0, 2.0))
        problem = SlotServiceProblem(
            cluster=cluster,
            state=state,
            queue_weights=np.ones((1, 2)),
            h_upper=np.array([[10.0, 0.0]]),
            v=1.0,
            pricing=pricing,
        )
        load = load_fraction * problem.site_capacity(0)
        # Integrate the curve up to `load`.
        integrated = 0.0
        remaining = load
        for width, unit_cost in problem.marginal_cost_segments(0):
            take = min(width, remaining)
            integrated += take * unit_cost
            remaining -= take
            if remaining <= 1e-12:
                break
        h = np.array([[load / cluster.demands[0], 0.0]])
        assert problem.energy_cost(h) == pytest.approx(integrated, abs=1e-7)


class TestQpGradient:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_pg_subgradient_matches_finite_difference_off_kinks(self, seed):
        """The projected-gradient subgradient equals the numerical
        derivative at interior (non-kink) points."""
        from repro.optimize.projected_gradient import _subgradient

        cluster = small_cluster()
        rng = np.random.default_rng(seed)
        availability = np.stack(
            [dc.max_servers for dc in cluster.datacenters]
        ).astype(float)
        state = ClusterState(availability, rng.uniform(0.2, 0.8, size=2))
        problem = SlotServiceProblem(
            cluster=cluster,
            state=state,
            queue_weights=rng.uniform(0, 10, size=(2, 2)),
            h_upper=np.full((2, 2), 3.0),
            v=float(rng.uniform(0.5, 5.0)),
            beta=float(rng.uniform(0, 50.0)),
        )
        # An interior point well inside the first supply segment.
        h = np.full((2, 2), 0.51) * cluster.eligibility_matrix()
        grad = _subgradient(problem, h)
        eps = 1e-5
        for i in range(2):
            for j in range(2):
                if not cluster.eligibility_matrix()[i, j]:
                    continue
                bump = h.copy()
                bump[i, j] += eps
                numerical = (problem.objective(bump) - problem.objective(h)) / eps
                assert grad[i, j] == pytest.approx(numerical, abs=1e-3)
