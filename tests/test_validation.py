"""Unit tests for the shared validation helpers."""

import numpy as np
import pytest

from repro._validation import (
    as_float_array,
    as_int_array,
    require_array_shape,
    require_at_least,
    require_in_range,
    require_integer,
    require_non_negative,
    require_non_negative_array,
    require_positive,
)


class TestRequirePositive:
    def test_accepts_positive(self):
        assert require_positive(2.5, "x") == 2.5

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="x"):
            require_positive(0.0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            require_positive(-1.0, "x")

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            require_positive(float("nan"), "x")

    def test_rejects_inf(self):
        with pytest.raises(ValueError):
            require_positive(float("inf"), "x")


class TestRequireNonNegative:
    def test_accepts_zero(self):
        assert require_non_negative(0.0, "x") == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            require_non_negative(-0.1, "x")

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            require_non_negative(float("nan"), "x")

    def test_rejects_inf(self):
        with pytest.raises(ValueError):
            require_non_negative(float("inf"), "x")

    def test_returns_builtin_float(self):
        out = require_non_negative(np.float64(1.5), "x")
        assert type(out) is float and out == 1.5


class TestRequireAtLeast:
    def test_accepts_equal_to_minimum(self):
        assert require_at_least(1.0, 1.0, "x") == 1.0

    def test_accepts_above_minimum(self):
        assert require_at_least(2.5, 1.0, "x") == 2.5

    def test_rejects_below_minimum(self):
        with pytest.raises(ValueError, match="x must be a finite number >= 1.0"):
            require_at_least(0.999, 1.0, "x")

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            require_at_least(float("nan"), 1.0, "x")

    def test_rejects_inf(self):
        with pytest.raises(ValueError):
            require_at_least(float("inf"), 1.0, "x")

    def test_negative_minimum(self):
        assert require_at_least(-1.0, -2.0, "x") == -1.0


class TestRequireInRange:
    def test_accepts_boundaries(self):
        assert require_in_range(0.0, 0.0, 1.0, "x") == 0.0
        assert require_in_range(1.0, 0.0, 1.0, "x") == 1.0

    def test_rejects_outside(self):
        with pytest.raises(ValueError):
            require_in_range(1.5, 0.0, 1.0, "x")
        with pytest.raises(ValueError):
            require_in_range(-0.5, 0.0, 1.0, "x")

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            require_in_range(float("nan"), 0.0, 1.0, "x")

    def test_rejects_inf(self):
        with pytest.raises(ValueError):
            require_in_range(float("inf"), 0.0, 1.0, "x")


class TestRequireInteger:
    def test_accepts_int(self):
        assert require_integer(3, "x") == 3

    def test_accepts_numpy_int(self):
        assert require_integer(np.int64(5), "x") == 5

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            require_integer(True, "x")

    def test_rejects_numpy_bool(self):
        with pytest.raises(TypeError):
            require_integer(np.bool_(True), "x")

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            require_integer(3.0, "x")

    def test_enforces_minimum(self):
        with pytest.raises(ValueError):
            require_integer(1, "x", minimum=2)


class TestArrayHelpers:
    def test_require_array_shape(self):
        arr = np.zeros((2, 3))
        assert require_array_shape(arr, (2, 3), "x") is arr
        with pytest.raises(ValueError):
            require_array_shape(arr, (3, 2), "x")

    def test_require_non_negative_array(self):
        arr = np.array([0.0, 1.0])
        assert require_non_negative_array(arr, "x") is arr
        with pytest.raises(ValueError):
            require_non_negative_array(np.array([-1.0]), "x")
        with pytest.raises(ValueError):
            require_non_negative_array(np.array([np.nan]), "x")
        with pytest.raises(ValueError):
            require_non_negative_array(np.array([np.inf]), "x")

    def test_as_float_array(self):
        out = as_float_array([1, 2, 3], "x")
        assert out.dtype == np.float64
        np.testing.assert_array_equal(out, [1.0, 2.0, 3.0])

    def test_as_float_array_rejects_strings(self):
        with pytest.raises(TypeError):
            as_float_array(["a"], "x")

    def test_as_float_array_keeps_nan(self):
        # Conversion is lossless; range checks are a separate concern.
        out = as_float_array([1.0, float("nan")], "x")
        assert np.isnan(out[1])

    def test_as_int_array(self):
        out = as_int_array([1, 2], "x")
        assert out.dtype == np.int64

    def test_as_int_array_rejects_lossy(self):
        with pytest.raises(ValueError):
            as_int_array(np.array([1.5]), "x")

    def test_as_int_array_accepts_integral_floats(self):
        np.testing.assert_array_equal(as_int_array(np.array([2.0, 3.0]), "x"), [2, 3])

    def test_as_int_array_bools_become_ints(self):
        out = as_int_array([True, False], "x")
        assert out.dtype == np.int64
        np.testing.assert_array_equal(out, [1, 0])
