"""Integration tests for the simulator loop."""

import numpy as np
import pytest

from repro.core.grefar import GreFarScheduler
from repro.core.objective import CostModel
from repro.fairness import JainFairness
from repro.schedulers import AlwaysScheduler
from repro.simulation.simulator import Simulator, run_comparison


class TestRun:
    def test_basic_run(self, scenario):
        result = Simulator(scenario, AlwaysScheduler(scenario.cluster)).run()
        assert result.summary.horizon == scenario.horizon
        assert result.metrics.horizon == scenario.horizon

    def test_partial_horizon(self, scenario):
        result = Simulator(scenario, AlwaysScheduler(scenario.cluster)).run(10)
        assert result.summary.horizon == 10

    def test_rejects_bad_horizon(self, scenario):
        sim = Simulator(scenario, AlwaysScheduler(scenario.cluster))
        with pytest.raises(ValueError):
            sim.run(0)
        with pytest.raises(ValueError):
            sim.run(scenario.horizon + 1)

    def test_validated_run(self, scenario):
        result = Simulator(
            scenario,
            GreFarScheduler(scenario.cluster, v=5.0, beta=10.0),
            validate=True,
        ).run(20)
        assert result.summary.horizon == 20

    def test_conservation(self, scenario):
        """Arrived jobs = served jobs + backlog at the end."""
        result = Simulator(scenario, GreFarScheduler(scenario.cluster, v=8.0)).run()
        arrived = result.summary.total_arrived_jobs
        served = result.summary.total_served_jobs
        backlog = result.queues.total_backlog()
        assert served + backlog == pytest.approx(arrived, abs=1e-6)

    def test_custom_cost_model(self, scenario):
        measure = CostModel(beta=0.0, fairness=JainFairness())
        result = Simulator(
            scenario, AlwaysScheduler(scenario.cluster), cost_model=measure
        ).run(20)
        # Jain index lies in (0, 1].
        assert 0.0 < result.summary.avg_fairness <= 1.0

    def test_determinism(self, scenario):
        a = Simulator(scenario, GreFarScheduler(scenario.cluster, v=5.0)).run(30)
        b = Simulator(scenario, GreFarScheduler(scenario.cluster, v=5.0)).run(30)
        assert a.summary.avg_energy_cost == pytest.approx(b.summary.avg_energy_cost)
        np.testing.assert_allclose(
            a.metrics.avg_energy_series(), b.metrics.avg_energy_series()
        )

    def test_scheduler_reset_called(self, scenario):
        """Running twice with the same stateful scheduler gives equal results."""
        scheduler = GreFarScheduler(scenario.cluster, v=5.0)
        sim = Simulator(scenario, scheduler)
        a = sim.run(20)
        b = sim.run(20)
        assert a.summary.avg_energy_cost == pytest.approx(b.summary.avg_energy_cost)


class TestRunComparison:
    def test_returns_all_schedulers(self, scenario):
        results = run_comparison(
            scenario,
            [
                GreFarScheduler(scenario.cluster, v=5.0),
                AlwaysScheduler(scenario.cluster),
            ],
            horizon=15,
        )
        assert len(results) == 2
        assert any("GreFar" in name for name in results)
        assert "Always" in results


class TestPaperShapesSmall:
    """Cheap smoke versions of the paper's qualitative claims."""

    def test_higher_v_means_no_less_delay(self, scenario):
        low = Simulator(scenario, GreFarScheduler(scenario.cluster, v=0.1)).run()
        high = Simulator(scenario, GreFarScheduler(scenario.cluster, v=50.0)).run()
        assert (
            high.summary.avg_total_delay >= low.summary.avg_total_delay - 0.05
        )

    def test_always_is_fastest(self, scenario):
        always = Simulator(scenario, AlwaysScheduler(scenario.cluster)).run()
        grefar = Simulator(scenario, GreFarScheduler(scenario.cluster, v=50.0)).run()
        assert always.summary.avg_total_delay <= grefar.summary.avg_total_delay + 0.05
