"""Finding renderers for the text and JSON output formats."""

from __future__ import annotations

import json
from typing import Sequence

from repro.tools.staticcheck.engine import Finding
from repro.tools.staticcheck.rules import RULES

__all__ = ["render_text", "render_json", "render_rule_listing"]


def render_text(findings: Sequence[Finding], baselined: int = 0) -> str:
    """One ``path:line:col: RULE message`` line per finding + a summary.

    *baselined* is how many findings a ``--baseline`` snapshot absorbed;
    it is surfaced in the summary so a "clean" run never silently hides
    that the baseline is doing the heavy lifting.
    """
    suffix = f" ({baselined} baselined)" if baselined else ""
    if not findings:
        return f"staticcheck: no issues found{suffix}"
    lines = [finding.render() for finding in findings]
    noun = "finding" if len(findings) == 1 else "findings"
    lines.append(f"staticcheck: {len(findings)} {noun}{suffix}")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding], baselined: int = 0) -> str:
    """Machine-readable report (used by the CI gate)."""
    payload = {
        "count": len(findings),
        "baselined": baselined,
        "findings": [finding.as_dict() for finding in findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_rule_listing() -> str:
    """Human-readable registry dump for ``--list-rules``."""
    lines = []
    for rule in RULES:
        lines.append(f"{rule.id}  {rule.title}")
        lines.append(f"       {rule.rationale}")
    return "\n".join(lines)
