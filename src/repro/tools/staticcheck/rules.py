"""The GF rule set: each rule guards a property the paper's proofs need.

Rules receive a parsed :class:`~repro.tools.staticcheck.engine.ModuleContext`
and yield ``(node, message)`` pairs; the engine attaches locations and
applies suppression comments.  Rules are deliberately narrow — they
encode *this* codebase's conventions (the ``QueueNetwork`` API surface,
the ``Scheduler``/``prepare_state`` protocol, the ``repro._validation``
helpers), not generic style.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.tools.staticcheck.engine import ModuleContext

__all__ = [
    "BLOCKING_BUILTINS",
    "BLOCKING_CALLS",
    "BLOCKING_METHOD_NAMES",
    "BLOCKING_PREFIXES",
    "ProjectRule",
    "Rule",
    "RULES",
    "RULE_REGISTRY",
    "rule_ids",
]

Violation = Tuple[ast.AST, str]

# ----------------------------------------------------------------------
# The shared blocking-call model.  GF009 (per-file, tick-path scoped)
# and GF012 (project-wide, lock-held scoped) both read these tables so
# "what counts as blocking" has exactly one definition.
# ----------------------------------------------------------------------
#: Canonical dotted calls that block the calling thread.
BLOCKING_CALLS = frozenset({"time.sleep"})
#: Canonical-path prefixes whose entire surface is considered blocking.
BLOCKING_PREFIXES = (
    "socket.",
    "select.",
    "subprocess.",
    "urllib.request.",
    "http.client.",
    "os.fsync",
)
#: Builtins that block (shadowed-by-import names are exempted by callers).
BLOCKING_BUILTINS = frozenset({"open", "input"})
#: Method names that block regardless of receiver type: file/socket I/O,
#: ``Event.wait``/``Thread.join``.  Receiver-untyped, so GF012 only
#: consults this table when a lock is held and skips constant receivers
#: (``", ".join(...)``).
BLOCKING_METHOD_NAMES = frozenset(
    {
        "wait",
        "join",
        "flush",
        "write",
        "fsync",
        "close",
        "read",
        "readline",
        "recv",
        "send",
        "sendall",
        "accept",
        "connect",
    }
)


class Rule:
    """Base class: one identifier, one scope, one ``check`` generator."""

    #: Stable identifier used in reports and suppression comments.
    id: str = "GF000"
    #: One-line summary shown by ``--list-rules``.
    title: str = ""
    #: Which paper property the rule protects (shown in docs/reports).
    rationale: str = ""
    #: Package-relative path prefixes the rule applies to.  Empty means
    #: every scanned file.  Files that cannot be anchored to the
    #: ``repro`` package (e.g. test fixtures) are always in scope.
    scope: Sequence[str] = ()

    def applies_to(self, ctx: "ModuleContext") -> bool:
        if not self.scope or not ctx.anchored:
            return True
        return ctx.module.startswith(tuple(self.scope))

    def check(self, ctx: "ModuleContext") -> Iterator[Violation]:
        raise NotImplementedError


class ProjectRule(Rule):
    """A rule that sees the whole program, not one file at a time.

    Project rules run after every file is parsed, against the
    :class:`~repro.tools.staticcheck.project.Project` model (symbol
    table, lock model, call graph).  ``check`` is a no-op so the
    per-file dispatch skips them; the engine calls ``check_project``
    once and applies each finding's own module context for scope and
    suppression handling.
    """

    def check(self, ctx: "ModuleContext") -> Iterator[Violation]:
        return iter(())

    def check_project(self, project) -> Iterator[tuple]:
        """Yield ``(ctx, node, message)`` triples across the project."""
        raise NotImplementedError


# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------
def _dotted_name(node: ast.AST) -> str | None:
    """Return ``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _import_map(tree: ast.AST) -> dict:
    """Map local names to canonical dotted module/object paths."""
    table: dict = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    table[alias.asname] = alias.name
                else:
                    table[alias.name.split(".")[0]] = alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                table[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return table


def _canonical_call(node: ast.Call, imports: dict) -> str | None:
    """Resolve a call's function to its canonical dotted path.

    Only resolves through names that were actually imported, so a local
    variable that happens to be called ``random`` is not mistaken for
    the stdlib module.
    """
    dotted = _dotted_name(node.func)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    if head not in imports:
        return None
    canonical = imports[head]
    return f"{canonical}.{rest}" if rest else canonical


def _is_number(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, (int, float))
        and not isinstance(node.value, bool)
    )


def _is_float_literal(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


def _terminal_name(node: ast.AST) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


# ----------------------------------------------------------------------
# GF001 — determinism
# ----------------------------------------------------------------------
class DeterminismRule(Rule):
    """No unseeded/global randomness or wall-clock reads in sim code.

    Theorem 1 is checked by replaying seeded traces; a single global
    RNG draw or wall-clock read makes a run irreproducible and the
    measured ``O(1/V)`` / ``V*C3/delta`` bounds unverifiable.
    """

    id = "GF001"
    title = "simulation code must be deterministic under a seed"
    rationale = (
        "Theorem 1's cost/queue bounds are verified by replaying seeded "
        "traces; global RNG state or wall-clock reads break the replay."
    )
    scope = (
        "core/",
        "model/",
        "simulation/",
        "schedulers/",
        "faults/",
        "workloads/",
    )

    _ALLOWED_NUMPY_RANDOM = {
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "Philox",
    }
    _WALL_CLOCK = {
        "time.time": "time.time()",
        "time.time_ns": "time.time_ns()",
        "datetime.datetime.now": "datetime.now()",
        "datetime.datetime.utcnow": "datetime.utcnow()",
        "datetime.datetime.today": "datetime.today()",
        "datetime.date.today": "date.today()",
    }

    def check(self, ctx: "ModuleContext") -> Iterator[Violation]:
        imports = _import_map(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            canonical = _canonical_call(node, imports)
            if canonical is None:
                continue
            if canonical == "numpy.random.default_rng":
                if not node.args and not node.keywords:
                    yield (
                        node,
                        "unseeded np.random.default_rng(); pass an explicit "
                        "seed or accept an rng parameter",
                    )
            elif canonical.startswith("numpy.random."):
                tail = canonical[len("numpy.random.") :]
                if tail not in self._ALLOWED_NUMPY_RANDOM:
                    yield (
                        node,
                        f"global numpy RNG call np.random.{tail}(); thread a "
                        "seeded np.random.Generator instead",
                    )
            elif canonical == "random" or canonical.startswith("random."):
                yield (
                    node,
                    f"stdlib random call {canonical}(); thread a seeded "
                    "np.random.Generator instead",
                )
            elif canonical in self._WALL_CLOCK:
                yield (
                    node,
                    f"wall-clock read {self._WALL_CLOCK[canonical]}; slot "
                    "time must come from the simulation index t",
                )


# ----------------------------------------------------------------------
# GF002 — queue-update hygiene
# ----------------------------------------------------------------------
class QueueHygieneRule(Rule):
    """Eqs. (12)-(13) state is only touched inside ``model/queues.py``.

    ``QueueNetwork`` keeps the scalar queues and the FIFO delay ledgers
    in lock-step; any outside read or write of the underlying arrays
    can desynchronize them silently.  Use the public surface:
    ``front``/``dc`` (copies), ``step``, ``evict_dc``,
    ``clip_to_content`` and the ledger-total views.
    """

    id = "GF002"
    title = "no direct access to QueueNetwork internals"
    rationale = (
        "the eq. (12)-(13) scalar queues and the FIFO delay ledgers must "
        "stay in lock-step; only model/queues.py may touch them."
    )

    _PROTECTED = {"_front", "_dc", "_front_ledger", "_dc_ledger"}
    _HOME = "model/queues.py"

    def applies_to(self, ctx: "ModuleContext") -> bool:
        return not (ctx.anchored and ctx.module == self._HOME)

    def check(self, ctx: "ModuleContext") -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute) and node.attr in self._PROTECTED:
                yield (
                    node,
                    f"direct access to QueueNetwork internal '{node.attr}' "
                    "outside model/queues.py; use the public API (front/dc/"
                    "step/evict_dc) so eqs. (12)-(13) stay exact",
                )


# ----------------------------------------------------------------------
# GF003 — scheduler conformance
# ----------------------------------------------------------------------
class SchedulerConformanceRule(Rule):
    """Scheduler subclasses implement the protocol PR 1 relies on.

    ``decide`` must route its observation through ``prepare_state`` so
    degraded-mode substitution (last-known-good fill of NaN signals)
    cannot be bypassed, and ``reset`` overrides must chain
    ``super().reset()`` so the degraded-mode memory is cleared between
    runs.
    """

    id = "GF003"
    title = "Scheduler subclasses follow the decide/prepare_state/reset protocol"
    rationale = (
        "degraded-mode scheduling substitutes last-known-good signals in "
        "prepare_state; a decide() that skips it reads NaNs during faults."
    )

    def check(self, ctx: "ModuleContext") -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef) and self._is_scheduler(node):
                yield from self._check_class(node)

    @staticmethod
    def _is_scheduler(node: ast.ClassDef) -> bool:
        for base in node.bases:
            name = _terminal_name(base)
            if name is not None and name.endswith("Scheduler"):
                return True
        return False

    def _check_class(self, node: ast.ClassDef) -> Iterator[Violation]:
        direct = any(_terminal_name(b) == "Scheduler" for b in node.bases)
        methods = {
            stmt.name: stmt
            for stmt in node.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        decide = methods.get("decide")
        if direct and decide is None:
            yield (
                node,
                f"{node.name} subclasses Scheduler but does not override "
                "decide()",
            )
        if decide is not None and not self._is_abstract(decide):
            if not self._calls_method(decide, "prepare_state"):
                yield (
                    decide,
                    f"{node.name}.decide() never calls self.prepare_state(); "
                    "degraded-mode substitution would be bypassed",
                )
        reset = methods.get("reset")
        if reset is not None and not self._calls_super_reset(reset):
            yield (
                reset,
                f"{node.name}.reset() does not call super().reset(); the "
                "degraded-mode memory would leak across runs",
            )

    @staticmethod
    def _is_abstract(func: ast.AST) -> bool:
        for deco in getattr(func, "decorator_list", []):
            name = _terminal_name(deco)
            if name in {"abstractmethod", "abstractproperty"}:
                return True
        return False

    @staticmethod
    def _calls_method(func: ast.AST, method: str) -> bool:
        for node in ast.walk(func):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == method
            ):
                return True
        return False

    @staticmethod
    def _calls_super_reset(func: ast.AST) -> bool:
        for node in ast.walk(func):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "reset"
                and isinstance(node.func.value, ast.Call)
                and isinstance(node.func.value.func, ast.Name)
                and node.func.value.func.id == "super"
            ):
                return True
        return False


# ----------------------------------------------------------------------
# GF004 — validation consistency
# ----------------------------------------------------------------------
class ValidationConsistencyRule(Rule):
    """Parameter checks flow through :mod:`repro._validation`.

    ``assert`` statements vanish under ``python -O`` and hand-rolled
    numeric bound checks in constructors drift in wording and edge
    behavior (NaN/inf slip through ``value < 0``).  The shared helpers
    reject non-finite values and raise uniform messages.
    """

    id = "GF004"
    title = "use repro._validation helpers, not asserts or ad-hoc bound checks"
    rationale = (
        "asserts disappear under -O and ad-hoc `x < 0` checks admit "
        "NaN/inf; repro._validation rejects both consistently."
    )

    _HOME = "_validation.py"
    _CTORS = {"__init__", "__post_init__"}

    def applies_to(self, ctx: "ModuleContext") -> bool:
        return not (ctx.anchored and ctx.module == self._HOME)

    def check(self, ctx: "ModuleContext") -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assert):
                yield (
                    node,
                    "assert statement in library code; it vanishes under "
                    "python -O — use repro._validation or raise explicitly",
                )
            elif (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name in self._CTORS
            ):
                yield from self._check_ctor(node)

    def _check_ctor(self, func: ast.AST) -> Iterator[Violation]:
        for node in ast.walk(func):
            if not isinstance(node, ast.If) or node.orelse:
                continue
            if len(node.body) != 1 or not isinstance(node.body[0], ast.Raise):
                continue
            if not self._raises_value_error(node.body[0]):
                continue
            param = self._numeric_bound_param(node.test)
            if param is not None:
                yield (
                    node,
                    f"hand-rolled bound check on {param!r} in a constructor; "
                    "use repro._validation (require_non_negative, "
                    "require_positive, require_in_range, ...)",
                )

    @staticmethod
    def _raises_value_error(raise_stmt: ast.Raise) -> bool:
        exc = raise_stmt.exc
        if isinstance(exc, ast.Call):
            exc = exc.func
        return _terminal_name(exc) in {"ValueError", "TypeError"}

    @staticmethod
    def _numeric_bound_param(test: ast.AST) -> str | None:
        """Match ``param < 0``-style tests (either orientation)."""
        if not isinstance(test, ast.Compare) or len(test.ops) != 1:
            return None
        if not isinstance(test.ops[0], (ast.Lt, ast.LtE, ast.Gt, ast.GtE)):
            return None
        left, right = test.left, test.comparators[0]
        for value, bound in ((left, right), (right, left)):
            if _is_number(bound):
                name = _terminal_name(value)
                if name is not None:
                    return name
        return None


# ----------------------------------------------------------------------
# GF005 — float equality
# ----------------------------------------------------------------------
class FloatEqualityRule(Rule):
    """No ``==``/``!=`` between float expressions in numeric code.

    The drift-plus-penalty expression (14) and the Theorem 1 bounds are
    float arithmetic; exact equality on ``V``/``beta``/``alpha`` or on
    float literals is order-of-evaluation dependent.  Compare with
    ``math.isclose``/``np.isclose`` (or an explicit inequality when the
    parameter is validated non-negative).
    """

    id = "GF005"
    title = "no ==/!= on float expressions in objective/constraint code"
    rationale = (
        "objective (14) and bound checks are float arithmetic; exact "
        "equality silently depends on evaluation order."
    )
    scope = ("core/", "optimize/", "fairness/", "schedulers/", "analysis/")

    _FLOAT_PARAMS = {"beta", "v", "alpha"}

    def check(self, ctx: "ModuleContext") -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                message = self._flag(left, right)
                if message is not None:
                    yield (node, message)

    def _flag(self, left: ast.AST, right: ast.AST) -> str | None:
        if _is_float_literal(left) or _is_float_literal(right):
            return (
                "equality against a float literal; use math.isclose/"
                "np.isclose"
            )
        for value, other in ((left, right), (right, left)):
            name = _terminal_name(value)
            if name in self._FLOAT_PARAMS and _is_number(other):
                return (
                    f"float parameter {name!r} compared with ==/!=; use "
                    "math.isclose/np.isclose"
                )
        return None


# ----------------------------------------------------------------------
# GF006 — runner routing
# ----------------------------------------------------------------------
class RunnerRoutingRule(Rule):
    """Experiment/analysis code launches runs through :mod:`repro.runner`.

    A direct ``Simulator(...)`` call in an experiment sidesteps the run
    engine — no per-spec seeding discipline, no ``--jobs`` fan-out, no
    result caching, and the run's identity never gets a content
    address.  Describing the run as a :class:`~repro.runner.spec.RunSpec`
    and executing it with ``run_many``/``run_spec`` keeps every paper
    artifact on the one tested execution path.
    """

    id = "GF006"
    title = "experiment/analysis code routes runs through repro.runner"
    rationale = (
        "direct Simulator(...) calls bypass the runner's determinism, "
        "fan-out and caching guarantees; describe the run as a RunSpec "
        "and execute it with run_many/run_spec."
    )
    scope = ("experiments/", "analysis/")

    _SIMULATOR_PATHS = {
        "repro.simulation.simulator.Simulator",
        "repro.simulation.Simulator",
        "repro.Simulator",
    }

    def check(self, ctx: "ModuleContext") -> Iterator[Violation]:
        imports = _import_map(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if _canonical_call(node, imports) in self._SIMULATOR_PATHS:
                yield (
                    node,
                    "direct Simulator(...) call in experiment/analysis "
                    "code; describe the run as a repro.runner.RunSpec and "
                    "execute it with run_many/run_spec",
                )


# ----------------------------------------------------------------------
# GF007 — performance-clock routing
# ----------------------------------------------------------------------
class PerfClockRule(Rule):
    """Performance-clock reads go through :mod:`repro.obs`.

    A bare ``time.perf_counter()`` pair is telemetry the observability
    layer cannot see: it ignores the enabled/disabled gate (cost paid
    even when profiling is off), never lands in the hot-path table, and
    each ad-hoc site re-invents accumulation.  ``Registry.clock()``,
    the ``timed`` decorator and ``span`` blocks are the one timing
    surface; only ``repro/obs/`` itself may touch the clock.
    """

    id = "GF007"
    title = "time through repro.obs, not bare time.perf_counter()"
    rationale = (
        "ad-hoc perf_counter() reads bypass the obs registry's "
        "enabled gate and never reach the hot-path profile; use "
        "Registry.clock(), @timed or span()."
    )

    _HOME = "obs/"
    _CLOCKS = {
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
    }

    def applies_to(self, ctx: "ModuleContext") -> bool:
        return not (ctx.anchored and ctx.module.startswith(self._HOME))

    def check(self, ctx: "ModuleContext") -> Iterator[Violation]:
        imports = _import_map(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            canonical = _canonical_call(node, imports)
            if canonical in self._CLOCKS:
                yield (
                    node,
                    f"direct {canonical}() read outside repro/obs; use "
                    "Registry.clock(), the timed decorator or a span() "
                    "block so the measurement reaches the profile layer",
                )


# ----------------------------------------------------------------------
# GF008 — solver-backend routing
# ----------------------------------------------------------------------
class SolverRoutingRule(Rule):
    """Slot solves in scheduler/experiment code run supervised.

    A direct ``solve_lp``/``solve_qp``/``solve_greedy``/
    ``solve_projected_gradient`` call is an unguarded single point of
    failure: one :class:`~repro.optimize.SolverFailure` (or a NaN
    result) escapes the slot and loses the whole horizon.  Routing
    through :mod:`repro.resilient` — ``solve_service(problem, ...)`` or
    a :class:`~repro.resilient.supervisor.SupervisedSolver` — validates
    the result and degrades down the fallback chain instead.  The
    backends themselves (``optimize/``) and the supervision layer
    (``resilient/``) are out of scope by construction.
    """

    id = "GF008"
    title = "scheduler/experiment code calls solver backends via repro.resilient"
    rationale = (
        "a direct solve_* backend call is an unguarded single point of "
        "failure — one solver exception loses the run; solve_service/"
        "SupervisedSolver validate the result and degrade down the "
        "fallback chain."
    )
    scope = ("core/", "schedulers/", "simulation/", "experiments/", "analysis/")

    _BACKEND_NAMES = {
        "solve_greedy",
        "solve_lp",
        "solve_qp",
        "solve_projected_gradient",
    }

    def check(self, ctx: "ModuleContext") -> Iterator[Violation]:
        imports = _import_map(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            canonical = _canonical_call(node, imports)
            if canonical is None:
                continue
            tail = canonical.rsplit(".", 1)[-1]
            if tail in self._BACKEND_NAMES and canonical.startswith("repro.optimize"):
                yield (
                    node,
                    f"direct solver-backend call {tail}(); route through "
                    "repro.resilient (solve_service / SupervisedSolver) so "
                    "a backend failure degrades down the fallback chain "
                    "instead of losing the run",
                )


# ----------------------------------------------------------------------
# GF009 — tick-path latency hygiene
# ----------------------------------------------------------------------
class TickPathBlockingRule(Rule):
    """No blocking I/O inside the slot-tick/solve path.

    The serving layer's contract is that ingestion (HTTP, disk) and
    scheduling (the slot tick) are decoupled: the tick path runs pure
    in-memory math so a slot completes in bounded time and the
    wall-clock slot schedule never drifts behind a stray ``sleep`` or a
    synchronous read.  Pacing sleeps belong in the ticker's pacing
    loop, file I/O in the ingestion/checkpoint layers — never inside a
    function on the tick path (``tick``/``tick_once``/``step``/
    ``decide``/``run``/``solve``/``solve_*``) of ``repro/service/`` or
    ``repro/simulation/``.
    """

    id = "GF009"
    title = "no blocking I/O (sleep, sockets, file reads) in the tick path"
    rationale = (
        "the slot tick must complete in bounded time or the wall-clock "
        "slot schedule drifts; sleeps belong in the pacing loop and "
        "I/O in the ingestion/checkpoint layers."
    )
    scope = ("service/", "simulation/")

    #: Function names that constitute the tick path.
    _TICK_NAMES = {"tick", "tick_once", "step", "decide", "run", "solve"}
    _TICK_PREFIXES = ("solve_",)

    _BLOCKING_CALLS = BLOCKING_CALLS
    _BLOCKING_PREFIXES = BLOCKING_PREFIXES
    _BLOCKING_BUILTINS = BLOCKING_BUILTINS

    def _on_tick_path(self, name: str) -> bool:
        return name in self._TICK_NAMES or name.startswith(self._TICK_PREFIXES)

    def check(self, ctx: "ModuleContext") -> Iterator[Violation]:
        imports = _import_map(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not self._on_tick_path(node.name):
                continue
            yield from self._check_function(node, imports)

    def _check_function(self, func: ast.AST, imports: dict) -> Iterator[Violation]:
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            canonical = _canonical_call(node, imports)
            if canonical is not None and (
                canonical in self._BLOCKING_CALLS
                or canonical.startswith(self._BLOCKING_PREFIXES)
            ):
                yield (
                    node,
                    f"blocking call {canonical}() inside tick-path function "
                    f"'{func.name}'; move sleeps to the pacing loop and I/O "
                    "to the ingestion/checkpoint layers",
                )
            elif (
                isinstance(node.func, ast.Name)
                and node.func.id in self._BLOCKING_BUILTINS
                and node.func.id not in imports
            ):
                yield (
                    node,
                    f"blocking builtin {node.func.id}() inside tick-path "
                    f"function '{func.name}'; the slot tick must not touch "
                    "files or stdin",
                )


# ----------------------------------------------------------------------
# GF013 — process-spawn routing
# ----------------------------------------------------------------------
class ProcessSpawnRule(Rule):
    """Process spawning lives in ``runner/`` and ``distrib/`` only.

    Those two packages are the supervised fan-out surfaces: the run
    engine (``BrokenProcessPool`` hardening, per-spec seeding, caching)
    and the shard controller (heartbeats, deadlines, respawn budgets,
    checkpoint re-sync, guaranteed teardown).  A ``subprocess.run`` or
    ``multiprocessing.Process`` anywhere else is an unsupervised child
    that leaks on crash, dodges the chaos drills, and breaks the
    determinism story (a spawn mid-simulation is wall-clock state).
    The whole ``multiprocessing.*``/``subprocess.*`` surfaces are
    banned outside the exempt packages — not only the literal spawn
    calls — so helper entry points cannot creep in around the rule.
    """

    id = "GF013"
    title = "process spawning only in runner/ and distrib/"
    rationale = (
        "child processes outside the run engine and the shard "
        "controller have no supervision — no respawn budget, no "
        "checkpoint re-sync, no teardown guarantee — and their spawns "
        "make simulation code wall-clock dependent."
    )

    _ALLOWED = ("runner/", "distrib/")
    _SPAWN_EXACT = frozenset(
        {
            "concurrent.futures.ProcessPoolExecutor",
            "os.fork",
            "os.forkpty",
            "os.posix_spawn",
            "os.posix_spawnp",
            "os.system",
            "os.popen",
            "pty.fork",
        }
    )
    _SPAWN_PREFIXES = ("multiprocessing.", "subprocess.", "os.spawn", "os.exec")

    def applies_to(self, ctx: "ModuleContext") -> bool:
        if ctx.anchored and ctx.module.startswith(self._ALLOWED):
            return False
        return True

    def check(self, ctx: "ModuleContext") -> Iterator[Violation]:
        imports = _import_map(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            canonical = _canonical_call(node, imports)
            if canonical is None:
                continue
            if canonical in self._SPAWN_EXACT or canonical.startswith(
                self._SPAWN_PREFIXES
            ):
                yield (
                    node,
                    f"process-spawning call {canonical}() outside "
                    "repro/runner and repro/distrib; route process fan-out "
                    "through the run engine or the shard controller so "
                    "supervision, checkpoint re-sync and teardown stay on "
                    "the tested paths",
                )


# Imported at the bottom on purpose: concurrency.py subclasses
# ProjectRule (defined above), so by the time this import runs every
# name it needs from this module already exists.
from repro.tools.staticcheck.concurrency import CONCURRENCY_RULES  # noqa: E402

RULES: tuple[Rule, ...] = (
    DeterminismRule(),
    QueueHygieneRule(),
    SchedulerConformanceRule(),
    ValidationConsistencyRule(),
    FloatEqualityRule(),
    RunnerRoutingRule(),
    PerfClockRule(),
    SolverRoutingRule(),
    TickPathBlockingRule(),
    ProcessSpawnRule(),
    *CONCURRENCY_RULES,
)

RULE_REGISTRY: dict = {rule.id: rule for rule in RULES}


def rule_ids() -> list:
    """All registered rule ids, sorted."""
    return sorted(RULE_REGISTRY)
