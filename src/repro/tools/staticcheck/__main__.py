"""``python -m repro.tools.staticcheck`` dispatches to the CLI."""

import sys

from repro.tools.staticcheck.cli import main

if __name__ == "__main__":
    sys.exit(main())
