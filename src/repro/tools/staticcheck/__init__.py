"""Project-specific static analysis for the GreFar reproduction.

The checker parses every Python file with the stdlib :mod:`ast` module
(no third-party dependencies) and applies a small registry of rules
that protect the properties the paper's guarantees rest on:

=======  ==============================================================
GF001    Determinism: no unseeded or global RNG, no wall-clock reads,
         inside the simulation-critical subpackages.
GF002    Queue hygiene: the eq. (12)-(13) dynamics are only touched
         through :class:`~repro.model.queues.QueueNetwork`'s API.
GF003    Scheduler conformance: every ``Scheduler`` subclass implements
         ``decide``, routes observations through ``prepare_state`` and
         chains ``super().reset()``.
GF004    Validation consistency: parameter checks go through
         :mod:`repro._validation`, not ``assert`` or hand-rolled ifs.
GF005    Float equality: no ``==``/``!=`` on float expressions in
         objective/constraint code — use ``math.isclose``/``np.isclose``.
GF006    Runner routing: experiment/analysis modules never instantiate
         ``Simulator`` directly — runs go through :mod:`repro.runner`.
GF007    Solver supervision: raw ``prob.solve`` calls stay inside the
         supervised fallback chain (:mod:`repro.solving`).
GF008    Checkpoint discipline: state snapshots go through the ckpt-v1
         schema helpers, never ad-hoc pickles.
GF009    Tick-path latency: no blocking I/O (sleep, sockets, file
         reads) inside the slot-tick/solve path.
GF010    Guarded fields: attributes annotated ``# guarded-by:
         self.<lock>`` are only touched while that lock is held
         (checked interprocedurally across the call graph).
GF011    Lock order: nested acquisitions form one global DAG; any
         cycle — and any non-reentrant self-re-acquire — is flagged.
GF012    No blocking calls while holding a lock (shares GF009's
         blocking-call tables).
=======  ==============================================================

GF001-GF009 are per-file pattern rules; GF010-GF012 run on a
project-wide model (symbol table + call graph over all scanned files)
built once per invocation.  The runtime companion
:mod:`repro.tools.tsan` enforces the same lock/guard declarations on
the live service under ``REPRO_TSAN=1``, reporting through the same
:class:`Finding` type.

Findings can be suppressed per line with ``# staticcheck: ignore[GF00X]``
(comma-separate several ids, optionally followed by ``-- rationale``) or
per file with a ``# staticcheck: ignore-file[GF00X]`` comment.  Legacy
findings can be snapshotted with ``--write-baseline`` and masked with
``--baseline`` so only regressions fail.

Run it as ``python -m repro.tools.staticcheck src/repro``, via the CLI
subcommand ``repro lint``, or programmatically through
:func:`check_paths`.  See ``docs/STATIC_ANALYSIS.md`` for the rule
rationale and the companion runtime layer :mod:`repro._contracts`.
"""

from repro.tools.staticcheck.engine import Finding, check_file, check_paths
from repro.tools.staticcheck.rules import RULES, Rule, rule_ids

__all__ = ["Finding", "Rule", "RULES", "check_file", "check_paths", "rule_ids"]
