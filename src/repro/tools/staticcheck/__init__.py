"""Project-specific static analysis for the GreFar reproduction.

The checker parses every Python file with the stdlib :mod:`ast` module
(no third-party dependencies) and applies a small registry of rules
that protect the properties the paper's guarantees rest on:

=======  ==============================================================
GF001    Determinism: no unseeded or global RNG, no wall-clock reads,
         inside the simulation-critical subpackages.
GF002    Queue hygiene: the eq. (12)-(13) dynamics are only touched
         through :class:`~repro.model.queues.QueueNetwork`'s API.
GF003    Scheduler conformance: every ``Scheduler`` subclass implements
         ``decide``, routes observations through ``prepare_state`` and
         chains ``super().reset()``.
GF004    Validation consistency: parameter checks go through
         :mod:`repro._validation`, not ``assert`` or hand-rolled ifs.
GF005    Float equality: no ``==``/``!=`` on float expressions in
         objective/constraint code — use ``math.isclose``/``np.isclose``.
GF006    Runner routing: experiment/analysis modules never instantiate
         ``Simulator`` directly — runs go through :mod:`repro.runner`.
=======  ==============================================================

Findings can be suppressed per line with ``# staticcheck: ignore[GF00X]``
(comma-separate several ids) or per file with a
``# staticcheck: ignore-file[GF00X]`` comment.

Run it as ``python -m repro.tools.staticcheck src/repro``, via the CLI
subcommand ``repro lint``, or programmatically through
:func:`check_paths`.  See ``docs/STATIC_ANALYSIS.md`` for the rule
rationale and the companion runtime layer :mod:`repro._contracts`.
"""

from repro.tools.staticcheck.engine import Finding, check_file, check_paths
from repro.tools.staticcheck.rules import RULES, Rule, rule_ids

__all__ = ["Finding", "Rule", "RULES", "check_file", "check_paths", "rule_ids"]
