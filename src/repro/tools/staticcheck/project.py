"""Engine v2: the project-wide analysis model behind GF010-GF012.

The original engine hands each rule one file at a time; the concurrency
rules need to see the whole program.  :func:`build_project` parses every
scanned module once and derives:

* a **symbol table** — every class with its methods, properties, and the
  inferred classes of its ``self.<attr>`` attributes (from constructor
  calls, parameter annotations, and return annotations of calls the
  table can already resolve);
* the **lock model** — attributes assigned a ``threading.Lock()`` /
  ``threading.RLock()`` / :func:`repro.tools.tsan.named_lock` (or bound
  from a lock-annotated parameter), each identified by a stable
  ``(Class, attr)`` key, with ``# lock-alias: Class.attr`` comments
  merging attributes that hold the *same* lock object at runtime (the
  ticker borrows the gateway's lock, so both names must be one node);
* the **guard table** — fields declared ``# guarded-by: self.<lock>``
  on their assignment line;
* a **call graph** — per function, every call site the model can
  resolve (``self.method()``, attribute calls on typed receivers,
  module functions, imported project functions, property reads), each
  annotated with the set of locks held at the site;
* **lock acquisitions** and **blocking-call sites**, likewise annotated
  with the locks held when they happen.

Everything is best-effort and conservative: an expression the inference
cannot type simply resolves to nothing, and the rules only fire on what
*was* resolved — so the engine never needs to import the code under
analysis and unresolvable dynamic calls cannot produce false findings.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.tools.staticcheck.rules import _canonical_call, _dotted_name, _import_map

__all__ = [
    "Acquisition",
    "BlockSite",
    "CallSite",
    "ClassInfo",
    "FieldAccess",
    "FunctionInfo",
    "LockKey",
    "Project",
    "build_project",
    "extract_guarded_fields",
]

#: A lock's stable identity: ``(class name, attribute name)``, after
#: alias normalization.
LockKey = Tuple[str, str]

_GUARDED_BY = re.compile(r"#\s*guarded-by:\s*self\.([A-Za-z_]\w*)")
_LOCK_ALIAS = re.compile(r"#\s*lock-alias:\s*([A-Za-z_]\w*)\.([A-Za-z_]\w*)")

#: Canonical constructors that create a lock object.
_LOCK_CTORS = {"threading.Lock": False, "threading.RLock": True}
#: The tsan factory (``named_lock``) also creates locks; ``reentrant=``
#: keyword decides the kind.
_TSAN_FACTORY_TAIL = "named_lock"


# ----------------------------------------------------------------------
# Data model
# ----------------------------------------------------------------------
@dataclass(eq=False)
class LockSpec:
    """One lock-holding attribute of a class."""

    attr: str
    reentrant: bool = False
    #: Where the alias comment points, if any (pre-normalization).
    alias: Optional[LockKey] = None


@dataclass(eq=False)
class FieldAccess:
    """One read/write of a guarded field."""

    node: ast.AST
    owner: "ClassInfo"
    attr: str
    held: Tuple[LockKey, ...]
    is_store: bool
    function: "FunctionInfo"
    #: True when the receiver is literally ``self`` (constructor writes
    #: to ``self`` are exempt from GF010; aliased receivers are not).
    via_self: bool = False


@dataclass(eq=False)
class CallSite:
    """One resolved call (or property read) with the locks held there."""

    node: ast.AST
    callee: "FunctionInfo"
    held: Tuple[LockKey, ...]
    function: "FunctionInfo"


@dataclass(eq=False)
class BlockSite:
    """One potentially-blocking operation (GF009/GF012 table hit)."""

    node: ast.AST
    desc: str
    held: Tuple[LockKey, ...]
    function: "FunctionInfo"


@dataclass(eq=False)
class Acquisition:
    """One ``with <lock>`` entry with the locks already held."""

    key: LockKey
    node: ast.AST
    held: Tuple[LockKey, ...]
    function: "FunctionInfo"


@dataclass(eq=False)
class FunctionInfo:
    """One function or method plus everything the analysis saw in it."""

    qualname: str
    node: ast.AST
    ctx: object  # ModuleContext (kept untyped to avoid an import cycle)
    class_name: Optional[str] = None
    is_property: bool = False
    accesses: List[FieldAccess] = field(default_factory=list)
    calls: List[CallSite] = field(default_factory=list)
    acquisitions: List[Acquisition] = field(default_factory=list)
    block_sites: List[BlockSite] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]

    @property
    def is_private(self) -> bool:
        name = self.name
        return name.startswith("_") and not name.startswith("__")


@dataclass(eq=False)
class ClassInfo:
    """One class: methods, locks, guarded fields, attribute types."""

    name: str
    module: str
    ctx: object
    node: ast.ClassDef
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    properties: Set[str] = field(default_factory=set)
    locks: Dict[str, LockSpec] = field(default_factory=dict)
    #: field name -> guard lock attribute name (both on this class).
    guarded: Dict[str, str] = field(default_factory=dict)
    #: attribute name -> ClassInfo of its inferred type.
    attr_types: Dict[str, "ClassInfo"] = field(default_factory=dict)
    #: raw ``self.x = <expr>`` assignments, for the type-inference pass.
    _attr_assigns: List[Tuple[str, ast.AST, FunctionInfo]] = field(
        default_factory=list
    )
    #: explicit ``self.x: T`` / class-body ``x: T`` annotations; these
    #: back up value inference when the assigned expression is opaque
    #: (``self.peer: Peer = None``).
    _attr_anns: List[Tuple[str, ast.AST]] = field(default_factory=list)


class Project:
    """The cross-module view the concurrency rules query."""

    def __init__(self, contexts: Sequence[object]) -> None:
        self.contexts = list(contexts)
        #: class simple name -> [ClassInfo] (may collide across modules).
        self.classes_by_name: Dict[str, List[ClassInfo]] = {}
        #: canonical dotted path -> ClassInfo.
        self.classes_by_path: Dict[str, ClassInfo] = {}
        #: canonical dotted path -> module-level FunctionInfo.
        self.functions_by_path: Dict[str, FunctionInfo] = {}
        #: all functions and methods, in deterministic order.
        self.functions: List[FunctionInfo] = []
        #: (class, attr) -> (class, attr) alias normalization map.
        self.lock_aliases: Dict[LockKey, LockKey] = {}
        #: normalized lock key -> reentrant?
        self.lock_reentrant: Dict[LockKey, bool] = {}

    # ------------------------------------------------------------------
    def classes(self) -> Iterable[ClassInfo]:
        return self.classes_by_path.values()

    def resolve_class_name(
        self, name: str, ctx: object
    ) -> Optional[ClassInfo]:
        """Resolve a simple class name as seen from *ctx*'s module."""
        candidates = self.classes_by_name.get(name, [])
        for cls in candidates:
            if cls.ctx is ctx:
                return cls
        if len(candidates) == 1:
            return candidates[0]
        return None

    def normalize_lock(self, key: LockKey) -> LockKey:
        seen = {key}
        while key in self.lock_aliases:
            key = self.lock_aliases[key]
            if key in seen:  # defensive: alias cycles degrade to identity
                break
            seen.add(key)
        return key

    def is_reentrant(self, key: LockKey) -> bool:
        return self.lock_reentrant.get(self.normalize_lock(key), False)

    def callers_of(self, func: FunctionInfo) -> List[CallSite]:
        return [
            site
            for f in self.functions
            for site in f.calls
            if site.callee is func
        ]


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def _module_dotted(ctx) -> str:
    """Canonical dotted module path (``repro.service.ingest``)."""
    stem = ctx.module[:-3] if ctx.module.endswith(".py") else ctx.module
    dotted = stem.replace("/", ".")
    return f"repro.{dotted}" if ctx.anchored else dotted


def _annotation_names(node: Optional[ast.AST]) -> Set[str]:
    """Every terminal identifier mentioned in an annotation expression."""
    names: Set[str] = set()
    if node is None:
        return names
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            names.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            names.add(sub.attr)
        elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            # String annotations: take the last dotted component.
            names.add(sub.value.strip().rsplit(".", 1)[-1].strip("[]' \""))
    return names


def _line_comment_match(ctx, node: ast.AST, pattern: re.Pattern):
    lineno = getattr(node, "lineno", None)
    if lineno is None or lineno > len(ctx.lines):
        return None
    return pattern.search(ctx.lines[lineno - 1])


def _self_attr_target(stmt: ast.AST) -> Optional[str]:
    """``self.<attr>`` assignment target name, if *stmt* is one."""
    targets: List[ast.AST] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        targets = [stmt.target]
    for target in targets:
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            return target.attr
    return None


def _lock_ctor_kind(value: ast.AST, imports: dict) -> Optional[bool]:
    """Is *value* (or a sub-expression) a lock constructor?  -> reentrant."""
    for sub in ast.walk(value):
        if not isinstance(sub, ast.Call):
            continue
        canonical = _canonical_call(sub, imports)
        if canonical in _LOCK_CTORS:
            return _LOCK_CTORS[canonical]
        dotted = _dotted_name(sub.func)
        tail = (canonical or dotted or "").rsplit(".", 1)[-1]
        if tail == _TSAN_FACTORY_TAIL:
            for kw in sub.keywords:
                if (
                    kw.arg == "reentrant"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                ):
                    return True
            return False
    return None


def extract_guarded_fields(source: str) -> Dict[str, Dict[str, str]]:
    """``{class name: {field: lock attr}}`` from one module's source.

    The runtime sanitizer (:mod:`repro.tools.tsan`) calls this so the
    ``# guarded-by`` annotations stay the single source of truth for
    both the static and the runtime layer.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return {}
    lines = source.splitlines()
    table: Dict[str, Dict[str, str]] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        fields: Dict[str, str] = {}
        for stmt in ast.walk(node):
            attr = _self_attr_target(stmt)
            if attr is None:
                continue
            lineno = getattr(stmt, "lineno", 0)
            if 0 < lineno <= len(lines):
                match = _GUARDED_BY.search(lines[lineno - 1])
                if match:
                    fields[attr] = match.group(1)
        if fields:
            table[node.name] = fields
    return table


# ----------------------------------------------------------------------
# Pass A: symbols
# ----------------------------------------------------------------------
def _collect_symbols(project: Project) -> None:
    for ctx in project.contexts:
        dotted = _module_dotted(ctx)
        for node in ctx.tree.body:
            if isinstance(node, ast.ClassDef):
                cls = ClassInfo(name=node.name, module=ctx.module, ctx=ctx, node=node)
                project.classes_by_name.setdefault(node.name, []).append(cls)
                project.classes_by_path[f"{dotted}.{node.name}"] = cls
                _collect_class_members(project, cls)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = FunctionInfo(qualname=node.name, node=node, ctx=ctx)
                project.functions_by_path[f"{dotted}.{node.name}"] = info
                project.functions.append(info)


def _collect_class_members(project: Project, cls: ClassInfo) -> None:
    for stmt in cls.node.body:
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        info = FunctionInfo(
            qualname=f"{cls.name}.{stmt.name}",
            node=stmt,
            ctx=cls.ctx,
            class_name=cls.name,
        )
        for deco in stmt.decorator_list:
            name = deco.attr if isinstance(deco, ast.Attribute) else (
                deco.id if isinstance(deco, ast.Name) else None
            )
            if name in {"property", "cached_property"}:
                info.is_property = True
                cls.properties.add(stmt.name)
        cls.methods[stmt.name] = info
        project.functions.append(info)
    imports = _import_map(cls.ctx.tree)
    # Attribute assignments, lock discovery, guard/alias comments.
    for method in cls.methods.values():
        params = _param_annotations(method.node)
        for stmt in ast.walk(method.node):
            attr = _self_attr_target(stmt)
            if attr is None:
                continue
            value = getattr(stmt, "value", None)
            if value is not None:
                cls._attr_assigns.append((attr, value, method))
                kind = _lock_ctor_kind(value, imports)
                if kind is None and isinstance(value, (ast.Name, ast.IfExp)):
                    kind = _param_lock_kind(value, params)
                if kind is not None and attr not in cls.locks:
                    cls.locks[attr] = LockSpec(attr=attr, reentrant=kind)
            if isinstance(stmt, ast.AnnAssign):
                cls._attr_anns.append((attr, stmt.annotation))
            guard = _line_comment_match(cls.ctx, stmt, _GUARDED_BY)
            if guard:
                cls.guarded[attr] = guard.group(1)
            alias = _line_comment_match(cls.ctx, stmt, _LOCK_ALIAS)
            if alias:
                spec = cls.locks.setdefault(attr, LockSpec(attr=attr))
                spec.alias = (alias.group(1), alias.group(2))
    # Class-body annotations (``peer: Peer``) type attributes too.
    for stmt in cls.node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            cls._attr_anns.append((stmt.target.id, stmt.annotation))
    # A declared guard that was not recognized as a lock still counts
    # as one (the annotation is authoritative).
    for lock_attr in cls.guarded.values():
        cls.locks.setdefault(lock_attr, LockSpec(attr=lock_attr))


def _param_annotations(func: ast.AST) -> Dict[str, ast.AST]:
    table: Dict[str, ast.AST] = {}
    args = func.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        if arg.annotation is not None:
            table[arg.arg] = arg.annotation
    return table


def _param_lock_kind(
    value: ast.AST, params: Dict[str, ast.AST]
) -> Optional[bool]:
    """Lock kind when *value* is (or contains) a lock-annotated parameter."""
    for sub in ast.walk(value):
        if isinstance(sub, ast.Name) and sub.id in params:
            names = _annotation_names(params[sub.id])
            if "RLock" in names:
                return True
            if "Lock" in names:
                return False
    return None


# ----------------------------------------------------------------------
# Pass B: type + alias resolution
# ----------------------------------------------------------------------
def _resolve_types(project: Project) -> None:
    # Two sweeps: attribute types may depend on other classes' return
    # annotations, which may in turn depend on attribute types.
    for _ in range(2):
        for cls in project.classes():
            for attr, value, method in cls._attr_assigns:
                resolved = _infer_type(
                    project, value, _method_env(project, cls, method), cls
                )
                if resolved is not None:
                    cls.attr_types[attr] = resolved
            # Fall back to explicit annotations where value inference
            # came up empty (e.g. ``self.peer: Peer = None``).
            for attr, annotation in cls._attr_anns:
                if attr in cls.attr_types:
                    continue
                for candidate in _annotation_names(annotation):
                    resolved = project.resolve_class_name(candidate, cls.ctx)
                    if resolved is not None:
                        cls.attr_types[attr] = resolved
                        break
    for cls in project.classes():
        for spec in cls.locks.values():
            key = (cls.name, spec.attr)
            if spec.alias is not None and spec.alias != key:
                project.lock_aliases[key] = spec.alias
    for cls in project.classes():
        for spec in cls.locks.values():
            key = project.normalize_lock((cls.name, spec.attr))
            if spec.reentrant:
                project.lock_reentrant[key] = True
            else:
                project.lock_reentrant.setdefault(key, False)


def _method_env(
    project: Project, cls: Optional[ClassInfo], func: FunctionInfo
) -> Dict[str, ClassInfo]:
    """Parameter name -> ClassInfo, from annotations."""
    env: Dict[str, ClassInfo] = {}
    for name, annotation in _param_annotations(func.node).items():
        for candidate in _annotation_names(annotation):
            resolved = project.resolve_class_name(candidate, func.ctx)
            if resolved is not None:
                env[name] = resolved
                break
    return env


def _infer_type(
    project: Project,
    expr: ast.AST,
    env: Dict[str, ClassInfo],
    current: Optional[ClassInfo],
) -> Optional[ClassInfo]:
    """Best-effort static type of *expr* (project classes only)."""
    if isinstance(expr, ast.Name):
        return env.get(expr.id)
    if isinstance(expr, ast.Attribute):
        if isinstance(expr.value, ast.Name) and expr.value.id == "self":
            return current.attr_types.get(expr.attr) if current else None
        base = _infer_type(project, expr.value, env, current)
        if base is not None:
            return base.attr_types.get(expr.attr)
        return None
    if isinstance(expr, ast.Call):
        callee = _resolve_callee(project, expr, env, current)
        if callee is not None:
            returns = getattr(callee.node, "returns", None)
            for candidate in _annotation_names(returns):
                resolved = project.resolve_class_name(candidate, callee.ctx)
                if resolved is not None:
                    return resolved
            return None
        # Direct constructor call: ClassName(...) or module.ClassName(...).
        dotted = _dotted_name(expr.func)
        if dotted is not None:
            tail = dotted.rsplit(".", 1)[-1]
            imports = _import_map(
                current.ctx.tree if current is not None else ast.Module(body=[], type_ignores=[])
            )
            canonical = _canonical_call(expr, imports)
            if canonical is not None and canonical in project.classes_by_path:
                return project.classes_by_path[canonical]
            return project.resolve_class_name(
                tail, current.ctx if current is not None else None
            )
    return None


def _resolve_callee(
    project: Project,
    call: ast.Call,
    env: Dict[str, ClassInfo],
    current: Optional[ClassInfo],
) -> Optional[FunctionInfo]:
    """Resolve a call to a project FunctionInfo, or None."""
    func = call.func
    if isinstance(func, ast.Attribute):
        recv = func.value
        if isinstance(recv, ast.Name) and recv.id == "self" and current is not None:
            return current.methods.get(func.attr)
        recv_type = _infer_type(project, recv, env, current)
        if recv_type is not None:
            return recv_type.methods.get(func.attr)
        return None
    if isinstance(func, ast.Name):
        ctx = current.ctx if current is not None else None
        # Same-module function first, then an imported project function.
        if ctx is not None:
            dotted = _module_dotted(ctx)
            local = project.functions_by_path.get(f"{dotted}.{func.id}")
            if local is not None and local.ctx is ctx:
                return local
            imports = _import_map(ctx.tree)
            canonical = imports.get(func.id)
            if canonical is not None:
                return project.functions_by_path.get(canonical)
    return None


# ----------------------------------------------------------------------
# Pass C: per-function analysis (locks held, calls, accesses, blocking)
# ----------------------------------------------------------------------
class _FunctionAnalyzer(ast.NodeVisitor):
    """Walk one function body tracking the ordered set of held locks."""

    def __init__(
        self,
        project: Project,
        func: FunctionInfo,
        cls: Optional[ClassInfo],
        blocking_calls: Set[str],
        blocking_prefixes: Tuple[str, ...],
        blocking_builtins: Set[str],
        blocking_methods: Set[str],
    ) -> None:
        self.project = project
        self.func = func
        self.cls = cls
        self.env = _method_env(project, cls, func)
        self.imports = _import_map(func.ctx.tree)
        self.held: Tuple[LockKey, ...] = ()
        self._blocking_calls = blocking_calls
        self._blocking_prefixes = blocking_prefixes
        self._blocking_builtins = blocking_builtins
        self._blocking_methods = blocking_methods

    # -- helpers -------------------------------------------------------
    def _lock_key(self, expr: ast.AST) -> Optional[LockKey]:
        if not isinstance(expr, ast.Attribute):
            return None
        if isinstance(expr.value, ast.Name) and expr.value.id == "self":
            if self.cls is not None and expr.attr in self.cls.locks:
                return self.project.normalize_lock((self.cls.name, expr.attr))
            return None
        recv_type = _infer_type(self.project, expr.value, self.env, self.cls)
        if recv_type is not None and expr.attr in recv_type.locks:
            return self.project.normalize_lock((recv_type.name, expr.attr))
        return None

    def _owner_of_attr(self, node: ast.Attribute) -> Optional[ClassInfo]:
        if isinstance(node.value, ast.Name) and node.value.id == "self":
            return self.cls
        return _infer_type(self.project, node.value, self.env, self.cls)

    # -- visitors ------------------------------------------------------
    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    def _visit_with(self, node) -> None:
        acquired: List[LockKey] = []
        for item in node.items:
            key = self._lock_key(item.context_expr)
            if key is not None:
                self.func.acquisitions.append(
                    Acquisition(
                        key=key,
                        node=item.context_expr,
                        held=self.held,
                        function=self.func,
                    )
                )
                self.held = (*self.held, key)
                acquired.append(key)
            else:
                self.visit(item.context_expr)
            if item.optional_vars is not None:
                self.visit(item.optional_vars)
        for stmt in node.body:
            self.visit(stmt)
        if acquired:
            self.held = self.held[: len(self.held) - len(acquired)]

    def visit_Call(self, node: ast.Call) -> None:
        callee = _resolve_callee(self.project, node, self.env, self.cls)
        if callee is not None:
            self.func.calls.append(
                CallSite(node=node, callee=callee, held=self.held, function=self.func)
            )
        else:
            self._check_blocking(node)
        # Still walk arguments (nested calls, lambdas).
        for arg in node.args:
            self.visit(arg)
        for kw in node.keywords:
            self.visit(kw.value)
        # Walk the receiver chain too (it may read guarded fields).
        if isinstance(node.func, ast.Attribute):
            self.visit(node.func.value)

    def _check_blocking(self, node: ast.Call) -> None:
        canonical = _canonical_call(node, self.imports)
        if canonical is not None and (
            canonical in self._blocking_calls
            or canonical.startswith(self._blocking_prefixes)
        ):
            self._record_block(node, f"{canonical}()")
            return
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in self._blocking_builtins
            and node.func.id not in self.imports
        ):
            self._record_block(node, f"{node.func.id}()")
            return
        if isinstance(node.func, ast.Attribute):
            method = node.func.attr
            recv = node.func.value
            if method in self._blocking_methods and not isinstance(
                recv, ast.Constant
            ):
                self._record_block(node, f".{method}()")

    def _record_block(self, node: ast.AST, desc: str) -> None:
        self.func.block_sites.append(
            BlockSite(node=node, desc=desc, held=self.held, function=self.func)
        )

    def visit_Attribute(self, node: ast.Attribute) -> None:
        owner = self._owner_of_attr(node)
        if owner is not None:
            if node.attr in owner.guarded:
                self.func.accesses.append(
                    FieldAccess(
                        node=node,
                        owner=owner,
                        attr=node.attr,
                        held=self.held,
                        is_store=isinstance(node.ctx, (ast.Store, ast.Del)),
                        function=self.func,
                        via_self=(
                            isinstance(node.value, ast.Name)
                            and node.value.id == "self"
                        ),
                    )
                )
            elif node.attr in owner.properties and isinstance(node.ctx, ast.Load):
                # A property read is a call in disguise.
                self.func.calls.append(
                    CallSite(
                        node=node,
                        callee=owner.methods[node.attr],
                        held=self.held,
                        function=self.func,
                    )
                )
        self.visit(node.value)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # nested defs get their own FunctionInfo only if module/class level

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        pass  # nested classes are out of model


def _analyze_functions(project: Project, blocking_tables: dict) -> None:
    for func in project.functions:
        cls = None
        if func.class_name is not None:
            cls = project.resolve_class_name(func.class_name, func.ctx)
        analyzer = _FunctionAnalyzer(
            project,
            func,
            cls,
            blocking_calls=blocking_tables["calls"],
            blocking_prefixes=blocking_tables["prefixes"],
            blocking_builtins=blocking_tables["builtins"],
            blocking_methods=blocking_tables["methods"],
        )
        for stmt in func.node.body:
            analyzer.visit(stmt)


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def build_project(contexts: Sequence[object]) -> Project:
    """Build the full cross-module model over parsed *contexts*."""
    # Imported lazily so rules.py can import this module at its bottom
    # without a hard circular dependency at class-definition time.
    from repro.tools.staticcheck.rules import (
        BLOCKING_BUILTINS,
        BLOCKING_CALLS,
        BLOCKING_METHOD_NAMES,
        BLOCKING_PREFIXES,
    )

    project = Project(contexts)
    _collect_symbols(project)
    _resolve_types(project)
    _analyze_functions(
        project,
        {
            "calls": set(BLOCKING_CALLS),
            "prefixes": tuple(BLOCKING_PREFIXES),
            "builtins": set(BLOCKING_BUILTINS),
            "methods": set(BLOCKING_METHOD_NAMES),
        },
    )
    return project
