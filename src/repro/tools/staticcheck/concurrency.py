"""The concurrency rule family (GF010-GF012), built on the project model.

These are the engine-v2 rules: they run once against the
:class:`~repro.tools.staticcheck.project.Project` built over every
scanned file, so they can follow a field access through the call graph
(GF010), stitch a global lock-order graph out of nested ``with`` blocks
in different modules (GF011), and propagate "this function blocks"
facts from a WAL flush up to the lock that was held three frames above
it (GF012).

Two comment conventions drive them (see ``docs/STATIC_ANALYSIS.md``):

``# guarded-by: self.<lock>``
    on a ``self.<field> = ...`` assignment declares that every read or
    write of ``<field>`` must happen while ``self.<lock>`` is held.

``# lock-alias: Class.attr``
    on a lock-attribute assignment declares that this attribute holds
    the *same runtime lock object* as ``Class.attr`` (the slot ticker
    borrows the gateway's lock), merging the two names into one node of
    the lock graph.

The same annotations feed the runtime sanitizer
(:mod:`repro.tools.tsan`), so the static and dynamic layers enforce one
discipline and report in one format.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Dict, FrozenSet, Iterator, List, Set, Tuple

from repro.tools.staticcheck.rules import ProjectRule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.tools.staticcheck.project import (
        CallSite,
        FunctionInfo,
        LockKey,
        Project,
    )

__all__ = [
    "CONCURRENCY_RULES",
    "GuardedFieldRule",
    "LockOrderRule",
    "LockHeldBlockingRule",
]

#: Methods where a class constructs itself; ``self`` is not yet shared,
#: so guarded-field writes there need no lock.
_CTOR_NAMES = {"__init__", "__post_init__"}


def _fmt(key: "LockKey") -> str:
    return f"{key[0]}.{key[1]}"


def _callers(project: "Project") -> Dict["FunctionInfo", List["CallSite"]]:
    table: Dict["FunctionInfo", List["CallSite"]] = {
        func: [] for func in project.functions
    }
    for func in project.functions:
        for site in func.calls:
            table.setdefault(site.callee, []).append(site)
    return table


def _guaranteed_entry(
    project: "Project",
) -> Dict["FunctionInfo", FrozenSet["LockKey"]]:
    """Locks *guaranteed* held on entry: intersection over all callers.

    A function with no resolved caller is a potential entry point and
    gets the empty set; everything else starts at the full lock universe
    and shrinks to a fixpoint.  This is what lets a private
    ``_foo_locked`` helper touch guarded state lock-free, provided every
    caller holds the guard at the call site.
    """
    callers = _callers(project)
    universe = frozenset(project.lock_reentrant)
    entry: Dict["FunctionInfo", FrozenSet["LockKey"]] = {
        func: (universe if callers[func] else frozenset())
        for func in project.functions
    }
    changed = True
    while changed:
        changed = False
        for func in project.functions:
            if not callers[func]:
                continue
            new: FrozenSet["LockKey"] = universe
            for site in callers[func]:
                new = new & (frozenset(site.held) | entry[site.function])
            if new != entry[func]:
                entry[func] = new
                changed = True
    return entry


def _may_entry(project: "Project") -> Dict["FunctionInfo", FrozenSet["LockKey"]]:
    """Locks *possibly* held on entry: union over all callers.

    The dual of :func:`_guaranteed_entry`, used for lock-order edges —
    *any* caller that holds A while this function acquires B commits the
    program to the A-before-B order.
    """
    callers = _callers(project)
    entry: Dict["FunctionInfo", FrozenSet["LockKey"]] = {
        func: frozenset() for func in project.functions
    }
    changed = True
    while changed:
        changed = False
        for func in project.functions:
            new: FrozenSet["LockKey"] = frozenset()
            for site in callers[func]:
                new = new | frozenset(site.held) | entry[site.function]
            if new != entry[func]:
                entry[func] = new
                changed = True
    return entry


# ----------------------------------------------------------------------
# GF010 — guarded-field discipline
# ----------------------------------------------------------------------
class GuardedFieldRule(ProjectRule):
    """Fields declared ``# guarded-by:`` are only touched under their lock.

    Checked interprocedurally: an access is clean when the guard is held
    in the accessing function itself *or* guaranteed held by every
    resolved caller (the ``_locked``-helper idiom).  Constructor writes
    are exempt — ``self`` is not shared until ``__init__`` returns.
    """

    id = "GF010"
    title = "guarded fields are only accessed while their declared lock is held"
    rationale = (
        "the service's replay bit-identity rests on the WAL sequence "
        "counters and intake queues mutating atomically; a lock-free "
        "touch of a # guarded-by field is a data race that can corrupt "
        "the Theorem 1 accounting silently."
    )

    def check_project(self, project: "Project") -> Iterator[tuple]:
        entry = _guaranteed_entry(project)
        for func in project.functions:
            for access in func.accesses:
                guard = project.normalize_lock(
                    (access.owner.name, access.owner.guarded[access.attr])
                )
                if guard in access.held or guard in entry[func]:
                    continue
                if (
                    access.via_self
                    and func.name in _CTOR_NAMES
                    and func.class_name == access.owner.name
                ):
                    continue
                verb = "written" if access.is_store else "read"
                yield (
                    func.ctx,
                    access.node,
                    f"guarded field {access.owner.name}.{access.attr} "
                    f"{verb} without holding {_fmt(guard)} (declared "
                    f"'# guarded-by: self.{access.owner.guarded[access.attr]}'); "
                    "acquire the lock here or make every caller hold it",
                )


# ----------------------------------------------------------------------
# GF011 — global lock-acquisition-order consistency
# ----------------------------------------------------------------------
class LockOrderRule(ProjectRule):
    """The project-wide lock graph must be a DAG.

    Every nested acquisition — directly via nested ``with`` blocks or
    indirectly through a call made while a lock is held — contributes an
    ``outer -> inner`` edge.  A cycle means two threads can each hold
    one lock of a pair while waiting for the other: a deadlock waiting
    for the right interleaving.  Re-acquiring a non-reentrant lock
    already (possibly) held is flagged as a certain self-deadlock.
    """

    id = "GF011"
    title = "lock acquisition order is globally consistent (the lock graph is a DAG)"
    rationale = (
        "the gateway's query endpoints, ticker and HTTP producers share "
        "five locks; one inverted nesting anywhere freezes the whole "
        "service under load, which no single-file rule can see."
    )

    def check_project(self, project: "Project") -> Iterator[tuple]:
        may = _may_entry(project)
        edges: Dict[Tuple["LockKey", "LockKey"], tuple] = {}
        for func in project.functions:
            for acq in func.acquisitions:
                prior: Set["LockKey"] = set(acq.held) | may[func]
                if acq.key in prior:
                    if not project.is_reentrant(acq.key):
                        yield (
                            func.ctx,
                            acq.node,
                            f"non-reentrant lock {_fmt(acq.key)} may already "
                            "be held on this path (self-deadlock); use a "
                            "reentrant lock or split a *_locked helper",
                        )
                    prior.discard(acq.key)
                for held in sorted(prior):
                    edges.setdefault((held, acq.key), (func.ctx, acq.node))
        component = _scc(edges)
        for (src, dst), (ctx, node) in edges.items():
            comp = component.get(src)
            if comp is None or comp != component.get(dst):
                continue
            members = sorted({k for k, c in component.items() if c == comp})
            cycle = " -> ".join(_fmt(m) for m in members + members[:1])
            yield (
                ctx,
                node,
                f"acquiring {_fmt(dst)} while holding {_fmt(src)} "
                f"completes a lock-order cycle ({cycle}); pick one global "
                "acquisition order",
            )


def _scc(
    edges: Dict[Tuple["LockKey", "LockKey"], tuple]
) -> Dict["LockKey", "LockKey"]:
    """Map each node on a cycle to a canonical component id.

    Kosaraju over the edge set; nodes whose strongly connected component
    is trivial (size 1, no self-loop — self-loops are reported
    separately) are omitted, so membership in the returned map means
    "participates in some cycle".
    """
    adjacency: Dict["LockKey", List["LockKey"]] = {}
    reverse: Dict["LockKey", List["LockKey"]] = {}
    nodes: List["LockKey"] = []
    for src, dst in edges:
        for node in (src, dst):
            if node not in adjacency:
                adjacency[node] = []
                reverse[node] = []
                nodes.append(node)
        adjacency[src].append(dst)
        reverse[dst].append(src)
    order: List["LockKey"] = []
    seen: Set["LockKey"] = set()
    for start in nodes:
        if start in seen:
            continue
        seen.add(start)
        stack: List[Tuple["LockKey", int]] = [(start, 0)]
        while stack:
            node, idx = stack.pop()
            if idx < len(adjacency[node]):
                stack.append((node, idx + 1))
                nxt = adjacency[node][idx]
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append((nxt, 0))
            else:
                order.append(node)
    visited: Dict["LockKey", "LockKey"] = {}
    cyclic: Dict["LockKey", "LockKey"] = {}
    for start in reversed(order):
        if start in visited:
            continue
        members = [start]
        visited[start] = start
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for prev in reverse[node]:
                if prev not in visited:
                    visited[prev] = start
                    members.append(prev)
                    frontier.append(prev)
        if len(members) > 1:
            for member in members:
                cyclic[member] = start
    return cyclic


# ----------------------------------------------------------------------
# GF012 — no lock held across blocking calls
# ----------------------------------------------------------------------
class LockHeldBlockingRule(ProjectRule):
    """Nothing blocks — sleeps, sockets, file writes, waits — under a lock.

    Composes with GF009's blocking-call table and propagates through the
    call graph: a function containing a blocking site is itself
    blocking, and calling it with a lock held is flagged at the call
    site.  A ``# staticcheck: ignore[GF012]`` suppression *vets* its
    site — the reviewed blocking fact does not propagate further up, so
    one suppression at the innermost lock-meets-blocking frontier (the
    WAL flush that must happen inside the sequence lock) is enough.
    """

    id = "GF012"
    title = "no lock held across blocking calls (I/O, sleeps, waits, joins)"
    rationale = (
        "a lock held across a disk flush or socket wait turns one slow "
        "syscall into a service-wide stall: every HTTP thread and the "
        "ticker queue up behind it and the slot schedule drifts."
    )

    def check_project(self, project: "Project") -> Iterator[tuple]:
        blocking = self._blocking_functions(project)
        for func in project.functions:
            for site in func.block_sites:
                if site.held:
                    yield (
                        func.ctx,
                        site.node,
                        f"blocking call {site.desc} while holding "
                        f"{self._held_desc(site.held)}; move the I/O "
                        "outside the critical section or suppress with a "
                        "rationale",
                    )
            for site in func.calls:
                if site.held and site.callee in blocking:
                    yield (
                        func.ctx,
                        site.node,
                        f"call to blocking {site.callee.qualname}() while "
                        f"holding {self._held_desc(site.held)}; it reaches "
                        "blocking I/O — move it outside the critical "
                        "section or suppress with a rationale",
                    )

    @staticmethod
    def _held_desc(held: tuple) -> str:
        return ", ".join(_fmt(key) for key in held)

    def _blocking_functions(self, project: "Project") -> Set["FunctionInfo"]:
        """Fixpoint of "transitively reaches unvetted blocking I/O".

        Suppressed sites (``# staticcheck: ignore[GF012]`` on the line)
        are treated as reviewed-safe and do not propagate.
        """
        blocking: Set["FunctionInfo"] = set()
        changed = True
        while changed:
            changed = False
            for func in project.functions:
                if func in blocking:
                    continue
                direct = any(
                    not self._vetted(func, site.node)
                    for site in func.block_sites
                )
                via_call = any(
                    site.callee in blocking and not self._vetted(func, site.node)
                    for site in func.calls
                )
                if direct or via_call:
                    blocking.add(func)
                    changed = True
        return blocking

    def _vetted(self, func: "FunctionInfo", node: ast.AST) -> bool:
        line = getattr(node, "lineno", 0)
        return func.ctx.suppressed(self.id, line)


CONCURRENCY_RULES: tuple = (
    GuardedFieldRule(),
    LockOrderRule(),
    LockHeldBlockingRule(),
)
