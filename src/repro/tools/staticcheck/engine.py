"""Scanner core: file walking, parsing, suppression, rule dispatch.

The engine is filesystem-only — it never imports the code it checks, so
it can be pointed at broken or adversarial files (the self-test
fixtures) safely.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Sequence, Set

from repro.tools.staticcheck.rules import RULE_REGISTRY, RULES, Rule

__all__ = ["Finding", "ModuleContext", "check_file", "check_paths", "iter_python_files"]

_SUPPRESS_LINE = re.compile(r"#\s*staticcheck:\s*ignore\[([A-Za-z0-9_,\s]+)\]")
_SUPPRESS_FILE = re.compile(r"#\s*staticcheck:\s*ignore-file\[([A-Za-z0-9_,\s]+)\]")
_SKIP_DIRS = {"__pycache__", ".git", ".venv", "build", "dist"}

#: Rule id used for files the parser rejects (not suppressible).
PARSE_ERROR_ID = "GF000"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def as_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


@dataclass
class ModuleContext:
    """Everything a rule may look at for one file."""

    path: Path
    tree: ast.AST
    lines: List[str]
    #: Path relative to the ``repro`` package (posix separators) when the
    #: file lives inside it, else the bare file name.
    module: str = ""
    #: True when the file was anchored to the ``repro`` package.  Rules
    #: treat unanchored files (fixtures, scratch scripts) as in scope.
    anchored: bool = False
    _line_suppressions: Dict[int, Set[str]] = field(default_factory=dict)
    _file_suppressions: Set[str] = field(default_factory=set)

    def __post_init__(self) -> None:
        parts = self.path.resolve().parts
        if "repro" in parts:
            anchor = len(parts) - 1 - parts[::-1].index("repro")
            rel = parts[anchor + 1 :]
            if rel:
                self.module = "/".join(rel)
                self.anchored = True
        if not self.module:
            self.module = self.path.name
        for lineno, text in enumerate(self.lines, start=1):
            match = _SUPPRESS_LINE.search(text)
            if match:
                ids = {part.strip().upper() for part in match.group(1).split(",")}
                self._line_suppressions[lineno] = {i for i in ids if i}
            match = _SUPPRESS_FILE.search(text)
            if match:
                ids = {part.strip().upper() for part in match.group(1).split(",")}
                self._file_suppressions |= {i for i in ids if i}

    def suppressed(self, rule_id: str, line: int) -> bool:
        if rule_id in self._file_suppressions:
            return True
        return rule_id in self._line_suppressions.get(line, ())


def _select_rules(select: Sequence[str] | None) -> List[Rule]:
    if select is None:
        return list(RULES)
    chosen: List[Rule] = []
    for rule_id in select:
        key = rule_id.strip().upper()
        if key not in RULE_REGISTRY:
            raise ValueError(
                f"unknown rule {rule_id!r}; known rules: {sorted(RULE_REGISTRY)}"
            )
        chosen.append(RULE_REGISTRY[key])
    return chosen


def check_file(path: Path | str, select: Sequence[str] | None = None) -> List[Finding]:
    """Run the (selected) rules over one file; return sorted findings."""
    path = Path(path)
    source = path.read_text(encoding="utf-8")
    display = str(path)
    try:
        tree = ast.parse(source, filename=display)
    except SyntaxError as exc:
        return [
            Finding(
                path=display,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                rule=PARSE_ERROR_ID,
                message=f"could not parse file: {exc.msg}",
            )
        ]
    ctx = ModuleContext(path=path, tree=tree, lines=source.splitlines())
    findings: List[Finding] = []
    for rule in _select_rules(select):
        if not rule.applies_to(ctx):
            continue
        for node, message in rule.check(ctx):
            line = getattr(node, "lineno", 1)
            col = getattr(node, "col_offset", 0)
            if ctx.suppressed(rule.id, line):
                continue
            findings.append(
                Finding(path=display, line=line, col=col, rule=rule.id, message=message)
            )
    return sorted(findings)


def iter_python_files(paths: Iterable[Path | str]) -> Iterator[Path]:
    """Yield every ``.py`` file under *paths* in deterministic order."""
    for entry in paths:
        entry = Path(entry)
        if entry.is_file():
            if entry.suffix == ".py":
                yield entry
            continue
        if not entry.is_dir():
            raise FileNotFoundError(f"no such file or directory: {entry}")
        for candidate in sorted(entry.rglob("*.py")):
            if not _SKIP_DIRS.intersection(candidate.parts):
                yield candidate


def check_paths(
    paths: Iterable[Path | str], select: Sequence[str] | None = None
) -> List[Finding]:
    """Run the (selected) rules over every Python file under *paths*."""
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(check_file(path, select=select))
    return findings
