"""Scanner core: file walking, parsing, suppression, rule dispatch.

The engine is filesystem-only — it never imports the code it checks, so
it can be pointed at broken or adversarial files (the self-test
fixtures) safely.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Sequence, Set

from repro.tools.staticcheck.project import build_project
from repro.tools.staticcheck.rules import RULE_REGISTRY, RULES, ProjectRule, Rule

__all__ = ["Finding", "ModuleContext", "check_file", "check_paths", "iter_python_files"]

_SUPPRESS_LINE = re.compile(r"#\s*staticcheck:\s*ignore\[([A-Za-z0-9_,\s]+)\]")
_SUPPRESS_FILE = re.compile(r"#\s*staticcheck:\s*ignore-file\[([A-Za-z0-9_,\s]+)\]")
_SKIP_DIRS = {"__pycache__", ".git", ".venv", "build", "dist"}

#: Rule id used for files the parser rejects (not suppressible).
PARSE_ERROR_ID = "GF000"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def as_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


@dataclass
class ModuleContext:
    """Everything a rule may look at for one file."""

    path: Path
    tree: ast.AST
    lines: List[str]
    #: Path relative to the ``repro`` package (posix separators) when the
    #: file lives inside it, else the bare file name.
    module: str = ""
    #: True when the file was anchored to the ``repro`` package.  Rules
    #: treat unanchored files (fixtures, scratch scripts) as in scope.
    anchored: bool = False
    _line_suppressions: Dict[int, Set[str]] = field(default_factory=dict)
    _file_suppressions: Set[str] = field(default_factory=set)

    def __post_init__(self) -> None:
        parts = self.path.resolve().parts
        if "repro" in parts:
            anchor = len(parts) - 1 - parts[::-1].index("repro")
            rel = parts[anchor + 1 :]
            if rel:
                self.module = "/".join(rel)
                self.anchored = True
        if not self.module:
            self.module = self.path.name
        for lineno, text in enumerate(self.lines, start=1):
            match = _SUPPRESS_LINE.search(text)
            if match:
                ids = {part.strip().upper() for part in match.group(1).split(",")}
                self._line_suppressions[lineno] = {i for i in ids if i}
            match = _SUPPRESS_FILE.search(text)
            if match:
                ids = {part.strip().upper() for part in match.group(1).split(",")}
                self._file_suppressions |= {i for i in ids if i}

    def suppressed(self, rule_id: str, line: int) -> bool:
        if rule_id in self._file_suppressions:
            return True
        return rule_id in self._line_suppressions.get(line, ())


def _select_rules(select: Sequence[str] | None) -> List[Rule]:
    if select is None:
        return list(RULES)
    chosen: List[Rule] = []
    for rule_id in select:
        key = rule_id.strip().upper()
        if key not in RULE_REGISTRY:
            raise ValueError(
                f"unknown rule {rule_id!r}; known rules: {sorted(RULE_REGISTRY)}"
            )
        chosen.append(RULE_REGISTRY[key])
    return chosen


def _parse_file(path: Path) -> "ModuleContext | Finding":
    """Parse one file into a context, or a GF000 finding on failure."""
    source = path.read_text(encoding="utf-8")
    display = str(path)
    try:
        tree = ast.parse(source, filename=display)
    except SyntaxError as exc:
        line = exc.lineno or 1
        col = (exc.offset or 1) - 1
        return Finding(
            path=display,
            line=line,
            col=col,
            rule=PARSE_ERROR_ID,
            message=f"could not parse file: {exc.msg} (line {line}, column {col + 1})",
        )
    return ModuleContext(path=path, tree=tree, lines=source.splitlines())


def _check_contexts(
    contexts: List["ModuleContext"], rules: List[Rule]
) -> List[Finding]:
    """Per-file rules on each context, then project rules on all of them."""
    findings: List[Finding] = []
    file_rules = [rule for rule in rules if not isinstance(rule, ProjectRule)]
    project_rules = [rule for rule in rules if isinstance(rule, ProjectRule)]
    for ctx in contexts:
        display = str(ctx.path)
        for rule in file_rules:
            if not rule.applies_to(ctx):
                continue
            for node, message in rule.check(ctx):
                line = getattr(node, "lineno", 1)
                col = getattr(node, "col_offset", 0)
                if ctx.suppressed(rule.id, line):
                    continue
                findings.append(
                    Finding(
                        path=display, line=line, col=col, rule=rule.id, message=message
                    )
                )
    if project_rules and contexts:
        # The model spans *all* scanned files — call-graph edges cross
        # module boundaries even when a rule's scope narrows where its
        # findings may land.
        project = build_project(contexts)
        for rule in project_rules:
            for ctx, node, message in rule.check_project(project):
                if not rule.applies_to(ctx):
                    continue
                line = getattr(node, "lineno", 1)
                col = getattr(node, "col_offset", 0)
                if ctx.suppressed(rule.id, line):
                    continue
                findings.append(
                    Finding(
                        path=str(ctx.path),
                        line=line,
                        col=col,
                        rule=rule.id,
                        message=message,
                    )
                )
    return sorted(findings)


def check_file(path: Path | str, select: Sequence[str] | None = None) -> List[Finding]:
    """Run the (selected) rules over one file; return sorted findings.

    Project rules see a single-file project here — enough for fixtures
    and ad-hoc checks; run :func:`check_paths` for cross-module edges.
    """
    parsed = _parse_file(Path(path))
    if isinstance(parsed, Finding):
        return [parsed]
    return _check_contexts([parsed], _select_rules(select))


def iter_python_files(paths: Iterable[Path | str]) -> Iterator[Path]:
    """Yield every ``.py`` file under *paths* in deterministic order."""
    for entry in paths:
        entry = Path(entry)
        if entry.is_file():
            if entry.suffix == ".py":
                yield entry
            continue
        if not entry.is_dir():
            raise FileNotFoundError(f"no such file or directory: {entry}")
        for candidate in sorted(entry.rglob("*.py")):
            if not _SKIP_DIRS.intersection(candidate.parts):
                yield candidate


def check_paths(
    paths: Iterable[Path | str], select: Sequence[str] | None = None
) -> List[Finding]:
    """Run the (selected) rules over every Python file under *paths*.

    All files are parsed first so the project rules (GF010-GF012) see
    one symbol table and call graph spanning the whole scan set.
    """
    findings: List[Finding] = []
    contexts: List[ModuleContext] = []
    for path in iter_python_files(paths):
        parsed = _parse_file(path)
        if isinstance(parsed, Finding):
            findings.append(parsed)
        else:
            contexts.append(parsed)
    findings.extend(_check_contexts(contexts, _select_rules(select)))
    return sorted(findings)
