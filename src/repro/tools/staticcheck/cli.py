"""Command-line front end: ``python -m repro.tools.staticcheck`` / ``repro lint``.

Exit codes: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.tools.staticcheck.engine import check_paths
from repro.tools.staticcheck.reporters import (
    render_json,
    render_rule_listing,
    render_text,
)

__all__ = ["build_parser", "main", "run"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools.staticcheck",
        description=(
            "Project-specific AST lint for the GreFar reproduction "
            "(rules GF001-GF007; see docs/STATIC_ANALYSIS.md)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to scan (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule registry and exit",
    )
    return parser


def run(
    paths: Sequence[str],
    fmt: str = "text",
    select: str | None = None,
) -> int:
    """Scan *paths* and print a report; return the exit code."""
    selected = None
    if select:
        selected = [part for part in select.split(",") if part.strip()]
    try:
        findings = check_paths(paths, select=selected)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    renderer = render_json if fmt == "json" else render_text
    print(renderer(findings))
    return 1 if findings else 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(render_rule_listing())
        return 0
    return run(args.paths, fmt=args.format, select=args.select)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
