"""Command-line front end: ``python -m repro.tools.staticcheck`` / ``repro lint``.

Exit codes: 0 clean, 1 findings, 2 usage error.

Baselines let a tree adopt a new rule without fixing every historical
finding at once: ``--write-baseline FILE`` snapshots the current
findings, and ``--baseline FILE`` on later runs reports (and fails on)
only findings *not* in the snapshot.  Baseline entries are keyed by
``(path, rule, message)`` — deliberately not by line number, so pure
line drift (an unrelated edit above a known finding) never breaks CI.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from typing import List, Sequence, Tuple

from repro.tools.staticcheck.engine import Finding, check_paths
from repro.tools.staticcheck.reporters import (
    render_json,
    render_rule_listing,
    render_text,
)

__all__ = [
    "build_parser",
    "load_baseline",
    "main",
    "run",
    "write_baseline",
]

#: Identity of a finding across runs (line numbers drift; content doesn't).
BaselineKey = Tuple[str, str, str]


def _baseline_key(finding: Finding) -> BaselineKey:
    return (finding.path, finding.rule, finding.message)


def write_baseline(path: str, findings: Sequence[Finding]) -> None:
    """Write *findings* to *path* as a versioned JSON snapshot."""
    payload = {
        "version": 1,
        "findings": [
            {"path": f.path, "rule": f.rule, "message": f.message}
            for f in findings
        ],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_baseline(path: str) -> Counter:
    """Read a baseline snapshot; returns a multiset of finding keys.

    A multiset (not a set) so that fixing one of two identical findings
    in a file still surfaces nothing new, while introducing a *third*
    does.
    """
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or payload.get("version") != 1:
        raise ValueError(f"{path}: not a staticcheck baseline (version 1)")
    keys: Counter = Counter()
    for entry in payload.get("findings", []):
        keys[(entry["path"], entry["rule"], entry["message"])] += 1
    return keys


def apply_baseline(
    findings: Sequence[Finding], baseline: Counter
) -> Tuple[List[Finding], int]:
    """Split *findings* into (new, suppressed-count) against *baseline*."""
    budget = Counter(baseline)
    fresh: List[Finding] = []
    suppressed = 0
    for finding in findings:
        key = _baseline_key(finding)
        if budget[key] > 0:
            budget[key] -= 1
            suppressed += 1
        else:
            fresh.append(finding)
    return fresh, suppressed


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools.staticcheck",
        description=(
            "Project-specific AST lint for the GreFar reproduction "
            "(rules GF001-GF012; see docs/STATIC_ANALYSIS.md)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to scan (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule registry and exit",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="suppress findings recorded in FILE; fail only on new ones",
    )
    parser.add_argument(
        "--write-baseline",
        default=None,
        metavar="FILE",
        help="snapshot current findings to FILE and exit 0",
    )
    return parser


def run(
    paths: Sequence[str],
    fmt: str = "text",
    select: str | None = None,
    baseline: str | None = None,
    write_baseline_path: str | None = None,
) -> int:
    """Scan *paths* and print a report; return the exit code."""
    selected = None
    if select:
        selected = [part for part in select.split(",") if part.strip()]
    try:
        findings = check_paths(paths, select=selected)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if write_baseline_path is not None:
        write_baseline(write_baseline_path, findings)
        noun = "finding" if len(findings) == 1 else "findings"
        print(f"staticcheck: wrote {len(findings)} {noun} to {write_baseline_path}")
        return 0
    suppressed = 0
    if baseline is not None:
        try:
            known = load_baseline(baseline)
        except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        findings, suppressed = apply_baseline(findings, known)
    renderer = render_json if fmt == "json" else render_text
    print(renderer(findings, baselined=suppressed))
    return 1 if findings else 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(render_rule_listing())
        return 0
    return run(
        args.paths,
        fmt=args.format,
        select=args.select,
        baseline=args.baseline,
        write_baseline_path=args.write_baseline,
    )


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
