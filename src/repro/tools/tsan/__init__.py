"""Runtime lock-order and race sanitizer (``REPRO_TSAN=1``).

The static rules GF010-GF012 prove what the AST can see; this module
checks the same discipline on the *running* service, in the spirit of
:mod:`repro._contracts`: disabled it costs nothing (the factory hands
out plain stdlib locks and ``watch`` is a no-op), enabled it wraps every
service lock and guarded object with trackers that record

* the **acquisition order** of named locks per thread, flagging an
  inversion the moment the second order is observed (``TSAN002``) —
  no deadlock has to actually happen during the drill;
* **self-deadlocks**: re-acquiring a held non-reentrant lock raises
  :class:`TsanError` instead of hanging the test process (``TSAN003``);
* **unguarded field accesses**: :func:`watch` swaps an object's class
  for a shadow subclass whose ``__getattribute__``/``__setattr__``
  verify that the lock named by the field's ``# guarded-by:`` source
  annotation is held by the accessing thread (``TSAN001``).  The
  annotations are parsed by the *static* engine
  (:func:`repro.tools.staticcheck.project.extract_guarded_fields`), so
  both layers enforce literally the same declarations.

Violations are recorded as staticcheck
:class:`~repro.tools.staticcheck.engine.Finding` objects — one report
format for the AST layer and the runtime layer — and surfaced by the
service drills (``benchmarks/service_smoke.py`` prints ``tsan OK``,
``repro serve`` exits non-zero on a dirty shutdown, and
``tests/test_service_tsan.py`` asserts :func:`reports` stays empty).

The flag is re-read on every :func:`enabled` call, matching the
``REPRO_CONTRACTS`` convention.
"""

from __future__ import annotations

import os
import threading
import traceback
from typing import Dict, List, Optional, Tuple, Union

__all__ = [
    "TsanError",
    "TsanLock",
    "enabled",
    "named_lock",
    "reports",
    "reset",
    "watch",
]

_TRUTHY = {"1", "true", "on", "yes"}

#: Rule ids used in runtime findings (same namespace style as GFxxx).
UNGUARDED_ACCESS = "TSAN001"
ORDER_INVERSION = "TSAN002"
SELF_DEADLOCK = "TSAN003"


class TsanError(AssertionError):
    """A would-deadlock acquisition the sanitizer refused to perform."""


def enabled() -> bool:
    """Is the sanitizer on?  Re-reads ``REPRO_TSAN`` on every call."""
    return os.environ.get("REPRO_TSAN", "").strip().lower() in _TRUTHY


# ----------------------------------------------------------------------
# Global sanitizer state (per process)
# ----------------------------------------------------------------------
_STATE_LOCK = threading.Lock()  # internal; never wrapped
#: Observed order edges: (first, second) -> "file:line" of the witness.
_EDGES: Dict[Tuple[str, str], str] = {}
_REPORTS: List[object] = []
_TL = threading.local()


def _held_stack() -> List["TsanLock"]:
    stack = getattr(_TL, "stack", None)
    if stack is None:
        stack = []
        _TL.stack = stack
    return stack


def _caller_site() -> Tuple[str, int]:
    """First stack frame outside this module (the offending code)."""
    here = os.path.dirname(__file__)
    for frame in reversed(traceback.extract_stack()):
        if os.path.dirname(frame.filename) != here:
            return frame.filename, frame.lineno or 0
    return "<unknown>", 0


def _record(rule: str, message: str) -> None:
    from repro.tools.staticcheck.engine import Finding

    path, line = _caller_site()
    finding = Finding(path=path, line=line, col=0, rule=rule, message=message)
    with _STATE_LOCK:
        _REPORTS.append(finding)


def reports() -> List[object]:
    """Every violation recorded since the last :func:`reset`."""
    with _STATE_LOCK:
        return list(_REPORTS)


def reset() -> None:
    """Clear recorded violations and the observed lock-order edges."""
    with _STATE_LOCK:
        _REPORTS.clear()
        _EDGES.clear()


# ----------------------------------------------------------------------
# Lock wrapper
# ----------------------------------------------------------------------
class TsanLock:
    """A named lock that records acquisition order and holders.

    Wraps a real ``threading.Lock``/``RLock`` and mirrors its context
    manager and acquire/release surface, so it drops into any ``with``
    block.  Names are global (``"Class.attr"`` by convention — the same
    keys the static lock graph uses), so two objects sharing one name
    would also share an order node; the service names every lock
    uniquely except the deliberately shared gateway/ticker lock, which
    *is* one object.
    """

    def __init__(self, name: str, reentrant: bool = False) -> None:
        self.name = name
        self.reentrant = reentrant
        self._inner = threading.RLock() if reentrant else threading.Lock()

    # -- bookkeeping ---------------------------------------------------
    def _note_order(self, stack: List["TsanLock"]) -> None:
        if not stack:
            return
        path, line = _caller_site()
        site = f"{path}:{line}"
        with _STATE_LOCK:
            for held in stack:
                if held.name == self.name:
                    continue
                edge = (held.name, self.name)
                inverse = (self.name, held.name)
                if inverse in _EDGES:
                    _EDGES.setdefault(edge, site)
                    witness = _EDGES[inverse]
                    message = (
                        f"lock-order inversion: '{self.name}' acquired while "
                        f"holding '{held.name}', but the opposite order was "
                        f"observed at {witness}; a deadlock needs only the "
                        "right interleaving"
                    )
                    break
                _EDGES.setdefault(edge, site)
            else:
                return
        _record(ORDER_INVERSION, message)

    # -- lock surface --------------------------------------------------
    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        stack = _held_stack()
        if any(lock is self for lock in stack) and not self.reentrant:
            _record(
                SELF_DEADLOCK,
                f"non-reentrant lock '{self.name}' re-acquired by the "
                "thread already holding it; this would deadlock",
            )
            raise TsanError(
                f"self-deadlock on non-reentrant lock '{self.name}'"
            )
        self._note_order(stack)
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            stack.append(self)
        return acquired

    def release(self) -> None:
        stack = _held_stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] is self:
                del stack[index]
                break
        self._inner.release()

    def __enter__(self) -> "TsanLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    def held_by_current_thread(self) -> bool:
        return any(lock is self for lock in _held_stack())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "RLock" if self.reentrant else "Lock"
        return f"TsanLock({self.name!r}, {kind})"


def named_lock(
    name: str, reentrant: bool = False
) -> Union[TsanLock, threading.Lock, "threading.RLock"]:
    """Create a service lock: plain stdlib when off, tracked when on.

    The one lock-construction surface for :mod:`repro.service` — the
    static engine recognizes it (like ``threading.Lock()``) and the
    ``reentrant`` flag picks Lock vs RLock semantics in both modes.
    Checked once at construction: services built before the env flag
    flips keep their plain locks (matching how instances are built once
    per process).
    """
    if enabled():
        return TsanLock(name, reentrant=reentrant)
    return threading.RLock() if reentrant else threading.Lock()


# ----------------------------------------------------------------------
# Guarded-field watcher
# ----------------------------------------------------------------------
_SHADOW_CACHE: Dict[type, type] = {}


def _guarded_table(cls: type) -> Dict[str, str]:
    """``{field: lock attr}`` for *cls*, from its ``# guarded-by`` comments."""
    import inspect
    import sys

    from repro.tools.staticcheck.project import extract_guarded_fields

    module = sys.modules.get(cls.__module__)
    if module is None:
        return {}
    try:
        source = inspect.getsource(module)
    except (OSError, TypeError):
        return {}
    return extract_guarded_fields(source).get(cls.__name__, {})


def _check_guard(obj: object, field_name: str, lock_attr: str, verb: str) -> None:
    try:
        lock = object.__getattribute__(obj, lock_attr)
    except AttributeError:
        return
    if isinstance(lock, TsanLock) and not lock.held_by_current_thread():
        _record(
            UNGUARDED_ACCESS,
            f"guarded field {type(obj).__bases__[0].__name__}.{field_name} "
            f"{verb} without holding '{lock.name}' "
            f"(declared '# guarded-by: self.{lock_attr}')",
        )


def _shadow_class(cls: type, guarded: Dict[str, str]) -> type:
    cached = _SHADOW_CACHE.get(cls)
    if cached is not None:
        return cached
    guarded = dict(guarded)

    class Shadow(cls):  # type: ignore[misc, valid-type]
        __tsan_guarded__ = guarded

        def __getattribute__(self, name: str):
            lock_attr = guarded.get(name)
            if lock_attr is not None:
                _check_guard(self, name, lock_attr, "read")
            return super().__getattribute__(name)

        def __setattr__(self, name: str, value) -> None:
            lock_attr = guarded.get(name)
            if lock_attr is not None:
                _check_guard(self, name, lock_attr, "written")
            super().__setattr__(name, value)

    Shadow.__name__ = cls.__name__
    Shadow.__qualname__ = cls.__qualname__
    _SHADOW_CACHE[cls] = Shadow
    return Shadow


def watch(obj: object) -> object:
    """Install guarded-field tracking on *obj* (no-op when disabled).

    Call as the last line of a constructor: the swap happens after the
    fields exist, so initialization writes — exempt statically too —
    are never flagged.  Objects whose class declares no ``# guarded-by``
    fields are returned untouched.
    """
    if not enabled():
        return obj
    cls = type(obj)
    if getattr(cls, "__tsan_guarded__", None) is not None:
        return obj  # already watched
    guarded = _guarded_table(cls)
    if not guarded:
        return obj
    try:
        obj.__class__ = _shadow_class(cls, guarded)
    except TypeError:  # __slots__/extension layouts cannot be swapped
        return obj
    return obj


def held_locks() -> Tuple[str, ...]:
    """Names of the locks the calling thread currently holds (debugging)."""
    return tuple(lock.name for lock in _held_stack())
