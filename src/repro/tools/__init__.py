"""Developer tooling shipped with the reproduction.

Currently one tool lives here: :mod:`repro.tools.staticcheck`, the
project-specific AST lint gate (rules GF001-GF007) run in CI and via
``repro lint``.
"""
