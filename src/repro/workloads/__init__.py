"""Workload substrates: arrivals, electricity prices and availability.

These generators stand in for the paper's proprietary inputs (Microsoft
Cosmos traces, FERC hourly prices) — see DESIGN.md for the substitution
rationale.
"""

from repro.workloads.arrivals import (
    CompositeRate,
    ConstantRate,
    DiurnalRate,
    OnOffBurstRate,
    PoissonCounts,
    RateProfile,
    WeeklyRate,
    sample_bounded_poisson,
)
from repro.workloads.availability import AvailabilityModel, apply_capacity_faults
from repro.workloads.calibration import (
    ProvisioningReport,
    calibrate_workload,
    provisioning_report,
)
from repro.workloads.cosmos import CosmosWorkload
from repro.workloads.prices import PriceModel, apply_price_faults
from repro.workloads.replay import (
    load_scenario_csv,
    read_matrix_csv,
    save_scenario_csv,
    write_matrix_csv,
)

__all__ = [
    "AvailabilityModel",
    "ProvisioningReport",
    "CompositeRate",
    "ConstantRate",
    "CosmosWorkload",
    "DiurnalRate",
    "OnOffBurstRate",
    "PoissonCounts",
    "PriceModel",
    "RateProfile",
    "WeeklyRate",
    "apply_capacity_faults",
    "apply_price_faults",
    "calibrate_workload",
    "load_scenario_csv",
    "provisioning_report",
    "read_matrix_csv",
    "sample_bounded_poisson",
    "save_scenario_csv",
    "write_matrix_csv",
]
