"""Arrival-process primitives used by the Cosmos-like workload generator.

The paper's only assumption on arrivals is boundedness (eq. (1)) — they
may be non-stationary, bursty and adversarial.  These primitives
compose a *rate profile* (deterministic time-varying intensity) with a
*counting process* (how many jobs actually arrive given the intensity),
which is exactly the structure of the Fig. 1 trace: strong diurnal
shape times sporadic organization-level bursts.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro._validation import (
    require_in_range,
    require_integer,
    require_non_negative,
    require_positive,
)

__all__ = [
    "RateProfile",
    "ConstantRate",
    "DiurnalRate",
    "WeeklyRate",
    "OnOffBurstRate",
    "CompositeRate",
    "PoissonCounts",
    "sample_bounded_poisson",
]


class RateProfile(ABC):
    """Deterministic-or-stochastic arrival intensity ``lambda(t)``."""

    @abstractmethod
    def rates(self, horizon: int, rng: np.random.Generator) -> np.ndarray:
        """Return a length-*horizon* vector of non-negative intensities."""


@dataclass(frozen=True)
class ConstantRate(RateProfile):
    """A flat intensity ``lambda(t) = rate``."""

    rate: float

    def __post_init__(self) -> None:
        require_non_negative(self.rate, "rate")

    def rates(self, horizon: int, rng: np.random.Generator) -> np.ndarray:
        return np.full(horizon, self.rate)


@dataclass(frozen=True)
class DiurnalRate(RateProfile):
    """Day/night sinusoidal intensity with configurable period and phase.

    ``lambda(t) = base * (1 + amplitude * sin(2 pi (t + phase) / period))``
    clipped at zero.  With hourly slots the default period of 24 gives
    the daily swing visible in the Fig. 1 work trace.
    """

    base: float
    amplitude: float = 0.6
    period: float = 24.0
    phase: float = 0.0

    def __post_init__(self) -> None:
        require_non_negative(self.base, "base")
        require_in_range(self.amplitude, 0.0, 1.0, "amplitude")
        require_positive(self.period, "period")

    def rates(self, horizon: int, rng: np.random.Generator) -> np.ndarray:
        t = np.arange(horizon, dtype=np.float64)
        wave = 1.0 + self.amplitude * np.sin(2.0 * np.pi * (t + self.phase) / self.period)
        return np.clip(self.base * wave, 0.0, None)


@dataclass(frozen=True)
class WeeklyRate(RateProfile):
    """Weekday/weekend modulation (enterprise batch workloads).

    A multiplicative factor of ``weekday_level`` for the first five
    days of each week and ``weekend_level`` for the last two, with
    ``slots_per_day`` slots per day.  Compose with
    :class:`DiurnalRate` for the full weekly texture of the Fig. 1
    trace ("more jobs during the day" — and fewer on weekends).
    """

    weekday_level: float = 1.0
    weekend_level: float = 0.4
    slots_per_day: int = 24

    def __post_init__(self) -> None:
        require_non_negative(self.weekday_level, "weekday_level")
        require_non_negative(self.weekend_level, "weekend_level")
        require_integer(self.slots_per_day, "slots_per_day", minimum=1)

    def rates(self, horizon: int, rng: np.random.Generator) -> np.ndarray:
        t = np.arange(horizon)
        day_of_week = (t // self.slots_per_day) % 7
        return np.where(day_of_week < 5, self.weekday_level, self.weekend_level)


@dataclass(frozen=True)
class OnOffBurstRate(RateProfile):
    """A two-state Markov-modulated intensity (sporadic submissions).

    The profile alternates between an OFF state with intensity
    ``off_rate`` and an ON state with intensity ``on_rate``; dwell times
    are geometric with the given mean lengths.  This models the
    enterprise pattern the paper highlights: organizations submit job
    requests only sporadically.
    """

    on_rate: float
    off_rate: float = 0.0
    mean_on: float = 6.0
    mean_off: float = 18.0

    def __post_init__(self) -> None:
        require_non_negative(self.on_rate, "on_rate")
        require_non_negative(self.off_rate, "off_rate")
        require_positive(self.mean_on, "mean_on")
        require_positive(self.mean_off, "mean_off")

    def rates(self, horizon: int, rng: np.random.Generator) -> np.ndarray:
        out = np.empty(horizon)
        on = bool(rng.random() < self.mean_on / (self.mean_on + self.mean_off))
        t = 0
        while t < horizon:
            mean = self.mean_on if on else self.mean_off
            dwell = 1 + int(rng.geometric(min(1.0, 1.0 / mean)))
            end = min(horizon, t + dwell)
            out[t:end] = self.on_rate if on else self.off_rate
            t = end
            on = not on
        return out


@dataclass(frozen=True)
class CompositeRate(RateProfile):
    """Pointwise product of several profiles (e.g. diurnal x bursty)."""

    factors: tuple

    def __init__(self, *factors: RateProfile) -> None:
        if not factors:
            raise ValueError("CompositeRate requires at least one factor")
        object.__setattr__(self, "factors", tuple(factors))

    def rates(self, horizon: int, rng: np.random.Generator) -> np.ndarray:
        out = np.ones(horizon)
        for factor in self.factors:
            out = out * factor.rates(horizon, rng)
        return out


@dataclass(frozen=True)
class PoissonCounts:
    """Draw bounded Poisson arrival counts from a rate profile.

    The cap enforces the paper's boundedness assumption ``a_j(t) <=
    a_j^max`` (eq. (1)) — overflow probability is tiny for a cap a few
    standard deviations above the peak rate, and clipping keeps the
    theory's constants finite.
    """

    profile: RateProfile
    cap: int

    def __post_init__(self) -> None:
        require_integer(self.cap, "cap", minimum=1)

    def generate(self, horizon: int, rng: np.random.Generator) -> np.ndarray:
        rates = self.profile.rates(horizon, rng)
        return sample_bounded_poisson(rates, self.cap, rng)


def sample_bounded_poisson(
    rates: np.ndarray, cap: int, rng: np.random.Generator
) -> np.ndarray:
    """Poisson counts with each draw clipped to ``[0, cap]``."""
    if cap <= 0:
        raise ValueError(f"cap must be positive, got {cap}")
    rates = np.asarray(rates, dtype=np.float64)
    if np.any(rates < 0):
        raise ValueError("rates must be non-negative")
    counts = rng.poisson(rates)
    return np.minimum(counts, cap).astype(np.int64)
