"""Cosmos-like workload generator (the paper's proprietary-trace stand-in).

The paper drives its evaluation with a trace from Microsoft Cosmos:
batch jobs from four organizations, highly time-dependent (more during
the day), submitted sporadically per organization, and *not* following
any stationary distribution (Fig. 1).  The trace itself is proprietary,
so :class:`CosmosWorkload` synthesizes arrivals with the same
qualitative structure:

* each account has an activity profile = diurnal swing x ON/OFF burst
  modulation (sporadic enterprise submissions);
* the expected *work* contributed by each account is proportional to
  its fairness share (the paper's 40/30/15/15 split);
* per-slot counts are bounded Poisson draws, satisfying eq. (1).

Because Theorem 1 assumes nothing about the arrival process, any trace
with this structure exercises the same algorithmic behaviour as the
original.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro._validation import require_in_range, require_positive
from repro.model.cluster import Cluster
from repro.workloads.arrivals import (
    CompositeRate,
    DiurnalRate,
    OnOffBurstRate,
    RateProfile,
    sample_bounded_poisson,
)

__all__ = ["CosmosWorkload"]


@dataclass(frozen=True)
class CosmosWorkload:
    """Synthetic multi-organization batch workload.

    Parameters
    ----------
    cluster:
        Supplies the job types, their demands and their accounts.
    mean_total_work:
        Long-run expected total work arriving per slot, across all
        accounts.  The paper's setup averages just under 100 normalized
        work units per hour (Section VI-B1 reports ~97 units/slot of
        scheduled work).
    diurnal_amplitude:
        Strength of the day/night swing in ``[0, 1]``.
    burst_mean_on / burst_mean_off:
        Mean ON/OFF dwell times (slots) of each account's sporadic
        submission process.
    burst_off_level:
        Relative intensity while an account is OFF (0 = fully silent).
    custom_profiles:
        Optional explicit per-account :class:`RateProfile` overrides
        (length ``M``); entries may be ``None`` to keep the default.
    max_total_work:
        Optional admission-control cap on the total work arriving in a
        single slot.  Slots whose burst-stacked arrivals exceed the cap
        are thinned proportionally (dropping whole jobs).  The paper
        notes exactly this remedy for overload: "admission control
        techniques can be applied to complement our scheme" — with the
        cap below the minimum available capacity, the slackness
        conditions (20)-(22) hold on every generated trace.
    """

    cluster: Cluster
    mean_total_work: float = 95.0
    diurnal_amplitude: float = 0.6
    burst_mean_on: float = 8.0
    burst_mean_off: float = 16.0
    burst_off_level: float = 0.15
    custom_profiles: tuple = field(default=None)
    max_total_work: float = field(default=None)

    def __init__(
        self,
        cluster: Cluster,
        mean_total_work: float = 95.0,
        diurnal_amplitude: float = 0.6,
        burst_mean_on: float = 8.0,
        burst_mean_off: float = 16.0,
        burst_off_level: float = 0.15,
        custom_profiles: Sequence[RateProfile | None] | None = None,
        max_total_work: float | None = None,
    ) -> None:
        require_positive(mean_total_work, "mean_total_work")
        require_in_range(diurnal_amplitude, 0.0, 1.0, "diurnal_amplitude")
        require_positive(burst_mean_on, "burst_mean_on")
        require_positive(burst_mean_off, "burst_mean_off")
        require_in_range(burst_off_level, 0.0, 1.0, "burst_off_level")
        if custom_profiles is not None and len(custom_profiles) != cluster.num_accounts:
            raise ValueError(
                f"custom_profiles must have length {cluster.num_accounts}, "
                f"got {len(custom_profiles)}"
            )
        object.__setattr__(self, "cluster", cluster)
        object.__setattr__(self, "mean_total_work", float(mean_total_work))
        object.__setattr__(self, "diurnal_amplitude", float(diurnal_amplitude))
        object.__setattr__(self, "burst_mean_on", float(burst_mean_on))
        object.__setattr__(self, "burst_mean_off", float(burst_mean_off))
        object.__setattr__(self, "burst_off_level", float(burst_off_level))
        object.__setattr__(
            self,
            "custom_profiles",
            tuple(custom_profiles) if custom_profiles is not None else None,
        )
        if max_total_work is not None:
            require_positive(max_total_work, "max_total_work")
            if max_total_work < mean_total_work:
                raise ValueError(
                    f"max_total_work ({max_total_work}) must be at least "
                    f"mean_total_work ({mean_total_work})"
                )
        object.__setattr__(
            self,
            "max_total_work",
            float(max_total_work) if max_total_work is not None else None,
        )

    # ------------------------------------------------------------------
    def _account_profile(self, account_index: int) -> RateProfile:
        if self.custom_profiles is not None:
            override = self.custom_profiles[account_index]
            if override is not None:
                return override
        # Stagger phases so organizations do not all burst together.
        phase = 3.0 * account_index
        return CompositeRate(
            DiurnalRate(base=1.0, amplitude=self.diurnal_amplitude, phase=phase),
            OnOffBurstRate(
                on_rate=1.0,
                off_rate=self.burst_off_level,
                mean_on=self.burst_mean_on,
                mean_off=self.burst_mean_off,
            ),
        )

    def _burst_mean_level(self) -> float:
        """Long-run mean of the ON/OFF modulation (for normalization)."""
        on_frac = self.burst_mean_on / (self.burst_mean_on + self.burst_mean_off)
        return on_frac + (1.0 - on_frac) * self.burst_off_level

    def account_work_targets(self) -> np.ndarray:
        """Expected work per slot contributed by each account.

        Proportional to the fairness shares ``gamma_m`` (renormalized),
        so a workload generated for the paper's 40/30/15/15 split also
        *demands* resources in that ratio.
        """
        shares = self.cluster.fair_shares
        total = shares.sum()
        if total <= 0:
            shares = np.full_like(shares, 1.0 / len(shares))
            total = 1.0
        return self.mean_total_work * shares / total

    # ------------------------------------------------------------------
    def generate(self, horizon: int, rng: np.random.Generator) -> np.ndarray:
        """Return a ``(horizon, J)`` integer arrival matrix ``a_j(t)``."""
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        cluster = self.cluster
        j_count = cluster.num_job_types
        arrivals = np.zeros((horizon, j_count), dtype=np.int64)

        targets = self.account_work_targets()
        burst_mean = self._burst_mean_level()
        types_of_account = [
            [j for j, jt in enumerate(cluster.job_types) if jt.account == m]
            for m in range(cluster.num_accounts)
        ]

        for m in range(cluster.num_accounts):
            types = types_of_account[m]
            if not types:
                continue
            profile = self._account_profile(m).rates(horizon, rng)
            profile = profile / max(burst_mean, 1e-9)
            work_per_type = targets[m] / len(types)
            for j in types:
                jt = cluster.job_types[j]
                lam = profile * (work_per_type / jt.demand)
                arrivals[:, j] = sample_bounded_poisson(lam, jt.max_arrivals, rng)
        if self.max_total_work is not None:
            self._admission_control(arrivals, rng)
        return arrivals

    def _admission_control(self, arrivals: np.ndarray, rng: np.random.Generator) -> None:
        """Thin any slot whose total arriving work exceeds the cap (in place)."""
        demands = self.cluster.demands
        cap = self.max_total_work
        for t in range(arrivals.shape[0]):
            work = float(arrivals[t] @ demands)
            while work > cap:
                # Drop one job from the type contributing the most work,
                # randomizing ties via a tiny jitter.
                contributions = arrivals[t] * demands
                jitter = rng.random(len(contributions)) * 1e-6
                j = int(np.argmax(contributions + jitter))
                if arrivals[t, j] <= 0:
                    break
                arrivals[t, j] -= 1
                work -= demands[j]

    def work_by_account(self, arrivals: np.ndarray) -> np.ndarray:
        """Aggregate an arrival matrix into per-account work per slot.

        Returns a ``(horizon, M)`` matrix — the quantity plotted in the
        lower panel of Fig. 1 ("total work of arrived jobs" per
        organization).
        """
        arr = np.asarray(arrivals, dtype=np.float64)
        if arr.ndim != 2 or arr.shape[1] != self.cluster.num_job_types:
            raise ValueError(
                f"arrivals must have shape (T, {self.cluster.num_job_types})"
            )
        work_per_type = arr * self.cluster.demands[np.newaxis, :]
        out = np.zeros((arr.shape[0], self.cluster.num_accounts))
        for j, jt in enumerate(self.cluster.job_types):
            out[:, jt.account] += work_per_type[:, j]
        return out
