"""Electricity price substrate (CAISO/FERC stand-in).

The paper drives its simulation with publicly available hourly prices
from FERC [14] near the (undisclosed) Cosmos data centers, with the
per-site averages of Table I: 0.392, 0.433 and 0.548.  Those exact
series are not redistributable, so this module synthesizes hourly
prices with the same structure that GreFar exploits:

* per-site long-run means (Table I values by default);
* a diurnal pattern (peak afternoon prices, cheap nights);
* mean-reverting AR(1) noise (deregulated-market volatility);
* positive cross-site correlation (regional weather/load), left
  imperfect so that *where* to run still matters.

Only the variability structure matters to the algorithm — Theorem 1
assumes nothing about the price process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro._validation import (
    as_float_array,
    require_in_range,
    require_non_negative,
    require_positive,
)

__all__ = ["PriceModel", "apply_price_faults"]


def apply_price_faults(prices: np.ndarray, events) -> np.ndarray:
    """Freeze a ``(T, N)`` price trace during signal-fault windows.

    *events* is any iterable of :class:`~repro.faults.events.FaultEvent`
    (duck-typed on ``kind`` / ``dc`` / ``start`` / ``end``); only signal
    kinds (``stale_price`` / ``partition``) have an effect.  During each
    window the affected site's price is held at its last pre-fault
    value — the *observed* trace of a consumer applying last-known-good
    substitution, useful for offline analysis of how far a stale feed
    drifts from the truth.  A fault starting at slot 0 has no prior
    value and freezes the slot-0 price.  Returns a new array.
    """
    prices = np.asarray(prices, dtype=np.float64)
    if prices.ndim != 2:
        raise ValueError(f"prices must be a (T, N) trace, got ndim={prices.ndim}")
    out = prices.copy()
    horizon, n = out.shape
    for event in events:
        if event.kind not in ("stale_price", "partition"):
            continue
        if not 0 <= event.dc < n:
            raise ValueError(f"event targets data center {event.dc}, trace has {n}")
        lo = min(max(event.start, 0), horizon)
        hi = min(event.end, horizon)
        if lo < hi:
            out[lo:hi, event.dc] = out[max(lo - 1, 0), event.dc]
    return out


@dataclass(frozen=True)
class PriceModel:
    """Synthetic hourly electricity prices for ``N`` sites.

    Parameters
    ----------
    means:
        Length-``N`` long-run mean price per site.
    daily_amplitude:
        Relative size of the diurnal swing (0 disables it).
    volatility:
        Standard deviation of the AR(1) noise relative to the mean.
    mean_reversion:
        AR(1) reversion speed in ``(0, 1]``; 1 gives i.i.d. noise.
    correlation:
        Cross-site noise correlation in ``[0, 1)``.
    period:
        Slots per day (24 for hourly slots).
    floor:
        Hard lower bound keeping prices positive.
    """

    means: np.ndarray
    daily_amplitude: float = 0.25
    volatility: float = 0.15
    mean_reversion: float = 0.35
    correlation: float = 0.5
    period: float = 24.0
    floor: float = 0.01
    phase_offsets: np.ndarray = field(default=None)

    def __init__(
        self,
        means: Sequence[float],
        daily_amplitude: float = 0.25,
        volatility: float = 0.15,
        mean_reversion: float = 0.35,
        correlation: float = 0.5,
        period: float = 24.0,
        floor: float = 0.01,
        phase_offsets: Sequence[float] | None = None,
    ) -> None:
        mu = as_float_array(means, "means")
        if mu.ndim != 1 or mu.size == 0:
            raise ValueError("means must be a non-empty 1-D sequence")
        if np.any(mu <= 0):
            raise ValueError("means must be strictly positive")
        require_in_range(daily_amplitude, 0.0, 1.0, "daily_amplitude")
        require_non_negative(volatility, "volatility")
        require_in_range(mean_reversion, 1e-6, 1.0, "mean_reversion")
        require_in_range(correlation, 0.0, 0.999, "correlation")
        require_positive(period, "period")
        require_non_negative(floor, "floor")
        if phase_offsets is None:
            # Offset sites a few hours apart (time zones) so price dips
            # do not coincide, which is what makes geo-shifting pay off.
            offsets = np.arange(mu.size, dtype=np.float64) * (period / 8.0)
        else:
            offsets = as_float_array(phase_offsets, "phase_offsets")
            if offsets.shape != mu.shape:
                raise ValueError("phase_offsets must match means in length")
        mu = mu.copy()
        offsets = offsets.copy()
        mu.setflags(write=False)
        offsets.setflags(write=False)
        object.__setattr__(self, "means", mu)
        object.__setattr__(self, "daily_amplitude", float(daily_amplitude))
        object.__setattr__(self, "volatility", float(volatility))
        object.__setattr__(self, "mean_reversion", float(mean_reversion))
        object.__setattr__(self, "correlation", float(correlation))
        object.__setattr__(self, "period", float(period))
        object.__setattr__(self, "floor", float(floor))
        object.__setattr__(self, "phase_offsets", offsets)

    @property
    def num_sites(self) -> int:
        """Number of sites this model prices."""
        return int(self.means.size)

    def generate(self, horizon: int, rng: np.random.Generator) -> np.ndarray:
        """Return a ``(horizon, N)`` matrix of positive prices."""
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        n = self.num_sites
        t = np.arange(horizon, dtype=np.float64)[:, np.newaxis]
        diurnal = 1.0 + self.daily_amplitude * np.sin(
            2.0 * np.pi * (t + self.phase_offsets[np.newaxis, :]) / self.period
        )

        # Correlated AR(1) noise: shared regional factor + site factor.
        shared = rng.standard_normal(horizon)
        own = rng.standard_normal((horizon, n))
        shocks = (
            np.sqrt(self.correlation) * shared[:, np.newaxis]
            + np.sqrt(1.0 - self.correlation) * own
        )
        noise = np.zeros((horizon, n))
        level = np.zeros(n)
        a = 1.0 - self.mean_reversion
        # Scale so the stationary std equals `volatility`.
        innov_scale = self.volatility * np.sqrt(max(1.0 - a**2, 1e-12))
        for step in range(horizon):
            level = a * level + innov_scale * shocks[step]
            noise[step] = level

        prices = self.means[np.newaxis, :] * diurnal * (1.0 + noise)
        return np.clip(prices, self.floor, None)
