"""Server availability substrate.

Section VI-A: "The (random) server availability is chosen such that it
satisfies the slackness conditions (20)-(22)."  Availability changes
because of failures, software upgrades and interference from
interactive workloads; here it follows a bounded mean-reverting random
walk between a configurable floor fraction and the full plant, which
keeps total capacity comfortably above the peak load (the slackness
prerequisite of Theorem 1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._validation import require_in_range, require_non_negative
from repro.model.cluster import Cluster

__all__ = ["AvailabilityModel", "apply_capacity_faults"]


def apply_capacity_faults(availability: np.ndarray, events) -> np.ndarray:
    """Apply capacity faults to a ``(T, N, K)`` availability trace.

    *events* is any iterable of :class:`~repro.faults.events.FaultEvent`
    (duck-typed on ``kind`` / ``dc`` / ``start`` / ``end`` /
    ``capacity_factor``); only capacity kinds (``outage`` /
    ``capacity_loss``) have an effect.  Returns a new array — the
    ground-truth availability a faulted scenario would show — leaving
    the input untouched.  Overlapping faults on one site combine by
    taking the most severe factor.
    """
    availability = np.asarray(availability, dtype=np.float64)
    if availability.ndim != 3:
        raise ValueError(
            f"availability must be a (T, N, K) trace, got ndim={availability.ndim}"
        )
    out = availability.copy()
    horizon, n, _ = out.shape
    for event in events:
        factor = event.capacity_factor
        if factor >= 1.0:
            continue
        if not 0 <= event.dc < n:
            raise ValueError(f"event targets data center {event.dc}, trace has {n}")
        lo = min(max(event.start, 0), horizon)
        hi = min(event.end, horizon)
        if lo < hi:
            np.minimum(
                out[lo:hi, event.dc, :],
                availability[lo:hi, event.dc, :] * factor,
                out=out[lo:hi, event.dc, :],
            )
    return out


@dataclass(frozen=True)
class AvailabilityModel:
    """Bounded random-walk availability ``n_ik(t)`` for a cluster.

    Parameters
    ----------
    cluster:
        The plant being modelled (gives the per-site per-class maxima).
    floor_fraction:
        Minimum fraction of the plant that is always available.  With
        the default 0.7 and a plant provisioned above peak load, the
        slackness conditions hold throughout.
    step_fraction:
        Maximum per-slot relative change of each availability entry
        (how fast interactive load / failures move).
    integer_counts:
        If True (default), availability is rounded to whole servers.
    """

    cluster: Cluster
    floor_fraction: float = 0.7
    step_fraction: float = 0.05
    integer_counts: bool = True

    def __post_init__(self) -> None:
        require_in_range(self.floor_fraction, 0.0, 1.0, "floor_fraction")
        require_non_negative(self.step_fraction, "step_fraction")

    def generate(self, horizon: int, rng: np.random.Generator) -> np.ndarray:
        """Return a ``(horizon, N, K)`` availability tensor."""
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        maxima = np.stack([dc.max_servers for dc in self.cluster.datacenters])
        n, k = maxima.shape
        floor = self.floor_fraction * maxima

        out = np.empty((horizon, n, k))
        # Start somewhere in the feasible band.
        frac = rng.uniform(self.floor_fraction, 1.0, size=(n, k))
        level = frac * maxima
        for t in range(horizon):
            drift = rng.uniform(-1.0, 1.0, size=(n, k)) * self.step_fraction * maxima
            level = np.clip(level + drift, floor, maxima)
            out[t] = np.round(level) if self.integer_counts else level
        return out

    def min_capacity(self) -> float:
        """Lower bound on systemwide capacity under this model.

        Useful for checking the slackness condition (22): the workload's
        peak work per slot must stay below this value.
        """
        maxima = np.stack([dc.max_servers for dc in self.cluster.datacenters])
        if self.integer_counts:
            floor_counts = np.floor(self.floor_fraction * maxima)
        else:
            floor_counts = self.floor_fraction * maxima
        return float(np.sum(floor_counts @ self.cluster.speeds))
