"""Provisioning calibration: size workloads to satisfy slackness.

Theorem 1 needs the slackness conditions (20)-(22): the plant must
cover the offered load with margin in *every* slot.  When users build
custom clusters these helpers answer the two practical questions:

* *How loaded is this scenario?* — :func:`provisioning_report` gives
  utilization percentiles and the worst slot.
* *How much work can this plant take?* — :func:`calibrate_workload`
  returns a :class:`~repro.workloads.cosmos.CosmosWorkload` whose mean
  and admission cap target a chosen utilization with a slackness-safe
  ceiling, the recipe the built-in ``paper_scenario`` uses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._validation import require_in_range
from repro.model.cluster import Cluster
from repro.workloads.availability import AvailabilityModel
from repro.workloads.cosmos import CosmosWorkload

__all__ = ["ProvisioningReport", "provisioning_report", "calibrate_workload"]


@dataclass(frozen=True)
class ProvisioningReport:
    """Utilization statistics of a scenario against its plant."""

    mean_utilization: float
    p95_utilization: float
    peak_utilization: float
    worst_slot: int
    slack_feasible: bool

    def summary(self) -> str:
        """One-line human-readable provisioning summary."""
        status = "slack OK" if self.slack_feasible else "OVERLOADED"
        return (
            f"utilization mean {self.mean_utilization:.0%}, "
            f"p95 {self.p95_utilization:.0%}, peak {self.peak_utilization:.0%} "
            f"(slot {self.worst_slot}) — {status}"
        )


def provisioning_report(scenario) -> ProvisioningReport:
    """Compute systemwide utilization statistics for a scenario.

    Utilization here is offered work divided by available capacity per
    slot — the aggregate form of condition (22).  (The per-site
    eligibility-aware check lives in
    :func:`repro.core.slackness.check_slackness`; aggregate utilization
    below 100% is necessary, not sufficient.)
    """
    cluster = scenario.cluster
    work = scenario.arrival_work()
    caps = np.einsum("tnk,k->t", scenario.availability, cluster.speeds)
    with np.errstate(divide="ignore", invalid="ignore"):
        util = np.where(caps > 0, work / caps, np.inf)
    worst = int(np.argmax(util))
    return ProvisioningReport(
        mean_utilization=float(np.mean(util)),
        p95_utilization=float(np.quantile(util, 0.95)),
        peak_utilization=float(util[worst]),
        worst_slot=worst,
        slack_feasible=bool(util[worst] < 1.0),
    )


def calibrate_workload(
    cluster: Cluster,
    availability_model: AvailabilityModel | None = None,
    target_utilization: float = 0.3,
    cap_fraction: float = 0.92,
    **workload_kwargs,
) -> CosmosWorkload:
    """Build a Cosmos-like workload sized for this plant.

    Parameters
    ----------
    cluster:
        The plant to load.
    availability_model:
        The availability process the scenario will use (its worst-case
        capacity anchors the admission cap); defaults to the standard
        model.
    target_utilization:
        Desired mean offered work as a fraction of worst-case capacity.
    cap_fraction:
        Admission cap as a fraction of worst-case capacity (< 1 keeps
        the slackness margin).
    workload_kwargs:
        Passed through to :class:`CosmosWorkload` (burstiness etc.).
    """
    require_in_range(target_utilization, 1e-6, 1.0, "target_utilization")
    require_in_range(cap_fraction, 1e-6, 0.999, "cap_fraction")
    if target_utilization >= cap_fraction:
        raise ValueError(
            f"target_utilization ({target_utilization}) must be below "
            f"cap_fraction ({cap_fraction})"
        )
    if availability_model is None:
        availability_model = AvailabilityModel(cluster)
    floor_capacity = availability_model.min_capacity()
    if floor_capacity <= 0:
        raise ValueError(
            "availability model guarantees no capacity; cannot calibrate"
        )
    return CosmosWorkload(
        cluster,
        mean_total_work=target_utilization * floor_capacity,
        max_total_work=cap_fraction * floor_capacity,
        **workload_kwargs,
    )
