"""Trace import/export: run the scheduler on *your* data.

The paper drives its simulator with a real trace; this module lets a
downstream user do the same — CSV in, :class:`Scenario` out — without
touching the synthetic generators.  Formats are deliberately plain:

* arrivals.csv — header ``slot,<type0>,<type1>,...``; one row per slot,
  integer job counts per type (column order = cluster job-type order);
* prices.csv — header ``slot,<dc0>,<dc1>,...``; one row per slot;
* availability.csv — header ``slot,dc,<class0>,...``; one row per
  (slot, site) pair.

`save_scenario_csv` writes the same format, so synthetic scenarios can
be exported, edited and re-imported.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.model.cluster import Cluster

# NOTE: repro.simulation.trace imports repro.workloads, so Scenario is
# imported lazily inside the functions below to avoid a cycle.

__all__ = [
    "load_scenario_csv",
    "save_scenario_csv",
    "read_matrix_csv",
    "write_matrix_csv",
]


def write_matrix_csv(path: str | Path, matrix: np.ndarray, columns) -> None:
    """Write a ``(T, C)`` matrix with a ``slot`` index column."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise ValueError(f"matrix must be 2-D, got shape {matrix.shape}")
    if matrix.shape[1] != len(columns):
        raise ValueError(
            f"matrix has {matrix.shape[1]} columns but {len(columns)} names given"
        )
    with open(Path(path), "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["slot", *columns])
        for t, row in enumerate(matrix):
            writer.writerow([t, *row.tolist()])


def read_matrix_csv(path: str | Path, expected_columns: int) -> np.ndarray:
    """Read a matrix written by :func:`write_matrix_csv`."""
    rows = []
    with open(Path(path), newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None or len(header) != expected_columns + 1:
            raise ValueError(
                f"{path}: expected {expected_columns + 1} columns "
                f"(slot + {expected_columns}), got "
                f"{0 if header is None else len(header)}"
            )
        for line_no, row in enumerate(reader, start=2):
            if len(row) != expected_columns + 1:
                raise ValueError(f"{path}:{line_no}: ragged row")
            try:
                rows.append([float(x) for x in row[1:]])
            except ValueError as exc:
                raise ValueError(f"{path}:{line_no}: non-numeric cell") from exc
    if not rows:
        raise ValueError(f"{path}: no data rows")
    return np.array(rows)


def save_scenario_csv(scenario, directory: str | Path) -> None:
    """Export a scenario as arrivals/prices/availability CSVs."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    cluster = scenario.cluster
    write_matrix_csv(
        directory / "arrivals.csv",
        scenario.arrivals,
        [jt.name for jt in cluster.job_types],
    )
    write_matrix_csv(
        directory / "prices.csv",
        scenario.prices,
        [dc.name for dc in cluster.datacenters],
    )
    # Availability: one row per (slot, site).
    horizon = scenario.horizon
    n = cluster.num_datacenters
    with open(directory / "availability.csv", "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["slot", "dc", *[c.name for c in cluster.server_classes]]
        )
        for t in range(horizon):
            for i in range(n):
                writer.writerow([t, i, *scenario.availability[t, i].tolist()])


def load_scenario_csv(
    cluster: Cluster, directory: str | Path, guard_policy: str | None = None
):
    """Load a scenario exported by :func:`save_scenario_csv`.

    The cluster provides the dimensions and validation; the CSVs provide
    the time series.  Returns a :class:`~repro.simulation.trace.Scenario`.

    Replayed traces are the classic entry point for NaN/Inf/negative
    garbage (a stale price feed, a half-exported sheet).  With
    *guard_policy* set (``"raise"``, ``"clamp"`` or ``"hold"``) the
    arrays pass through
    :func:`repro.resilient.guards.sanitize_trace_arrays` before the
    :class:`Scenario` is built; ``None`` (default) keeps today's strict
    behavior — ``Scenario`` itself rejects non-finite values.
    """
    from repro.simulation.trace import Scenario

    directory = Path(directory)
    arrivals = read_matrix_csv(directory / "arrivals.csv", cluster.num_job_types)
    prices = read_matrix_csv(directory / "prices.csv", cluster.num_datacenters)
    horizon = arrivals.shape[0]
    if prices.shape[0] != horizon:
        raise ValueError(
            f"arrivals has {horizon} slots but prices has {prices.shape[0]}"
        )

    n, k = cluster.num_datacenters, cluster.num_server_classes
    availability = np.zeros((horizon, n, k))
    seen = np.zeros((horizon, n), dtype=bool)
    with open(directory / "availability.csv", newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None or len(header) != k + 2:
            raise ValueError("availability.csv: bad header")
        for line_no, row in enumerate(reader, start=2):
            if len(row) != k + 2:
                raise ValueError(f"availability.csv:{line_no}: ragged row")
            t, i = int(float(row[0])), int(float(row[1]))
            if not (0 <= t < horizon and 0 <= i < n):
                raise ValueError(
                    f"availability.csv:{line_no}: slot/site ({t}, {i}) out of range"
                )
            availability[t, i] = [float(x) for x in row[2:]]
            seen[t, i] = True
    if not seen.all():
        missing = int((~seen).sum())
        raise ValueError(f"availability.csv: {missing} (slot, site) rows missing")
    if guard_policy is not None:
        from repro.resilient.guards import sanitize_trace_arrays

        arrivals, availability, prices, _ = sanitize_trace_arrays(
            arrivals, availability, prices, policy=guard_policy
        )
    return Scenario(
        cluster=cluster,
        arrivals=arrivals,
        availability=availability,
        prices=prices,
    )
