"""Scenario presets, including the paper's evaluation setup.

:func:`paper_cluster` reconstructs Section VI-A / Table I: three data
centers with normalized (speed, power) of (1.00, 1.00), (0.75, 0.60)
and (1.15, 1.20), mean electricity prices 0.392 / 0.433 / 0.548, and
four organizations with fairness weights 40% / 30% / 15% / 15%.  The
average energy cost per unit work — 0.392, 0.346 and 0.572 — makes
DC #2 the cheapest place to run work and DC #3 the most expensive,
which drives the work-distribution result of Section VI-B1.
"""

from __future__ import annotations


from repro.model.cluster import Cluster
from repro.model.datacenter import DataCenter
from repro.model.job import Account, JobType
from repro.model.server import ServerClass
from repro.simulation.trace import Scenario
from repro.workloads.availability import AvailabilityModel
from repro.workloads.cosmos import CosmosWorkload
from repro.workloads.prices import PriceModel

__all__ = [
    "PAPER_PRICE_MEANS",
    "PAPER_FAIR_SHARES",
    "paper_cluster",
    "paper_scenario",
    "small_cluster",
    "small_scenario",
    "wide_cluster",
    "wide_scenario",
]

#: Table I average electricity prices for DC #1-#3.
PAPER_PRICE_MEANS = (0.392, 0.433, 0.548)

#: Section VI-A fairness weights for organizations #1-#4.
PAPER_FAIR_SHARES = (0.40, 0.30, 0.15, 0.15)

#: Table I normalized (speed, power) per data center's server type.
PAPER_SERVERS = ((1.00, 1.00), (0.75, 0.60), (1.15, 1.20))


#: Plant sizes (servers per site).  DC #2 — the cheapest per unit work
#: (Table I) — is provisioned largest, consistent with it receiving the
#: most work in Section VI-B1; totals keep minimum available capacity
#: above the peak arrival work so the slackness conditions (20)-(22)
#: hold, as the paper requires of its setup.
PAPER_SERVER_COUNTS = (160, 210, 60)


def paper_cluster(
    server_counts: tuple = PAPER_SERVER_COUNTS,
    jobs_per_account: int = 2,
    job_demand: float = 2.0,
) -> Cluster:
    """Build the Table I cluster: 3 sites, 3 server types, 4 accounts.

    Each data center houses one server type (as in Table I); the plant
    size is chosen so the peak workload of :func:`paper_scenario` fits
    with slack, satisfying the conditions (20)-(22).

    Parameters
    ----------
    server_counts:
        Number of servers at each of the three sites (normalized scale).
    jobs_per_account:
        Job types per organization.  Each account's types are eligible
        at all three sites (Cosmos replicates data across clusters);
        per-type demands are staggered around *job_demand*.
    job_demand:
        Base service demand ``d_j`` in normalized work units.
    """
    classes = tuple(
        ServerClass(name=f"gen{i + 1}", speed=s, active_power=p)
        for i, (s, p) in enumerate(PAPER_SERVERS)
    )
    k = len(classes)
    if len(server_counts) != k:
        raise ValueError(f"server_counts must have length {k}")
    datacenters = tuple(
        DataCenter(
            name=f"dc{i + 1}",
            max_servers=[server_counts[i] if kk == i else 0 for kk in range(k)],
            location=f"region-{i + 1}",
        )
        for i in range(k)
    )
    accounts = tuple(
        Account(name=f"org{m + 1}", fair_share=share)
        for m, share in enumerate(PAPER_FAIR_SHARES)
    )
    job_types = []
    for m in range(len(accounts)):
        for n in range(jobs_per_account):
            # Stagger demands (e.g. 0.75x and 1.25x) so types differ.
            factor = 0.75 + 0.5 * (n / max(jobs_per_account - 1, 1))
            job_types.append(
                JobType(
                    name=f"org{m + 1}-type{n + 1}",
                    demand=job_demand * factor,
                    eligible_dcs=range(3),
                    account=m,
                    max_arrivals=200,
                    max_route=200,
                    max_service=200.0,
                )
            )
    return Cluster(classes, datacenters, tuple(job_types), accounts)


def paper_scenario(
    horizon: int = 2000,
    seed: int = 0,
    mean_total_work: float = 95.0,
    cluster: Cluster | None = None,
) -> Scenario:
    """The paper's evaluation scenario: 2000 hourly slots by default.

    Arrivals follow the Cosmos-like generator (diurnal + sporadic
    organization bursts, work split 40/30/15/15), prices follow the
    Table I means with hourly variation, and availability keeps total
    capacity above the peak load (slackness).
    """
    if cluster is None:
        cluster = paper_cluster()
    availability_model = AvailabilityModel(cluster, floor_fraction=0.8)
    # Admission-control cap just inside the worst-case available
    # capacity guarantees the slackness conditions (20)-(22) on every
    # generated trace (the paper: "admission control techniques can be
    # applied to complement our scheme").
    # Strongly sporadic per-organization submissions (long OFF stretches,
    # intense ON bursts), as in the paper's Fig. 1 Cosmos trace: at the
    # slot level the arrival mix deviates hard from the 40/30/15/15
    # targets, which is what makes the fairness term earn its keep.
    workload = CosmosWorkload(
        cluster,
        mean_total_work=mean_total_work,
        burst_mean_on=6.0,
        burst_mean_off=30.0,
        burst_off_level=0.05,
        max_total_work=0.92 * availability_model.min_capacity(),
    )
    # Calibrated so the paper's V values (0.1 - 20) span the same
    # energy/delay tradeoff: deregulated-market-like hourly volatility
    # (FERC real-time prices routinely swing 2x within a day, Fig. 1).
    price_model = PriceModel(
        list(PAPER_PRICE_MEANS),
        daily_amplitude=0.45,
        volatility=0.35,
        mean_reversion=0.2,
        correlation=0.4,
        floor=0.02,
    )
    return Scenario.generate(
        cluster,
        horizon=horizon,
        seed=seed,
        workload=workload,
        price_model=price_model,
        availability_model=availability_model,
    )


def wide_cluster(num_datacenters: int = 6, servers_per_site: int = 60) -> Cluster:
    """A many-site cluster for sharded-execution tests and benchmarks.

    Cycles the Table I server types and price tiers across
    *num_datacenters* sites, with the four paper organizations and one
    job type per organization eligible everywhere.  The point is width
    (many sites to partition into shards), not fidelity to the paper's
    three-site setup — use :func:`paper_cluster` for that.
    """
    if num_datacenters < 2:
        raise ValueError("wide_cluster needs at least 2 data centers")
    classes = tuple(
        ServerClass(name=f"gen{i + 1}", speed=s, active_power=p)
        for i, (s, p) in enumerate(PAPER_SERVERS)
    )
    k = len(classes)
    datacenters = tuple(
        DataCenter(
            name=f"dc{i + 1}",
            max_servers=[servers_per_site if kk == i % k else 0 for kk in range(k)],
            location=f"region-{i + 1}",
        )
        for i in range(num_datacenters)
    )
    accounts = tuple(
        Account(name=f"org{m + 1}", fair_share=share)
        for m, share in enumerate(PAPER_FAIR_SHARES)
    )
    job_types = tuple(
        JobType(
            name=f"org{m + 1}-wide",
            demand=1.5 + 0.5 * m,
            eligible_dcs=range(num_datacenters),
            account=m,
            max_arrivals=200,
            max_route=200,
            max_service=200.0,
        )
        for m in range(len(accounts))
    )
    return Cluster(classes, datacenters, job_types, accounts)


def wide_scenario(
    horizon: int = 200,
    seed: int = 0,
    num_datacenters: int = 6,
    mean_total_work: float = 60.0,
) -> Scenario:
    """A multi-DC scenario on :func:`wide_cluster` for shard drills."""
    cluster = wide_cluster(num_datacenters=num_datacenters)
    availability_model = AvailabilityModel(cluster, floor_fraction=0.8)
    workload = CosmosWorkload(
        cluster,
        mean_total_work=mean_total_work,
        max_total_work=0.9 * availability_model.min_capacity(),
    )
    price_model = PriceModel(
        [PAPER_PRICE_MEANS[i % len(PAPER_PRICE_MEANS)] for i in range(num_datacenters)],
        correlation=0.3,
    )
    return Scenario.generate(
        cluster,
        horizon=horizon,
        seed=seed,
        workload=workload,
        price_model=price_model,
        availability_model=availability_model,
    )


def small_cluster() -> Cluster:
    """A minimal 2-site, 2-account cluster for tests and quick examples."""
    classes = (
        ServerClass(name="fast", speed=1.0, active_power=1.0),
        ServerClass(name="efficient", speed=0.8, active_power=0.5),
    )
    datacenters = (
        DataCenter(name="east", max_servers=[10, 10]),
        DataCenter(name="west", max_servers=[10, 10]),
    )
    accounts = (
        Account(name="alpha", fair_share=0.6),
        Account(name="beta", fair_share=0.4),
    )
    job_types = (
        JobType(
            name="alpha-batch",
            demand=1.0,
            eligible_dcs=(0, 1),
            account=0,
            max_arrivals=50,
            max_route=50,
            max_service=50.0,
        ),
        JobType(
            name="beta-batch",
            demand=2.0,
            eligible_dcs=(1,),
            account=1,
            # Pinned to a single site: the arrival cap keeps even a full
            # burst within that site's worst-case capacity (slackness).
            max_arrivals=5,
            max_route=25,
            max_service=25.0,
        ),
    )
    return Cluster(classes, datacenters, job_types, accounts)


def small_scenario(horizon: int = 200, seed: int = 0) -> Scenario:
    """A light scenario on :func:`small_cluster` for tests and examples."""
    cluster = small_cluster()
    availability_model = AvailabilityModel(cluster, floor_fraction=0.7)
    workload = CosmosWorkload(
        cluster,
        mean_total_work=8.0,
        max_total_work=0.85 * availability_model.min_capacity(),
    )
    price_model = PriceModel([0.4, 0.5])
    return Scenario.generate(
        cluster,
        horizon=horizon,
        seed=seed,
        workload=workload,
        price_model=price_model,
        availability_model=availability_model,
    )
