"""System model: servers, data centers, jobs, cluster, state, queues.

This subpackage implements Section III of the paper — everything static
(:class:`Cluster` and its parts), the time-varying state snapshot
(:class:`ClusterState`), the scheduler decision (:class:`Action`) and
the queueing substrate with the exact dynamics of eqs. (12)-(13)
(:class:`QueueNetwork`).
"""

from repro.model.action import Action
from repro.model.cluster import Cluster
from repro.model.datacenter import DataCenter
from repro.model.job import Account, JobBatch, JobType
from repro.model.pricing import LinearPricing, PricingModel, TieredPricing
from repro.model.queues import DelayStats, QueueNetwork
from repro.model.server import ServerClass
from repro.model.state import ClusterState

__all__ = [
    "Account",
    "Action",
    "Cluster",
    "ClusterState",
    "DataCenter",
    "DelayStats",
    "JobBatch",
    "JobType",
    "LinearPricing",
    "PricingModel",
    "QueueNetwork",
    "ServerClass",
    "TieredPricing",
]
