"""The cluster: the static top-level system description.

A :class:`Cluster` bundles the global server classes, the ``N`` data
centers, the ``J`` job types and the ``M`` accounts, and validates that
all cross-references (eligible data centers, account indices, server
class counts) are consistent.  Every other component of the library —
schedulers, simulators, workload generators — is parameterized by a
cluster.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.model.datacenter import DataCenter
from repro.model.job import Account, JobType
from repro.model.server import ServerClass

__all__ = ["Cluster"]


@dataclass(frozen=True)
class Cluster:
    """Static description of the whole geo-distributed system.

    Parameters
    ----------
    server_classes:
        The ``K`` global server classes.  A data center that does not
        operate class ``k`` simply has ``max_servers[k] == 0``.
    datacenters:
        The ``N`` sites.  Each must be dimensioned for exactly ``K``
        server classes.
    job_types:
        The ``J`` job types.  Eligible-DC indices must be ``< N`` and
        account indices ``< M``.
    accounts:
        The ``M`` accounts.  Their ``fair_share`` weights must sum to
        at most one (equal to one for a fully specified fairness goal).
    """

    server_classes: Tuple[ServerClass, ...]
    datacenters: Tuple[DataCenter, ...]
    job_types: Tuple[JobType, ...]
    accounts: Tuple[Account, ...]

    def __init__(
        self,
        server_classes: Sequence[ServerClass],
        datacenters: Sequence[DataCenter],
        job_types: Sequence[JobType],
        accounts: Sequence[Account],
    ) -> None:
        classes = tuple(server_classes)
        dcs = tuple(datacenters)
        types = tuple(job_types)
        accs = tuple(accounts)
        if not classes:
            raise ValueError("Cluster requires at least one server class")
        if not dcs:
            raise ValueError("Cluster requires at least one data center")
        if not types:
            raise ValueError("Cluster requires at least one job type")
        if not accs:
            raise ValueError("Cluster requires at least one account")

        k = len(classes)
        for dc in dcs:
            if dc.num_server_classes != k:
                raise ValueError(
                    f"data center {dc.name!r} is dimensioned for "
                    f"{dc.num_server_classes} server classes, expected {k}"
                )
        n = len(dcs)
        m = len(accs)
        for jt in types:
            bad = [i for i in jt.eligible_dcs if i >= n]
            if bad:
                raise ValueError(
                    f"job type {jt.name!r} references unknown data center indices {bad}"
                )
            if jt.account >= m:
                raise ValueError(
                    f"job type {jt.name!r} references unknown account index {jt.account}"
                )
        total_share = sum(a.fair_share for a in accs)
        if total_share > 1.0 + 1e-9:
            raise ValueError(
                f"account fair shares must sum to at most 1, got {total_share}"
            )

        object.__setattr__(self, "server_classes", classes)
        object.__setattr__(self, "datacenters", dcs)
        object.__setattr__(self, "job_types", types)
        object.__setattr__(self, "accounts", accs)

    # ------------------------------------------------------------------
    # Dimensions
    # ------------------------------------------------------------------
    @property
    def num_datacenters(self) -> int:
        """``N``: number of data centers."""
        return len(self.datacenters)

    @property
    def num_server_classes(self) -> int:
        """``K``: number of global server classes."""
        return len(self.server_classes)

    @property
    def num_job_types(self) -> int:
        """``J``: number of job types."""
        return len(self.job_types)

    @property
    def num_accounts(self) -> int:
        """``M``: number of accounts."""
        return len(self.accounts)

    # ------------------------------------------------------------------
    # Derived static vectors
    # ------------------------------------------------------------------
    @property
    def speeds(self) -> np.ndarray:
        """Length-``K`` vector of server speeds ``s_k``."""
        return np.array([c.speed for c in self.server_classes])

    @property
    def active_powers(self) -> np.ndarray:
        """Length-``K`` vector of busy powers ``p_k``."""
        return np.array([c.active_power for c in self.server_classes])

    @property
    def demands(self) -> np.ndarray:
        """Length-``J`` vector of job demands ``d_j``."""
        return np.array([jt.demand for jt in self.job_types])

    @property
    def fair_shares(self) -> np.ndarray:
        """Length-``M`` vector of fairness weights ``gamma_m``."""
        return np.array([a.fair_share for a in self.accounts])

    @property
    def memory_demands(self) -> np.ndarray:
        """Length-``J`` vector of per-job memory holds (footnote 3)."""
        return np.array([jt.memory for jt in self.job_types])

    @property
    def memory_capacities(self) -> np.ndarray:
        """Length-``N`` vector of site memory capacities (may be ``inf``)."""
        return np.array([dc.memory_capacity for dc in self.datacenters])

    @property
    def ingress_costs(self) -> np.ndarray:
        """Length-``N`` vector of per-work routing (bandwidth) costs."""
        return np.array([dc.ingress_cost for dc in self.datacenters])

    @property
    def has_memory_constraints(self) -> bool:
        """True iff any site memory cap could bind for any job type."""
        return bool(
            np.any(np.isfinite(self.memory_capacities))
            and np.any(self.memory_demands > 0)
        )

    @property
    def account_of_type(self) -> np.ndarray:
        """Length-``J`` int vector mapping job type ``j`` to account ``rho_j``."""
        return np.array([jt.account for jt in self.job_types], dtype=np.int64)

    def eligibility_matrix(self) -> np.ndarray:
        """``(N, J)`` boolean matrix: ``[i, j]`` is True iff ``i in D_j``."""
        mat = np.zeros((self.num_datacenters, self.num_job_types), dtype=bool)
        for j, jt in enumerate(self.job_types):
            for i in jt.eligible_dcs:
                mat[i, j] = True
        return mat

    def account_matrix(self) -> np.ndarray:
        """``(M, J)`` boolean matrix: ``[m, j]`` is True iff ``rho_j == m``."""
        mat = np.zeros((self.num_accounts, self.num_job_types), dtype=bool)
        for j, jt in enumerate(self.job_types):
            mat[jt.account, j] = True
        return mat

    def max_route_matrix(self) -> np.ndarray:
        """``(N, J)`` matrix of routing bounds ``r_ij^max`` (0 if ineligible)."""
        elig = self.eligibility_matrix()
        bounds = np.array([jt.max_route for jt in self.job_types], dtype=np.float64)
        return elig * bounds[np.newaxis, :]

    def max_service_matrix(self) -> np.ndarray:
        """``(N, J)`` matrix of service bounds ``h_ij^max`` (0 if ineligible)."""
        elig = self.eligibility_matrix()
        bounds = np.array([jt.max_service for jt in self.job_types])
        return elig * bounds[np.newaxis, :]

    def max_total_capacity(self) -> float:
        """Peak systemwide work capacity per slot with all servers up."""
        return sum(dc.max_capacity(self.server_classes) for dc in self.datacenters)

    def describe(self) -> str:
        """A short multi-line human-readable summary of the cluster."""
        lines = [
            f"Cluster: N={self.num_datacenters} data centers, "
            f"K={self.num_server_classes} server classes, "
            f"J={self.num_job_types} job types, M={self.num_accounts} accounts",
        ]
        for i, dc in enumerate(self.datacenters):
            cap = dc.max_capacity(self.server_classes)
            lines.append(f"  DC#{i + 1} {dc.name}: max capacity {cap:.1f} work/slot")
        for m, acc in enumerate(self.accounts):
            lines.append(f"  account#{m + 1} {acc.name}: fair share {acc.fair_share:.0%}")
        return "\n".join(lines)
