"""Server classes: the hardware heterogeneity model of Section III-A.

The paper characterizes each of the ``K`` server types by a processing
speed ``s_k`` and an active power ``p_k`` (idle power is normalized to
zero because scheduling only controls the busy/idle difference; see the
discussion above eq. (2)).  The key derived quantity is the *energy per
unit work* ``p_k / s_k``: GreFar preferentially sends work to server
classes (and data centers) where ``price * p_k / s_k`` is low.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._validation import require_non_negative, require_positive

__all__ = ["ServerClass"]


@dataclass(frozen=True)
class ServerClass:
    """A homogeneous class of servers (one of the paper's ``K`` types).

    Parameters
    ----------
    name:
        Human-readable identifier (e.g. ``"gen1"``).
    speed:
        Processing speed ``s_k`` in units of work per time slot, ``> 0``.
    active_power:
        Busy power ``p_k`` (net of idle power), ``> 0``.
    idle_power:
        Idle power ``p_k_underline``; the paper normalizes this to zero
        without loss of generality and so do we by default.  It is kept
        as an explicit field so that absolute (rather than differential)
        energy accounting is possible.
    """

    name: str
    speed: float
    active_power: float
    idle_power: float = field(default=0.0)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("ServerClass.name must be a non-empty string")
        require_positive(self.speed, "speed")
        require_positive(self.active_power, "active_power")
        require_non_negative(self.idle_power, "idle_power")
        if self.idle_power >= self.active_power:
            raise ValueError(
                "idle_power must be strictly less than active_power "
                f"({self.idle_power} >= {self.active_power})"
            )

    @property
    def energy_per_unit_work(self) -> float:
        """Energy drawn per unit of work processed: ``p_k / s_k``.

        Together with the local electricity price this determines the
        marginal cost of serving one unit of work on this class, the
        ``W`` constant discussed below Algorithm 1.
        """
        return self.active_power / self.speed

    def work_capacity(self, count: float) -> float:
        """Work that *count* servers of this class can process per slot."""
        require_non_negative(count, "count")
        return count * self.speed

    def power_draw(self, busy_count: float) -> float:
        """Differential power drawn by *busy_count* busy servers."""
        require_non_negative(busy_count, "busy_count")
        return busy_count * self.active_power
