"""Scheduler actions: ``z(t) = {r_ij(t), h_ij(t), b_ik(t)}`` (Section III-C2).

An :class:`Action` is what any scheduler returns for one slot:

* ``route`` — ``r_ij(t)``: how many type-``j`` jobs to send from the
  central queue to data center ``i`` (integer-valued, eq. (4) bounded);
* ``serve`` — ``h_ij(t)``: how many type-``j`` jobs to process at data
  center ``i`` (fractional allowed, jobs are preemptible, eq. (5));
* ``busy`` — ``b_ik(t)``: how many class-``k`` servers to run busy at
  data center ``i`` (fractional allowed, ``<= n_ik(t)``).

The feasibility coupling is eq. (11): the work served cannot exceed the
work capacity of the busy servers,
``sum_j h_ij d_j <= sum_k b_ik s_k <= sum_k n_ik s_k``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.model.cluster import Cluster
from repro.model.state import ClusterState

__all__ = ["Action"]

_FEAS_TOL = 1e-6


@dataclass(frozen=True)
class Action:
    """One slot's scheduling decision ``z(t)``.

    All three arrays are defensively copied and frozen.  Use
    :meth:`validate` to check feasibility against a cluster and state.
    """

    route: np.ndarray
    serve: np.ndarray
    busy: np.ndarray

    def __init__(self, route: np.ndarray, serve: np.ndarray, busy: np.ndarray) -> None:
        r = np.asarray(route, dtype=np.float64).copy()
        h = np.asarray(serve, dtype=np.float64).copy()
        b = np.asarray(busy, dtype=np.float64).copy()
        if r.ndim != 2 or h.ndim != 2 or b.ndim != 2:
            raise ValueError("route, serve and busy must all be 2-D arrays")
        if r.shape != h.shape:
            raise ValueError(
                f"route shape {r.shape} and serve shape {h.shape} must both be (N, J)"
            )
        if b.shape[0] != r.shape[0]:
            raise ValueError(
                f"busy has {b.shape[0]} sites but route has {r.shape[0]}"
            )
        for name, arr in (("route", r), ("serve", h), ("busy", b)):
            if not np.all(np.isfinite(arr)):
                raise ValueError(f"{name} must contain only finite values")
            if np.any(arr < -_FEAS_TOL):
                raise ValueError(f"{name} must be element-wise non-negative")
        np.clip(r, 0.0, None, out=r)
        np.clip(h, 0.0, None, out=h)
        np.clip(b, 0.0, None, out=b)
        for arr in (r, h, b):
            arr.setflags(write=False)
        object.__setattr__(self, "route", r)
        object.__setattr__(self, "serve", h)
        object.__setattr__(self, "busy", b)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def idle(cls, cluster: Cluster) -> "Action":
        """The all-zeros action: route nothing, serve nothing, all idle."""
        n, j, k = (
            cluster.num_datacenters,
            cluster.num_job_types,
            cluster.num_server_classes,
        )
        return cls(np.zeros((n, j)), np.zeros((n, j)), np.zeros((n, k)))

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def work_served(self, cluster: Cluster) -> np.ndarray:
        """Per-site work processed: ``sum_j h_ij * d_j`` (length ``N``)."""
        return self.serve @ cluster.demands

    def capacity_used(self, cluster: Cluster) -> np.ndarray:
        """Per-site capacity provided by busy servers: ``sum_k b_ik s_k``."""
        return self.busy @ cluster.speeds

    def energy_cost(self, cluster: Cluster, state: ClusterState, pricing=None) -> float:
        """Total electricity cost ``e(t)`` (eq. 2).

        With the default linear pricing this is
        ``sum_i phi_i(t) sum_k b_ik p_k``; pass a
        :class:`~repro.model.pricing.PricingModel` for convex pricing
        (Section III-A2).
        """
        return float(np.sum(self.energy_cost_per_site(cluster, state, pricing)))

    def energy_cost_per_site(
        self, cluster: Cluster, state: ClusterState, pricing=None
    ) -> np.ndarray:
        """Per-site electricity cost ``e_i(t)`` (length ``N``)."""
        draws = self.busy @ cluster.active_powers
        if pricing is None:
            return state.prices * draws
        return np.array(
            [
                pricing.total_cost(float(draw), float(price))
                for draw, price in zip(draws, state.prices)
            ]
        )

    def account_work(self, cluster: Cluster) -> np.ndarray:
        """Work processed per account: ``r_m(t)`` of eq. (3) (length ``M``).

        ``r_m(t) = sum_i sum_{j: rho_j = m} h_ij(t) * d_j`` — the
        computing resource consumed by account ``m``'s jobs this slot.
        """
        per_type = self.serve.sum(axis=0) * cluster.demands
        acc = np.zeros(cluster.num_accounts)
        np.add.at(acc, cluster.account_of_type, per_type)
        return acc

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(
        self,
        cluster: Cluster,
        state: ClusterState,
        tol: float = 1e-6,
    ) -> "Action":
        """Check all paper constraints; return ``self`` or raise ``ValueError``.

        Checks performed:

        * dimensions match the cluster;
        * ``r_ij`` and ``h_ij`` are zero outside the eligibility sets
          ``D_j`` and within their bounds (eqs. (4), (5));
        * ``r_ij`` is integer-valued (jobs cannot be split across sites);
        * ``0 <= b_ik <= n_ik(t)``;
        * served work fits inside busy capacity (eq. (11)).
        """
        n, j, k = (
            cluster.num_datacenters,
            cluster.num_job_types,
            cluster.num_server_classes,
        )
        if self.route.shape != (n, j):
            raise ValueError(f"route must have shape {(n, j)}, got {self.route.shape}")
        if self.busy.shape != (n, k):
            raise ValueError(f"busy must have shape {(n, k)}, got {self.busy.shape}")

        elig = cluster.eligibility_matrix()
        if np.any(self.route[~elig] > tol):
            raise ValueError("route sends jobs to ineligible data centers")
        if np.any(self.serve[~elig] > tol):
            raise ValueError("serve processes jobs at ineligible data centers")
        if np.any(np.abs(self.route - np.round(self.route)) > tol):
            raise ValueError("route must be integer-valued (jobs cannot be split)")
        if np.any(self.route > cluster.max_route_matrix() + tol):
            raise ValueError("route exceeds the r_ij^max bound (eq. 4)")
        if np.any(self.serve > cluster.max_service_matrix() + tol):
            raise ValueError("serve exceeds the h_ij^max bound (eq. 5)")
        if np.any(self.busy > state.availability + tol):
            raise ValueError("busy exceeds available servers n_ik(t)")

        work = self.work_served(cluster)
        cap = self.capacity_used(cluster)
        if np.any(work > cap + tol * (1.0 + cap)):
            bad = int(np.argmax(work - cap))
            raise ValueError(
                f"served work {work[bad]:.6f} exceeds busy capacity {cap[bad]:.6f} "
                f"at data center index {bad} (eq. 11 violated)"
            )
        mem_caps = cluster.memory_capacities
        if np.any(np.isfinite(mem_caps)):
            used = self.serve @ cluster.memory_demands
            if np.any(used > mem_caps * (1.0 + tol) + tol):
                bad = int(np.argmax(used - mem_caps))
                raise ValueError(
                    f"memory used {used[bad]:.6f} exceeds capacity "
                    f"{mem_caps[bad]:.6f} at data center index {bad}"
                )
        return self
