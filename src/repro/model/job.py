"""Job and account model: Section III-B of the paper.

Jobs are characterized by the tuple ``{d, D, rho}`` — service demand
(work), the set of eligible data centers (where the job's data lives),
and the originating account.  Jobs with (approximately) the same tuple
are grouped into one of ``J`` *job types*; arrivals are counted per
type per slot as ``a_j(t)`` and are only assumed bounded (eq. (1)).

Jobs are fully parallelizable and preemptible: a job can be suspended
and resumed, so the per-slot "number of type-j jobs processed"
``h_ij(t)`` may be fractional.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable

from repro._validation import (
    require_in_range,
    require_integer,
    require_non_negative,
    require_positive,
)

__all__ = ["Account", "JobType", "JobBatch"]


@dataclass(frozen=True)
class Account:
    """An organization/user group sharing the data centers (one of ``M``).

    Parameters
    ----------
    name:
        Human-readable account name.
    fair_share:
        The weighting parameter ``gamma_m`` of eq. (3): the desired
        fraction of total computing resource allocated to this account.
        Must lie in ``[0, 1]``; the shares of all accounts in a cluster
        conventionally sum to one (checked by
        :class:`repro.model.cluster.Cluster`).
    """

    name: str
    fair_share: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("Account.name must be a non-empty string")
        require_in_range(self.fair_share, 0.0, 1.0, "fair_share")


@dataclass(frozen=True)
class JobType:
    """One of the ``J`` job types: ``y_j = {d_j, D_j, rho_j}`` plus bounds.

    Parameters
    ----------
    name:
        Human-readable type name.
    demand:
        Service demand ``d_j > 0`` in units of work (processor cycles,
        normalized as in Section VI-A).
    eligible_dcs:
        The set ``D_j`` of data center indices this type may be routed
        to (where its data is stored).  Non-empty.
    account:
        Index ``rho_j`` of the originating account.
    max_arrivals:
        ``a_j^max`` of eq. (1): per-slot arrival bound.
    max_route:
        ``r_ij^max`` of eq. (4): per-slot, per-DC routing bound.
    max_service:
        ``h_ij^max`` of eq. (5): per-slot, per-DC service bound (in
        jobs, possibly fractional).
    max_parallelism:
        Optional cap on the number of servers that may process one job
        simultaneously (Section III-B: "it may be possible that only a
        certain number of servers can process a job in parallel").
        ``None`` (default) means fully parallelizable, as in the paper's
        base model.
    memory:
        Memory held per job while it is being processed (footnote 3:
        the service demand extends "from a scalar to a vector in which
        each element corresponds to one type of demand").  Zero
        (default) reproduces the paper's scalar-demand base model.
    """

    name: str
    demand: float
    eligible_dcs: FrozenSet[int]
    account: int
    max_arrivals: int = field(default=1_000)
    max_route: int = field(default=1_000)
    max_service: float = field(default=1_000.0)
    max_parallelism: float = field(default=None)
    memory: float = field(default=0.0)

    def __init__(
        self,
        name: str,
        demand: float,
        eligible_dcs: Iterable[int],
        account: int,
        max_arrivals: int = 1_000,
        max_route: int = 1_000,
        max_service: float = 1_000.0,
        max_parallelism: float | None = None,
        memory: float = 0.0,
    ) -> None:
        if not name:
            raise ValueError("JobType.name must be a non-empty string")
        require_positive(demand, "demand")
        dcs = frozenset(int(i) for i in eligible_dcs)
        if not dcs:
            raise ValueError("eligible_dcs must be non-empty")
        if any(i < 0 for i in dcs):
            raise ValueError("eligible_dcs indices must be non-negative")
        require_integer(account, "account", minimum=0)
        require_integer(max_arrivals, "max_arrivals", minimum=1)
        require_integer(max_route, "max_route", minimum=1)
        require_positive(max_service, "max_service")
        if max_parallelism is not None:
            require_positive(max_parallelism, "max_parallelism")
        require_non_negative(memory, "memory")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "demand", float(demand))
        object.__setattr__(self, "eligible_dcs", dcs)
        object.__setattr__(self, "account", int(account))
        object.__setattr__(self, "max_arrivals", int(max_arrivals))
        object.__setattr__(self, "max_route", int(max_route))
        object.__setattr__(self, "max_service", float(max_service))
        object.__setattr__(
            self,
            "max_parallelism",
            float(max_parallelism) if max_parallelism is not None else None,
        )
        object.__setattr__(self, "memory", float(memory))

    def work_of(self, count: float) -> float:
        """Total work represented by *count* jobs of this type."""
        require_non_negative(count, "count")
        return count * self.demand


@dataclass(frozen=True)
class JobBatch:
    """A batch of identical jobs of one type arriving in the same slot.

    Used by the FIFO queue ledgers to track per-job queueing delay: the
    whole batch shares one arrival slot, and fractions of it complete as
    service is applied.
    """

    job_type: int
    count: float
    arrival_slot: int

    def __post_init__(self) -> None:
        require_integer(self.job_type, "job_type", minimum=0)
        require_non_negative(self.count, "count")
        require_integer(self.arrival_slot, "arrival_slot", minimum=0)
