"""Data center model: Section III-A of the paper.

A :class:`DataCenter` is a named site holding some maximum number of
servers of each global server class.  The *time-varying* part of a data
center (how many of those servers are currently available for batch
work, and the local electricity price) lives in
:class:`repro.model.state.DataCenterState` — this module only describes
the static plant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro._validation import (
    as_float_array,
    require_non_negative_array,
)
from repro.model.server import ServerClass

__all__ = ["DataCenter"]


@dataclass(frozen=True)
class DataCenter:
    """Static description of one of the ``N`` geographically distributed sites.

    Parameters
    ----------
    name:
        Human-readable site name (e.g. ``"dc-west"``).
    max_servers:
        Length-``K`` vector: the number of servers of each global
        :class:`~repro.model.server.ServerClass` physically present at
        this site.  Availability ``n_ik(t)`` can never exceed this.
    location:
        Optional free-form location tag, used only for display.
    memory_capacity:
        Memory available for concurrently-processing jobs (footnote 3's
        vector-demand extension).  ``inf`` (default) reproduces the
        paper's scalar-demand base model.
    ingress_cost:
        Cost per unit of *work* routed into this site (the bandwidth
        cost dimension of Buchbinder et al. [2], which the paper cites
        as complementary).  Zero (default) reproduces the base model.
    """

    name: str
    max_servers: np.ndarray
    location: str = field(default="")
    memory_capacity: float = field(default=float("inf"))
    ingress_cost: float = field(default=0.0)

    def __init__(
        self,
        name: str,
        max_servers: Sequence[float],
        location: str = "",
        memory_capacity: float = float("inf"),
        ingress_cost: float = 0.0,
    ) -> None:
        if not name:
            raise ValueError("DataCenter.name must be a non-empty string")
        arr = as_float_array(max_servers, "max_servers")
        if arr.ndim != 1 or arr.size == 0:
            raise ValueError("max_servers must be a non-empty 1-D sequence")
        require_non_negative_array(arr, "max_servers")
        if not memory_capacity > 0:
            raise ValueError(
                f"memory_capacity must be positive (inf allowed), got {memory_capacity}"
            )
        if ingress_cost < 0 or not np.isfinite(ingress_cost):
            raise ValueError(
                f"ingress_cost must be finite and non-negative, got {ingress_cost}"
            )
        arr = arr.copy()
        arr.setflags(write=False)
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "max_servers", arr)
        object.__setattr__(self, "location", location)
        object.__setattr__(self, "memory_capacity", float(memory_capacity))
        object.__setattr__(self, "ingress_cost", float(ingress_cost))

    @property
    def num_server_classes(self) -> int:
        """Number of global server classes this site is dimensioned for."""
        return int(self.max_servers.size)

    def max_capacity(self, server_classes: Sequence[ServerClass]) -> float:
        """Peak work capacity per slot if every server is available.

        This is ``sum_k max_servers[k] * s_k`` — an upper bound on
        ``sum_k n_ik(t) * s_k`` for every ``t``.
        """
        if len(server_classes) != self.num_server_classes:
            raise ValueError(
                f"expected {self.num_server_classes} server classes, got {len(server_classes)}"
            )
        speeds = np.array([c.speed for c in server_classes])
        return float(np.dot(self.max_servers, speeds))

    def validate_availability(self, availability: np.ndarray) -> np.ndarray:
        """Check an ``n_i(t)`` vector against the plant limits and return it."""
        if availability.shape != self.max_servers.shape:
            raise ValueError(
                f"availability must have shape {self.max_servers.shape}, got {availability.shape}"
            )
        require_non_negative_array(availability, "availability")
        if np.any(availability > self.max_servers + 1e-9):
            raise ValueError(
                f"availability {availability} exceeds plant capacity {self.max_servers} "
                f"at data center {self.name!r}"
            )
        return availability
