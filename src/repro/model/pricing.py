"""Electricity pricing models: linear and convex (Section III-A2).

The paper's base model charges ``phi_i(t)`` per unit of energy, but
Section III-A2 notes the analysis also covers an electricity cost that
is "an increasing and convex (or other) function of the energy
consumption" — e.g. demand-charge tiers where marginal energy gets more
expensive as a site draws more power.  This module provides:

* :class:`LinearPricing` — the default ``cost = price * energy``;
* :class:`TieredPricing` — piecewise-linear convex: energy above each
  tier boundary is charged at ``price * multiplier_k`` with
  non-decreasing multipliers.  Because the marginal cost curve stays a
  non-decreasing step function, the closed-form greedy slot solver
  remains *exact* under tiered pricing (the supply segments are simply
  split at tier boundaries).

All pricing models are convex in energy, keeping every per-slot
optimization convex.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Sequence, Tuple


from repro._validation import require_non_negative

__all__ = ["PricingModel", "LinearPricing", "TieredPricing"]

_EPS = 1e-12


class PricingModel(ABC):
    """Maps (energy drawn, base price) to an electricity cost."""

    @abstractmethod
    def total_cost(self, energy: float, price: float) -> float:
        """Total cost of drawing *energy* at base *price* this slot."""

    @abstractmethod
    def marginal_price(self, energy: float, price: float) -> float:
        """Marginal cost of the next unit of energy at the given draw."""

    @abstractmethod
    def tiers(self, price: float) -> List[Tuple[float, float]]:
        """The marginal-cost curve as ``[(energy_width, unit_cost), ...]``.

        Each entry gives a tier's energy width (``inf`` for the last)
        and the cost per unit energy inside it, in increasing order.
        """


@dataclass(frozen=True)
class LinearPricing(PricingModel):
    """The paper's base model: ``cost = price * energy``."""

    def total_cost(self, energy: float, price: float) -> float:
        require_non_negative(energy, "energy")
        require_non_negative(price, "price")
        return price * energy

    def marginal_price(self, energy: float, price: float) -> float:
        require_non_negative(energy, "energy")
        return price

    def tiers(self, price: float) -> List[Tuple[float, float]]:
        return [(float("inf"), price)]


@dataclass(frozen=True)
class TieredPricing(PricingModel):
    """Increasing-block (convex piecewise-linear) electricity pricing.

    Parameters
    ----------
    boundaries:
        Energy levels where the marginal multiplier steps up, strictly
        increasing, e.g. ``(100.0, 250.0)``.
    multipliers:
        One multiplier per tier (``len(boundaries) + 1`` values),
        non-decreasing, applied to the base price.  E.g.
        ``(1.0, 1.5, 2.5)``: the first 100 energy units cost ``price``,
        the next 150 cost ``1.5 * price``, everything beyond
        ``2.5 * price``.
    """

    boundaries: tuple
    multipliers: tuple

    def __init__(self, boundaries: Sequence[float], multipliers: Sequence[float]) -> None:
        bnd = tuple(float(b) for b in boundaries)
        mul = tuple(float(m) for m in multipliers)
        if len(mul) != len(bnd) + 1:
            raise ValueError(
                f"need {len(bnd) + 1} multipliers for {len(bnd)} boundaries, "
                f"got {len(mul)}"
            )
        if any(b <= 0 for b in bnd):
            raise ValueError("tier boundaries must be positive")
        if any(b2 <= b1 for b1, b2 in zip(bnd, bnd[1:])):
            raise ValueError("tier boundaries must be strictly increasing")
        if any(m <= 0 for m in mul):
            raise ValueError("multipliers must be positive")
        if any(m2 < m1 for m1, m2 in zip(mul, mul[1:])):
            raise ValueError(
                "multipliers must be non-decreasing (convex pricing)"
            )
        object.__setattr__(self, "boundaries", bnd)
        object.__setattr__(self, "multipliers", mul)

    def tiers(self, price: float) -> List[Tuple[float, float]]:
        require_non_negative(price, "price")
        widths = []
        prev = 0.0
        for b in self.boundaries:
            widths.append(b - prev)
            prev = b
        widths.append(float("inf"))
        return [(w, price * m) for w, m in zip(widths, self.multipliers)]

    def total_cost(self, energy: float, price: float) -> float:
        require_non_negative(energy, "energy")
        require_non_negative(price, "price")
        remaining = energy
        cost = 0.0
        for width, unit in self.tiers(price):
            take = min(remaining, width)
            cost += take * unit
            remaining -= take
            if remaining <= _EPS:
                break
        return cost

    def marginal_price(self, energy: float, price: float) -> float:
        require_non_negative(energy, "energy")
        level = energy
        for width, unit in self.tiers(price):
            if level <= width + _EPS:
                return unit
            level -= width
        return price * self.multipliers[-1]
