"""Time-varying cluster state: ``x(t) = {n_i(t), phi_i(t)}`` for all sites.

The paper makes *no* distributional assumption on the state process —
it may be non-stationary and adversarial — and GreFar only ever observes
the current slot's state.  :class:`ClusterState` is therefore a plain
immutable snapshot; the stochastic generators live in
:mod:`repro.workloads`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro._validation import require_non_negative_array
from repro.model.cluster import Cluster

__all__ = ["ClusterState"]


@dataclass(frozen=True)
class ClusterState:
    """Snapshot of the data center states for one scheduling slot.

    Parameters
    ----------
    availability:
        ``(N, K)`` matrix: ``availability[i, k]`` is ``n_ik(t)``, the
        number of class-``k`` servers available for batch work at site
        ``i`` during the slot.
    prices:
        Length-``N`` vector of electricity prices ``phi_i(t)``.
    missing_ok:
        If True, NaN entries are permitted and mean "signal missing"
        (a stale price feed, a partitioned site).  Such *observed*
        states are produced by :class:`~repro.faults.injector.FaultInjector`;
        schedulers substitute last-known-good values via
        :meth:`~repro.schedulers.base.Scheduler.prepare_state` before
        using them.  Ground-truth states never carry NaN.
    """

    availability: np.ndarray
    prices: np.ndarray

    def __init__(
        self,
        availability: np.ndarray,
        prices: Sequence[float],
        missing_ok: bool = False,
    ) -> None:
        avail = np.asarray(availability, dtype=np.float64)
        price = np.asarray(prices, dtype=np.float64)
        if avail.ndim != 2:
            raise ValueError(f"availability must be a 2-D (N, K) array, got ndim={avail.ndim}")
        if price.ndim != 1:
            raise ValueError(f"prices must be a 1-D length-N array, got ndim={price.ndim}")
        if avail.shape[0] != price.shape[0]:
            raise ValueError(
                f"availability has {avail.shape[0]} sites but prices has {price.shape[0]}"
            )
        if missing_ok:
            for name, arr in (("availability", avail), ("prices", price)):
                finite_or_nan = np.isfinite(arr) | np.isnan(arr)
                if not np.all(finite_or_nan):
                    raise ValueError(f"{name} must contain only finite or NaN values")
                if np.any(arr < 0):  # NaN compares False: only real negatives trip
                    raise ValueError(f"{name} must be element-wise non-negative")
        else:
            require_non_negative_array(avail, "availability")
            require_non_negative_array(price, "prices")
        avail = avail.copy()
        price = price.copy()
        avail.setflags(write=False)
        price.setflags(write=False)
        object.__setattr__(self, "availability", avail)
        object.__setattr__(self, "prices", price)

    @property
    def num_datacenters(self) -> int:
        """``N`` for this snapshot."""
        return int(self.availability.shape[0])

    # ------------------------------------------------------------------
    # Missing-signal introspection (observed states under faults)
    # ------------------------------------------------------------------
    @property
    def missing_prices(self) -> np.ndarray:
        """Boolean length-``N`` mask of missing (NaN) price signals."""
        return np.isnan(self.prices)

    @property
    def missing_availability(self) -> np.ndarray:
        """Boolean ``(N, K)`` mask of missing (NaN) availability signals."""
        return np.isnan(self.availability)

    @property
    def has_missing(self) -> bool:
        """True if any signal in this snapshot is missing."""
        return bool(np.isnan(self.prices).any() or np.isnan(self.availability).any())

    @property
    def num_server_classes(self) -> int:
        """``K`` for this snapshot."""
        return int(self.availability.shape[1])

    def capacities(self, cluster: Cluster) -> np.ndarray:
        """Per-site work capacity ``sum_k n_ik(t) * s_k`` (length ``N``)."""
        self._check_dims(cluster)
        return self.availability @ cluster.speeds

    def total_resource(self, cluster: Cluster) -> float:
        """``R(t) = sum_i sum_k n_ik(t) * s_k``: systemwide resource (eq. 3)."""
        return float(np.sum(self.capacities(cluster)))

    def validate_for(self, cluster: Cluster) -> "ClusterState":
        """Check that the snapshot is feasible for *cluster* plant limits."""
        self._check_dims(cluster)
        for i, dc in enumerate(cluster.datacenters):
            dc.validate_availability(self.availability[i])
        return self

    def _check_dims(self, cluster: Cluster) -> None:
        if self.num_datacenters != cluster.num_datacenters:
            raise ValueError(
                f"state has {self.num_datacenters} sites, cluster has "
                f"{cluster.num_datacenters}"
            )
        if self.num_server_classes != cluster.num_server_classes:
            raise ValueError(
                f"state has {self.num_server_classes} server classes, cluster has "
                f"{cluster.num_server_classes}"
            )
