"""Queue substrate: the exact dynamics of eqs. (12)-(13) plus FIFO delay ledgers.

Two layers are maintained in lock-step:

* **Scalar queue lengths** ``Q_j(t)`` (central scheduler) and
  ``q_ij(t)`` (per data center), updated exactly by

  .. math::

     Q_j(t+1) = \\max[Q_j(t) - \\sum_i r_{ij}(t),\\, 0] + a_j(t)

     q_{ij}(t+1) = \\max[q_{ij}(t) - h_{ij}(t),\\, 0] + r_{ij}(t)

* **FIFO ledgers** of :class:`~repro.model.job.JobBatch` entries so the
  simulator can attribute a queueing delay to every (fractional) job:
  jobs drain oldest-first, which is both the natural service order and
  the one that minimizes measured average delay.

Within a slot ``t`` the order of operations mirrors the equations:
service ``h(t)`` drains the *current* data center queues, routing
``r(t)`` then drains the central queue and enqueues at the data
centers, and finally new arrivals ``a(t)`` join the central queue.  A
batch routed at slot ``t`` therefore cannot be served before ``t + 1``,
so the "Always" baseline measures an average data center delay of one
slot, matching Section VI-B3.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Tuple

import numpy as np

from repro._contracts import checked_step
from repro.model.action import Action
from repro.model.cluster import Cluster
from repro.obs.instruments import timed

__all__ = ["DelayStats", "QueueNetwork"]

_EPS = 1e-12


@dataclass
class DelayStats:
    """Accumulated per-job queueing delay statistics.

    Delays are measured in slots.  "Front" delay is the time a job
    spends in the central queue (arrival slot to routing slot); "DC"
    delay is the time from routing to service.  Fractional jobs
    contribute fractionally.
    """

    num_datacenters: int
    num_job_types: int
    front_completed: np.ndarray = field(init=False)
    front_delay_sum: np.ndarray = field(init=False)
    dc_completed: np.ndarray = field(init=False)
    dc_delay_sum: np.ndarray = field(init=False)
    dc_delay_histogram: list = field(init=False)
    front_delay_histogram: dict = field(init=False)

    def __post_init__(self) -> None:
        j = self.num_job_types
        n = self.num_datacenters
        self.front_completed = np.zeros(j)
        self.front_delay_sum = np.zeros(j)
        self.dc_completed = np.zeros((n, j))
        self.dc_delay_sum = np.zeros((n, j))
        # Per-DC histograms of (integer-slot) delays -> job counts, for
        # percentile reporting without storing every sample.
        self.dc_delay_histogram = [{} for _ in range(n)]
        self.front_delay_histogram = {}

    # ------------------------------------------------------------------
    def record_routed(self, job_type: int, count: float, delay: float) -> None:
        """Record *count* type-``job_type`` jobs leaving the central queue."""
        self.front_completed[job_type] += count
        self.front_delay_sum[job_type] += count * delay
        bucket = int(round(delay))
        self.front_delay_histogram[bucket] = (
            self.front_delay_histogram.get(bucket, 0.0) + count
        )

    def record_served(self, dc: int, job_type: int, count: float, delay: float) -> None:
        """Record *count* jobs of one type served at data center *dc*."""
        self.dc_completed[dc, job_type] += count
        self.dc_delay_sum[dc, job_type] += count * delay
        bucket = int(round(delay))
        hist = self.dc_delay_histogram[dc]
        hist[bucket] = hist.get(bucket, 0.0) + count

    # ------------------------------------------------------------------
    def mean_front_delay(self, job_type: int | None = None) -> float:
        """Average central-queue delay, overall or for one job type."""
        if job_type is None:
            total = self.front_completed.sum()
            return float(self.front_delay_sum.sum() / total) if total > _EPS else 0.0
        total = self.front_completed[job_type]
        return float(self.front_delay_sum[job_type] / total) if total > _EPS else 0.0

    def mean_dc_delay(self, dc: int | None = None) -> float:
        """Average data-center delay, overall or for one site (Fig. 2b/2c)."""
        if dc is None:
            total = self.dc_completed.sum()
            return float(self.dc_delay_sum.sum() / total) if total > _EPS else 0.0
        total = self.dc_completed[dc].sum()
        return float(self.dc_delay_sum[dc].sum() / total) if total > _EPS else 0.0

    def mean_total_delay(self) -> float:
        """Average end-to-end (front + DC) delay over all served jobs."""
        served = self.dc_completed.sum()
        if served <= _EPS:
            return 0.0
        return float((self.front_delay_sum.sum() + self.dc_delay_sum.sum()) / served)

    @staticmethod
    def _histogram_percentile(histogram: dict, q: float) -> float:
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must lie in [0, 1], got {q}")
        total = sum(histogram.values())
        if total <= _EPS:
            return 0.0
        threshold = q * total
        cumulative = 0.0
        for delay in sorted(histogram):
            cumulative += histogram[delay]
            if cumulative >= threshold - _EPS:
                return float(delay)
        return float(max(histogram))

    def dc_delay_percentile(self, q: float, dc: int | None = None) -> float:
        """Delay percentile (slots) for one site or all sites combined.

        Tail delay is the SLO-relevant metric a mean hides: the paper's
        O(V) queue bound implies a hard cap on it, which the Theorem 1
        benchmark checks.
        """
        if dc is not None:
            return self._histogram_percentile(self.dc_delay_histogram[dc], q)
        merged: dict = {}
        for hist in self.dc_delay_histogram:
            for delay, count in hist.items():
                merged[delay] = merged.get(delay, 0.0) + count
        return self._histogram_percentile(merged, q)

    def front_delay_percentile(self, q: float) -> float:
        """Central-queue delay percentile (slots)."""
        return self._histogram_percentile(self.front_delay_histogram, q)


class QueueNetwork:
    """The central and per-data-center job queues with exact paper dynamics.

    Parameters
    ----------
    cluster:
        The static system description (dimensions and eligibility).

    Notes
    -----
    The *literal* dynamics of eqs. (12)-(13) allow a scheduler to route
    more jobs than the central queue holds or serve more than a data
    center queue holds; the ``max[., 0]`` truncation absorbs the excess
    and the data center queue would gain "phantom" jobs.  The scalar
    queues here follow the equations exactly, while the FIFO ledgers
    only ever contain real jobs, so ledger totals equal the scalar
    queue values whenever the scheduler's decisions are *physical*
    (never overdraw).  All schedulers shipped with this library are
    physical; :meth:`clip_to_content` is provided to make any action
    physical.
    """

    def __init__(self, cluster: Cluster) -> None:
        self._cluster = cluster
        n, j = cluster.num_datacenters, cluster.num_job_types
        self._front = np.zeros(j)
        self._dc = np.zeros((n, j))
        self._front_ledger: List[Deque[List[float]]] = [deque() for _ in range(j)]
        self._dc_ledger: Dict[Tuple[int, int], Deque[List[float]]] = {
            (i, jj): deque() for i in range(n) for jj in range(j)
        }
        self._stats = DelayStats(n, j)

    # ------------------------------------------------------------------
    # Read-only views
    # ------------------------------------------------------------------
    @property
    def cluster(self) -> Cluster:
        """The static system description this network was built for."""
        return self._cluster

    @property
    def front(self) -> np.ndarray:
        """Central queue lengths ``Q_j(t)`` (length ``J``, copy)."""
        return self._front.copy()

    @property
    def dc(self) -> np.ndarray:
        """Data center queue lengths ``q_ij(t)`` (``(N, J)``, copy)."""
        return self._dc.copy()

    @property
    def stats(self) -> DelayStats:
        """Accumulated delay statistics (live object)."""
        return self._stats

    def front_ledger_totals(self) -> np.ndarray:
        """Jobs held by the central FIFO ledgers (length ``J``).

        Equals :attr:`front` for physical schedulers; non-physical
        actions can inflate the scalar queues with phantom jobs the
        ledgers never contain.  Used by :mod:`repro._contracts` to check
        the two layers stay in lock-step.
        """
        totals = np.zeros_like(self._front)
        for jj, ledger in enumerate(self._front_ledger):
            totals[jj] = sum(batch[1] for batch in ledger)
        return totals

    def dc_ledger_totals(self) -> np.ndarray:
        """Jobs held by the per-site FIFO ledgers (``(N, J)``)."""
        totals = np.zeros_like(self._dc)
        for (i, jj), ledger in self._dc_ledger.items():
            totals[i, jj] = sum(batch[1] for batch in ledger)
        return totals

    def total_backlog(self) -> float:
        """Sum of all queue lengths (jobs)."""
        return float(self._front.sum() + self._dc.sum())

    def backlog_work(self) -> float:
        """Total backlog expressed in units of work."""
        d = self._cluster.demands
        return float(np.dot(self._front, d) + np.dot(self._dc.sum(axis=0), d))

    def lyapunov(self) -> float:
        """Quadratic Lyapunov function ``L(Theta(t))`` of eq. (26)."""
        return float(0.5 * np.sum(self._front**2) + 0.5 * np.sum(self._dc**2))

    def max_queue_length(self) -> float:
        """The largest individual queue length (for Theorem 1a checks)."""
        front_max = float(self._front.max()) if self._front.size else 0.0
        dc_max = float(self._dc.max()) if self._dc.size else 0.0
        return max(front_max, dc_max)

    # ------------------------------------------------------------------
    # Dynamics
    # ------------------------------------------------------------------
    def clip_to_content(self, action: Action) -> Action:
        """Return a *physical* copy of *action*: never overdraw a queue.

        Routing of each type is reduced (largest senders last) so the
        total routed does not exceed ``Q_j(t)``, keeping integrality.
        Service is clipped to the data center queue contents.
        """
        r = np.array(action.route)
        h = np.minimum(np.array(action.serve), self._dc)
        for j in range(self._cluster.num_job_types):
            excess = r[:, j].sum() - np.floor(self._front[j] + 1e-9)
            if excess <= 0:
                continue
            order = np.argsort(-r[:, j])
            for i in order:
                take = min(r[i, j], excess)
                r[i, j] -= take
                excess -= take
                if excess <= 0:
                    break
        return Action(r, h, action.busy)

    def evict_dc(self, dc: int) -> np.ndarray:
        """Evict every job queued at site *dc*; return per-type counts.

        Used by the fault injector at outage onset: the site's scalar
        queues are zeroed and its FIFO ledgers cleared without recording
        any service (the jobs were *not* completed).  The caller owns
        re-admission — evicted work re-enters the central queues through
        the ordinary arrival path of eq. (12), typically with a backoff
        (see :class:`~repro.faults.injector.RequeuePolicy`), so the
        queue dynamics stay exactly the paper's.

        Returns the ledger-based per-type counts (equal to the scalar
        queue contents for physical schedulers).
        """
        if not 0 <= dc < self._cluster.num_datacenters:
            raise IndexError(
                f"dc must be in [0, {self._cluster.num_datacenters}), got {dc}"
            )
        j_count = self._cluster.num_job_types
        counts = np.zeros(j_count)
        for jj in range(j_count):
            ledger = self._dc_ledger[(dc, jj)]
            counts[jj] = sum(batch[1] for batch in ledger)
            ledger.clear()
        self._dc[dc] = 0.0
        return counts

    @checked_step
    @timed("queues.step")
    def step(self, action: Action, arrivals: np.ndarray, t: int) -> dict:
        """Advance one slot: apply service, routing, then arrivals.

        With ``REPRO_CONTRACTS=1`` the post-state is verified against
        the queue invariants (non-negativity, ledger/scalar lock-step)
        after every call; see :mod:`repro._contracts`.

        Parameters
        ----------
        action:
            The slot decision ``z(t)``.
        arrivals:
            Length-``J`` vector ``a_j(t)`` of new jobs this slot.
        t:
            The slot index (used for delay bookkeeping).

        Returns
        -------
        dict
            ``{"served": (N, J) array of jobs actually completed,
            "routed": (N, J) array of jobs actually moved}`` — these
            equal ``h`` / ``r`` exactly for physical actions.
        """
        arrivals = np.asarray(arrivals, dtype=np.float64)
        if arrivals.shape != self._front.shape:
            raise ValueError(
                f"arrivals must have shape {self._front.shape}, got {arrivals.shape}"
            )
        if np.any(arrivals < 0):
            raise ValueError("arrivals must be non-negative")

        served = self._apply_service(action.serve, t)
        routed = self._apply_routing(action.route, t)
        self._apply_arrivals(arrivals, t)
        return {"served": served, "routed": routed}

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _apply_service(self, h: np.ndarray, t: int) -> np.ndarray:
        served = np.zeros_like(self._dc)
        n, j = self._dc.shape
        for i in range(n):
            for jj in range(j):
                want = h[i, jj]
                if want <= _EPS:
                    continue
                got = self._drain_ledger(self._dc_ledger[(i, jj)], want, t, i, jj)
                served[i, jj] = got
        # Scalar update follows eq. (13)'s max[. , 0] exactly.
        self._dc = np.maximum(self._dc - h, 0.0)
        return served

    def _apply_routing(self, r: np.ndarray, t: int) -> np.ndarray:
        routed = np.zeros_like(r)
        n, j = r.shape
        for jj in range(j):
            total_want = r[:, jj].sum()
            if total_want <= _EPS:
                continue
            available = self._front[jj]
            drained = self._drain_front_ledger(jj, min(total_want, available), t)
            # Allocate the really-drained jobs to sites proportionally to
            # the requested split (exactly r for physical actions).
            if total_want > _EPS:
                share = r[:, jj] / total_want
            else:
                share = np.zeros(n)
            for i in range(n):
                count = drained * share[i]
                if count <= _EPS:
                    continue
                self._dc_ledger[(i, jj)].append([float(t), count])
                routed[i, jj] = count
        # Scalar updates follow eqs. (12)-(13) exactly (including any
        # phantom jobs a non-physical action would create).
        self._front = np.maximum(self._front - r.sum(axis=0), 0.0)
        self._dc = self._dc + r
        return routed

    def _apply_arrivals(self, arrivals: np.ndarray, t: int) -> None:
        for jj, count in enumerate(arrivals):
            if count > _EPS:
                self._front_ledger[jj].append([float(t), float(count)])
        self._front = self._front + arrivals

    def _drain_front_ledger(self, job_type: int, want: float, t: int) -> float:
        ledger = self._front_ledger[job_type]
        drained = 0.0
        while want > _EPS and ledger:
            batch = ledger[0]
            take = min(batch[1], want)
            batch[1] -= take
            want -= take
            drained += take
            self._stats.record_routed(job_type, take, t - batch[0])
            if batch[1] <= _EPS:
                ledger.popleft()
        return drained

    def _drain_ledger(
        self,
        ledger: Deque[List[float]],
        want: float,
        t: int,
        dc: int,
        job_type: int,
    ) -> float:
        drained = 0.0
        while want > _EPS and ledger:
            batch = ledger[0]
            take = min(batch[1], want)
            batch[1] -= take
            want -= take
            drained += take
            self._stats.record_served(dc, job_type, take, t - batch[0])
            if batch[1] <= _EPS:
                ledger.popleft()
        return drained
