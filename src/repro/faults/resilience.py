"""Resilience measurement: recovery time, overshoot and cost inflation.

:class:`ResilienceObserver` is an ordinary simulation observer
(``(t, state, action, queues)``) that, given the fault schedule, turns
a faulted run into a :class:`ResilienceReport`:

* **recovery time** — slots from the moment a fault clears until the
  total backlog first returns to its pre-fault level (within a
  tolerance);
* **backlog overshoot** — the peak backlog reached during the fault
  and recovery, in absolute terms and (when Theorem 1 constants are
  supplied) relative to the ``V C3 / delta`` queue bound of eq. (23),
  which keeps holding *through* the fault because GreFar assumes
  nothing about the state process;
* **cost inflation** — average energy cost over the fault + recovery
  window relative to the pre-fault average (re-routed work runs at
  whatever sites survive, usually pricier ones).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.faults.events import FaultEvent, FaultSchedule
from repro.model.cluster import Cluster

__all__ = ["FaultImpact", "ResilienceObserver", "ResilienceReport"]

_EPS = 1e-12


@dataclass(frozen=True)
class FaultImpact:
    """Measured impact of one fault event.

    Attributes
    ----------
    event:
        The fault this impact describes.
    pre_backlog:
        Total backlog (jobs) at the end of the slot before onset.
    peak_backlog:
        Largest total backlog observed from onset until recovery (or
        the end of the run).
    peak_front_queue:
        Largest single central-queue length over the same window (the
        quantity the eq. (23) bound constrains).
    recovery_slots:
        Slots from the fault clearing until the backlog first returned
        to ``pre_backlog + tolerance`` — ``None`` if it never did
        within the run.
    cost_inflation:
        Mean energy cost over the fault + recovery window divided by
        the pre-fault mean (1.0 = no inflation; NaN if there was no
        pre-fault window).
    """

    event: FaultEvent
    pre_backlog: float
    peak_backlog: float
    peak_front_queue: float
    recovery_slots: int | None
    cost_inflation: float

    @property
    def overshoot(self) -> float:
        """Backlog growth above the pre-fault level."""
        return max(self.peak_backlog - self.pre_backlog, 0.0)

    @property
    def recovered(self) -> bool:
        """True if the backlog returned to its pre-fault level."""
        return self.recovery_slots is not None


@dataclass(frozen=True)
class ResilienceReport:
    """Per-event impacts plus run-level aggregates."""

    scheduler: str
    impacts: tuple
    queue_bound: float | None

    @property
    def all_recovered(self) -> bool:
        """True if every fault's backlog impact was fully absorbed."""
        return all(impact.recovered for impact in self.impacts)

    @property
    def max_recovery_slots(self) -> int | None:
        """Worst recovery time across events (``None`` if any never recovered)."""
        worst = 0
        for impact in self.impacts:
            if impact.recovery_slots is None:
                return None
            worst = max(worst, impact.recovery_slots)
        return worst

    @property
    def max_overshoot(self) -> float:
        """Largest backlog overshoot across events."""
        return max((i.overshoot for i in self.impacts), default=0.0)

    @property
    def peak_front_queue(self) -> float:
        """Largest central-queue length seen in any fault window."""
        return max((i.peak_front_queue for i in self.impacts), default=0.0)

    def bound_utilization(self) -> float | None:
        """Peak front queue as a fraction of the ``V C3 / delta`` bound."""
        if self.queue_bound is None or self.queue_bound <= 0:
            return None
        return self.peak_front_queue / self.queue_bound

    def as_dict(self) -> dict:
        """Plain-dict view for tabular output."""
        return {
            "scheduler": self.scheduler,
            "events": len(self.impacts),
            "all_recovered": self.all_recovered,
            "max_recovery_slots": self.max_recovery_slots,
            "max_overshoot": self.max_overshoot,
            "peak_front_queue": self.peak_front_queue,
            "queue_bound": self.queue_bound,
            "bound_utilization": self.bound_utilization(),
            "cost_inflation": [float(i.cost_inflation) for i in self.impacts],
        }


class ResilienceObserver:
    """Observer recording the series a :class:`ResilienceReport` needs.

    Parameters
    ----------
    cluster:
        Static system description (for energy accounting).
    schedule:
        The injected faults to attribute impacts to.
    queue_bound:
        Optional precomputed ``V C3 / delta`` bound (eq. 23) to report
        overshoot against — see
        :meth:`repro.core.bounds.TheoremConstants.queue_bound`.
    tolerance:
        Absolute backlog slack (jobs) within which the system counts
        as recovered.
    """

    def __init__(
        self,
        cluster: Cluster,
        schedule: FaultSchedule,
        queue_bound: float | None = None,
        tolerance: float = 1e-6,
    ) -> None:
        self.cluster = cluster
        self.schedule = schedule
        self.queue_bound = queue_bound
        self.tolerance = float(tolerance)
        self._backlog: list = []
        self._front_max: list = []
        self._energy: list = []
        self._scheduler_name = ""

    # ------------------------------------------------------------------
    def __call__(self, t, state, action, queues) -> None:
        self._backlog.append(queues.total_backlog())
        front = queues.front
        self._front_max.append(float(front.max()) if front.size else 0.0)
        self._energy.append(action.energy_cost(self.cluster, state))

    # ------------------------------------------------------------------
    def _impact(self, event: FaultEvent) -> FaultImpact:
        backlog = np.asarray(self._backlog)
        front_max = np.asarray(self._front_max)
        energy = np.asarray(self._energy)
        horizon = len(backlog)
        start = min(event.start, horizon)
        end = min(event.end, horizon)
        pre = float(backlog[start - 1]) if start > 0 else 0.0

        # Recovery: first slot at/after the fault clears with backlog
        # back at the pre-fault level.
        recovery_slots: int | None = None
        recovered_at = horizon
        for t in range(end, horizon):
            if backlog[t] <= pre + self.tolerance:
                recovery_slots = t - end
                recovered_at = t
                break

        window = slice(start, max(recovered_at + 1, end))
        peak = float(backlog[window].max()) if backlog[window].size else pre
        peak_front = float(front_max[window].max()) if front_max[window].size else 0.0

        pre_energy = float(energy[:start].mean()) if start > 0 else np.nan
        window_energy = (
            float(energy[window].mean()) if energy[window].size else np.nan
        )
        if pre_energy and np.isfinite(pre_energy) and pre_energy > _EPS:
            inflation = window_energy / pre_energy
        else:
            inflation = float("nan")
        return FaultImpact(
            event=event,
            pre_backlog=pre,
            peak_backlog=max(peak, pre),
            peak_front_queue=peak_front,
            recovery_slots=recovery_slots,
            cost_inflation=inflation,
        )

    def report(self, scheduler: str = "") -> ResilienceReport:
        """Compute the :class:`ResilienceReport` for the recorded run."""
        impacts = tuple(self._impact(event) for event in self.schedule)
        return ResilienceReport(
            scheduler=scheduler,
            impacts=impacts,
            queue_bound=self.queue_bound,
        )
