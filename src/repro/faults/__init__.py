"""Fault injection and resilience measurement (``repro.faults``).

The subsystem splits every faulted run into a *ground truth* stream
(what the dynamics and cost accounting use) and an *observed* stream
(what the scheduler sees), so outages, partial capacity crashes, stale
price feeds and network partitions are all representable:

>>> from repro import FaultInjector, FaultSchedule, Simulator
>>> schedule = FaultSchedule.single_outage(dc=1, start=150, duration=60)
>>> injector = FaultInjector(scenario.cluster, schedule)
>>> result = Simulator(scenario, scheduler, injector=injector).run()

See ``docs/RESILIENCE.md`` for the fault model and degraded-mode
semantics.
"""

from repro.faults.events import (
    FAULT_KINDS,
    FaultEvent,
    FaultSchedule,
    RandomFaultProcess,
)
from repro.faults.injector import FaultInjector, RequeuePolicy
from repro.faults.resilience import FaultImpact, ResilienceObserver, ResilienceReport

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultImpact",
    "FaultInjector",
    "FaultSchedule",
    "RandomFaultProcess",
    "RequeuePolicy",
    "ResilienceObserver",
    "ResilienceReport",
]
