"""Fault injection and resilience measurement (``repro.faults``).

The subsystem splits every faulted run into a *ground truth* stream
(what the dynamics and cost accounting use) and an *observed* stream
(what the scheduler sees), so outages, partial capacity crashes, stale
price feeds and network partitions are all representable:

>>> from repro import FaultInjector, FaultSchedule, Simulator
>>> schedule = FaultSchedule.single_outage(dc=1, start=150, duration=60)
>>> injector = FaultInjector(scenario.cluster, schedule)
>>> result = Simulator(scenario, scheduler, injector=injector).run()

Process-level faults (:mod:`repro.faults.process`) model failures of
the simulator's own shard workers — kill, hang, straggle, slow start —
and are applied by :mod:`repro.distrib` for chaos drills.

See ``docs/RESILIENCE.md`` for the fault model and degraded-mode
semantics, and ``docs/DISTRIBUTED.md`` for the process-fault drills.
"""

from repro.faults.events import (
    FAULT_KINDS,
    FaultEvent,
    FaultSchedule,
    RandomFaultProcess,
)
from repro.faults.injector import FaultInjector, RequeuePolicy
from repro.faults.process import (
    PROCESS_FAULT_KINDS,
    ProcessFaultEvent,
    ProcessFaultSchedule,
)
from repro.faults.resilience import FaultImpact, ResilienceObserver, ResilienceReport

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultImpact",
    "FaultInjector",
    "FaultSchedule",
    "PROCESS_FAULT_KINDS",
    "ProcessFaultEvent",
    "ProcessFaultSchedule",
    "RandomFaultProcess",
    "RequeuePolicy",
    "ResilienceObserver",
    "ResilienceReport",
]
