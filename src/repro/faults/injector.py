"""Fault injection between a :class:`Scenario` and the simulator loop.

The injector maintains the split the resilience work hinges on:

* **Ground truth** — the state the queue dynamics and cost accounting
  are applied to.  Capacity faults (``outage`` / ``capacity_loss``)
  act here: servers really are gone.
* **Observed state** — what the scheduler is shown.  Signal faults
  (``stale_price`` / ``partition``) act here: the truth keeps evolving,
  but the scheduler sees missing (NaN) entries and must fall back to
  its last-known-good estimates
  (:meth:`~repro.schedulers.base.Scheduler.prepare_state`).

On top of the state split the injector owns two action-level effects:

* **Command filtering** — a partitioned or dark site accepts no
  routing, service or power commands; jobs aimed at it stay in the
  central queue (their ``r_ij`` is dropped before the dynamics apply).
* **Eviction + backoff re-admission** — at outage onset every job
  queued at the failed site is evicted
  (:meth:`~repro.model.queues.QueueNetwork.evict_dc`) and re-admitted
  into the central queues through the ordinary eq. (12) arrival path,
  in integer tranches spread with exponential backoff
  (:class:`RequeuePolicy`) so a recovering system is not hit by a
  thundering herd.

With an empty :class:`~repro.faults.events.FaultSchedule` every hook is
a strict pass-through returning its inputs *unchanged* (same objects),
so a run with the injector installed is bit-identical to one without.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._validation import require_at_least, require_integer
from repro.faults.events import FaultSchedule
from repro.model.action import Action
from repro.model.cluster import Cluster
from repro.model.queues import QueueNetwork
from repro.model.state import ClusterState

__all__ = ["FaultInjector", "RequeuePolicy"]


@dataclass(frozen=True)
class RequeuePolicy:
    """Exponential-backoff re-admission of evicted work.

    Work evicted at slot ``t`` is split into ``tranches`` integer parts
    (largest-remainder rounding, earliest tranches largest) released at
    ``t + base_delay * factor**k`` for ``k = 0, 1, ...`` — with the
    defaults: 1, 2, 4 and 8 slots after the eviction.  Released work
    joins the central queue through the ordinary arrival path of
    eq. (12); its delay clock restarts at re-admission.
    """

    base_delay: int = 1
    factor: float = 2.0
    tranches: int = 4

    def __post_init__(self) -> None:
        require_integer(self.base_delay, "base_delay", minimum=1)
        require_at_least(self.factor, 1.0, "factor")
        require_integer(self.tranches, "tranches", minimum=1)

    def offsets(self) -> tuple:
        """Release offsets (slots after eviction) for each tranche."""
        return tuple(
            int(round(self.base_delay * self.factor**k)) for k in range(self.tranches)
        )

    def split(self, counts: np.ndarray) -> list:
        """Split per-type *counts* into per-tranche integer parts.

        Returns a list of ``tranches`` arrays summing exactly to
        ``floor``-preserving integer totals (fractional inputs keep
        their fractional remainder in the first tranche so nothing is
        lost).
        """
        counts = np.asarray(counts, dtype=np.float64)
        parts = [np.zeros_like(counts) for _ in range(self.tranches)]
        for j, total in enumerate(counts):
            if total <= 0:
                continue
            whole = np.floor(total)
            base, extra = divmod(int(whole), self.tranches)
            for k in range(self.tranches):
                parts[k][j] = base + (1 if k < extra else 0)
            parts[0][j] += total - whole  # fractional remainder, if any
        return parts


class FaultInjector:
    """Wrap a simulation run with the fault semantics of a schedule.

    Parameters
    ----------
    cluster:
        The static system description (dimensions).
    schedule:
        The faults to inject.  An empty schedule makes every hook a
        strict no-op.
    requeue:
        Re-admission policy for work evicted by outages.

    Notes
    -----
    The injector is stateful (pending re-admissions, eviction log);
    :meth:`reset` restores the initial state, and the simulator calls
    it at the start of every run.
    """

    def __init__(
        self,
        cluster: Cluster,
        schedule: FaultSchedule,
        requeue: RequeuePolicy | None = None,
    ) -> None:
        if not isinstance(schedule, FaultSchedule):
            schedule = FaultSchedule(tuple(schedule))
        schedule.validate_for(cluster)
        self.cluster = cluster
        self.schedule = schedule
        self.requeue = requeue if requeue is not None else RequeuePolicy()
        self._noop = schedule.is_empty
        self.reset()

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Clear pending re-admissions and the eviction log."""
        self._pending: dict = {}  # release slot -> per-type counts
        self.evicted_jobs = 0.0
        self.requeued_jobs = 0.0
        self.eviction_log: list = []  # (event, per-type counts)

    @property
    def pending_jobs(self) -> float:
        """Evicted work still waiting for its backoff release."""
        return float(sum(float(np.sum(v)) for v in self._pending.values()))

    # ------------------------------------------------------------------
    # Slot hooks, in the order the simulator calls them
    # ------------------------------------------------------------------
    def begin_slot(self, t: int, queues: QueueNetwork) -> np.ndarray | None:
        """Onset bookkeeping; returns re-admitted arrivals due this slot.

        At each outage onset the failed site's queues are evicted and
        scheduled for backoff re-admission.  Returns ``None`` when no
        re-admission is due (the common case), keeping the no-fault
        path allocation-free.
        """
        if self._noop:
            return None
        for event in self.schedule.starting(t):
            if event.kind != "outage":
                continue
            counts = queues.evict_dc(event.dc)
            total = float(np.sum(counts))
            self.eviction_log.append((event, counts))
            if total <= 0:
                continue
            self.evicted_jobs += total
            for offset, part in zip(
                self.requeue.offsets(), self.requeue.split(counts)
            ):
                if np.sum(part) <= 0:
                    continue
                slot = t + offset
                if slot in self._pending:
                    self._pending[slot] = self._pending[slot] + part
                else:
                    self._pending[slot] = part
        due = self._pending.pop(t, None)
        if due is not None:
            self.requeued_jobs += float(np.sum(due))
        return due

    def true_state(self, t: int, state: ClusterState) -> ClusterState:
        """Apply capacity faults to the ground truth for slot *t*."""
        if self._noop:
            return state
        factors = None
        for event in self.schedule.active(t):
            factor = event.capacity_factor
            if factor >= 1.0:
                continue
            if factors is None:
                factors = np.ones(self.cluster.num_datacenters)
            factors[event.dc] = min(factors[event.dc], factor)
        if factors is None:
            return state
        availability = state.availability * factors[:, np.newaxis]
        return ClusterState(availability, state.prices)

    def observed_state(self, t: int, true_state: ClusterState) -> ClusterState:
        """Mask the signals the scheduler must not see for slot *t*.

        Stale-price faults blank the site's price; partitions blank the
        site's price *and* availability.  Missing entries are NaN — the
        scheduler's degraded-mode substitution fills them in.
        """
        if self._noop:
            return true_state
        masked_prices = None
        masked_avail = None
        for event in self.schedule.active(t):
            if event.kind == "stale_price":
                if masked_prices is None:
                    masked_prices = np.array(true_state.prices)
                masked_prices[event.dc] = np.nan
            elif event.kind == "partition":
                if masked_prices is None:
                    masked_prices = np.array(true_state.prices)
                if masked_avail is None:
                    masked_avail = np.array(true_state.availability)
                masked_prices[event.dc] = np.nan
                masked_avail[event.dc, :] = np.nan
        if masked_prices is None and masked_avail is None:
            return true_state
        return ClusterState(
            masked_avail if masked_avail is not None else true_state.availability,
            masked_prices if masked_prices is not None else true_state.prices,
            missing_ok=True,
        )

    def filter_action(
        self, t: int, action: Action, true_state: ClusterState
    ) -> Action:
        """Drop commands the faulted system cannot execute.

        Partitioned and dark sites receive no routing, service or power
        commands (their rows are zeroed; dropped routings stay in the
        central queue).  As a safety net for schedulers acting on stale
        signals, ``busy`` is clipped to the true availability and
        ``serve`` scaled down wherever served work would exceed the
        surviving busy capacity (eq. (11) stays satisfied).
        """
        if self._noop:
            return action
        blocked = [
            e.dc
            for e in self.schedule.active(t)
            if e.kind in ("outage", "partition")
        ]
        busy = np.minimum(action.busy, true_state.availability)
        route = action.route
        serve = action.serve
        touched = bool(blocked) or bool(np.any(busy < action.busy))
        if blocked:
            route = np.array(route)
            serve = np.array(serve)
            busy = np.array(busy)
            for dc in blocked:
                route[dc, :] = 0.0
                serve[dc, :] = 0.0
                busy[dc, :] = 0.0
        # Re-establish eq. (11) where clipping shrank the busy capacity.
        work = serve @ self.cluster.demands
        cap = busy @ self.cluster.speeds
        if np.any(work > cap + 1e-9):
            serve = np.array(serve)
            for i in np.flatnonzero(work > cap + 1e-9):
                serve[i] *= 0.0 if work[i] <= 0 else min(1.0, cap[i] / work[i])
            touched = True
        if not touched:
            return action
        return Action(route, serve, busy)
