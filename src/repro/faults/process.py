"""Process-level fault events for the sharded execution layer.

:mod:`repro.faults.events` models faults of the *simulated system* —
data centers going dark, price feeds going stale.  This module models
faults of the *simulator itself*: a shard worker process that dies,
hangs, straggles or starts slowly.  The events are pure data (no
process machinery lives here — spawning is the business of
:mod:`repro.runner` and :mod:`repro.distrib`, enforced by staticcheck
rule GF013); the :mod:`repro.distrib` worker applies them
deterministically, keyed on ``(shard, slot)``, so a drill that kills a
worker mid-run is exactly reproducible.

``worker_kill``
    The worker SIGKILLs itself after receiving the slot message and
    before replying — the hard-crash drill.  The controller sees the
    pipe close mid-gather.
``worker_hang``
    The worker sleeps *before* sending its heartbeat, so the controller
    sees a shard that went silent: no heartbeat, no result.
``worker_straggle``
    The worker heartbeats on time but sleeps before the solve, so the
    controller sees a live-but-late shard — the straggler signature.
``slow_start``
    The worker sleeps before announcing readiness on the shard's
    *first* spawn (exercises spawn deadlines; respawns come up clean so
    the supervision loop converges).

Faults fire only on the first delivery attempt of their slot: a shard
that is respawned and handed the same slot again completes it, so every
drill converges instead of crash-looping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro._validation import require_integer, require_positive

__all__ = ["PROCESS_FAULT_KINDS", "ProcessFaultEvent", "ProcessFaultSchedule"]

#: The process-fault kinds understood by the shard worker.
PROCESS_FAULT_KINDS = ("worker_kill", "worker_hang", "worker_straggle", "slow_start")

#: Kinds that need a positive ``seconds`` (a zero-second hang is a no-op).
_TIMED_KINDS = ("worker_hang", "worker_straggle", "slow_start")


@dataclass(frozen=True)
class ProcessFaultEvent:
    """One process fault: *kind* hits shard *shard* at slot *slot*.

    Parameters
    ----------
    kind:
        One of :data:`PROCESS_FAULT_KINDS`.
    shard:
        Index of the affected shard worker.
    slot:
        Slot whose first delivery attempt triggers the fault (ignored
        by ``slow_start``, which fires at the shard's first spawn).
    seconds:
        Sleep length for the timed kinds; ignored by ``worker_kill``.
    """

    kind: str
    shard: int
    slot: int = 0
    seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in PROCESS_FAULT_KINDS:
            raise ValueError(
                f"kind must be one of {PROCESS_FAULT_KINDS}, got {self.kind!r}"
            )
        require_integer(self.shard, "shard", minimum=0)
        require_integer(self.slot, "slot", minimum=0)
        if self.kind in _TIMED_KINDS:
            require_positive(self.seconds, "seconds")


@dataclass(frozen=True)
class ProcessFaultSchedule:
    """An immutable collection of :class:`ProcessFaultEvent`.

    An empty schedule is a strict no-op: a shard worker built from it
    behaves bit-identically to one run without any fault plumbing.
    """

    events: tuple = field(default=())

    def __post_init__(self) -> None:
        for event in self.events:
            if not isinstance(event, ProcessFaultEvent):
                raise TypeError(
                    f"events must be ProcessFaultEvent instances, got {event!r}"
                )
        ordered = tuple(
            sorted(self.events, key=lambda e: (e.slot, e.shard, e.kind))
        )
        object.__setattr__(self, "events", ordered)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[ProcessFaultEvent]:
        return iter(self.events)

    @property
    def is_empty(self) -> bool:
        """True when the schedule contains no events (strict no-op)."""
        return not self.events

    def for_shard(self, shard: int) -> "ProcessFaultSchedule":
        """The sub-schedule targeting *shard* (what its worker receives)."""
        return ProcessFaultSchedule(
            tuple(e for e in self.events if e.shard == shard)
        )

    def at(self, shard: int, slot: int) -> Optional[ProcessFaultEvent]:
        """The in-slot fault (kill/hang/straggle) for ``(shard, slot)``."""
        for event in self.events:
            if (
                event.shard == shard
                and event.slot == slot
                and event.kind != "slow_start"
            ):
                return event
        return None

    def slow_start_seconds(self, shard: int) -> float:
        """Total spawn delay configured for *shard* (0.0 when none)."""
        return float(
            sum(
                e.seconds
                for e in self.events
                if e.shard == shard and e.kind == "slow_start"
            )
        )

    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "ProcessFaultSchedule":
        """The no-op schedule."""
        return cls(())

    @classmethod
    def single_kill(cls, shard: int, slot: int) -> "ProcessFaultSchedule":
        """SIGKILL one shard worker mid-slot — the canonical drill."""
        return cls((ProcessFaultEvent("worker_kill", shard=shard, slot=slot),))
