"""Fault events and schedules for the resilience subsystem.

GreFar's guarantee (Theorem 1) holds for *arbitrary* state processes,
but the benign workload substrates only exercise mean-reverting drift.
This module gives faults first-class structure so regime shifts — a
data center going dark, a price feed going stale, a network partition —
can be injected deterministically and studied:

* :class:`FaultEvent` — one fault: a kind, a target site, a window;
* :class:`FaultSchedule` — an immutable, start-ordered collection with
  per-slot queries;
* :class:`RandomFaultProcess` — a seeded generator of schedules for
  chaos-style sweeps (deterministic for a fixed seed).

The *semantics* of each kind are applied by
:class:`~repro.faults.injector.FaultInjector`:

``outage``
    The site loses every server (ground truth availability drops to
    zero) and all work queued there is evicted back toward the central
    queues.  The loss is observable — schedulers see the zeros.
``capacity_loss``
    A fraction ``severity`` of the site's servers crashes (ground truth
    scaled by ``1 - severity``); also observable.
``stale_price``
    The site's price *signal* goes missing: the ground truth keeps
    evolving, but the scheduler observes a missing value (NaN) and must
    fall back to its last-known-good estimate.
``partition``
    The site is unreachable: both its availability and price signals go
    missing, and no routing/service/power commands get through, so the
    site's queue freezes until the partition heals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from repro._validation import (
    require_at_least,
    require_in_range,
    require_integer,
    require_positive,
)
from repro.model.cluster import Cluster

__all__ = ["FAULT_KINDS", "FaultEvent", "FaultSchedule", "RandomFaultProcess"]

#: The fault kinds understood by the injector.
FAULT_KINDS = ("outage", "capacity_loss", "stale_price", "partition")

#: Kinds that perturb the ground-truth capacity the dynamics run on.
CAPACITY_KINDS = ("outage", "capacity_loss")

#: Kinds that perturb only what the scheduler observes.
SIGNAL_KINDS = ("stale_price", "partition")


@dataclass(frozen=True)
class FaultEvent:
    """One fault: *kind* hits data center *dc* for slots ``[start, end)``.

    Parameters
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    dc:
        Index of the affected data center.
    start:
        First slot the fault is active.
    duration:
        Number of slots the fault lasts (``end = start + duration``).
    severity:
        For ``capacity_loss``, the fraction of capacity lost, in
        ``(0, 1]``.  Ignored by the other kinds (an outage is always
        total).
    """

    kind: str
    dc: int
    start: int
    duration: int
    severity: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"kind must be one of {FAULT_KINDS}, got {self.kind!r}"
            )
        require_integer(self.dc, "dc", minimum=0)
        require_integer(self.start, "start", minimum=0)
        require_integer(self.duration, "duration", minimum=1)
        require_positive(self.severity, "severity")
        require_in_range(self.severity, 0.0, 1.0, "severity")

    @property
    def end(self) -> int:
        """First slot after the fault (exclusive)."""
        return self.start + self.duration

    def active_at(self, t: int) -> bool:
        """True if the fault is in force during slot *t*."""
        return self.start <= t < self.end

    @property
    def capacity_factor(self) -> float:
        """Multiplier applied to the site's true availability."""
        if self.kind == "outage":
            return 0.0
        if self.kind == "capacity_loss":
            return 1.0 - self.severity
        return 1.0


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable collection of :class:`FaultEvent`, ordered by start.

    An empty schedule is a strict no-op: an injector built from it must
    leave a simulation bit-identical to one run without any injector.
    """

    events: tuple = field(default=())

    def __post_init__(self) -> None:
        for event in self.events:
            if not isinstance(event, FaultEvent):
                raise TypeError(f"events must be FaultEvent instances, got {event!r}")
        events = tuple(sorted(self.events, key=lambda e: (e.start, e.dc, e.kind)))
        object.__setattr__(self, "events", events)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    @property
    def is_empty(self) -> bool:
        """True when the schedule contains no events (strict no-op)."""
        return not self.events

    def active(self, t: int) -> tuple:
        """All events in force during slot *t* (possibly empty)."""
        return tuple(e for e in self.events if e.active_at(t))

    def starting(self, t: int) -> tuple:
        """Events whose window opens exactly at slot *t* (onset hooks)."""
        return tuple(e for e in self.events if e.start == t)

    def validate_for(self, cluster: Cluster, horizon: int | None = None) -> "FaultSchedule":
        """Check every event targets a real site (and fits *horizon*)."""
        n = cluster.num_datacenters
        for event in self.events:
            if event.dc >= n:
                raise ValueError(
                    f"event targets data center {event.dc} but the cluster has {n}"
                )
            if horizon is not None and event.start >= horizon:
                raise ValueError(
                    f"event starts at slot {event.start}, beyond horizon {horizon}"
                )
        return self

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "FaultSchedule":
        """The no-op schedule."""
        return cls(())

    @classmethod
    def single_outage(cls, dc: int, start: int, duration: int) -> "FaultSchedule":
        """A full outage of one site — the canonical drill."""
        return cls((FaultEvent("outage", dc=dc, start=start, duration=duration),))

    # ------------------------------------------------------------------
    # Trace baking (offline use, without an injector)
    # ------------------------------------------------------------------
    def bake_truth(self, scenario):
        """Return a copy of *scenario* with capacity faults applied.

        Only the ground-truth effects (``outage`` / ``capacity_loss``)
        can be baked into a static trace; signal faults need the
        injector's observed-vs-truth split.
        """
        from repro.simulation.trace import Scenario
        from repro.workloads.availability import apply_capacity_faults

        return Scenario(
            cluster=scenario.cluster,
            arrivals=scenario.arrivals,
            availability=apply_capacity_faults(scenario.availability, self.events),
            prices=scenario.prices,
        )


@dataclass(frozen=True)
class RandomFaultProcess:
    """Seeded random fault generator for chaos-style sweeps.

    Each site draws independently: every slot outside an active fault,
    a fault of each kind starts with the configured per-slot
    probability, lasting ``1 + Geometric`` slots with the configured
    mean.  Faults of the same site never overlap; different sites may
    fail simultaneously.  Deterministic for a fixed seed.

    Parameters
    ----------
    outage_rate, capacity_loss_rate, stale_price_rate, partition_rate:
        Per-slot start probabilities per site.
    mean_duration:
        Mean fault duration in slots (geometric).
    severity_range:
        ``(low, high)`` severity drawn uniformly for capacity losses.
    """

    outage_rate: float = 0.0
    capacity_loss_rate: float = 0.0
    stale_price_rate: float = 0.0
    partition_rate: float = 0.0
    mean_duration: float = 10.0
    severity_range: tuple = (0.3, 0.9)

    def __post_init__(self) -> None:
        for name in (
            "outage_rate",
            "capacity_loss_rate",
            "stale_price_rate",
            "partition_rate",
        ):
            require_in_range(getattr(self, name), 0.0, 1.0, name)
        require_at_least(self.mean_duration, 1.0, "mean_duration")
        low, high = self.severity_range
        require_in_range(low, 0.0, 1.0, "severity_range low")
        require_in_range(high, 0.0, 1.0, "severity_range high")
        if low > high or low <= 0.0:
            raise ValueError(f"severity_range must satisfy 0 < low <= high, got {self.severity_range}")

    def _rates(self) -> Sequence[tuple]:
        return (
            ("outage", self.outage_rate),
            ("capacity_loss", self.capacity_loss_rate),
            ("stale_price", self.stale_price_rate),
            ("partition", self.partition_rate),
        )

    def generate(
        self,
        horizon: int,
        num_datacenters: int,
        seed: int | np.random.Generator = 0,
    ) -> FaultSchedule:
        """Draw a :class:`FaultSchedule` for *horizon* slots over *n* sites."""
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        require_integer(num_datacenters, "num_datacenters", minimum=1)
        rng = (
            seed
            if isinstance(seed, np.random.Generator)
            else np.random.default_rng(seed)
        )
        events = []
        p_extra = 1.0 / self.mean_duration  # duration = 1 + Geometric(p)
        for dc in range(num_datacenters):
            t = 0
            while t < horizon:
                started = None
                for kind, rate in self._rates():
                    if rate > 0.0 and rng.random() < rate:
                        started = kind
                        break
                if started is None:
                    t += 1
                    continue
                duration = 1 + int(rng.geometric(min(p_extra, 1.0))) - 1
                duration = max(1, min(duration, horizon - t))
                severity = 1.0
                if started == "capacity_loss":
                    low, high = self.severity_range
                    severity = float(rng.uniform(low, high))
                events.append(
                    FaultEvent(started, dc=dc, start=t, duration=duration, severity=severity)
                )
                t += duration  # no overlap within one site
        return FaultSchedule(tuple(events))
