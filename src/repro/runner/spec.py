"""Declarative run descriptions: :class:`ScenarioSpec` and :class:`RunSpec`.

A :class:`RunSpec` is a frozen, hashable, picklable value describing
exactly one simulation run — which scenario to materialize, which
scheduler to build (by registry name + kwargs), the measurement beta,
the run horizon, an optional fault schedule and which result series to
collect.  Because the description is pure data, it can be

* shipped to a worker process and executed there bit-identically to an
  in-process run (:func:`repro.runner.run_many`), and
* hashed into a stable content address for the on-disk result cache
  (:mod:`repro.runner.cache`).

Anything that cannot be described declaratively (a pre-built
:class:`~repro.simulation.trace.Scenario`, a live scheduler instance)
is handled by the engine as an *override* alongside the spec.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence, Tuple

from repro._validation import require_integer, require_non_negative
from repro.faults.events import FaultSchedule
from repro.runner.collect import validate_collect

__all__ = ["SCENARIO_KINDS", "RunSpec", "ScenarioSpec", "canonical_json", "spec_digest"]

#: Registered scenario factories a :class:`ScenarioSpec` may name.
#: Maps kind -> (module, attribute); imported lazily so worker processes
#: resolve them without dragging the whole package in at spec time.
SCENARIO_KINDS: dict = {
    "paper": ("repro.scenarios", "paper_scenario"),
    "small": ("repro.scenarios", "small_scenario"),
    "wide": ("repro.scenarios", "wide_scenario"),
}


def canonical_json(payload: Any) -> str:
    """Deterministic JSON encoding used for hashing spec descriptions."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def spec_digest(payload: Any) -> str:
    """SHA-256 content address of a JSON-encodable description."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def _freeze_kwargs(kwargs: Any, name: str) -> Tuple[Tuple[str, Any], ...]:
    """Normalize a kwargs mapping to a sorted, hashable tuple of pairs."""
    if kwargs is None:
        return ()
    if isinstance(kwargs, Mapping):
        items = kwargs.items()
    else:
        items = tuple(kwargs)
    frozen = []
    for key, value in sorted(items):
        if not isinstance(key, str):
            raise TypeError(f"{name} keys must be strings, got {key!r}")
        if isinstance(value, (list, dict, set)):
            raise TypeError(
                f"{name}[{key!r}] must be a hashable primitive "
                f"(got {type(value).__name__}); specs must stay hashable"
            )
        frozen.append((key, value))
    return tuple(frozen)


@dataclass(frozen=True)
class ScenarioSpec:
    """A declarative reference to a generated scenario.

    Parameters
    ----------
    kind:
        One of :data:`SCENARIO_KINDS` (``"paper"``, ``"small"`` or
        ``"wide"``).
    horizon:
        Number of slots to generate.
    seed:
        Scenario seed; numpy seeding is per-spec, so two workers
        materializing the same spec produce bit-identical traces.
    params:
        Extra factory kwargs (e.g. ``mean_total_work``) as a mapping or
        a tuple of pairs; normalized to a sorted tuple.
    """

    kind: str = "paper"
    horizon: int = 2000
    seed: int = 0
    params: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in SCENARIO_KINDS:
            raise ValueError(
                f"unknown scenario kind {self.kind!r}; "
                f"choose from {sorted(SCENARIO_KINDS)}"
            )
        require_integer(self.horizon, "horizon", minimum=1)
        require_integer(self.seed, "seed", minimum=0)
        object.__setattr__(self, "params", _freeze_kwargs(self.params, "params"))

    def materialize(self):
        """Build the actual :class:`~repro.simulation.trace.Scenario`."""
        import importlib

        module, attribute = SCENARIO_KINDS[self.kind]
        factory = getattr(importlib.import_module(module), attribute)
        return factory(horizon=self.horizon, seed=self.seed, **dict(self.params))

    def describe(self) -> dict:
        """JSON-encodable identity used in the cache key."""
        return {
            "kind": self.kind,
            "horizon": self.horizon,
            "seed": self.seed,
            "params": [list(pair) for pair in self.params],
        }


@dataclass(frozen=True)
class RunSpec:
    """Everything needed to reproduce one ``Simulator(...).run()`` call.

    Parameters
    ----------
    scenario:
        A :class:`ScenarioSpec`, or ``None`` when the engine will be
        handed a pre-built scenario override for this spec.
    scheduler:
        Registry name (see :func:`repro.schedulers.build_scheduler`),
        or ``None`` for a *scenario-only* spec that materializes the
        trace and evaluates scenario collectors without simulating.
    scheduler_kwargs:
        Constructor kwargs for the scheduler (mapping or tuple of
        pairs; normalized to a sorted tuple).
    cost_beta:
        Measurement beta for the cost model ``g(t)`` — experiments
        typically measure energy and fairness separately, so this
        defaults to 0 exactly like ``Simulator``'s default.
    horizon:
        Run horizon (``None`` = the scenario's full horizon).
    collect:
        Names of extra result series to extract (see
        :mod:`repro.runner.collect`); the summary is always returned.
    faults:
        Optional :class:`~repro.faults.events.FaultSchedule` injected
        through a :class:`~repro.faults.injector.FaultInjector`.
    queue_bound:
        Optional Theorem 1a bound; when set, a
        :func:`~repro._contracts.queue_bound_observer` is attached (it
        asserts only under ``REPRO_CONTRACTS=1``).
    """

    scenario: ScenarioSpec | None = field(default_factory=ScenarioSpec)
    scheduler: str | None = "grefar"
    scheduler_kwargs: Tuple[Tuple[str, Any], ...] = ()
    cost_beta: float = 0.0
    horizon: int | None = None
    collect: Tuple[str, ...] = ()
    faults: FaultSchedule | None = None
    queue_bound: float | None = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "scheduler_kwargs",
            _freeze_kwargs(self.scheduler_kwargs, "scheduler_kwargs"),
        )
        if self.scheduler is not None:
            # Fail at spec construction, not inside a worker process.
            from repro.schedulers import scheduler_entry

            entry = scheduler_entry(self.scheduler)
            unknown = sorted(
                {key for key, _ in self.scheduler_kwargs} - set(entry.params)
            )
            if unknown:
                raise ValueError(
                    f"scheduler {self.scheduler!r} does not accept {unknown}; "
                    f"accepted parameters: {sorted(entry.params)}"
                )
        require_non_negative(self.cost_beta, "cost_beta")
        if self.horizon is not None:
            require_integer(self.horizon, "horizon", minimum=1)
        if self.queue_bound is not None:
            require_non_negative(self.queue_bound, "queue_bound")
        collect = tuple(self.collect)
        validate_collect(collect, simulated=self.scheduler is not None)
        object.__setattr__(self, "collect", collect)

    # ------------------------------------------------------------------
    def describe(self) -> dict:
        """JSON-encodable identity of this spec (cache key material)."""
        return {
            "scenario": None if self.scenario is None else self.scenario.describe(),
            "scheduler": self.scheduler,
            "scheduler_kwargs": [list(pair) for pair in self.scheduler_kwargs],
            "cost_beta": self.cost_beta,
            "horizon": self.horizon,
            "collect": list(self.collect),
            "faults": _describe_faults(self.faults),
            "queue_bound": self.queue_bound,
        }

    @property
    def spec_hash(self) -> str:
        """Content address of the declarative description alone."""
        return spec_digest(self.describe())

    def replace(self, **changes) -> "RunSpec":
        """A copy with *changes* applied (convenience for sweeps)."""
        from dataclasses import replace as dc_replace

        return dc_replace(self, **changes)


def _describe_faults(schedule: FaultSchedule | None) -> list | None:
    if schedule is None:
        return None
    return [
        {
            "kind": event.kind,
            "dc": event.dc,
            "start": event.start,
            "duration": event.duration,
            "severity": event.severity,
        }
        for event in schedule
    ]
