"""Named result collectors: what a :class:`RunSpec` may ask a run for.

The runner returns every run's :class:`SimulationSummary` by default;
everything else an experiment needs — running-average curves, per-site
work series, delay percentiles, scenario statistics — is requested by
name through ``RunSpec.collect`` and extracted *inside* the executing
process, so only small JSON-friendly values cross the process boundary
or land in the cache.

Two namespaces:

* plain names (``"energy_series"``, ``"dc_delay_series:0"``, ...)
  read the finished :class:`~repro.simulation.simulator.SimulationResult`
  and require a scheduler;
* ``"scenario.*"`` names read the materialized scenario and work for
  scenario-only specs too (``scheduler=None``), which is how Table I
  and Fig. 1 route through the runner without simulating.

A trailing ``:<int>`` argument parametrizes a collector (the data
center index of ``dc_delay_series``).
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

__all__ = [
    "collect_value",
    "scenario_collector_names",
    "simulation_collector_names",
    "validate_collect",
]


# ----------------------------------------------------------------------
# Simulation collectors: (SimulationResult, arg) -> value
# ----------------------------------------------------------------------
def _delay_percentiles(result, arg):
    stats = result.queues.stats
    return {
        "mean": float(stats.mean_dc_delay()),
        "p50": float(stats.dc_delay_percentile(0.50)),
        "p95": float(stats.dc_delay_percentile(0.95)),
        "p99": float(stats.dc_delay_percentile(0.99)),
    }


_SIM_COLLECTORS: dict = {
    "energy_series": lambda result, arg: result.metrics.avg_energy_series(),
    "fairness_series": lambda result, arg: result.metrics.avg_fairness_series(),
    "combined_series": lambda result, arg: result.metrics.avg_combined_series(),
    "dc_delay_series": lambda result, arg: result.metrics.avg_dc_delay_series(arg),
    "front_delay_series": lambda result, arg: result.metrics.avg_front_delay_series(),
    "work_per_dc_series": lambda result, arg: result.metrics.work_per_dc_series(),
    "delay_percentiles": _delay_percentiles,
}

#: Collectors that require the ``:<int>`` argument.
_NEEDS_ARG = {"dc_delay_series"}


# ----------------------------------------------------------------------
# Scenario collectors: (Scenario, arg) -> value
# ----------------------------------------------------------------------
def _org_work(scenario, arg):
    from repro.workloads.cosmos import CosmosWorkload

    return CosmosWorkload(scenario.cluster).work_by_account(scenario.arrivals)


_SCENARIO_COLLECTORS: dict = {
    "scenario.prices": lambda scenario, arg: scenario.prices,
    "scenario.price_mean": lambda scenario, arg: scenario.prices.mean(axis=0),
    "scenario.price_max": lambda scenario, arg: float(scenario.prices.max()),
    "scenario.arrival_work": lambda scenario, arg: scenario.arrival_work(),
    "scenario.org_work": _org_work,
}


def simulation_collector_names() -> list:
    """Names readable from a finished simulation, sorted."""
    return sorted(_SIM_COLLECTORS)


def scenario_collector_names() -> list:
    """Names readable from the scenario alone, sorted."""
    return sorted(_SCENARIO_COLLECTORS)


def _parse(name: str) -> tuple:
    base, _, arg = name.partition(":")
    if not arg:
        return base, None
    try:
        return base, int(arg)
    except ValueError:
        raise ValueError(
            f"collector argument in {name!r} must be an integer index"
        ) from None


def validate_collect(names: Sequence[str], simulated: bool = True) -> None:
    """Reject unknown/malformed collect names at spec-construction time."""
    for name in names:
        base, arg = _parse(name)
        if base in _SCENARIO_COLLECTORS:
            continue
        if base not in _SIM_COLLECTORS:
            raise ValueError(
                f"unknown collector {name!r}; simulation collectors: "
                f"{simulation_collector_names()}, scenario collectors: "
                f"{scenario_collector_names()}"
            )
        if not simulated:
            raise ValueError(
                f"collector {name!r} needs a simulation, but the spec is "
                "scenario-only (scheduler=None)"
            )
        if base in _NEEDS_ARG and arg is None:
            raise ValueError(f"collector {base!r} needs an index, e.g. {base!r}+':0'")


def collect_value(name: str, scenario, result) -> Any:
    """Evaluate one collector against a materialized run."""
    base, arg = _parse(name)
    if base in _SCENARIO_COLLECTORS:
        return _SCENARIO_COLLECTORS[base](scenario, arg)
    if result is None:
        raise ValueError(
            f"collector {name!r} needs a simulation result (scheduler=None run)"
        )
    value = _SIM_COLLECTORS[base](result, arg)
    if isinstance(value, np.ndarray):
        return np.asarray(value, dtype=np.float64)
    return value
