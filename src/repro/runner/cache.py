"""Content-addressed on-disk result cache for the run engine.

Layout::

    .repro_cache/
        <schema-tag>/
            <key[:2]>/<key>.json     # one RunResult payload per spec

The key is the SHA-256 of the spec's canonical description (plus, for
runs on a pre-built scenario object, a content fingerprint of its
arrays and cluster configuration), so *any* change to the inputs — a
different seed, horizon, scheduler kwarg, fault schedule or collect
list — misses cleanly.  The schema tag versions the *payload format*:
bumping :data:`SCHEMA_TAG` orphans every old entry at once, which is
the escape hatch when the summary or series encoding changes shape.

The cache is advisory and crash-safe: entries are written to a
temporary file and atomically renamed, unreadable entries are treated
as misses, and ``repro ... --no-cache`` (or ``REPRO_NO_CACHE=1``)
bypasses it entirely.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

import numpy as np

from repro.obs.registry import stats_registry
from repro.runner.result import RunResult
from repro.runner.spec import RunSpec, canonical_json

__all__ = [
    "DEFAULT_CACHE_DIR",
    "SCHEMA_TAG",
    "ResultCache",
    "cache_key",
    "default_cache",
    "scenario_fingerprint",
]

#: Payload-format version; bump when RunResult's encoding changes.
SCHEMA_TAG = "runner-v1"

#: Default cache root (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro_cache"


def _cluster_signature(cluster) -> str:
    """A stable text fingerprint of everything a simulation consumes."""
    parts = []
    for sc in cluster.server_classes:
        parts.append(f"sc|{sc.name}|{sc.speed!r}|{sc.active_power!r}")
    for dc in cluster.datacenters:
        parts.append(
            f"dc|{dc.name}|{np.asarray(dc.max_servers).tolist()!r}"
            f"|{dc.memory_capacity!r}|{dc.ingress_cost!r}"
        )
    for jt in cluster.job_types:
        parts.append(
            f"jt|{jt.name}|{jt.demand!r}|{tuple(jt.eligible_dcs)!r}|{jt.account}"
            f"|{jt.max_arrivals!r}|{jt.max_route!r}|{jt.max_service!r}"
        )
    for account in cluster.accounts:
        parts.append(f"acc|{account.name}|{account.fair_share!r}")
    return ";".join(parts)


def scenario_fingerprint(scenario) -> str:
    """Content hash of a pre-built scenario (arrays + cluster config)."""
    digest = hashlib.sha256()
    digest.update(_cluster_signature(scenario.cluster).encode("utf-8"))
    for array in (scenario.arrivals, scenario.availability, scenario.prices):
        arr = np.ascontiguousarray(array, dtype=np.float64)
        digest.update(repr(arr.shape).encode("utf-8"))
        digest.update(arr.tobytes())
    return digest.hexdigest()


def cache_key(spec: RunSpec, scenario=None) -> str:
    """The content address for *spec*, honoring a scenario override."""
    payload = spec.describe()
    if scenario is not None:
        payload["scenario"] = {"inline": scenario_fingerprint(scenario)}
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


class ResultCache:
    """Spec hash -> :class:`RunResult` JSON artifacts under *root*."""

    def __init__(self, root: str | Path = DEFAULT_CACHE_DIR, schema: str = SCHEMA_TAG):
        self.root = Path(root)
        self.schema = schema

    # ------------------------------------------------------------------
    def path_for(self, key: str) -> Path:
        """Where the entry for *key* lives (whether or not it exists)."""
        return self.root / self.schema / key[:2] / f"{key}.json"

    def load(self, key: str) -> RunResult | None:
        """The cached result for *key*, or ``None`` on any kind of miss."""
        result = self._load(key)
        stats_registry().counter_add(
            "cache.loads.hit" if result is not None else "cache.loads.miss"
        )
        return result

    def _load(self, key: str) -> RunResult | None:
        path = self.path_for(key)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if payload.get("schema") != self.schema or payload.get("key") != key:
            return None
        try:
            return RunResult.from_payload(payload)
        except (KeyError, TypeError, ValueError):
            # A malformed or stale-format entry is just a miss.
            return None

    def store(self, key: str, result: RunResult) -> None:
        """Atomically persist *result* under *key*."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = result.to_payload()
        payload["schema"] = self.schema
        payload["key"] = key
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(payload), encoding="utf-8")
        os.replace(tmp, path)
        stats_registry().counter_add("cache.stores")

    # ------------------------------------------------------------------
    def entries(self) -> list:
        """Paths of every entry under the current schema, sorted."""
        base = self.root / self.schema
        if not base.is_dir():
            return []
        return sorted(base.rglob("*.json"))

    def info(self) -> dict:
        """On-disk state plus this process's session counters.

        ``repro cache info`` prints this merged view; the disk figures
        are also published as gauges (``cache.entries``/``cache.bytes``)
        on the stats registry next to the session hit/miss/store
        counters the :meth:`load`/:meth:`store` paths maintain.
        """
        entries = self.entries()
        total_bytes = sum(path.stat().st_size for path in entries)
        registry = stats_registry()
        registry.gauge_set("cache.entries", len(entries))
        registry.gauge_set("cache.bytes", total_bytes)
        return {
            "root": str(self.root),
            "schema": self.schema,
            "entries": len(entries),
            "bytes": total_bytes,
            "session": {
                "hits": int(registry.counter("cache.loads.hit")),
                "misses": int(registry.counter("cache.loads.miss")),
                "stores": int(registry.counter("cache.stores")),
            },
        }

    def clear(self) -> int:
        """Delete every entry (all schemas); return how many were removed."""
        removed = 0
        if not self.root.is_dir():
            return 0
        for path in sorted(self.root.rglob("*.json")):
            path.unlink()
            removed += 1
        # Prune now-empty shard directories, leaving the root in place.
        for directory in sorted(
            (p for p in self.root.rglob("*") if p.is_dir()), reverse=True
        ):
            try:
                directory.rmdir()
            except OSError:
                pass
        return removed


def default_cache() -> ResultCache | None:
    """The standard cache, honoring the environment escape hatches.

    ``REPRO_CACHE_DIR`` relocates the cache root; ``REPRO_NO_CACHE=1``
    disables caching everywhere (returns ``None``).
    """
    if os.environ.get("REPRO_NO_CACHE", "").strip() not in ("", "0"):
        return None
    return ResultCache(os.environ.get("REPRO_CACHE_DIR") or DEFAULT_CACHE_DIR)
