"""The execution engine: ``run_many`` over specs, serial or process-pool.

Every simulation-launching layer of the package — the experiment
modules, ``repro run``/``compare``/``sweep-v``, the tradeoff sweeps —
reduces to the same call::

    results = run_many(specs, jobs=4, cache=default_cache())

Guarantees:

* **Order** — results come back in spec order regardless of ``jobs``.
* **Determinism** — a worker rebuilds the scenario, scheduler and cost
  model from the spec (numpy seeding is per-spec), so ``jobs=N``
  summaries are bit-identical to ``jobs=1``; the jobs=1 path runs
  in-process with no executor at all.
* **Caching** — with a :class:`~repro.runner.cache.ResultCache`,
  completed specs are loaded instead of re-run and fresh results are
  stored.  Runs carrying non-declarative overrides (a live scheduler or
  cost-model object) are never cached; with ``REPRO_CONTRACTS=1`` the
  cache is bypassed so contract observers actually execute.
* **Robustness** — a pool worker that dies mid-batch
  (``BrokenProcessPool``: OOM kill, segfault, ``os._exit``) does not
  crash the batch: every affected task is retried once in-process and
  the event is surfaced as :attr:`RunnerStats.incidents`
  (``runner.incidents`` on the stats registry).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Sequence

from repro._contracts import contracts_enabled, queue_bound_observer
from repro._validation import require_integer
from repro.obs.registry import stats_registry
from repro.resilient.checkpoint import DEFAULT_CHECKPOINT_DIR, Checkpointer
from repro.runner.cache import ResultCache, cache_key
from repro.runner.collect import collect_value
from repro.runner.result import RunResult
from repro.runner.spec import RunSpec

__all__ = [
    "CheckpointPolicy",
    "RunnerStats",
    "checkpoint_policy",
    "reset_stats",
    "resume_from_checkpoint",
    "run_many",
    "run_spec",
    "runner_stats",
    "set_checkpoint_policy",
]


@dataclass(frozen=True)
class CheckpointPolicy:
    """How (and whether) the engine checkpoints the runs it launches.

    Only *cacheable* specs are checkpointed — a run carrying a live
    scheduler/cost-model override has no stable content address to key
    the snapshot by (mirroring the cache's own rule).

    Parameters
    ----------
    every:
        Snapshot period in slots (``None``: no periodic saves).
    resume:
        Restore from an existing snapshot before running (a missing or
        stale snapshot silently falls back to a fresh run).
    directory:
        Where snapshots live; default ``.repro_cache/checkpoints``.
    kill_at:
        Crash drill: kill each run (with a final snapshot) once this
        many slots completed, raising
        :class:`~repro.resilient.checkpoint.SimulationKilled`.
    """

    every: int | None = None
    resume: bool = False
    directory: str = str(DEFAULT_CHECKPOINT_DIR)
    kill_at: int | None = None

    def __post_init__(self) -> None:
        if self.every is not None:
            require_integer(self.every, "checkpoint every", minimum=1)
        if self.kill_at is not None:
            require_integer(self.kill_at, "kill_at", minimum=1)

    @property
    def active(self) -> bool:
        return self.every is not None or self.resume or self.kill_at is not None

    def checkpointer_for(self, key: str) -> Checkpointer | None:
        if not self.active or not key:
            return None
        return Checkpointer(
            key=key, every=self.every, directory=self.directory, kill_at=self.kill_at
        )


# The CLI configures checkpointing process-wide; the policy also ships
# inside each task tuple so jobs > 1 worker processes see it.
_CHECKPOINT_POLICY: CheckpointPolicy | None = None


def set_checkpoint_policy(policy: CheckpointPolicy | None) -> None:
    """Install (or clear) the process-wide checkpoint policy."""
    global _CHECKPOINT_POLICY
    _CHECKPOINT_POLICY = policy


def checkpoint_policy() -> CheckpointPolicy | None:
    """The currently installed process-wide checkpoint policy."""
    return _CHECKPOINT_POLICY


@dataclass(frozen=True)
class RunnerStats:
    """Snapshot of the engine counters since the last :func:`reset_stats`.

    The numbers themselves live on the always-on stats registry
    (:func:`repro.obs.registry.stats_registry`) under ``runner.*`` —
    this class is the read-side view plus the one shared render used by
    both the CLI footer and the ``progress=True`` report.
    """

    executed: int = 0
    cache_hits: int = 0
    jobs: int = 1
    #: Worker-death events absorbed by the in-process retry path.
    incidents: int = 0

    def render(self) -> str:
        text = f"runner: {self.executed} executed, {self.cache_hits} cached"
        if self.incidents:
            text += f", {self.incidents} incident(s)"
        return text + f" (jobs={self.jobs})"


def runner_stats() -> RunnerStats:
    """The process-wide counters (the CLI prints these after a command)."""
    registry = stats_registry()
    return RunnerStats(
        executed=int(registry.counter("runner.executed")),
        cache_hits=int(registry.counter("runner.cache_hits")),
        jobs=int(registry.gauge("runner.jobs", 1.0)),
        incidents=int(registry.counter("runner.incidents")),
    )


def reset_stats() -> None:
    """Zero the process-wide counters."""
    stats_registry().reset("runner.")


# ----------------------------------------------------------------------
# Worker body — module-level so it pickles under any start method.
# ----------------------------------------------------------------------
def _execute_task(task: tuple) -> RunResult:
    """Materialize and run one spec; returns the picklable result.

    *task* is ``(key, spec, scenario, scheduler, cost_model, ckpt)``
    where the middle three are optional overrides (``None`` = build
    from the spec) and *ckpt* is an optional
    :class:`CheckpointPolicy`.
    """
    key, spec, scenario, scheduler, cost_model, ckpt = task
    if scenario is None:
        if spec.scenario is None:
            raise ValueError(
                "spec has no scenario reference and no scenario override"
            )
        scenario = spec.scenario.materialize()

    result = None
    if spec.scheduler is not None or scheduler is not None:
        from repro.core.objective import CostModel
        from repro.simulation.simulator import Simulator

        if scheduler is None:
            from repro.schedulers import build_scheduler

            scheduler = build_scheduler(
                spec.scheduler, scenario.cluster, **dict(spec.scheduler_kwargs)
            )
        if cost_model is None:
            cost_model = CostModel(beta=spec.cost_beta)
        injector = None
        if spec.faults is not None and not spec.faults.is_empty:
            from repro.faults.injector import FaultInjector

            injector = FaultInjector(scenario.cluster, spec.faults)
        observers = []
        if spec.queue_bound is not None:
            observers.append(queue_bound_observer(spec.queue_bound))
        checkpointer = ckpt.checkpointer_for(key) if ckpt is not None else None
        result = Simulator(
            scenario,
            scheduler,
            cost_model=cost_model,
            injector=injector,
            observers=observers,
        ).run(
            spec.horizon,
            checkpointer=checkpointer,
            resume=ckpt.resume if ckpt is not None else False,
        )

    series = {
        name: collect_value(name, scenario, result) for name in spec.collect
    }
    summary = result.summary if result is not None else None
    return RunResult(key=key, summary=summary, series=series)


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------
def run_many(
    specs: Sequence[RunSpec],
    jobs: int = 1,
    cache: ResultCache | None = None,
    scenario=None,
    schedulers: Sequence | None = None,
    cost_models: Sequence | None = None,
    progress: bool = False,
    checkpoint: CheckpointPolicy | None = None,
) -> list:
    """Execute *specs* and return one :class:`RunResult` per spec, in order.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (default) executes in-process — no
        executor, no pickling — and is the reference behavior the
        parallel path is tested bit-identical against.
    cache:
        Optional result cache; hits skip execution entirely.
    scenario:
        Optional pre-built scenario shared by every spec (overrides
        ``spec.scenario``); cached under its content fingerprint.
    schedulers / cost_models:
        Optional per-spec override sequences (``None`` entries fall
        back to the spec).  Overridden runs are executed but not cached
        — a live object has no stable content address.
    progress:
        Print a one-line cache/execution report to stderr when done.
    checkpoint:
        Optional :class:`CheckpointPolicy`; defaults to the
        process-wide policy installed by :func:`set_checkpoint_policy`
        (``None`` = no checkpointing).  Applies only to cacheable
        specs, whose cache key names the snapshot.
    """
    specs = list(specs)
    require_integer(jobs, "jobs", minimum=1)
    if schedulers is not None and len(schedulers) != len(specs):
        raise ValueError("schedulers override must match specs in length")
    if cost_models is not None and len(cost_models) != len(specs):
        raise ValueError("cost_models override must match specs in length")
    if contracts_enabled():
        # Cache hits would skip the run entirely, silently skipping the
        # runtime contracts the caller asked for; always execute.
        cache = None
    ckpt = checkpoint if checkpoint is not None else _CHECKPOINT_POLICY
    if ckpt is not None and not ckpt.active:
        ckpt = None

    results: dict = {}
    pending: list = []
    for index, spec in enumerate(specs):
        scheduler = schedulers[index] if schedulers is not None else None
        cost_model = cost_models[index] if cost_models is not None else None
        cacheable = scheduler is None and cost_model is None
        key = cache_key(spec, scenario) if cacheable else ""
        if cache is not None and cacheable:
            hit = cache.load(key)
            if hit is not None:
                results[index] = hit.as_cached()
                continue
        pending.append((index, (key, spec, scenario, scheduler, cost_model, ckpt)))

    incidents = 0
    if pending:
        if jobs == 1 or len(pending) == 1:
            fresh = [_execute_task(task) for _, task in pending]
        else:
            workers = min(jobs, len(pending))
            fresh = [None] * len(pending)
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [pool.submit(_execute_task, task) for _, task in pending]
                for position, future in enumerate(futures):
                    try:
                        fresh[position] = future.result()
                    except BrokenProcessPool:
                        # A worker died mid-batch (OOM kill, segfault,
                        # os._exit).  The pool is unusable from here on
                        # — every remaining future raises the same
                        # error — so retry each affected task once
                        # in-process instead of losing the batch, and
                        # surface the event on RunnerStats.
                        incidents += 1
                        stats_registry().counter_add("runner.incidents")
                        fresh[position] = _execute_task(pending[position][1])
        for (index, task), result in zip(pending, fresh):
            results[index] = result
            if cache is not None and task[0]:
                cache.store(task[0], result)

    hits = len(specs) - len(pending)
    registry = stats_registry()
    registry.counter_add("runner.executed", len(pending))
    registry.counter_add("runner.cache_hits", hits)
    registry.gauge_set("runner.jobs", jobs)
    if progress:
        import sys

        batch = RunnerStats(
            executed=len(pending), cache_hits=hits, jobs=jobs, incidents=incidents
        )
        print(
            f"[repro.runner] {len(specs)} spec(s): {batch.render()}",
            file=sys.stderr,
        )
    return [results[index] for index in range(len(specs))]


def run_spec(
    spec: RunSpec,
    cache: ResultCache | None = None,
    scenario=None,
) -> RunResult:
    """Convenience wrapper: execute a single spec in-process."""
    return run_many([spec], jobs=1, cache=cache, scenario=scenario)[0]


def resume_from_checkpoint(
    spec: RunSpec,
    cache: ResultCache | None = None,
    scenario=None,
    every: int | None = None,
    directory: str | None = None,
) -> RunResult:
    """Finish *spec*'s interrupted run from its on-disk checkpoint.

    The snapshot is located by the spec's cache key, restored, and the
    run continued to completion — bit-identical to never having been
    interrupted.  With no usable snapshot the spec simply runs from
    scratch, so calling this on a completed (or never-started) spec is
    safe.  *every* keeps periodic checkpointing on during the resumed
    portion.
    """
    policy = CheckpointPolicy(
        every=every,
        resume=True,
        directory=directory if directory is not None else str(DEFAULT_CHECKPOINT_DIR),
    )
    return run_many([spec], jobs=1, cache=cache, scenario=scenario, checkpoint=policy)[0]
