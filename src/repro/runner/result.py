"""The runner's result value and its exact JSON round-trip.

A :class:`RunResult` is deliberately *smaller* than a full
:class:`~repro.simulation.simulator.SimulationResult`: the summary plus
the series the spec asked for.  That keeps results cheap to ship across
process boundaries and makes them losslessly serializable — ``json``
emits floats with ``repr`` (shortest round-trip) since Python 3.1, so a
result loaded from the cache compares bit-identical to the freshly
computed one.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Mapping

import numpy as np

from repro.simulation.metrics import SimulationSummary

__all__ = ["RunResult"]


@dataclass(frozen=True)
class RunResult:
    """One executed (or cache-loaded) :class:`~repro.runner.spec.RunSpec`.

    Attributes
    ----------
    key:
        The content address the run is cached under.
    summary:
        End-of-run aggregates, or ``None`` for scenario-only specs.
    series:
        Collected values keyed by collector name: numpy arrays for
        series, floats for scalars, str->float mappings for percentile
        bundles.
    cached:
        True when this result was loaded from the on-disk cache rather
        than executed.
    """

    key: str
    summary: SimulationSummary | None
    series: Mapping[str, Any]
    cached: bool = False

    def as_cached(self) -> "RunResult":
        """The same result marked as a cache hit."""
        return replace(self, cached=True)

    # ------------------------------------------------------------------
    # Exact JSON round-trip (cache payload)
    # ------------------------------------------------------------------
    def to_payload(self) -> dict:
        """A JSON-encodable payload that decodes bit-identically."""
        return {
            "key": self.key,
            "summary": None if self.summary is None else self.summary.as_dict(),
            "series": {
                name: _encode_value(value) for name, value in self.series.items()
            },
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "RunResult":
        """Rebuild a result from :meth:`to_payload` output."""
        raw_summary = payload["summary"]
        summary = None
        if raw_summary is not None:
            fields = dict(raw_summary)
            fields["avg_dc_delay"] = tuple(fields["avg_dc_delay"])
            fields["avg_work_per_dc"] = tuple(fields["avg_work_per_dc"])
            summary = SimulationSummary(**fields)
        series = {
            name: _decode_value(value) for name, value in payload["series"].items()
        }
        return cls(key=payload["key"], summary=summary, series=series, cached=False)


def _encode_value(value: Any) -> dict:
    if isinstance(value, np.ndarray):
        return {"kind": "array", "data": np.asarray(value, dtype=np.float64).tolist()}
    if isinstance(value, Mapping):
        return {"kind": "mapping", "data": {k: float(v) for k, v in value.items()}}
    return {"kind": "scalar", "data": float(value)}


def _decode_value(encoded: Mapping[str, Any]) -> Any:
    kind = encoded["kind"]
    if kind == "array":
        return np.asarray(encoded["data"], dtype=np.float64)
    if kind == "mapping":
        return dict(encoded["data"])
    if kind == "scalar":
        return float(encoded["data"])
    raise ValueError(f"unknown encoded value kind {kind!r}")
