"""repro.runner — the unified run-execution engine.

Every paper artifact is an embarrassingly parallel fan-out of
independent simulation runs.  This package makes that structure
explicit: describe each run as a declarative
:class:`~repro.runner.spec.RunSpec`, hand the list to
:func:`~repro.runner.engine.run_many`, and get ordered
:class:`~repro.runner.result.RunResult` values back — executed
in-process, across a process pool (``jobs=N``, bit-identical to
serial), or loaded from the content-addressed on-disk cache
(:class:`~repro.runner.cache.ResultCache` under ``.repro_cache/``).

See ``docs/RUNNER.md`` for the spec format, cache layout and the
determinism guarantees; the staticcheck rule GF006 keeps experiment
modules on this path.
"""

from repro.runner.cache import (
    DEFAULT_CACHE_DIR,
    SCHEMA_TAG,
    ResultCache,
    cache_key,
    default_cache,
    scenario_fingerprint,
)
from repro.runner.collect import (
    collect_value,
    scenario_collector_names,
    simulation_collector_names,
)
from repro.runner.engine import (
    CheckpointPolicy,
    RunnerStats,
    checkpoint_policy,
    reset_stats,
    resume_from_checkpoint,
    run_many,
    run_spec,
    runner_stats,
    set_checkpoint_policy,
)
from repro.runner.result import RunResult
from repro.runner.spec import SCENARIO_KINDS, RunSpec, ScenarioSpec

__all__ = [
    "DEFAULT_CACHE_DIR",
    "SCENARIO_KINDS",
    "SCHEMA_TAG",
    "CheckpointPolicy",
    "ResultCache",
    "RunResult",
    "RunSpec",
    "RunnerStats",
    "ScenarioSpec",
    "cache_key",
    "checkpoint_policy",
    "collect_value",
    "default_cache",
    "reset_stats",
    "resume_from_checkpoint",
    "run_many",
    "set_checkpoint_policy",
    "run_spec",
    "runner_stats",
    "scenario_collector_names",
    "scenario_fingerprint",
    "simulation_collector_names",
]
