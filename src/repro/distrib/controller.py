"""The shard controller: GreFar with the slot solve scattered over workers.

:class:`ShardController` *is a* :class:`~repro.core.grefar.GreFarScheduler`
— routing, problem construction, action assembly and the entire serial
slot body in :class:`~repro.simulation.simulator.Simulator` are
inherited untouched.  Only ``_solve`` changes: the cluster's sites are
partitioned by data center into contiguous shards, each slot is
**scattered** (the full queue-weight and bound matrices, masked to zero
outside the shard's rows, plus the prepared state arrays) to one
:class:`~repro.distrib.worker.ShardWorker` subprocess per shard, and
the per-shard rows are **gathered** and merged back into one ``(N, J)``
service matrix.

**Bit-identity (beta = 0).** The exact greedy backend solves each site
row independently — row ``i`` touches only ``queue_weights[i]``,
``h_upper[i]`` and site ``i``'s marginal-cost curve — so a worker
solving the full-shape problem with foreign rows masked to zero
produces its own rows bit-identical to the serial solve.  The merge is
pure row assignment, so the sharded decision equals the serial one
bit-for-bit (``verify="assert"`` checks every slot).

**Bounded divergence (beta > 0).** The fairness term couples sites
through per-account work, so shard-local solves optimize
``D(h) = obj(h) + V*beta*defect(h)`` where
``defect(h) = f(h) - sum_s f(mask_s(h))`` is the fairness
superadditivity defect.  Since the merged ``h*`` minimizes ``D`` and
the serial ``h^`` minimizes ``obj``::

    0 <= obj(h*) - obj(h^) <= V * beta * (defect(h^) - defect(h*))

— a per-slot computable bound, recorded (and asserted, up to solver
tolerance) by the verify modes.  See ``docs/DISTRIBUTED.md``.

**Supervision.** The gather runs under a
:class:`~repro.distrib.policy.ShardPolicy` mirroring
:class:`~repro.resilient.supervisor.SolverPolicy` one level up:
heartbeats separate hung workers from stragglers, deadlines bound the
slot, failures trigger bounded retry with exponential backoff and
worker respawn (re-synced from per-shard ``ckpt-v1`` checkpoints), and
a shard that exhausts its budgets degrades to a local fallback action
while its sites flow through the scheduler's ``prepare_state``
missing-signal path.  Every event lands as a
:class:`~repro.distrib.policy.ShardIncident` and on the always-on
stats registry under ``resilient.shard.*``.
"""

from __future__ import annotations

import time
from multiprocessing.connection import wait as _connection_wait
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro._validation import require_integer
from repro.distrib.policy import (
    ShardDivergenceError,
    ShardIncident,
    ShardPolicy,
)
from repro.distrib.worker import ShardWorker, WorkerConfig
from repro.core.grefar import GreFarScheduler
from repro.faults.process import ProcessFaultSchedule
from repro.model.cluster import Cluster
from repro.model.state import ClusterState
from repro.obs.registry import Registry, metrics_registry, stats_registry
from repro.optimize.slot_problem import SlotServiceProblem
from repro.resilient.checkpoint import (
    checkpoint_path,
    load_checkpoint,
    save_checkpoint,
)
from repro.resilient.supervisor import SupervisedSolver

__all__ = ["ShardController", "partition_sites"]

_VERIFY_MODES = (None, "assert", "record")

#: Objective-gap slack for verify mode: covers QP/LP solver tolerance on
#: both sides of the superadditivity bound.
_VERIFY_TOL = 1e-4


def partition_sites(num_datacenters: int, num_shards: int) -> Tuple[Tuple[int, ...], ...]:
    """Contiguous near-equal partition of site indices into shards."""
    require_integer(num_datacenters, "num_datacenters", minimum=1)
    require_integer(num_shards, "num_shards", minimum=1)
    if num_shards > num_datacenters:
        raise ValueError(
            f"num_shards ({num_shards}) cannot exceed the number of "
            f"data centers ({num_datacenters})"
        )
    chunks = np.array_split(np.arange(num_datacenters), num_shards)
    return tuple(tuple(int(i) for i in chunk) for chunk in chunks)


class ShardController(GreFarScheduler):
    """GreFar whose per-slot service solve is scattered over shard workers.

    Drop-in for :class:`~repro.core.grefar.GreFarScheduler` anywhere a
    scheduler is accepted (``Simulator``, ``run_chaos_drill``, the
    CLI).  Picklable: worker processes and pipes are dropped on pickle
    and respawned lazily after unpickle, so the simulator's ``ckpt-v1``
    checkpoint/resume works unchanged.

    Parameters
    ----------
    cluster, v, beta, fairness, solver, physical, pricing:
        Passed through to :class:`~repro.core.grefar.GreFarScheduler`.
    num_shards:
        Worker process count; sites are split contiguously by DC index.
    policy:
        A :class:`~repro.distrib.policy.ShardPolicy` (default: blocking
        deterministic gather, one retry, two respawns, greedy fallback).
    process_faults:
        Optional :class:`~repro.faults.process.ProcessFaultSchedule`
        applied inside the workers (chaos drills).
    verify:
        ``None`` (default), ``"record"`` or ``"assert"``: compare every
        non-degraded slot against the serial solve — bit-identity for
        beta = 0 on the greedy backend, the superadditivity bound
        otherwise; ``"assert"`` raises
        :class:`~repro.distrib.policy.ShardDivergenceError` on
        violation, ``"record"`` only logs to :attr:`divergence`.
    """

    def __init__(
        self,
        cluster: Cluster,
        num_shards: int = 2,
        v: float = 1.0,
        beta: float = 0.0,
        fairness=None,
        solver: str = "auto",
        physical: bool = True,
        pricing=None,
        policy: Optional[ShardPolicy] = None,
        process_faults: Optional[ProcessFaultSchedule] = None,
        verify: Optional[str] = None,
        max_incidents: int = 1000,
    ) -> None:
        super().__init__(
            cluster,
            v=v,
            beta=beta,
            fairness=fairness,
            solver=solver,
            physical=physical,
            pricing=pricing,
        )
        self.shards = partition_sites(cluster.num_datacenters, num_shards)
        self.num_shards = len(self.shards)
        self.policy = policy if policy is not None else ShardPolicy()
        self.process_faults = (
            process_faults
            if process_faults is not None
            else ProcessFaultSchedule.empty()
        )
        if verify not in _VERIFY_MODES:
            raise ValueError(
                f"verify must be one of {_VERIFY_MODES}, got {verify!r}"
            )
        self.verify = verify
        self.max_incidents = require_integer(max_incidents, "max_incidents", minimum=1)
        self.incidents: List[ShardIncident] = []
        #: Per-slot ``(slot, objective_gap, bound)`` records (verify modes).
        self.divergence: List[Tuple[int, float, float]] = []
        self.slots_completed = 0
        self.fallback_slots = 0
        # Degraded-fallback and verification solves run on dedicated
        # supervisors so self.supervisor keeps meaning "primary solves".
        self._fallback_solver = SupervisedSolver()
        self._verify_solver = SupervisedSolver()
        self._workers: List[Optional[ShardWorker]] = [None] * self.num_shards
        self._respawns = [0] * self.num_shards
        self._spawn_counts = [0] * self.num_shards
        self._retired: Set[int] = set()
        self._last_good: List[Optional[np.ndarray]] = [None] * self.num_shards
        self._completed = [-1] * self.num_shards
        self._slot_degraded = False
        self.name = f"ShardGreFar(V={v:g}, beta={beta:g}, shards={self.num_shards})"

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def reset(self) -> None:
        super().reset()
        self.shutdown()
        self.incidents.clear()
        self.divergence.clear()
        self.slots_completed = 0
        self.fallback_slots = 0
        self._respawns = [0] * self.num_shards
        self._spawn_counts = [0] * self.num_shards
        self._retired = set()
        self._last_good = [None] * self.num_shards
        self._completed = [-1] * self.num_shards
        self._slot_degraded = False
        self._fallback_solver.clear_incidents()
        self._verify_solver.clear_incidents()

    def shutdown(self) -> None:
        """Stop every worker process (idempotent; controller stays usable)."""
        for shard, worker in enumerate(self._workers):
            if worker is not None:
                worker.stop()
                self._workers[shard] = None

    def __enter__(self) -> "ShardController":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __del__(self) -> None:  # pragma: no cover - best-effort cleanup
        try:
            self.shutdown()
        except Exception:  # noqa: BLE001 - interpreter shutdown
            pass

    # Pickling (simulator checkpoints): drop process/pipe handles; the
    # restored controller respawns workers lazily on the next slot.
    # Mirrors FlakyBackend.__getstate__ in repro.resilient.chaos.
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_workers"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._workers = [None] * self.num_shards

    # ------------------------------------------------------------------
    # Degraded mode: a retired shard's sites are treated as signal-lost,
    # flowing through the base scheduler's prepare_state substitution
    # (last-known-good, then fail-safe) exactly like a faulted feed.
    # ------------------------------------------------------------------
    def prepare_state(self, state: ClusterState) -> ClusterState:
        if self._retired:
            availability = np.array(state.availability, dtype=np.float64)
            prices = np.array(state.prices, dtype=np.float64)
            for shard in self._retired:
                for i in self.shards[shard]:
                    availability[i, :] = np.nan
                    prices[i] = np.nan
            state = ClusterState(availability, prices, missing_ok=True)
        return super().prepare_state(state)

    # ------------------------------------------------------------------
    # The scattered solve
    # ------------------------------------------------------------------
    def _solve(self, problem: SlotServiceProblem, t: int) -> np.ndarray:
        reg = metrics_registry()
        with reg.span("distrib.slot"):
            merged = self._scatter_gather(problem, t)
        if not problem.is_feasible(merged, tol=1e-6):
            # Defensive only: worker and fallback rows are individually
            # clipped feasible and sites are shard-exclusive.
            stats_registry().counter_add("resilient.shard.merge_clips")
            merged = problem.clip_feasible(merged)
        if self.verify is not None:
            self._check_divergence(problem, t, merged)
        self.slots_completed += 1
        return merged

    def _scatter_gather(self, problem: SlotServiceProblem, t: int) -> np.ndarray:
        reg = metrics_registry()
        self._slot_degraded = False
        merged = np.zeros_like(problem.h_upper)
        pending: Dict[int, int] = {}
        deadlines: Dict[int, Optional[float]] = {}
        heartbeats: Set[int] = set()
        with reg.span("distrib.scatter"):
            for shard in range(self.num_shards):
                if shard in self._retired:
                    self._apply_fallback(
                        merged, shard, problem, t, attempt=0,
                        detail="shard retired (respawn budget exhausted)",
                    )
                    continue
                self._begin_attempt(shard, t, 1, problem, merged, pending, deadlines)
        with reg.span("distrib.gather"):
            while pending:
                self._gather_step(
                    problem, t, merged, pending, deadlines, heartbeats
                )
        return merged

    def _begin_attempt(
        self,
        shard: int,
        t: int,
        attempt: int,
        problem: SlotServiceProblem,
        merged: np.ndarray,
        pending: Dict[int, int],
        deadlines: Dict[int, Optional[float]],
    ) -> None:
        """Dispatch one slot attempt to *shard*, degrading on failure."""
        worker = self._ensure_worker(shard, t)
        if worker is None:
            self._apply_fallback(
                merged, shard, problem, t, attempt,
                detail="no worker available",
            )
            return
        weights, upper = self._masked(problem, shard)
        sent = worker.send(
            (
                "slot",
                t,
                attempt,
                weights,
                upper,
                np.asarray(problem.state.availability),
                np.asarray(problem.state.prices),
            )
        )
        if not sent:
            self._fail(
                shard, t, attempt, "crash", "worker pipe closed at dispatch",
                problem, merged, pending, deadlines, set(),
            )
            return
        pending[shard] = attempt
        deadlines[shard] = (
            Registry.clock() + self.policy.deadline
            if self.policy.deadline is not None
            else None
        )

    def _gather_step(
        self,
        problem: SlotServiceProblem,
        t: int,
        merged: np.ndarray,
        pending: Dict[int, int],
        deadlines: Dict[int, Optional[float]],
        heartbeats: Set[int],
    ) -> None:
        """One wait-dispatch round of the gather supervision loop."""
        conn_map = {}
        for shard in list(pending):
            worker = self._workers[shard]
            if worker is None:
                self._fail(
                    shard, t, pending[shard], "crash", "worker handle missing",
                    problem, merged, pending, deadlines, heartbeats,
                )
                continue
            conn_map[worker.conn] = shard
        if not conn_map:
            return
        timeout = None
        active = [d for s, d in deadlines.items() if s in pending and d is not None]
        if active:
            timeout = max(0.0, min(active) - Registry.clock())
        ready = _connection_wait(list(conn_map), timeout)
        if not ready:
            now = Registry.clock()
            for shard in list(pending):
                limit = deadlines.get(shard)
                if limit is not None and now >= limit:
                    reason = "straggler" if shard in heartbeats else "hang"
                    self._fail(
                        shard, t, pending[shard], reason,
                        f"missed {self.policy.deadline:g}s slot deadline",
                        problem, merged, pending, deadlines, heartbeats,
                    )
            return
        for conn in ready:
            shard = conn_map[conn]
            if shard not in pending:
                continue
            attempt = pending[shard]
            try:
                message = conn.recv()
            except (EOFError, OSError):
                self._fail(
                    shard, t, attempt, "crash", "worker pipe closed mid-slot",
                    problem, merged, pending, deadlines, heartbeats,
                )
                continue
            kind = message[0] if isinstance(message, tuple) and message else None
            if kind == "heartbeat" and message[1:] == (t, attempt):
                heartbeats.add(shard)
            elif kind == "result":
                _, slot_echo, attempt_echo, rows, meta = message
                if slot_echo != t or attempt_echo != attempt:
                    continue  # stale echo from a superseded attempt
                self._accept(merged, shard, rows, t, meta)
                pending.pop(shard, None)
                deadlines.pop(shard, None)
            elif kind == "error":
                _, slot_echo, attempt_echo, text = message
                if slot_echo != t or attempt_echo != attempt:
                    continue
                self._fail(
                    shard, t, attempt, "error", text,
                    problem, merged, pending, deadlines, heartbeats,
                )

    # ------------------------------------------------------------------
    # Failure handling: classify, retry with backoff, degrade
    # ------------------------------------------------------------------
    def _fail(
        self,
        shard: int,
        t: int,
        attempt: int,
        reason: str,
        detail: str,
        problem: SlotServiceProblem,
        merged: np.ndarray,
        pending: Dict[int, int],
        deadlines: Dict[int, Optional[float]],
        heartbeats: Set[int],
    ) -> None:
        pending.pop(shard, None)
        deadlines.pop(shard, None)
        heartbeats.discard(shard)
        self._record_incident(
            ShardIncident(slot=t, shard=shard, attempt=attempt,
                          reason=reason, detail=detail)
        )
        self._retire_worker(shard)
        if attempt <= self.policy.retries:
            time.sleep(self.policy.backoff_seconds(attempt))
            self._begin_attempt(
                shard, t, attempt + 1, problem, merged, pending, deadlines
            )
            return
        self._apply_fallback(
            merged, shard, problem, t, attempt, detail=f"after {reason}"
        )

    def _retire_worker(self, shard: int) -> None:
        worker = self._workers[shard]
        if worker is not None:
            worker.terminate()
            self._workers[shard] = None

    def _retire_shard(self, shard: int, t: int) -> None:
        if shard in self._retired:
            return
        self._retired.add(shard)
        stats_registry().counter_add("resilient.shard.retired")
        self._record_incident(
            ShardIncident(
                slot=t, shard=shard, attempt=0, reason="fallback",
                detail=(
                    f"respawn budget ({self.policy.max_respawns}) exhausted; "
                    "shard retired to degraded mode"
                ),
            )
        )

    def _apply_fallback(
        self,
        merged: np.ndarray,
        shard: int,
        problem: SlotServiceProblem,
        t: int,
        attempt: int,
        detail: str,
    ) -> None:
        mode = self.policy.fallback
        rows = self._fallback_rows(shard, problem, mode)
        merged[list(self.shards[shard])] = rows
        self._slot_degraded = True
        self.fallback_slots += 1
        stats_registry().counter_add("resilient.shard.fallback_slots")
        self._record_incident(
            ShardIncident(
                slot=t, shard=shard, attempt=attempt, reason="fallback",
                detail=f"{mode} rows {detail}",
            )
        )

    def _fallback_rows(
        self, shard: int, problem: SlotServiceProblem, mode: str
    ) -> np.ndarray:
        idx = list(self.shards[shard])
        if mode == "zero":
            return np.zeros((len(idx), problem.h_upper.shape[1]))
        if mode == "hold":
            last = self._last_good[shard]
            if last is None:
                return np.zeros((len(idx), problem.h_upper.shape[1]))
            held = np.zeros_like(problem.h_upper)
            held[idx] = np.minimum(last, problem.h_upper[idx])
            return problem.clip_feasible(held)[idx]
        # "greedy": solve the shard's masked problem locally with the
        # fairness pull dropped — the beta = 0 closed form is feasible
        # for the beta > 0 problem (same constraint set).
        weights, upper = self._masked(problem, shard)
        local = SlotServiceProblem(
            cluster=self.cluster,
            state=problem.state,
            queue_weights=weights,
            h_upper=upper,
            v=self.v,
            beta=0.0,
            fairness=self.fairness,
            pricing=self.pricing,
        )
        outcome = self._fallback_solver.solve(local, primary="greedy", slot=None)
        return outcome.h[idx]

    # ------------------------------------------------------------------
    # Worker management: spawn, respawn-with-resync, budgets
    # ------------------------------------------------------------------
    def _ensure_worker(self, shard: int, t: int) -> Optional[ShardWorker]:
        worker = self._workers[shard]
        if worker is not None and worker.alive:
            return worker
        if worker is not None:
            self._retire_worker(shard)
        while True:
            first = self._spawn_counts[shard] == 0
            if not first:
                if self._respawns[shard] >= self.policy.max_respawns:
                    self._retire_shard(shard, t)
                    return None
                self._respawns[shard] += 1
                stats_registry().counter_add("resilient.shard.respawns")
            if self._spawn(shard, t, respawn=not first):
                return self._workers[shard]
            if first and self.policy.max_respawns == 0:
                self._retire_shard(shard, t)
                return None

    def _spawn(self, shard: int, t: int, respawn: bool) -> bool:
        self._spawn_counts[shard] += 1
        slow = (
            self.process_faults.slow_start_seconds(shard)
            if self._spawn_counts[shard] == 1
            else 0.0
        )
        resume = self._load_shard_checkpoint(shard)
        if resume is not None and self._last_good[shard] is None:
            last = resume.get("last_good")
            if last is not None:
                self._last_good[shard] = np.asarray(last, dtype=np.float64)
        config = WorkerConfig(
            shard_id=shard,
            sites=self.shards[shard],
            cluster=self.cluster,
            v=self.v,
            beta=self.beta,
            fairness=self.fairness,
            pricing=self.pricing,
            primary=self.select_backend(),
            faults=self.process_faults.for_shard(shard),
            slow_start=slow,
            resume=resume,
        )
        worker = ShardWorker(config)
        completed = worker.wait_ready(self.policy.spawn_timeout)
        if completed is None:
            worker.terminate()
            self._workers[shard] = None
            self._record_incident(
                ShardIncident(
                    slot=t, shard=shard, attempt=0, reason="slow-start",
                    detail=(
                        "worker not ready within "
                        f"{self.policy.spawn_timeout:g}s"
                        if self.policy.spawn_timeout is not None
                        else "worker died before ready"
                    ),
                )
            )
            return False
        self._workers[shard] = worker
        stats_registry().counter_add("resilient.shard.spawns")
        if respawn:
            detail = f"spawn #{self._spawn_counts[shard]}"
            if resume is not None:
                detail += f", re-synced from checkpoint slot {completed}"
            self._record_incident(
                ShardIncident(slot=t, shard=shard, attempt=0,
                              reason="respawn", detail=detail)
            )
        return True

    # ------------------------------------------------------------------
    # Per-shard ckpt-v1 checkpoints
    # ------------------------------------------------------------------
    def _shard_key(self, shard: int) -> str:
        return f"{self.policy.checkpoint_key}-s{shard}"

    def _shard_checkpoint_path(self, shard: int) -> Path:
        return checkpoint_path(
            self._shard_key(shard), Path(self.policy.checkpoint_dir)
        )

    def _load_shard_checkpoint(self, shard: int) -> Optional[dict]:
        if self.policy.checkpoint_every is None:
            return None
        return load_checkpoint(
            self._shard_checkpoint_path(shard), self._shard_key(shard)
        )

    def _save_shard_checkpoint(self, shard: int, t: int, rows: np.ndarray) -> None:
        every = self.policy.checkpoint_every
        if every is None or (t + 1) % every != 0:
            return
        save_checkpoint(
            self._shard_checkpoint_path(shard),
            self._shard_key(shard),
            {
                "slot": int(t),
                "last_good": np.asarray(rows),
                "respawns": int(self._respawns[shard]),
            },
        )

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    def _masked(
        self, problem: SlotServiceProblem, shard: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Full-shape matrices with foreign rows zeroed (shard's view)."""
        idx = list(self.shards[shard])
        weights = np.zeros_like(problem.queue_weights)
        upper = np.zeros_like(problem.h_upper)
        weights[idx] = problem.queue_weights[idx]
        upper[idx] = problem.h_upper[idx]
        return weights, upper

    def _accept(
        self, merged: np.ndarray, shard: int, rows, t: int, meta: dict
    ) -> None:
        rows = np.asarray(rows, dtype=np.float64)
        merged[list(self.shards[shard])] = rows
        self._last_good[shard] = rows.copy()
        self._completed[shard] = t
        if meta.get("degraded"):
            stats_registry().counter_add("resilient.shard.worker_degraded")
        self._save_shard_checkpoint(shard, t, rows)

    def _record_incident(self, incident: ShardIncident) -> None:
        self.incidents.append(incident)
        if len(self.incidents) > self.max_incidents:
            del self.incidents[: -self.max_incidents]
        stats = stats_registry()
        stats.counter_add("resilient.shard.incidents")
        stats.counter_add(f"resilient.shard.incident.{incident.reason}")
        metrics = metrics_registry()
        metrics.counter_add("resilient.shard.incidents")
        metrics.counter_add(f"resilient.shard.incident.{incident.reason}")

    @property
    def incident_count(self) -> int:
        return len(self.incidents)

    @property
    def retired_shards(self) -> Tuple[int, ...]:
        """Shards permanently degraded (respawn budget exhausted)."""
        return tuple(sorted(self._retired))

    # ------------------------------------------------------------------
    # Verification against the serial reference
    # ------------------------------------------------------------------
    def fairness_defect(self, problem: SlotServiceProblem, h: np.ndarray) -> float:
        """``f(h) - sum_s f(mask_s(h))``: what sharding loses of ``f``."""
        parts = 0.0
        for sites in self.shards:
            masked = np.zeros_like(h)
            idx = list(sites)
            masked[idx] = h[idx]
            parts += problem.fairness_score(masked)
        return float(problem.fairness_score(h) - parts)

    def _check_divergence(
        self, problem: SlotServiceProblem, t: int, merged: np.ndarray
    ) -> None:
        serial = self._verify_solver.solve(
            problem, primary=self.select_backend(), slot=t
        ).h
        if not problem.has_fairness and self.select_backend() == "greedy":
            identical = bool(np.array_equal(merged, serial))
            delta = (
                0.0 if identical else float(np.max(np.abs(merged - serial)))
            )
            self.divergence.append((t, delta, 0.0))
            if not identical and self.verify == "assert" and not self._slot_degraded:
                raise ShardDivergenceError(
                    f"slot {t}: beta = 0 sharded solve differs from serial "
                    f"(max |delta| = {delta:g})"
                )
            return
        gap = float(problem.objective(merged) - problem.objective(serial))
        bound = self.v * self.beta * (
            self.fairness_defect(problem, serial)
            - self.fairness_defect(problem, merged)
        )
        self.divergence.append((t, gap, bound))
        if self.verify == "assert" and not self._slot_degraded:
            if gap < -_VERIFY_TOL or gap > bound + _VERIFY_TOL:
                raise ShardDivergenceError(
                    f"slot {t}: sharded objective gap {gap:g} outside "
                    f"[0, {bound:g}] (+/- {_VERIFY_TOL:g} solver tolerance)"
                )
