"""Shard chaos drill: kill/hang/straggle a worker mid-run, assert survival.

The acceptance bar for the sharded slot loop mirrors the solver chaos
drill one level up: with a shard worker SIGKILLed (or hung, or
straggling) mid-run, the full simulation must complete, every slot must
carry a valid action and metrics record (**no acknowledged slot result
is lost**), and the supervision must be visible as structured
``resilient.shard.*`` incidents.  :func:`run_shard_drill` packages the
whole check behind ``repro shard --drill`` and the CI ``chaos`` job.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro._validation import require_integer, require_positive
from repro.distrib.controller import ShardController
from repro.distrib.policy import ShardPolicy
from repro.faults.process import ProcessFaultEvent, ProcessFaultSchedule
from repro.obs.registry import stats_registry

__all__ = ["DRILL_KINDS", "ShardDrillReport", "run_shard_drill"]

#: Drill name -> process fault kind injected into the target worker.
DRILL_KINDS = {
    "kill": "worker_kill",
    "hang": "worker_hang",
    "straggle": "worker_straggle",
    "slow-start": "slow_start",
}


@dataclass(frozen=True)
class ShardDrillReport:
    """What one shard fault drill observed."""

    kind: str
    slots: int
    horizon: int
    incidents: int
    respawns: int
    fallback_slots: int
    retired_shards: Tuple[int, ...]
    counters: Dict[str, float]
    summary: object  # SimulationSummary

    @property
    def lost_slots(self) -> int:
        """Slots whose metrics never landed (must be 0 to survive)."""
        return self.horizon - self.slots

    @property
    def survived(self) -> bool:
        """Run completed, nothing lost, and the fault left a visible mark."""
        return self.lost_slots == 0 and self.incidents > 0

    def render(self) -> str:
        lines = [
            f"shard drill ({self.kind}): {self.slots}/{self.horizon} slots "
            f"completed, {self.lost_slots} lost",
            f"  shard incidents    : {self.incidents}",
            f"  worker respawns    : {self.respawns}",
            f"  fallback slots     : {self.fallback_slots}",
            f"  retired shards     : "
            f"{list(self.retired_shards) if self.retired_shards else 'none'}",
        ]
        for name in sorted(self.counters):
            lines.append(f"  {name:<34s} {self.counters[name]:g}")
        lines.append(f"  survived           : {'yes' if self.survived else 'NO'}")
        return "\n".join(lines)


def run_shard_drill(
    scenario,
    num_shards: int = 2,
    v: float = 1.0,
    beta: float = 0.0,
    kind: str = "kill",
    shard: int = 0,
    slot: Optional[int] = None,
    seconds: float = 5.0,
    policy: Optional[ShardPolicy] = None,
    horizon: Optional[int] = None,
    verify: Optional[str] = None,
) -> ShardDrillReport:
    """Inject one process fault into a sharded run; validate every slot.

    Builds a :class:`~repro.distrib.controller.ShardController` over
    *scenario*'s cluster, schedules one :data:`DRILL_KINDS` fault
    against worker *shard* at *slot* (default: a third into the
    horizon), and runs the simulation with ``validate=True`` so an
    infeasible or missing action on any slot fails loudly.

    *policy* defaults to a drill-appropriate
    :class:`~repro.distrib.policy.ShardPolicy`: the timed faults (hang,
    straggle, slow start) need a deadline to be detectable, so one is
    installed at ``seconds / 2``; the kill drill keeps the blocking
    deterministic gather (a dead worker's pipe closes immediately).
    """
    from repro.simulation.simulator import Simulator

    if kind not in DRILL_KINDS:
        raise ValueError(
            f"unknown drill kind {kind!r}; choose from {sorted(DRILL_KINDS)}"
        )
    require_integer(shard, "shard", minimum=0)
    require_positive(seconds, "seconds")
    run_horizon = horizon if horizon is not None else scenario.horizon
    require_integer(run_horizon, "horizon", minimum=1)
    if slot is None:
        slot = max(run_horizon // 3, 1)
    require_integer(slot, "slot", minimum=0)

    fault_kind = DRILL_KINDS[kind]
    faults = ProcessFaultSchedule(
        (
            ProcessFaultEvent(
                fault_kind,
                shard=shard,
                slot=slot,
                seconds=seconds if fault_kind != "worker_kill" else 0.0,
            ),
        )
    )
    if policy is None:
        if fault_kind == "worker_kill":
            policy = ShardPolicy()
        else:
            # Timed faults are invisible without a deadline; half the
            # fault length keeps the drill fast but unambiguous.
            policy = ShardPolicy(deadline=seconds / 2.0, spawn_timeout=seconds / 2.0)

    controller = ShardController(
        scenario.cluster,
        num_shards=num_shards,
        v=v,
        beta=beta,
        policy=policy,
        process_faults=faults,
        verify=verify,
    )
    stats = stats_registry()
    stats.reset("resilient.shard.")
    try:
        result = Simulator(scenario, controller, validate=True).run(run_horizon)
    finally:
        controller.shutdown()
    counters = {
        name: value
        for name, value in stats.counters().items()
        if name.startswith("resilient.shard.")
    }
    return ShardDrillReport(
        kind=kind,
        slots=len(result.metrics.energy_cost),
        horizon=run_horizon,
        incidents=controller.incident_count,
        respawns=int(counters.get("resilient.shard.respawns", 0)),
        fallback_slots=controller.fallback_slots,
        retired_shards=controller.retired_shards,
        counters=counters,
        summary=result.summary,
    )
