"""The shard worker: a subprocess solving masked per-shard slot problems.

One :class:`ShardWorker` owns one OS process plus the duplex pipe to
it.  The process body (:func:`_shard_worker_main`, module-level so it
pickles under any start method) is a plain message loop:

* ``("slot", t, attempt, weights, upper, availability, prices)`` —
  build the masked :class:`~repro.optimize.slot_problem.SlotServiceProblem`
  for this shard, solve it under a local
  :class:`~repro.resilient.supervisor.SupervisedSolver`, and reply with
  the shard's rows.  A heartbeat is sent *before* the solve, so the
  controller can tell a hung worker (no heartbeat) from a straggling
  one (heartbeat but no result).
* ``("stop",)`` — exit cleanly.

Workers are deliberately stateless across slots — every slot message
carries everything the solve needs — so a respawned worker is correct
by construction and re-sync only has to restore bookkeeping (the
completed-slot watermark from the shard's ``ckpt-v1`` checkpoint).

Process faults from :class:`~repro.faults.process.ProcessFaultSchedule`
are applied here, deterministically, keyed on ``(shard, slot)`` and
only on the first delivery attempt — a respawned worker handed the same
slot again completes it.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
from dataclasses import dataclass
from typing import Any, Optional, Tuple

import numpy as np

from repro.faults.process import ProcessFaultSchedule

__all__ = ["ShardWorker", "WorkerConfig"]


@dataclass(frozen=True)
class WorkerConfig:
    """Everything a shard worker process needs, picklable.

    ``sites`` are the global site indices this shard owns; the worker
    still receives full ``(N, J)`` matrices (masked to zero outside its
    rows) because supply curves, fairness normalization and feasibility
    live in global coordinates — only the *reply* is shard-local.
    """

    shard_id: int
    sites: Tuple[int, ...]
    cluster: Any
    v: float
    beta: float
    fairness: Any
    pricing: Any
    primary: str
    faults: ProcessFaultSchedule
    slow_start: float = 0.0
    resume: Optional[dict] = None


def _shard_worker_main(conn, config: WorkerConfig) -> None:
    """Process body: announce readiness, then serve slot messages."""
    # Imports happen in the child so a spawn start method pays them
    # here, not at module pickle time.
    from repro.model.state import ClusterState
    from repro.optimize.slot_problem import SlotServiceProblem
    from repro.resilient.supervisor import SupervisedSolver

    completed = -1
    if config.resume is not None:
        completed = int(config.resume.get("slot", completed))
    if config.slow_start > 0.0:
        time.sleep(config.slow_start)
    supervisor = SupervisedSolver()
    sites = list(config.sites)
    try:
        conn.send(("ready", config.shard_id, completed))
        while True:
            try:
                message = conn.recv()
            except EOFError:
                break
            if not isinstance(message, tuple) or not message:
                continue
            if message[0] == "stop":
                break
            if message[0] != "slot":
                continue
            _, t, attempt, weights, upper, availability, prices = message
            fault = config.faults.at(config.shard_id, t) if attempt == 1 else None
            if fault is not None and fault.kind == "worker_kill":
                # Hard crash drill: die without flushing anything.
                os.kill(os.getpid(), signal.SIGKILL)
            if fault is not None and fault.kind == "worker_hang":
                time.sleep(fault.seconds)
            conn.send(("heartbeat", t, attempt))
            if fault is not None and fault.kind == "worker_straggle":
                time.sleep(fault.seconds)
            try:
                problem = SlotServiceProblem(
                    cluster=config.cluster,
                    state=ClusterState(availability, prices),
                    queue_weights=weights,
                    h_upper=upper,
                    v=config.v,
                    beta=config.beta,
                    fairness=config.fairness,
                    pricing=config.pricing,
                )
                outcome = supervisor.solve(problem, primary=config.primary, slot=t)
                rows = np.ascontiguousarray(outcome.h[sites])
                completed = max(completed, int(t))
                meta = {
                    "backend": outcome.backend,
                    "degraded": outcome.degraded,
                    "incidents": len(outcome.incidents),
                    "completed": completed,
                }
                conn.send(("result", t, attempt, rows, meta))
            except (KeyboardInterrupt, SystemExit):  # pragma: no cover
                raise
            except Exception as exc:  # noqa: BLE001 - supervision boundary
                conn.send(("error", t, attempt, f"{type(exc).__name__}: {exc}"))
    except (BrokenPipeError, OSError):  # pragma: no cover - controller gone
        pass
    finally:
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass


class ShardWorker:
    """Controller-side handle: the process, its pipe, and safe teardown."""

    def __init__(self, config: WorkerConfig, context=None) -> None:
        ctx = context if context is not None else multiprocessing.get_context()
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self.shard_id = config.shard_id
        self.conn = parent_conn
        self.process = ctx.Process(
            target=_shard_worker_main,
            args=(child_conn, config),
            name=f"repro-shard-{config.shard_id}",
            daemon=True,
        )
        self.process.start()
        # Close our copy of the child end *immediately*: under a fork
        # start method, a child-end descriptor left open in the parent
        # (and inherited by every later sibling fork) would mask the
        # pipe EOF that crash detection relies on.
        child_conn.close()

    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        return self.process.is_alive()

    def send(self, message: tuple) -> bool:
        """Send *message*; False (never raises) if the pipe is gone."""
        try:
            self.conn.send(message)
            return True
        except (BrokenPipeError, OSError):
            return False

    def wait_ready(self, timeout: Optional[float]) -> Optional[int]:
        """Wait for the ``("ready", shard, completed)`` banner.

        Returns the worker's completed-slot watermark, or ``None`` when
        the worker died first or missed *timeout* (slow start).
        """
        try:
            if timeout is not None and not self.conn.poll(timeout):
                return None
            message = self.conn.recv()
        except (EOFError, OSError):
            return None
        if not (isinstance(message, tuple) and message and message[0] == "ready"):
            return None
        return int(message[2])

    # ------------------------------------------------------------------
    def terminate(self, grace: float = 0.5) -> None:
        """Forcibly stop the process (idempotent, never raises)."""
        try:
            self.process.terminate()
            self.process.join(grace)
            if self.process.is_alive():
                self.process.kill()
                self.process.join(grace)
        except (OSError, ValueError, AssertionError):  # pragma: no cover
            pass
        self._close()

    def stop(self, grace: float = 1.0) -> None:
        """Graceful shutdown: ``stop`` message, join, escalate if needed."""
        self.send(("stop",))
        try:
            self.process.join(grace)
        except (OSError, ValueError, AssertionError):  # pragma: no cover
            pass
        if self.process.is_alive():
            self.terminate()
        else:
            self._close()

    def _close(self) -> None:
        try:
            self.conn.close()
        except OSError:  # pragma: no cover
            pass
