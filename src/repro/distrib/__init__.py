"""Sharded scatter-gather execution of a single simulation run.

The cluster is partitioned by data center into shard worker processes;
each slot is scattered (masked global matrices + state), solved
per-shard, gathered under supervision (heartbeats, deadlines,
retry/backoff, respawn with checkpoint re-sync, degraded fallback) and
merged back into the exact serial slot body.  See
``docs/DISTRIBUTED.md`` for the architecture and the failure matrix.
"""

from repro.distrib.chaos import DRILL_KINDS, ShardDrillReport, run_shard_drill
from repro.distrib.controller import ShardController, partition_sites
from repro.distrib.policy import (
    FALLBACK_MODES,
    SHARD_FAILURE_REASONS,
    ShardDivergenceError,
    ShardIncident,
    ShardPolicy,
)
from repro.distrib.worker import ShardWorker, WorkerConfig

__all__ = [
    "DRILL_KINDS",
    "FALLBACK_MODES",
    "SHARD_FAILURE_REASONS",
    "ShardController",
    "ShardDivergenceError",
    "ShardDrillReport",
    "ShardIncident",
    "ShardPolicy",
    "ShardWorker",
    "WorkerConfig",
    "partition_sites",
    "run_shard_drill",
]
