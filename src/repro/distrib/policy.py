"""Supervision knobs and incident records for the sharded slot loop.

:class:`ShardPolicy` is to :class:`~repro.distrib.controller.ShardController`
what :class:`~repro.resilient.supervisor.SolverPolicy` is to
:class:`~repro.resilient.supervisor.SupervisedSolver`: a frozen bundle
of first-class deadline / retry / fallback fields, validated at
construction, with deterministic defaults.

:class:`ShardIncident` mirrors
:class:`~repro.resilient.supervisor.SolverIncident` one layer up — a
failed *worker* interaction instead of a failed *backend* attempt.
Incidents are retained on the controller and counted on the always-on
stats registry under ``resilient.shard.*``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro._validation import require_at_least, require_integer, require_positive
from repro.resilient.checkpoint import DEFAULT_CHECKPOINT_DIR

__all__ = [
    "FALLBACK_MODES",
    "SHARD_FAILURE_REASONS",
    "ShardDivergenceError",
    "ShardIncident",
    "ShardPolicy",
]

#: Degraded-mode action for a shard whose worker could not serve a slot.
#: ``"greedy"`` — the controller solves the shard's masked slot problem
#: locally with the fairness pull dropped (beta = 0 closed form);
#: ``"hold"`` — repeat the shard's last good rows, clipped feasible;
#: ``"zero"`` — serve nothing at the shard's sites this slot.
FALLBACK_MODES = ("greedy", "hold", "zero")

#: Failure categories a gather can record (``ShardIncident.reason``).
#: ``crash`` — the worker process died / its pipe closed mid-slot;
#: ``hang`` — no heartbeat before the deadline (worker went silent);
#: ``straggler`` — heartbeat seen but the result missed the deadline;
#: ``error`` — the worker replied with a structured error message;
#: ``slow-start`` — a (re)spawned worker missed the spawn deadline.
#: ``respawn`` and ``fallback`` incidents record the supervision
#: *actions* taken in response.
SHARD_FAILURE_REASONS = (
    "crash",
    "hang",
    "straggler",
    "error",
    "slow-start",
    "respawn",
    "fallback",
)


class ShardDivergenceError(AssertionError):
    """A sharded slot decision diverged from the serial reference.

    Raised only in ``verify="assert"`` mode: for ``beta = 0`` any bit
    difference from the serial solve raises; for ``beta > 0`` the
    per-slot objective gap must stay within the computable
    fairness-superadditivity bound (see ``docs/DISTRIBUTED.md``).
    """


@dataclass(frozen=True)
class ShardPolicy:
    """Supervision knobs for the scatter-gather shard loop.

    Parameters
    ----------
    deadline:
        Per-slot wall-clock budget in seconds for the gather.  A shard
        that has not delivered its result when the budget runs out is
        classified (hang vs straggler, by heartbeat), terminated, and
        retried or degraded.  **Default None**: the gather blocks until
        every shard answers or crashes — like
        :class:`~repro.resilient.supervisor.SolverPolicy.timeout`, any
        deadline makes decisions load-dependent and is opt-in.  Crash
        detection does *not* need a deadline (a dead worker's pipe
        closes immediately).
    spawn_timeout:
        Wall-clock budget for a (re)spawned worker to announce
        readiness; ``None`` waits indefinitely.  Exists to surface
        ``slow_start`` faults.
    retries:
        Re-scatter attempts per shard per slot after a failure (the
        worker is respawned first).  Workers are deterministic, so
        retries exist for *process*-level faults, which do clear on
        respawn.
    backoff_base / backoff_factor:
        Exponential backoff slept before retry *k* (1-based):
        ``backoff_base * backoff_factor**(k-1)`` seconds.
    max_respawns:
        Respawn budget per shard per run.  A shard that exhausts it is
        marked permanently unhealthy: its sites are masked as missing
        through the scheduler's ``prepare_state`` degraded path and its
        rows come from *fallback* for the rest of the run.
    fallback:
        One of :data:`FALLBACK_MODES`.
    checkpoint_every:
        Write a per-shard ``ckpt-v1`` checkpoint every this many
        completed slots (``None``: per-shard checkpoints off).  A
        respawned worker is re-synced from its shard's checkpoint.
    checkpoint_dir / checkpoint_key:
        Where per-shard snapshots live and their key prefix; shard
        ``s`` uses key ``"<checkpoint_key>-s<s>"``.
    """

    deadline: Optional[float] = None
    spawn_timeout: Optional[float] = None
    retries: int = 1
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    max_respawns: int = 2
    fallback: str = "greedy"
    checkpoint_every: Optional[int] = None
    checkpoint_dir: str = str(DEFAULT_CHECKPOINT_DIR)
    checkpoint_key: str = "shard"

    def __post_init__(self) -> None:
        if self.deadline is not None:
            require_positive(self.deadline, "deadline")
        if self.spawn_timeout is not None:
            require_positive(self.spawn_timeout, "spawn_timeout")
        require_integer(self.retries, "retries", minimum=0)
        require_positive(self.backoff_base, "backoff_base")
        require_at_least(self.backoff_factor, 1.0, "backoff_factor")
        require_integer(self.max_respawns, "max_respawns", minimum=0)
        if self.fallback not in FALLBACK_MODES:
            raise ValueError(
                f"fallback must be one of {FALLBACK_MODES}, got {self.fallback!r}"
            )
        if self.checkpoint_every is not None:
            require_integer(self.checkpoint_every, "checkpoint_every", minimum=1)
        if not self.checkpoint_key:
            raise ValueError("checkpoint_key must be non-empty")

    def backoff_seconds(self, retry: int) -> float:
        """Backoff before 1-based retry *retry* of a slot."""
        require_integer(retry, "retry", minimum=1)
        return float(self.backoff_base * self.backoff_factor ** (retry - 1))


@dataclass(frozen=True)
class ShardIncident:
    """One supervision event on the shard layer.

    ``reason`` is one of :data:`SHARD_FAILURE_REASONS`; ``detail``
    carries the specifics (exception text, deadline numbers, resync
    slot).  The layout intentionally mirrors
    :class:`~repro.resilient.supervisor.SolverIncident` so both logs
    read the same way in drill reports.
    """

    slot: Optional[int]
    shard: int
    attempt: int
    reason: str
    detail: str = ""

    def render(self) -> str:
        where = f"slot {self.slot}" if self.slot is not None else "slot ?"
        text = f"[{where}] shard {self.shard} attempt {self.attempt}: {self.reason}"
        if self.detail:
            text += f" ({self.detail})"
        return text
