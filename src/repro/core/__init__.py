"""Core: the GreFar algorithm, its objective, and Theorem 1 machinery."""

from repro.core.bounds import TheoremConstants
from repro.core.constraints import parallelism_service_bounds
from repro.core.grefar import GreFarScheduler
from repro.core.objective import CostModel, SlotCost
from repro.core.slackness import SlacknessReport, check_slackness

__all__ = [
    "CostModel",
    "GreFarScheduler",
    "SlacknessReport",
    "SlotCost",
    "TheoremConstants",
    "check_slackness",
    "parallelism_service_bounds",
]
