"""Scheduling-decision constraints beyond the base model.

Currently: the per-job **parallelism constraint** of Section III-B.
The base model assumes jobs are fully parallelizable; in practice "it
may be possible that only a certain number of servers can process a job
in parallel", and the paper notes the model adapts by bounding the
scheduling decisions.  With at most ``P_j`` servers per job and ``q_ij``
jobs present, the work type ``j`` can absorb at site ``i`` in one slot
is ``q_ij * P_j * s_i^fast`` (``s_i^fast`` = fastest server class with
any availability at the site), i.e.

.. math::

   h_{ij}(t) \\le \\frac{q_{ij}(t) \\cdot P_j \\cdot s_i^{fast}}{d_j}

which slots into the solvers as one more upper bound on ``h``.
"""

from __future__ import annotations

import numpy as np

from repro.model.cluster import Cluster
from repro.model.state import ClusterState

__all__ = ["parallelism_service_bounds"]


def parallelism_service_bounds(
    cluster: Cluster,
    state: ClusterState,
    dc_queue_lengths: np.ndarray,
) -> np.ndarray:
    """Per-(site, type) service bounds implied by job parallelism caps.

    Parameters
    ----------
    cluster:
        Supplies the per-type ``max_parallelism`` (``None`` = unbounded).
    state:
        Supplies per-site availability, from which the fastest usable
        server speed per site is derived.
    dc_queue_lengths:
        ``(N, J)`` current site queue lengths ``q_ij(t)`` (jobs).

    Returns
    -------
    numpy.ndarray
        ``(N, J)`` matrix of bounds; ``inf`` where no cap applies.
    """
    n, j_count = dc_queue_lengths.shape
    if n != cluster.num_datacenters or j_count != cluster.num_job_types:
        raise ValueError(
            f"dc_queue_lengths must have shape "
            f"{(cluster.num_datacenters, cluster.num_job_types)}, "
            f"got {dc_queue_lengths.shape}"
        )
    speeds = cluster.speeds
    bounds = np.full((n, j_count), np.inf)
    # Fastest class with any availability per site (0 if nothing is up).
    fastest = np.where(state.availability > 0, speeds[np.newaxis, :], 0.0).max(axis=1)
    for j, jt in enumerate(cluster.job_types):
        if jt.max_parallelism is None:
            continue
        per_job_rate = jt.max_parallelism * fastest / jt.demand
        bounds[:, j] = dc_queue_lengths[:, j] * per_job_rate
    return bounds
