"""Theorem 1 constants and bounds.

This module computes the finite constants appearing in the paper's
analysis (appendix eqs. (30), (36), (39)-(42)) from the boundedness
parameters of a scenario, and exposes the two guarantees:

* **Queue bound** (23): ``Q_j(t), q_ij(t) <= V C3 / delta`` for all t;
* **Cost bound** (24): ``g* <= (1/R) sum_r G*_r + (B + D(T-1)) / V``.

The constants are worst-case (they use the eq. (1)/(4)/(5) bounds and a
price cap), so the measured queue lengths and cost gaps in the
verification benchmarks should sit well inside them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro._validation import as_float_array, require_non_negative, require_positive
from repro.model.cluster import Cluster

__all__ = ["TheoremConstants"]


@dataclass(frozen=True)
class TheoremConstants:
    """The finite constants of Theorem 1 for one scenario.

    Attributes
    ----------
    b_const:
        ``B`` of eq. (30): bounds the quadratic part of the one-step
        Lyapunov drift.
    d_const:
        ``D`` of eq. (36): bounds the drift contributed by queue-length
        changes within a lookahead frame.
    q_max_diff:
        ``q^max`` — the largest possible one-slot change of any queue.
    g_max, g_min:
        Bounds on the instantaneous cost ``g(t)``.
    """

    b_const: float
    d_const: float
    q_max_diff: float
    g_max: float
    g_min: float

    # ------------------------------------------------------------------
    @classmethod
    def from_scenario(
        cls,
        cluster: Cluster,
        max_arrivals: Sequence[float] | None = None,
        price_cap: float = 1.0,
        beta: float = 0.0,
    ) -> "TheoremConstants":
        """Derive the constants from a cluster and boundedness parameters.

        Parameters
        ----------
        cluster:
            Supplies ``r_ij^max``, ``h_ij^max``, plant sizes and fair
            shares.
        max_arrivals:
            Per-type arrival caps ``a_j^max``; defaults to each job
            type's ``max_arrivals`` field.
        price_cap:
            Upper bound on every electricity price ``phi_i(t)``.
        beta:
            Energy-fairness parameter (enters through ``g_max``).
        """
        require_positive(price_cap, "price_cap")
        require_non_negative(beta, "beta")
        if max_arrivals is None:
            a_max = np.array([jt.max_arrivals for jt in cluster.job_types], dtype=float)
        else:
            a_max = as_float_array(max_arrivals, "max_arrivals")
            if a_max.shape != (cluster.num_job_types,):
                raise ValueError(
                    f"max_arrivals must have length {cluster.num_job_types}"
                )

        r_max = cluster.max_route_matrix()
        h_max = cluster.max_service_matrix()
        elig = cluster.eligibility_matrix()

        route_in = r_max.sum(axis=0)  # sum_{i in D_j} r_ij^max per type
        # One-step change bounds (appendix, below eq. (35)).
        front_diff = np.maximum(a_max, route_in)
        dc_diff = np.where(elig, np.maximum(r_max, h_max), 0.0)
        q_max_diff = float(max(front_diff.max(initial=0.0), dc_diff.max(initial=0.0)))

        # B of eq. (30): standard drift bound from Q(t+1) = max[Q-mu,0]+A:
        # Q^2 grows by at most mu^2 + A^2 + 2Q(A - mu).
        b_const = 0.5 * float(np.sum(route_in**2 + a_max**2))
        b_const += 0.5 * float(np.sum(h_max[elig] ** 2 + r_max[elig] ** 2))

        # D of eq. (36), evaluated at the boundedness caps.
        d_const = 0.5 * float(np.sum(front_diff**2))
        d_const += 0.5 * float(np.sum(dc_diff[elig] ** 2))

        # Cost range: e(t) in [0, price_cap * total busy power];
        # f(t) in [f_min, 0] for the quadratic score with ratios in [0,1].
        plant = np.stack([dc.max_servers for dc in cluster.datacenters])
        e_max = price_cap * float(np.sum(plant @ cluster.active_powers))
        shares = cluster.fair_shares
        f_min = -float(np.sum(np.maximum(shares, 1.0 - shares) ** 2))
        g_max = e_max - beta * f_min
        g_min = 0.0

        return cls(
            b_const=b_const,
            d_const=d_const,
            q_max_diff=q_max_diff,
            g_max=g_max,
            g_min=g_min,
        )

    # ------------------------------------------------------------------
    def c3(self, v: float, delta: float) -> float:
        """The ``C3`` constant of eq. (39) for given ``V`` and slackness."""
        require_positive(delta, "delta")
        if v <= 0:
            raise ValueError(f"v must be positive for the queue bound, got {v}")
        d1 = (self.b_const / v + self.g_max - self.g_min) ** 2
        d2 = 2.0 * self.d_const * delta**2 / v**2
        d3 = 2.0 * self.q_max_diff * delta / v * np.sqrt(d1)
        return float(np.sqrt(d1 + d2 + d3))

    def queue_bound(self, v: float, delta: float) -> float:
        """Theorem 1a: every queue stays ``<= V C3 / delta`` (eq. 23)."""
        return v * self.c3(v, delta) / delta

    def cost_gap(self, v: float, lookahead: int = 1) -> float:
        """Theorem 1b: the ``(B + D(T-1)) / V`` additive gap (eq. 24)."""
        if v <= 0:
            raise ValueError(f"v must be positive for the cost gap, got {v}")
        if lookahead < 1:
            raise ValueError(f"lookahead must be >= 1, got {lookahead}")
        return (self.b_const + self.d_const * (lookahead - 1)) / v
