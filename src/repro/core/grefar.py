"""GreFar: the paper's online scheduling algorithm (Algorithm 1).

Each slot GreFar observes the data center state ``x(t)`` and the queue
vector ``Theta(t)`` and chooses the action minimizing the
drift-plus-penalty expression (14):

.. math::

   V g(t)
   - \\sum_j Q_j(t) \\sum_{i \\in D_j} r_{ij}(t)
   + \\sum_j \\sum_{i \\in D_j} q_{ij}(t) \\,[r_{ij}(t) - h_{ij}(t)]

The expression separates:

* **Routing** — the coefficient of ``r_ij`` is ``q_ij(t) - Q_j(t)``, so
  the minimizer pushes ``r_ij`` to its bound exactly when the site
  backlog is below the central backlog (a backpressure rule).  Running
  physically, the total routed is additionally capped by the central
  queue content, filling most-negative coefficients first — the
  constrained minimizer.
* **Service** — ``h`` (with optimal busy counts ``b``) solves the
  convex :class:`~repro.optimize.slot_problem.SlotServiceProblem`: the
  threshold structure "serve when the queue is long and/or electricity
  is cheap" emerges from ``q_ij / d_j`` versus ``V phi_i p_k / s_k``.

No statistics of arrivals, prices or availability are used — Theorem 1
holds for arbitrary (even adversarial) sequences.
"""

from __future__ import annotations

import numpy as np

from repro._validation import require_non_negative
from repro.fairness.base import FairnessFunction
from repro.obs.registry import metrics_registry
from repro.fairness.quadratic import QuadraticFairness
from repro.model.action import Action
from repro.model.cluster import Cluster
from repro.model.pricing import LinearPricing
from repro.model.queues import QueueNetwork
from repro.model.state import ClusterState
from repro.optimize.slot_problem import SlotServiceProblem
from repro.resilient.supervisor import SupervisedSolver
from repro.schedulers.base import Scheduler, service_upper_bounds

__all__ = ["GreFarScheduler"]

#: User-selectable per-slot backends (the supervisor's terminal "zero"
#: fallback is not a scheduler choice).
_SOLVER_NAMES = ("greedy", "lp", "qp", "projected_gradient")


class GreFarScheduler(Scheduler):
    """The GreFar online scheduler (Algorithm 1).

    Parameters
    ----------
    cluster:
        Static system description.
    v:
        Cost-delay parameter ``V >= 0``: larger trades delay for cost
        (Theorem 1: cost gap ``O(1/V)``, queues ``O(V)``).
    beta:
        Energy-fairness parameter ``beta >= 0`` of eq. (6).
    fairness:
        Fairness function; defaults to the paper's quadratic (eq. 3).
    solver:
        Per-slot service backend: ``"auto"`` (greedy when ``beta == 0``,
        QP otherwise), ``"greedy"``, ``"lp"``, ``"qp"`` or
        ``"projected_gradient"``.
    physical:
        If True (default), never overdraw queues: routing is capped by
        central queue content and service by site queue content.  If
        False, follow the literal dynamics of eqs. (12)-(13), which may
        spend energy serving empty queues under strong fairness pull.
    pricing:
        Electricity pricing model (Section III-A2); ``None`` uses the
        paper's linear cost.  Piecewise-linear pricing keeps the greedy
        backend exact; any convex pricing works through the QP backend.
    """

    def __init__(
        self,
        cluster: Cluster,
        v: float = 1.0,
        beta: float = 0.0,
        fairness: FairnessFunction | None = None,
        solver: str = "auto",
        physical: bool = True,
        pricing=None,
    ) -> None:
        super().__init__(cluster)
        if solver != "auto" and solver not in _SOLVER_NAMES:
            raise ValueError(
                f"unknown solver {solver!r}; choose from "
                f"{['auto', *sorted(_SOLVER_NAMES)]}"
            )
        self.v = require_non_negative(v, "v")
        self.beta = require_non_negative(beta, "beta")
        self.fairness = fairness if fairness is not None else QuadraticFairness()
        self.solver = solver
        self.physical = bool(physical)
        self.pricing = pricing if pricing is not None else LinearPricing()
        # Every slot solve runs supervised: a backend failure degrades
        # down the fallback chain instead of escaping the slot (see
        # repro.resilient.supervisor; healthy solves are bit-identical
        # to the unsupervised call).
        self.supervisor = SupervisedSolver()
        self.name = f"GreFar(V={v:g}, beta={beta:g})"

    def reset(self) -> None:
        super().reset()
        self.supervisor.clear_incidents()

    # ------------------------------------------------------------------
    def decide(self, t: int, state: ClusterState, queues: QueueNetwork) -> Action:
        """Minimize the drift-plus-penalty expression (14) for slot *t*."""
        state = self.prepare_state(state)
        front = queues.front
        dc = queues.dc
        reg = metrics_registry()
        with reg.span("grefar.route"):
            route = self._route(front, dc, state.capacities(self.cluster))
        problem = self._problem(state, dc)
        h = self._solve(problem, t)
        return Action(route, h, problem.busy_for(h))

    # ------------------------------------------------------------------
    # Routing: linear in r with coefficient (q_ij - Q_j) plus, when
    # sites charge for ingress bandwidth (the [2] extension), the
    # transfer cost V * c_i * d_j.  Degraded mode: sites observed at
    # zero capacity (an outage) are skipped — after an eviction their
    # emptied queues would otherwise look maximally attractive to the
    # backpressure rule, re-routing work straight back into the crater.
    # ------------------------------------------------------------------
    def _route(
        self, front: np.ndarray, dc: np.ndarray, capacities: np.ndarray
    ) -> np.ndarray:
        cluster = self.cluster
        n, j_count = dc.shape
        route = np.zeros((n, j_count))
        max_route = cluster.max_route_matrix()
        ingress = cluster.ingress_costs
        demands = cluster.demands
        for j in range(j_count):
            eligible = sorted(
                i
                for i in cluster.job_types[j].eligible_dcs
                if capacities[i] > 0.0
            )

            def coefficient(i: int, jj: int = j) -> float:
                return float(
                    dc[i, jj] - front[jj] + self.v * ingress[i] * demands[jj]
                )

            # Sites where routing strictly decreases the objective.
            negatives = [i for i in eligible if coefficient(i) < 0]
            if not negatives:
                continue
            if not self.physical:
                for i in negatives:
                    route[i, j] = max_route[i, j]
                continue
            budget = float(np.floor(front[j] + 1e-9))
            # Most-negative coefficient first.
            for i in sorted(negatives, key=coefficient):
                if budget <= 0:
                    break
                take = float(np.floor(min(max_route[i, j], budget) + 1e-9))
                if take <= 0:
                    continue
                route[i, j] = take
                budget -= take
        return route

    # ------------------------------------------------------------------
    # Service: the convex slot subproblem.
    # ------------------------------------------------------------------
    def _problem(self, state: ClusterState, dc: np.ndarray) -> SlotServiceProblem:
        h_upper = service_upper_bounds(self.cluster, state, dc, self.physical)
        return SlotServiceProblem(
            cluster=self.cluster,
            state=state,
            queue_weights=dc,
            h_upper=h_upper,
            v=self.v,
            beta=self.beta,
            fairness=self.fairness,
            pricing=self.pricing,
        )

    def select_backend(self) -> str:
        """The solver backend name this scheduler will use for a slot."""
        if self.solver != "auto":
            return self.solver
        if self.beta > 0:
            return "qp"
        if self.cluster.has_memory_constraints:
            # The greedy matching is blind to the memory coupling
            # (footnote 3); the LP handles it exactly.
            return "lp"
        return "greedy"

    def _solve(self, problem: SlotServiceProblem, t: int) -> np.ndarray:
        name = self.select_backend()
        reg = metrics_registry()
        if not reg.enabled:
            return self.supervisor.solve(problem, primary=name, slot=t).h
        # Instrumented path: time the solve, count the backend taken and
        # leave a per-decision record (solver, objective, iterations) for
        # the simulator to fold into this slot's trace event.  None of
        # this touches the decision itself.
        start = reg.clock()
        outcome = self.supervisor.solve(problem, primary=name, slot=t)
        h = outcome.h
        elapsed = reg.clock() - start
        iterations = int(reg.consume_solve().get("iterations", 0))
        reg.counter_add(f"grefar.solver.{outcome.backend}")
        reg.timer_add("grefar.solve", elapsed)
        reg.note_solve(
            solver=outcome.backend,
            iterations=iterations,
            objective=float(problem.objective(h)),
            solve_seconds=elapsed,
        )
        return h
