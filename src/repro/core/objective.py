"""The energy-fairness cost ``g(t)`` of eq. (6) and its pieces.

``g(t) = e(t) - beta * f(t)`` combines the electricity cost (eq. 2)
with the fairness score (eq. 3) through the energy-fairness parameter
``beta``: ``beta = 0`` ignores fairness entirely, ``beta -> inf``
ignores energy.  These evaluators are shared by the simulator metrics,
the offline lookahead policy and the Theorem 1 verification harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._validation import require_non_negative
from repro.fairness.base import FairnessFunction
from repro.fairness.quadratic import QuadraticFairness
from repro.model.action import Action
from repro.model.cluster import Cluster
from repro.model.state import ClusterState

__all__ = ["CostModel", "SlotCost"]


@dataclass(frozen=True)
class SlotCost:
    """The cost components of one slot."""

    energy: float
    fairness: float
    combined: float
    bandwidth: float = 0.0


@dataclass(frozen=True)
class CostModel:
    """Evaluator for the instantaneous energy-fairness cost.

    Parameters
    ----------
    beta:
        Energy-fairness parameter ``beta >= 0`` of eq. (6).
    fairness:
        The fairness function ``f``; defaults to the paper's quadratic
        deviation score.
    pricing:
        Electricity pricing model; ``None`` means the paper's linear
        cost.
    include_idle_power:
        The paper normalizes idle power to zero because scheduling only
        controls the busy/idle *difference*; set this to True to report
        absolute bills instead: every available server additionally
        draws its :attr:`~repro.model.server.ServerClass.idle_power`.
        This shifts every scheduler's cost by the same state-dependent
        amount, so comparisons are unchanged — it exists for absolute
        cost reporting.
    """

    beta: float = 0.0
    fairness: FairnessFunction = field(default_factory=QuadraticFairness)
    pricing: object = field(default=None)
    include_idle_power: bool = False

    def __post_init__(self) -> None:
        require_non_negative(self.beta, "beta")

    def idle_energy_cost(self, cluster: Cluster, state: ClusterState) -> float:
        """Cost of the idle draw of every available server this slot."""
        idle_powers = np.array([c.idle_power for c in cluster.server_classes])
        draws = state.availability @ idle_powers
        if self.pricing is None:
            return float(np.dot(state.prices, draws))
        return float(
            sum(
                self.pricing.total_cost(float(d), float(p))
                for d, p in zip(draws, state.prices)
            )
        )

    def evaluate(self, cluster: Cluster, state: ClusterState, action: Action) -> SlotCost:
        """Compute ``e(t)``, ``f(t)`` and ``g(t)`` for one slot."""
        energy = action.energy_cost(cluster, state, self.pricing)
        if self.include_idle_power:
            energy += self.idle_energy_cost(cluster, state)
        # Bandwidth (ingress) cost of the routed work, when sites charge
        # for it — the [2] extension; zero in the base model.
        routed_work = action.route @ cluster.demands
        bandwidth = float(np.dot(cluster.ingress_costs, routed_work))
        total = state.total_resource(cluster)
        if total > 0:
            score = self.fairness.score(
                action.account_work(cluster), total, cluster.fair_shares
            )
        else:
            score = 0.0
        return SlotCost(
            energy=energy,
            fairness=score,
            combined=energy + bandwidth - self.beta * score,
            bandwidth=bandwidth,
        )
