"""Admission control (Section V's overload remedy).

The slackness conditions require the plant to cover the offered load;
the paper notes that "in the worst case where the data center is
overloaded, admission control techniques can be applied to complement
our scheme."  This module provides scheduler-side admission policies
the simulator applies to each slot's arrivals *before* they join the
central queues.  Rejected jobs are counted, never silently lost.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro._validation import require_positive
from repro.model.cluster import Cluster
from repro.model.queues import QueueNetwork

__all__ = [
    "AdmissionPolicy",
    "AdmitAll",
    "BacklogCapAdmission",
    "AccountQuotaAdmission",
]


class AdmissionPolicy(ABC):
    """Decides how many of each slot's arriving jobs are admitted."""

    @abstractmethod
    def admit(
        self,
        t: int,
        arrivals: np.ndarray,
        queues: QueueNetwork,
        cluster: Cluster,
    ) -> np.ndarray:
        """Return the admitted arrival vector (element-wise ``<= arrivals``)."""

    def reset(self) -> None:
        """Clear any internal state before a fresh run."""


@dataclass(frozen=True)
class AdmitAll(AdmissionPolicy):
    """The no-op policy: every arriving job is admitted."""

    def admit(self, t, arrivals, queues, cluster) -> np.ndarray:
        return np.asarray(arrivals, dtype=np.float64).copy()


class BacklogCapAdmission(AdmissionPolicy):
    """Reject work once the total queued work exceeds a cap.

    New arrivals are admitted only up to the room left under
    ``max_backlog_work``; excess jobs are rejected largest-demand-first
    (rejecting one big job preserves more small ones).

    Parameters
    ----------
    max_backlog_work:
        Systemwide backlog budget in work units.
    """

    def __init__(self, max_backlog_work: float) -> None:
        require_positive(max_backlog_work, "max_backlog_work")
        self.max_backlog_work = float(max_backlog_work)

    def admit(self, t, arrivals, queues, cluster) -> np.ndarray:
        admitted = np.asarray(arrivals, dtype=np.float64).copy()
        demands = cluster.demands
        room = self.max_backlog_work - queues.backlog_work()
        offered = float(admitted @ demands)
        if offered <= room:
            return admitted
        # Reject biggest jobs first until the admitted work fits.
        order = np.argsort(-demands)
        excess = offered - max(room, 0.0)
        for j in order:
            while excess > 1e-12 and admitted[j] >= 1:
                admitted[j] -= 1
                excess -= demands[j]
            if excess <= 1e-12:
                break
        return np.clip(admitted, 0.0, None)


class AccountQuotaAdmission(AdmissionPolicy):
    """Token-bucket work quotas per account.

    Each account accrues ``rate_m`` units of admission credit per slot
    (up to ``burst`` slots' worth); arriving work beyond the available
    credit is rejected.  With rates proportional to the fairness shares
    this enforces the 40/30/15/15 targets at the door rather than in
    the scheduler.

    Parameters
    ----------
    cluster:
        Supplies the account structure.
    rates:
        Length-``M`` admitted-work-per-slot rates.
    burst:
        Bucket depth in slots (default 24: a day's credit can bank up).
    """

    def __init__(self, cluster: Cluster, rates, burst: float = 24.0) -> None:
        rates = np.asarray(rates, dtype=np.float64)
        if rates.shape != (cluster.num_accounts,):
            raise ValueError(
                f"rates must have length {cluster.num_accounts}, got {rates.shape}"
            )
        if np.any(rates < 0):
            raise ValueError("rates must be non-negative")
        require_positive(burst, "burst")
        self._rates = rates
        self._burst = float(burst)
        self._credit = rates * burst
        self._initial = self._credit.copy()

    def reset(self) -> None:
        self._credit = self._initial.copy()

    def admit(self, t, arrivals, queues, cluster) -> np.ndarray:
        admitted = np.asarray(arrivals, dtype=np.float64).copy()
        demands = cluster.demands
        self._credit = np.minimum(
            self._credit + self._rates, self._rates * self._burst
        )
        for m in range(cluster.num_accounts):
            types = [j for j, jt in enumerate(cluster.job_types) if jt.account == m]
            offered = float(sum(admitted[j] * demands[j] for j in types))
            if offered <= self._credit[m]:
                self._credit[m] -= offered
                continue
            # Reject this account's largest jobs until within credit.
            excess = offered - self._credit[m]
            for j in sorted(types, key=lambda jj: -demands[jj]):
                while excess > 1e-12 and admitted[j] >= 1:
                    admitted[j] -= 1
                    excess -= demands[j]
                if excess <= 1e-12:
                    break
            used = float(sum(admitted[j] * demands[j] for j in types))
            self._credit[m] = max(self._credit[m] - used, 0.0)
        return np.clip(admitted, 0.0, None)
