"""Slackness conditions (20)-(22): prerequisites of Theorem 1.

The conditions require that *some* scheduling sequence could absorb
every arrival with ``delta`` slack: routing covers arrivals (20),
service covers routing (21), and the available computing resource
covers all scheduled work (22).  This module checks a concrete scenario
(an arrival trace plus an availability trace) and estimates the largest
feasible ``delta``.

The check constructs an explicit witness: each slot's arriving work is
spread over the eligible sites by a water-filling allocation that
minimizes the most-loaded site (exact for this transportation-feasibility
structure on the instances we generate; a conservative proportional
fallback is also provided).  If the witness leaves positive slack in
every slot, the conditions hold with that slack as ``delta``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.model.cluster import Cluster

__all__ = ["SlacknessReport", "check_slackness"]


@dataclass(frozen=True)
class SlacknessReport:
    """Outcome of a slackness check over a scenario.

    Attributes
    ----------
    feasible:
        True if the witness allocation has positive slack everywhere.
    max_delta:
        Largest slack (work units) the witness achieves across all
        slots — a lower bound on the true maximal ``delta``.
    worst_slot:
        The slot index attaining the minimum slack.
    worst_utilization:
        Peak ratio of allocated work to site capacity over the horizon.
    """

    feasible: bool
    max_delta: float
    worst_slot: int
    worst_utilization: float


def _waterfill_loads(
    work: np.ndarray,
    eligibility: np.ndarray,
    capacities: np.ndarray,
    rounds: int = 64,
) -> np.ndarray:
    """Spread per-type work over eligible sites, least-utilized first.

    Iteratively routes each type's work to the eligible site with the
    lowest current utilization in small increments — a discretized
    water-filling that approaches the min-max-utilization allocation.
    Returns the per-site load vector.
    """
    n = capacities.shape[0]
    loads = np.zeros(n)
    safe_cap = np.where(capacities > 0, capacities, 1e-12)
    # Place the least flexible types first (fewest eligible sites), so
    # flexible work fills around the pinned work; ties by larger work.
    flexibility = eligibility.sum(axis=0)
    order = sorted(range(len(work)), key=lambda j: (flexibility[j], -work[j]))
    for j in order:
        remaining = work[j]
        if remaining <= 0:
            continue
        sites = np.flatnonzero(eligibility[:, j] & (capacities > 0))
        if sites.size == 0:
            # Work with nowhere to go: dump on site 0 so the slack
            # computation reports infeasibility.
            loads[0] += remaining
            continue
        chunk = remaining / rounds
        for _ in range(rounds):
            util = loads[sites] / safe_cap[sites]
            best = sites[int(np.argmin(util))]
            loads[best] += chunk
        # Numerical remainder from the fixed number of rounds.
    return loads


def check_slackness(
    cluster: Cluster,
    arrivals: np.ndarray,
    availability: np.ndarray,
) -> SlacknessReport:
    """Check conditions (20)-(22) for an arrival + availability trace.

    Parameters
    ----------
    cluster:
        The static system.
    arrivals:
        ``(T, J)`` arrival counts ``a_j(t)``.
    availability:
        ``(T, N, K)`` availability tensor ``n_ik(t)``.

    Notes
    -----
    Conditions (20)-(21) additionally need the routing/service bounds to
    exceed the arrival bounds by ``delta``; with the default generous
    bounds of :class:`~repro.model.job.JobType` this is never the
    binding constraint, so the report focuses on the resource condition
    (22), which is the one the paper calls out ("computing resource is
    provisioned for the peak load").
    """
    arrivals = np.asarray(arrivals, dtype=np.float64)
    availability = np.asarray(availability, dtype=np.float64)
    horizon = arrivals.shape[0]
    if arrivals.shape != (horizon, cluster.num_job_types):
        raise ValueError(
            f"arrivals must have shape (T, {cluster.num_job_types}), got {arrivals.shape}"
        )
    if availability.shape != (
        horizon,
        cluster.num_datacenters,
        cluster.num_server_classes,
    ):
        raise ValueError(
            "availability must have shape "
            f"(T, {cluster.num_datacenters}, {cluster.num_server_classes}), "
            f"got {availability.shape}"
        )

    elig = cluster.eligibility_matrix()
    demands = cluster.demands
    speeds = cluster.speeds

    min_slack = np.inf
    worst_slot = 0
    worst_util = 0.0
    for t in range(horizon):
        capacities = availability[t] @ speeds
        work = arrivals[t] * demands
        loads = _waterfill_loads(work, elig, capacities)
        slack = float(np.min(capacities - loads))
        with np.errstate(divide="ignore", invalid="ignore"):
            util = np.where(capacities > 0, loads / capacities, np.inf)
        peak_util = float(np.max(util)) if util.size else 0.0
        worst_util = max(worst_util, peak_util)
        if slack < min_slack:
            min_slack = slack
            worst_slot = t

    feasible = bool(min_slack > 0)
    return SlacknessReport(
        feasible=feasible,
        max_delta=float(max(min_slack, 0.0)),
        worst_slot=worst_slot,
        worst_utilization=worst_util,
    )
