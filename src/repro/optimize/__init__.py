"""Per-slot optimization backends for the GreFar objective (14).

* :func:`solve_greedy` — exact closed-form solution for ``beta = 0``;
* :func:`solve_lp` — scipy LP reference for ``beta = 0``;
* :func:`solve_qp` — convex (SLSQP) solver for any ``beta >= 0``;
* :func:`solve_projected_gradient` — dependency-light alternative.

All backends consume a :class:`SlotServiceProblem` and return the
service matrix ``h``; optimal busy counts follow from the site
:class:`SupplyCurve` (cheapest-servers-first is always optimal).

A backend that cannot produce a solution raises :class:`SolverFailure`
carrying the slot context, so the supervision layer
(:mod:`repro.resilient`) can catch it and degrade down the fallback
chain instead of losing the run.
"""


class SolverFailure(RuntimeError):
    """A slot backend could not return a usable service matrix.

    Parameters
    ----------
    backend:
        The backend name (``"lp"``, ``"qp"``, ...).
    message:
        What went wrong (solver status message, "non-finite solution",
        ...).
    problem:
        The :class:`SlotServiceProblem` instance, when available; its
        ``v``/``beta`` and shapes are summarized into :attr:`context`.
    context:
        Extra key/value context merged into :attr:`context`.
    """

    def __init__(self, backend: str, message: str, problem=None, **context):
        self.backend = backend
        self.context = dict(context)
        if problem is not None:
            self.context.setdefault("v", float(problem.v))
            self.context.setdefault("beta", float(problem.beta))
            self.context.setdefault("shape", tuple(problem.h_upper.shape))
        super().__init__(f"{backend} backend failed: {message}")


# SolverFailure must be defined before the backend imports below — the
# backend modules import it from this (then partially initialized)
# package.
from repro.optimize.capacity import SupplyCurve, build_supply_curves  # noqa: E402
from repro.optimize.greedy import solve_greedy  # noqa: E402
from repro.optimize.lp import solve_lp  # noqa: E402
from repro.optimize.projected_gradient import solve_projected_gradient  # noqa: E402
from repro.optimize.qp import solve_qp  # noqa: E402
from repro.optimize.slot_problem import SlotServiceProblem  # noqa: E402

__all__ = [
    "SlotServiceProblem",
    "SolverFailure",
    "SupplyCurve",
    "build_supply_curves",
    "solve_greedy",
    "solve_lp",
    "solve_projected_gradient",
    "solve_qp",
]
