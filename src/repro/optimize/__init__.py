"""Per-slot optimization backends for the GreFar objective (14).

* :func:`solve_greedy` — exact closed-form solution for ``beta = 0``;
* :func:`solve_lp` — scipy LP reference for ``beta = 0``;
* :func:`solve_qp` — convex (SLSQP) solver for any ``beta >= 0``;
* :func:`solve_projected_gradient` — dependency-light alternative.

All backends consume a :class:`SlotServiceProblem` and return the
service matrix ``h``; optimal busy counts follow from the site
:class:`SupplyCurve` (cheapest-servers-first is always optimal).
"""

from repro.optimize.capacity import SupplyCurve, build_supply_curves
from repro.optimize.greedy import solve_greedy
from repro.optimize.lp import solve_lp
from repro.optimize.projected_gradient import solve_projected_gradient
from repro.optimize.qp import solve_qp
from repro.optimize.slot_problem import SlotServiceProblem

__all__ = [
    "SlotServiceProblem",
    "SupplyCurve",
    "build_supply_curves",
    "solve_greedy",
    "solve_lp",
    "solve_projected_gradient",
    "solve_qp",
]
