"""Closed-form greedy solver for the beta = 0 slot problem.

Without fairness the service subproblem decomposes per data center into
a fractional matching of *demand segments* (job types, valued at
``q_ij / d_j`` per unit work) against *supply segments* (server
classes, costing ``V phi_i p_k / s_k`` per unit work).  Pairing the
most valuable remaining demand with the cheapest remaining supply while
value strictly exceeds cost solves the LP exactly — this is the
threshold rule the paper describes below Algorithm 1 ("jobs are
processed only when ... electricity prices are sufficiently low",
with ``W = p_k / s_k``).

The supply side comes from
:meth:`SlotServiceProblem.marginal_cost_segments`, which merges the
server-efficiency curve with the electricity pricing tiers — so the
greedy stays exact under any piecewise-linear convex pricing
(Section III-A2), not just the flat per-slot price.

The solver runs in ``O(N (J log J + K log K))`` per slot and is the
default backend for GreFar with ``beta = 0``.
"""

from __future__ import annotations

import numpy as np

from repro.obs.instruments import timed
from repro.optimize.slot_problem import SlotServiceProblem

__all__ = ["solve_greedy"]

_EPS = 1e-12


@timed("solve.greedy")
def solve_greedy(problem: SlotServiceProblem) -> np.ndarray:
    """Exactly minimize the beta = 0 slot objective; return ``h``.

    Raises ``ValueError`` if the problem carries a material fairness
    pull (``has_fairness``) — the greedy exchange argument needs a
    linear objective; use the QP backend for fairness-aware slots.
    """
    if problem.has_fairness:
        raise ValueError(
            "solve_greedy is exact only for beta = 0; use solve_qp for beta > 0"
        )
    cluster = problem.cluster
    n, j_count = problem.h_upper.shape
    demands = cluster.demands
    h = np.zeros((n, j_count))

    for i in range(n):
        # Demand side: value per unit work, most valuable first.
        values = problem.queue_weights[i] / demands
        work_wanted = problem.h_upper[i] * demands
        demand_order = np.argsort(-values, kind="stable")
        # Supply side: merged (servers x pricing tiers) marginal-cost
        # curve, cheapest work first.
        segments = problem.marginal_cost_segments(i)
        seg_idx = 0
        seg_remaining = segments[0][0] if segments else 0.0

        for j in demand_order:
            want = work_wanted[j]
            if want <= _EPS or values[j] <= _EPS:
                continue
            while want > _EPS and seg_idx < len(segments):
                unit_cost = problem.v * segments[seg_idx][1]
                if values[j] <= unit_cost + _EPS:
                    # Cheapest remaining supply is already too expensive
                    # for this (and all less valuable) demand.
                    break
                take = min(want, seg_remaining)
                h[i, j] += take / demands[j]
                want -= take
                seg_remaining -= take
                if seg_remaining <= _EPS:
                    seg_idx += 1
                    seg_remaining = (
                        segments[seg_idx][0] if seg_idx < len(segments) else 0.0
                    )
            if seg_idx >= len(segments):
                break
        np.minimum(h[i], problem.h_upper[i], out=h[i])
    return h
