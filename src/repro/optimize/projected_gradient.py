"""Dependency-light projected (sub)gradient backend for the slot problem.

Operates on the service matrix ``h`` alone, pricing capacity through
the piecewise-linear minimum-power curves, and projects each iterate
onto the feasible set (box bounds plus per-site capacity via radial
rescaling, which is exact for the box and conservative for the capacity
face).  Uses backtracking line search on the true objective, so every
accepted step strictly improves.

This backend exists for two reasons: it has no scipy dependency in its
inner loop (useful where SLSQP is unavailable or too heavy), and it is
an *independently derived* optimizer that the property tests compare
against the QP backend to catch formulation bugs.
"""

from __future__ import annotations

import numpy as np

from repro.obs.instruments import timed
from repro.obs.registry import metrics_registry
from repro.optimize.slot_problem import SlotServiceProblem

__all__ = ["solve_projected_gradient"]


def _subgradient(problem: SlotServiceProblem, h: np.ndarray) -> np.ndarray:
    """Subgradient of the slot objective with respect to ``h``."""
    cluster = problem.cluster
    demands = cluster.demands
    loads = problem.loads(h)
    grad = -problem.queue_weights.copy()
    for i, curve in enumerate(problem.supply_curves):
        marginal_power = curve.subgradient(loads[i])
        marginal_price = problem.pricing.marginal_price(
            curve.min_power(loads[i]), problem.state.prices[i]
        )
        grad[i] += problem.v * marginal_price * marginal_power * demands
    if problem.beta > 0:
        fair_grad = problem.fairness.gradient(
            problem.account_work(h), problem.total_resource, cluster.fair_shares
        )
        per_type = fair_grad[cluster.account_of_type] * demands
        grad -= problem.v * problem.beta * per_type[np.newaxis, :]
    return grad


@timed("solve.projected_gradient")
def solve_projected_gradient(
    problem: SlotServiceProblem,
    max_iterations: int = 300,
    initial_step: float = 1.0,
    tolerance: float = 1e-8,
) -> np.ndarray:
    """Minimize the slot objective by projected subgradient descent.

    Returns a feasible ``h``.  Exactness is not guaranteed at
    non-smooth kinks, but tests hold it within a small gap of the QP
    backend on randomized instances.
    """
    h = problem.clip_feasible(np.zeros_like(problem.h_upper))
    best = h.copy()
    best_value = problem.objective(best)
    step = initial_step

    iterations = 0
    for iterations in range(1, max_iterations + 1):
        grad = _subgradient(problem, h)
        grad_norm = float(np.linalg.norm(grad))
        if grad_norm <= tolerance:
            break
        improved = False
        trial_step = step
        for _ in range(30):
            candidate = problem.clip_feasible(h - trial_step * grad / grad_norm)
            value = problem.objective(candidate)
            if value < best_value - tolerance:
                h = candidate
                best = candidate
                best_value = value
                step = trial_step * 1.5
                improved = True
                break
            trial_step *= 0.5
        if not improved:
            break
    metrics_registry().note_solve(iterations=iterations)
    return best
