"""Convex solver for the fairness-aware (beta > 0) slot problem.

With the paper's quadratic fairness (eq. 3) the slot problem is a
convex QP in ``(h, b)``: the energy term is linear in ``b``, the queue
reward linear in ``h``, and ``-beta f`` a convex quadratic in the
per-account work (itself linear in ``h``).  This backend solves it with
scipy's SLSQP using analytic gradients; for other concave fairness
functions the problem remains convex and the same machinery applies
through :meth:`FairnessFunction.gradient`.

The solver warm-starts from the beta = 0 greedy solution, which is the
exact optimum whenever the fairness pull is inactive.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import minimize

from repro.obs.instruments import timed
from repro.obs.registry import metrics_registry
from repro.optimize import SolverFailure
from repro.optimize.greedy import solve_greedy
from repro.optimize.slot_problem import SlotServiceProblem

__all__ = ["solve_qp"]


@timed("solve.qp")
def solve_qp(
    problem: SlotServiceProblem,
    max_iterations: int = 200,
    tolerance: float = 1e-9,
) -> np.ndarray:
    """Solve the slot problem for any ``beta >= 0``; return ``h``.

    Falls back to the exact greedy solution when ``beta == 0``.
    """
    if not problem.has_fairness:
        return solve_greedy(problem)

    cluster = problem.cluster
    state = problem.state
    n = cluster.num_datacenters
    j_count = cluster.num_job_types
    k_count = cluster.num_server_classes
    demands = cluster.demands
    speeds = cluster.speeds
    powers = cluster.active_powers
    shares = cluster.fair_shares
    account_of_type = cluster.account_of_type
    total_resource = problem.total_resource
    num_h = n * j_count

    # Warm start: exact beta = 0 optimum plus its optimal busy counts.
    relaxed = SlotServiceProblem(
        cluster=cluster,
        state=state,
        queue_weights=problem.queue_weights,
        h_upper=problem.h_upper,
        v=problem.v,
        beta=0.0,
        pricing=problem.pricing,
    )
    h0 = problem.clip_feasible(solve_greedy(relaxed))
    b0 = problem.busy_for(h0)
    x0 = np.concatenate([h0.ravel(), b0.ravel()])

    q_flat = problem.queue_weights.ravel()
    pricing = problem.pricing

    def split(x: np.ndarray) -> tuple:
        return x[:num_h].reshape(n, j_count), x[num_h:].reshape(n, k_count)

    def account_work(h: np.ndarray) -> np.ndarray:
        per_type = h.sum(axis=0) * demands
        acc = np.zeros(cluster.num_accounts)
        np.add.at(acc, account_of_type, per_type)
        return acc

    def energy_cost(b: np.ndarray) -> float:
        draws = b @ powers
        return float(
            sum(
                pricing.total_cost(draws[i], state.prices[i])
                for i in range(n)
            )
        )

    def energy_grad(b: np.ndarray) -> np.ndarray:
        draws = b @ powers
        marginals = np.array(
            [pricing.marginal_price(draws[i], state.prices[i]) for i in range(n)]
        )
        return marginals[:, np.newaxis] * powers[np.newaxis, :]

    def objective(x: np.ndarray) -> float:
        h, b = split(x)
        value = problem.v * energy_cost(b)
        value -= float(np.dot(q_flat, x[:num_h]))
        score = problem.fairness.score(account_work(h), total_resource, shares)
        value -= problem.v * problem.beta * score
        return value

    def gradient(x: np.ndarray) -> np.ndarray:
        h, b = split(x)
        grad = np.empty_like(x)
        grad[num_h:] = problem.v * energy_grad(b).ravel()
        grad_h = -problem.queue_weights.copy()
        fair_grad = problem.fairness.gradient(account_work(h), total_resource, shares)
        # d(account_work_m)/d(h_ij) = d_j when rho_j = m.
        per_type = fair_grad[account_of_type] * demands
        grad_h -= problem.v * problem.beta * per_type[np.newaxis, :]
        grad[:num_h] = grad_h.ravel()
        return grad

    # Per-site capacity coupling: sum_k s_k b_ik - sum_j d_j h_ij >= 0,
    # plus the memory constraint memcap_i - sum_j mem_j h_ij >= 0 where
    # finite (footnote 3).
    row_list = []
    offset_list = []
    for i in range(n):
        row = np.zeros(x0.size)
        row[i * j_count : (i + 1) * j_count] = -demands
        row[num_h + i * k_count : num_h + (i + 1) * k_count] = speeds
        row_list.append(row)
        offset_list.append(0.0)
    mem_demands = cluster.memory_demands
    mem_caps = cluster.memory_capacities
    if np.any(mem_demands > 0):
        for i in range(n):
            if not np.isfinite(mem_caps[i]):
                continue
            row = np.zeros(x0.size)
            row[i * j_count : (i + 1) * j_count] = -mem_demands
            row_list.append(row)
            offset_list.append(float(mem_caps[i]))
    constraint_rows = np.array(row_list)
    constraint_offsets = np.array(offset_list)
    constraints = [
        {
            "type": "ineq",
            "fun": lambda x, rows=constraint_rows, off=constraint_offsets: rows @ x + off,
            "jac": lambda x, rows=constraint_rows: rows,
        }
    ]

    bounds = [(0.0, float(ub)) for ub in problem.h_upper.ravel()]
    bounds += [(0.0, float(avail)) for avail in state.availability.ravel()]

    try:
        result = minimize(
            objective,
            x0,
            jac=gradient,
            bounds=bounds,
            constraints=constraints,
            method="SLSQP",
            options={"maxiter": max_iterations, "ftol": tolerance},
        )
    except (ValueError, FloatingPointError, ZeroDivisionError) as exc:
        raise SolverFailure("qp", f"SLSQP raised: {exc}", problem) from exc
    metrics_registry().note_solve(iterations=int(getattr(result, "nit", 0)))
    if not np.all(np.isfinite(result.x)):
        raise SolverFailure(
            "qp", f"non-finite SLSQP solution ({result.message})", problem
        )
    h_opt, _ = split(result.x)
    h_opt = problem.clip_feasible(h_opt)
    # SLSQP can stall on degenerate slots; never return something worse
    # than the warm start.
    if problem.objective(h_opt) > problem.objective(h0) + 1e-9:
        return h0
    return h_opt
