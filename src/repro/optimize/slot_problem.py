"""The per-slot service subproblem shared by all solver backends.

GreFar's slot objective (14) separates into a *routing* part (linear in
``r_ij``, solved in closed form by the scheduler) and a *service* part
in ``(h, b)``:

.. math::

   \\min_{h, b}\\; V\\, e(t) - V\\beta\\, f(t) - \\sum_{ij} q_{ij}(t)\\, h_{ij}(t)

subject to eq. (11) and the box bounds.  :class:`SlotServiceProblem`
captures one instance of this problem — the queue weights, price and
availability snapshot, upper bounds and fairness model — and offers the
objective/feasibility evaluations every backend and every cross-check
test needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro._validation import require_non_negative
from repro.fairness.base import FairnessFunction
from repro.fairness.quadratic import QuadraticFairness
from repro.model.action import Action
from repro.model.cluster import Cluster
from repro.model.pricing import LinearPricing, PricingModel
from repro.model.state import ClusterState
from repro.optimize.capacity import SupplyCurve, build_supply_curves

__all__ = ["BETA_ZERO_TOL", "SlotServiceProblem"]

_EPS = 1e-9

#: Fairness pulls at or below this are indistinguishable from beta = 0 in
#: the float objective; solvers treat them as zero (see ``has_fairness``).
BETA_ZERO_TOL = 1e-12


@dataclass
class SlotServiceProblem:
    """One slot's service optimization instance.

    Parameters
    ----------
    cluster, state:
        System description and the slot snapshot ``x(t)``.
    queue_weights:
        ``(N, J)`` matrix of data center queue lengths ``q_ij(t)`` —
        the linear reward for serving.
    h_upper:
        ``(N, J)`` upper bounds on ``h_ij`` (the eq. (5) bound,
        intersected with queue contents when running physically).
    v:
        Cost-delay parameter ``V >= 0``.
    beta:
        Energy-fairness parameter ``beta >= 0``.
    fairness:
        Fairness function ``f``; defaults to the paper's quadratic.
    pricing:
        Electricity pricing model (Section III-A2); defaults to the
        paper's linear ``cost = price * energy``.  Any convex pricing
        keeps the slot problem convex; piecewise-linear pricing (linear
        or tiered) keeps the greedy backend exact.
    """

    cluster: Cluster
    state: ClusterState
    queue_weights: np.ndarray
    h_upper: np.ndarray
    v: float
    beta: float = 0.0
    fairness: FairnessFunction = field(default_factory=QuadraticFairness)
    pricing: PricingModel = field(default_factory=LinearPricing)

    def __post_init__(self) -> None:
        n, j = self.cluster.num_datacenters, self.cluster.num_job_types
        self.queue_weights = np.asarray(self.queue_weights, dtype=np.float64)
        self.h_upper = np.asarray(self.h_upper, dtype=np.float64)
        if self.queue_weights.shape != (n, j):
            raise ValueError(
                f"queue_weights must have shape {(n, j)}, got {self.queue_weights.shape}"
            )
        if self.h_upper.shape != (n, j):
            raise ValueError(
                f"h_upper must have shape {(n, j)}, got {self.h_upper.shape}"
            )
        require_non_negative(self.v, "v")
        require_non_negative(self.beta, "beta")
        elig = self.cluster.eligibility_matrix()
        self.h_upper = np.where(elig, np.clip(self.h_upper, 0.0, None), 0.0)
        self._curves: List[SupplyCurve] = build_supply_curves(self.cluster, self.state)
        self._total_resource = self.state.total_resource(self.cluster)

    # ------------------------------------------------------------------
    # Static views
    # ------------------------------------------------------------------
    @property
    def supply_curves(self) -> List[SupplyCurve]:
        """Per-site minimum-power supply curves for this slot."""
        return self._curves

    @property
    def has_fairness(self) -> bool:
        """True when the fairness pull materially affects the objective.

        Betas below :data:`BETA_ZERO_TOL` are treated as zero so the
        exact greedy backend remains usable — at that magnitude the
        fairness term is below float noise in the objective (14).
        """
        return self.beta > BETA_ZERO_TOL

    @property
    def total_resource(self) -> float:
        """``R(t)`` for the fairness normalization."""
        return self._total_resource

    def site_capacity(self, i: int) -> float:
        """Work capacity of site ``i`` this slot."""
        return self._curves[i].total_capacity

    def site_capacities(self) -> np.ndarray:
        """All site capacities (length ``N``)."""
        return np.array([c.total_capacity for c in self._curves])

    # ------------------------------------------------------------------
    # Objective pieces
    # ------------------------------------------------------------------
    def loads(self, h: np.ndarray) -> np.ndarray:
        """Work each site must process for service matrix *h*."""
        return h @ self.cluster.demands

    def memory_used(self, h: np.ndarray) -> np.ndarray:
        """Memory held per site by the jobs *h* processes (footnote 3)."""
        return h @ self.cluster.memory_demands

    def energy_cost(self, h: np.ndarray) -> float:
        """Minimum electricity cost ``e(t)`` to serve *h*.

        Uses the supply-curve minimum power per site and the configured
        pricing model; cheapest-servers-first remains optimal for any
        increasing pricing because cost is increasing in energy.
        """
        loads = self.loads(h)
        return float(
            sum(
                self.pricing.total_cost(
                    self._curves[i].min_power(loads[i]), self.state.prices[i]
                )
                for i in range(len(self._curves))
            )
        )

    def marginal_cost_segments(self, i: int) -> List[tuple]:
        """Merged marginal-cost curve of site *i*: ``[(work, cost/work)]``.

        Walks the supply segments (work capacity at power-per-work
        ``w``) and the pricing tiers (energy width at cost-per-energy
        ``u``) together: a stretch of work is charged ``w * u`` per unit
        until either the supply segment or the tier is exhausted.  Both
        component curves are non-decreasing, so the merged curve is a
        valid convex marginal-cost curve and greedy matching against it
        is exact.
        """
        segments = []
        tiers = list(self.pricing.tiers(self.state.prices[i]))
        tier_idx = 0
        tier_energy_left = tiers[0][0] if tiers else float("inf")
        for cap, unit_power in self._curves[i].marginal_segments():
            work_left = cap
            while work_left > _EPS and tier_idx < len(tiers):
                unit_cost = tiers[tier_idx][1]
                if unit_power <= _EPS:
                    work_in_tier = work_left
                else:
                    work_in_tier = min(work_left, tier_energy_left / unit_power)
                if work_in_tier > _EPS:
                    segments.append((work_in_tier, unit_power * unit_cost))
                work_left -= work_in_tier
                tier_energy_left -= work_in_tier * unit_power
                if tier_energy_left <= _EPS:
                    tier_idx += 1
                    tier_energy_left = (
                        tiers[tier_idx][0] if tier_idx < len(tiers) else 0.0
                    )
        return segments

    def account_work(self, h: np.ndarray) -> np.ndarray:
        """Per-account work ``r_m(t)`` implied by service matrix *h*."""
        per_type = h.sum(axis=0) * self.cluster.demands
        acc = np.zeros(self.cluster.num_accounts)
        np.add.at(acc, self.cluster.account_of_type, per_type)
        return acc

    def fairness_score(self, h: np.ndarray) -> float:
        """Fairness ``f(t)`` of the allocation implied by *h*."""
        return self.fairness.score(
            self.account_work(h), self._total_resource, self.cluster.fair_shares
        )

    def objective(self, h: np.ndarray) -> float:
        """The slot objective ``V e - V beta f - sum q h`` at *h*.

        Uses the optimal (supply-curve) busy counts for the implied
        loads, which is always optimal because ``b`` only appears in the
        energy term.
        """
        value = self.v * self.energy_cost(h)
        if self.beta > 0:
            value -= self.v * self.beta * self.fairness_score(h)
        value -= float(np.sum(self.queue_weights * h))
        return value

    def busy_for(self, h: np.ndarray) -> np.ndarray:
        """Optimal busy-server matrix ``b`` for service matrix *h*."""
        loads = self.loads(h)
        speeds = self.cluster.speeds
        k = self.cluster.num_server_classes
        return np.stack(
            [
                self._curves[i].busy_counts(loads[i], k, speeds)
                for i in range(len(self._curves))
            ]
        )

    def action_for(self, h: np.ndarray, route: np.ndarray | None = None) -> Action:
        """Package a service matrix (plus optional routing) as an action."""
        if route is None:
            route = np.zeros_like(h)
        return Action(route, h, self.busy_for(h))

    # ------------------------------------------------------------------
    # Feasibility
    # ------------------------------------------------------------------
    def is_feasible(self, h: np.ndarray, tol: float = 1e-6) -> bool:
        """Check box, eligibility, capacity and memory constraints for *h*."""
        if h.shape != self.h_upper.shape:
            return False
        if np.any(h < -tol) or np.any(h > self.h_upper + tol):
            return False
        loads = self.loads(h)
        caps = self.site_capacities()
        if not np.all(loads <= caps * (1.0 + tol) + tol):
            return False
        mem_caps = self.cluster.memory_capacities
        if np.any(np.isfinite(mem_caps)):
            used = self.memory_used(h)
            if not np.all(used <= mem_caps * (1.0 + tol) + tol):
                return False
        return True

    def clip_feasible(self, h: np.ndarray) -> np.ndarray:
        """Project *h* to the box; rescale per-site to fit capacity/memory."""
        out = np.clip(h, 0.0, self.h_upper)
        caps = self.site_capacities()
        mem_caps = self.cluster.memory_capacities
        loads = self.loads(out)
        memory = self.memory_used(out)
        for i in range(out.shape[0]):
            scale = 1.0
            if loads[i] > caps[i] + _EPS and loads[i] > 0:
                scale = min(scale, caps[i] / loads[i])
            if np.isfinite(mem_caps[i]) and memory[i] > mem_caps[i] + _EPS and memory[i] > 0:
                scale = min(scale, mem_caps[i] / memory[i])
            if scale < 1.0:
                out[i] *= scale
        return out
