"""Reference LP backend for the beta = 0 slot problem (scipy.linprog).

Solves the exact linear program

.. math::

   \\min_{h, b}\\; V \\sum_i \\phi_i \\sum_k p_k b_{ik} - \\sum_{ij} q_{ij} h_{ij}

subject to per-site capacity coupling (eq. 11) and box bounds.  Slower
than :func:`repro.optimize.greedy.solve_greedy` but makes no structural
assumptions; it exists as an independently-derived cross-check (the
property tests assert both backends agree) and as the building block of
the T-step lookahead scheduler.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linprog

from repro.obs.instruments import timed
from repro.optimize import SolverFailure
from repro.optimize.slot_problem import SlotServiceProblem

__all__ = ["solve_lp"]


@timed("solve.lp")
def solve_lp(problem: SlotServiceProblem) -> np.ndarray:
    """Solve the beta = 0 slot problem with scipy's HiGHS LP; return ``h``."""
    if problem.beta > 0:
        raise ValueError("solve_lp handles beta = 0 only; use solve_qp for beta > 0")
    cluster = problem.cluster
    state = problem.state
    n = cluster.num_datacenters
    j_count = cluster.num_job_types
    k_count = cluster.num_server_classes
    demands = cluster.demands
    speeds = cluster.speeds
    powers = cluster.active_powers

    num_h = n * j_count
    num_b = n * k_count

    # Variable layout: [h_00..h_0J, h_10.., ..., b_00..b_0K, ...]
    c = np.concatenate(
        [
            -problem.queue_weights.ravel(),
            problem.v * np.repeat(state.prices, k_count) * np.tile(powers, n),
        ]
    )

    # Capacity coupling: sum_j d_j h_ij - sum_k s_k b_ik <= 0 per site.
    rows = []
    limits = []
    for i in range(n):
        row = np.zeros(num_h + num_b)
        row[i * j_count : (i + 1) * j_count] = demands
        row[num_h + i * k_count : num_h + (i + 1) * k_count] = -speeds
        rows.append(row)
        limits.append(0.0)
    # Memory constraint (footnote 3): sum_j mem_j h_ij <= memcap_i.
    mem_demands = cluster.memory_demands
    mem_caps = cluster.memory_capacities
    if np.any(mem_demands > 0):
        for i in range(n):
            if not np.isfinite(mem_caps[i]):
                continue
            row = np.zeros(num_h + num_b)
            row[i * j_count : (i + 1) * j_count] = mem_demands
            rows.append(row)
            limits.append(float(mem_caps[i]))
    a_ub = np.array(rows)
    b_ub = np.array(limits)

    bounds = [(0.0, float(ub)) for ub in problem.h_upper.ravel()]
    bounds += [(0.0, float(avail)) for avail in state.availability.ravel()]

    result = linprog(c, A_ub=a_ub, b_ub=b_ub, bounds=bounds, method="highs")
    if not result.success:
        raise SolverFailure("lp", f"slot LP failed: {result.message}", problem)
    h = result.x[:num_h].reshape(n, j_count)
    if not np.all(np.isfinite(h)):
        raise SolverFailure("lp", "non-finite LP solution", problem)
    return h
