"""Per-site energy supply curves.

For a data center ``i`` with availability ``n_ik(t)`` the cheapest way
to provide ``c`` units of work capacity is to fill server classes in
increasing order of energy per unit work ``p_k / s_k`` — a classic
fractional-knapsack argument, exact because both power and capacity are
linear in the busy counts ``b_ik``.  The resulting minimum power
``P_i(c)`` is a piecewise-linear convex function; every per-slot solver
in :mod:`repro.optimize` is built on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.model.cluster import Cluster
from repro.model.state import ClusterState

__all__ = ["SupplyCurve", "build_supply_curves"]

_EPS = 1e-12


@dataclass(frozen=True)
class SupplyCurve:
    """Minimum-power capacity supply for one data center in one slot.

    Attributes
    ----------
    class_order:
        Server class indices sorted by increasing ``p_k / s_k``.
    capacities:
        Work capacity contributed by each class in that order
        (``n_ik * s_k``).
    unit_powers:
        Power per unit work for each class in that order (``p_k / s_k``).
    """

    class_order: np.ndarray
    capacities: np.ndarray
    unit_powers: np.ndarray

    @property
    def total_capacity(self) -> float:
        """Maximum work this site can process this slot."""
        return float(self.capacities.sum())

    def min_power(self, capacity: float) -> float:
        """Minimum power to provide *capacity* units of work.

        Raises ``ValueError`` if *capacity* exceeds the site total
        (beyond a small tolerance).
        """
        if capacity < -_EPS:
            raise ValueError(f"capacity must be non-negative, got {capacity}")
        remaining = min(max(capacity, 0.0), self.total_capacity)
        if capacity > self.total_capacity * (1.0 + 1e-9) + 1e-9:
            raise ValueError(
                f"requested capacity {capacity} exceeds site total "
                f"{self.total_capacity}"
            )
        power = 0.0
        for cap, unit in zip(self.capacities, self.unit_powers):
            take = min(cap, remaining)
            power += take * unit
            remaining -= take
            if remaining <= _EPS:
                break
        return power

    def busy_counts(self, capacity: float, num_classes: int, speeds: np.ndarray) -> np.ndarray:
        """Busy-server vector ``b_i.`` achieving :meth:`min_power`.

        Returns a length-``K`` vector in the *original* class ordering.
        """
        if capacity > self.total_capacity * (1.0 + 1e-9) + 1e-9:
            raise ValueError(
                f"requested capacity {capacity} exceeds site total "
                f"{self.total_capacity}"
            )
        remaining = min(max(capacity, 0.0), self.total_capacity)
        busy = np.zeros(num_classes)
        for k, cap in zip(self.class_order, self.capacities):
            take = min(cap, remaining)
            if take > _EPS:
                busy[k] = take / speeds[k]
            remaining -= take
            if remaining <= _EPS:
                break
        return busy

    def marginal_segments(self) -> List[Tuple[float, float]]:
        """List of ``(capacity, power-per-unit-work)`` segments in cost order."""
        return [
            (float(c), float(u))
            for c, u in zip(self.capacities, self.unit_powers)
            if c > _EPS
        ]

    def subgradient(self, capacity: float) -> float:
        """A subgradient of :meth:`min_power` at *capacity*.

        Returns the marginal power of the segment in use (the last
        segment's slope beyond total capacity, which never matters for
        feasible loads).
        """
        remaining = max(capacity, 0.0)
        last = 0.0
        for cap, unit in zip(self.capacities, self.unit_powers):
            last = unit
            if remaining <= cap + _EPS:
                return unit
            remaining -= cap
        return last


def build_supply_curves(cluster: Cluster, state: ClusterState) -> List[SupplyCurve]:
    """Build one :class:`SupplyCurve` per data center for this slot."""
    speeds = cluster.speeds
    powers = cluster.active_powers
    unit = powers / speeds
    order = np.argsort(unit, kind="stable")
    curves = []
    for i in range(cluster.num_datacenters):
        caps = state.availability[i, order] * speeds[order]
        curves.append(
            SupplyCurve(
                class_order=order.copy(),
                capacities=caps,
                unit_powers=unit[order].copy(),
            )
        )
    return curves
