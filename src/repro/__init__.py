"""repro — a full reproduction of *Provably-Efficient Job Scheduling for
Energy and Fairness in Geographically Distributed Data Centers*
(GreFar, ICDCS 2012).

The package provides:

* :class:`GreFarScheduler` — the paper's online drift-plus-penalty
  scheduler (Algorithm 1), with exact greedy, LP, QP and
  projected-gradient slot backends;
* the full system model of Section III (clusters, server classes, job
  types, exact queue dynamics with per-job delay ledgers);
* fairness functions (the paper's quadratic score plus alternates);
* baselines ("Always", the optimal T-step lookahead comparator of
  Theorem 1, and ablation baselines);
* workload substrates standing in for the proprietary inputs (Cosmos
  traces, FERC prices);
* a time-slotted simulator with the paper's running-average metrics;
* Theorem 1 constants/bounds and slackness checking;
* a fault-injection & resilience subsystem (:mod:`repro.faults`):
  outages, capacity crashes, stale price feeds and partitions with
  degraded-mode scheduling and recovery reporting;
* a declarative run engine (:mod:`repro.runner`): frozen
  :class:`RunSpec` descriptions executed serially or across a process
  pool (bit-identical), with a content-addressed on-disk result cache;
* a supervision layer (:mod:`repro.resilient`): supervised slot solves
  with fallback chains (no backend exception escapes a slot),
  NaN/Inf/negative input guards, and atomic checkpoint/resume that is
  bit-identical to an uninterrupted run;
* a serving layer (:mod:`repro.service`): a REST/JSON gateway
  (``repro serve``) accepting streaming job submissions with
  backpressure and per-account rate limits, slot-ticking GreFar live,
  answering placement/fairness/metrics queries, and restarting from
  ckpt-v1 checkpoints without losing acknowledged submissions.

Quickstart::

    from repro import RunSpec, ScenarioSpec, run_many

    specs = [
        RunSpec(
            scenario=ScenarioSpec(kind="paper", horizon=500, seed=1),
            scheduler="grefar",
            scheduler_kwargs={"v": 7.5, "beta": 100.0},
        )
    ]
    (result,) = run_many(specs, jobs=2)
    print(result.summary.as_dict())
"""

from repro.core.bounds import TheoremConstants
from repro.core.constraints import parallelism_service_bounds
from repro.core.grefar import GreFarScheduler
from repro.core.objective import CostModel, SlotCost
from repro.core.slackness import SlacknessReport, check_slackness
from repro.fairness import (
    AlphaFairness,
    FairnessFunction,
    JainFairness,
    MaxMinFairness,
    QuadraticFairness,
)
from repro.model import (
    Account,
    Action,
    Cluster,
    ClusterState,
    DataCenter,
    DelayStats,
    JobBatch,
    JobType,
    LinearPricing,
    PricingModel,
    QueueNetwork,
    ServerClass,
    TieredPricing,
)
from repro.scenarios import (
    PAPER_FAIR_SHARES,
    PAPER_PRICE_MEANS,
    paper_cluster,
    paper_scenario,
    small_cluster,
    small_scenario,
)
from repro.core.admission import (
    AccountQuotaAdmission,
    AdmissionPolicy,
    AdmitAll,
    BacklogCapAdmission,
)
from repro.faults import (
    FaultEvent,
    FaultImpact,
    FaultInjector,
    FaultSchedule,
    RandomFaultProcess,
    RequeuePolicy,
    ResilienceObserver,
    ResilienceReport,
)
from repro.resilient import (
    Checkpointer,
    FlakyBackend,
    SimulationKilled,
    SolverIncident,
    SupervisedSolver,
    run_chaos_drill,
    sanitize_state,
    solve_service,
)
from repro.runner import (
    CheckpointPolicy,
    ResultCache,
    RunResult,
    RunSpec,
    ScenarioSpec,
    default_cache,
    resume_from_checkpoint,
    run_many,
    run_spec,
    set_checkpoint_policy,
)
from repro.service import (
    SchedulerService,
    ServiceClient,
    ServiceConfig,
)
from repro.schedulers import (
    AlwaysScheduler,
    LookaheadPolicy,
    LookaheadSolution,
    PriceThresholdScheduler,
    RandomRoutingScheduler,
    RecedingHorizonScheduler,
    RoundRobinScheduler,
    Scheduler,
    TroughFillingScheduler,
)
from repro.simulation import (
    MetricsCollector,
    Scenario,
    SimulationResult,
    SimulationSummary,
    Simulator,
    run_comparison,
)
from repro.workloads import (
    AvailabilityModel,
    CosmosWorkload,
    PriceModel,
)

__version__ = "1.0.0"

__all__ = [
    "Account",
    "AccountQuotaAdmission",
    "Action",
    "AdmissionPolicy",
    "AdmitAll",
    "BacklogCapAdmission",
    "AlphaFairness",
    "AlwaysScheduler",
    "AvailabilityModel",
    "CheckpointPolicy",
    "Checkpointer",
    "Cluster",
    "ClusterState",
    "CosmosWorkload",
    "CostModel",
    "DataCenter",
    "DelayStats",
    "FairnessFunction",
    "FaultEvent",
    "FaultImpact",
    "FaultInjector",
    "FaultSchedule",
    "FlakyBackend",
    "GreFarScheduler",
    "JainFairness",
    "JobBatch",
    "JobType",
    "LinearPricing",
    "LookaheadPolicy",
    "LookaheadSolution",
    "MaxMinFairness",
    "MetricsCollector",
    "PAPER_FAIR_SHARES",
    "PAPER_PRICE_MEANS",
    "PriceModel",
    "PriceThresholdScheduler",
    "PricingModel",
    "QuadraticFairness",
    "QueueNetwork",
    "RandomFaultProcess",
    "RandomRoutingScheduler",
    "RecedingHorizonScheduler",
    "RequeuePolicy",
    "ResilienceObserver",
    "ResilienceReport",
    "ResultCache",
    "RoundRobinScheduler",
    "RunResult",
    "RunSpec",
    "Scenario",
    "ScenarioSpec",
    "Scheduler",
    "SchedulerService",
    "ServiceClient",
    "ServiceConfig",
    "ServerClass",
    "SimulationKilled",
    "SimulationResult",
    "SimulationSummary",
    "Simulator",
    "SlacknessReport",
    "SlotCost",
    "SolverIncident",
    "SupervisedSolver",
    "TheoremConstants",
    "TieredPricing",
    "TroughFillingScheduler",
    "check_slackness",
    "default_cache",
    "paper_cluster",
    "parallelism_service_bounds",
    "paper_scenario",
    "resume_from_checkpoint",
    "run_chaos_drill",
    "run_comparison",
    "run_many",
    "run_spec",
    "sanitize_state",
    "set_checkpoint_policy",
    "small_cluster",
    "small_scenario",
    "solve_service",
]
