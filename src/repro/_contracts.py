"""Runtime contract layer: executable invariants behind ``REPRO_CONTRACTS=1``.

The static gate (:mod:`repro.tools.staticcheck`) enforces what the AST
can see; this module checks what only a running simulation can.  Three
invariant families are covered:

* **Queue invariants** — after every :meth:`QueueNetwork.step` the
  scalar queues of eqs. (12)-(13) are non-negative and the FIFO delay
  ledgers never hold more jobs than the scalar queues (they are equal
  for physical schedulers; phantom jobs from non-physical actions may
  only inflate the scalars).
* **Capacity feasibility** — every applied action satisfies the paper
  constraints: routing/service bounds (4)-(5), eligibility, server
  availability and the work-fits-in-busy-capacity coupling (11).
* **Theorem 1 queue bound** — an observer asserting
  ``max queue <= V*C3/delta`` throughout a run (Theorem 1a).

Checks are toggled by the ``REPRO_CONTRACTS`` environment variable
(``1``/``true``/``on``/``yes``) and re-read on every call, so a test can
flip them with ``monkeypatch.setenv``.  When disabled the decorated hot
paths pay one dict lookup per slot, nothing more.  The test suite runs
with contracts on (see ``tests/conftest.py``).
"""

from __future__ import annotations

import functools
import os
from typing import Callable

import numpy as np

__all__ = [
    "ContractViolation",
    "contracts_enabled",
    "checked_step",
    "verify_queue_invariants",
    "verify_action_capacity",
    "queue_bound_observer",
]

_TOL = 1e-6


class ContractViolation(AssertionError):
    """A runtime invariant the paper's analysis relies on was broken."""


def contracts_enabled() -> bool:
    """True when ``REPRO_CONTRACTS`` requests runtime invariant checks."""
    return os.environ.get("REPRO_CONTRACTS", "").strip().lower() in {
        "1",
        "true",
        "on",
        "yes",
    }


# ----------------------------------------------------------------------
# Queue invariants (eqs. 12-13 + ledger consistency)
# ----------------------------------------------------------------------
def verify_queue_invariants(queues) -> None:
    """Raise :class:`ContractViolation` if the queue state is corrupt.

    Checks non-negativity of ``Q_j``/``q_ij`` and that the FIFO ledger
    totals never exceed the scalar queues (the ledgers only ever hold
    real jobs; the scalars may additionally hold phantom jobs created
    by non-physical actions, never fewer).
    """
    front = queues.front
    dc = queues.dc
    if front.size and float(front.min()) < -_TOL:
        raise ContractViolation(
            f"central queue went negative: min Q_j = {float(front.min()):.3g}"
        )
    if dc.size and float(dc.min()) < -_TOL:
        raise ContractViolation(
            f"data center queue went negative: min q_ij = {float(dc.min()):.3g}"
        )
    ledger_front = queues.front_ledger_totals()
    ledger_dc = queues.dc_ledger_totals()
    if np.any(ledger_front > front + _TOL * (1.0 + front)):
        j = int(np.argmax(ledger_front - front))
        raise ContractViolation(
            f"front ledger for type {j} holds {ledger_front[j]:.6f} jobs but "
            f"the scalar queue Q_{j} = {front[j]:.6f}; eqs. (12)-(13) state "
            "desynchronized"
        )
    if np.any(ledger_dc > dc + _TOL * (1.0 + dc)):
        flat = int(np.argmax(ledger_dc - dc))
        i, j = np.unravel_index(flat, dc.shape)
        raise ContractViolation(
            f"DC ledger ({i}, {j}) holds {ledger_dc[i, j]:.6f} jobs but the "
            f"scalar queue q_ij = {dc[i, j]:.6f}; eqs. (12)-(13) state "
            "desynchronized"
        )


def checked_step(step: Callable) -> Callable:
    """Decorator for :meth:`QueueNetwork.step` enforcing the invariants."""

    @functools.wraps(step)
    def wrapper(self, action, arrivals, t):
        outcome = step(self, action, arrivals, t)
        if contracts_enabled():
            verify_queue_invariants(self)
        return outcome

    return wrapper


# ----------------------------------------------------------------------
# Capacity feasibility of the slot action (eqs. 4, 5, 11)
# ----------------------------------------------------------------------
def verify_action_capacity(cluster, state, action) -> None:
    """Raise :class:`ContractViolation` if the action breaks a constraint.

    Delegates to :meth:`repro.model.action.Action.validate`, which
    checks eligibility, the (4)-(5) bounds, integrality of ``r_ij``,
    busy-count availability and the eq. (11) work/capacity coupling —
    re-raised with contract framing so failures are attributable.
    """
    try:
        action.validate(cluster, state)
    except ValueError as exc:
        raise ContractViolation(f"infeasible slot action: {exc}") from exc


# ----------------------------------------------------------------------
# Theorem 1a queue bound
# ----------------------------------------------------------------------
def queue_bound_observer(bound: float, force: bool = False) -> Callable:
    """Observer enforcing the Theorem 1a bound ``max queue <= V*C3/delta``.

    Attach the returned callable to :class:`~repro.simulation.simulator.
    Simulator`'s ``observers``.  It checks only while contracts are
    enabled unless *force* is True (callers that attach it explicitly
    usually want it unconditional).
    """
    if not np.isfinite(bound) or bound < 0:
        raise ValueError(f"bound must be a finite non-negative number, got {bound!r}")

    def observer(t, state, action, queues) -> None:
        if not (force or contracts_enabled()):
            return
        worst = queues.max_queue_length()
        if worst > bound + _TOL * (1.0 + bound):
            raise ContractViolation(
                f"Theorem 1a queue bound violated at slot {t}: max queue "
                f"{worst:.6f} > V*C3/delta = {bound:.6f}"
            )

    return observer
