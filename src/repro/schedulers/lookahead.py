"""The optimal T-step lookahead policy (Section V-A) — Theorem 1's comparator.

The horizon is divided into ``R`` frames of ``T`` slots.  Within each
frame the policy knows every arrival, availability and price in advance
and minimizes the frame-average cost (15) subject to the aggregate flow
constraints (16)-(17) and per-slot capacity (18).

**Variable elimination.**  Routing ``r_ij(t)`` appears only in the
constraints.  Choosing the witness ``r_ij(t) = h_ij(t)`` satisfies (17)
with equality and turns (16) into "aggregate service covers aggregate
arrivals": ``sum_t sum_{i in D_j} h_ij(t) >= sum_t a_j(t)``.  This is
lossless: any feasible ``(r, h)`` yields a feasible ``h`` for the
reduced problem with the same cost, and vice versa (taking ``h`` bounded
by ``min(h^max, r^max)`` so the witness respects eq. (4)).

**Integrality.**  The paper's ``r_ij(t)`` are integers; we solve the LP
relaxation, so the reported frame costs ``G*_r`` are lower bounds on
the true lookahead optimum.  Verifying the Theorem 1 cost bound against
a *lower* bound of the comparator is the conservative direction.

For ``beta = 0`` each frame is a linear program (HiGHS); for
``beta > 0`` a convex program solved with SLSQP and analytic gradients.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy.optimize import linprog, minimize

from repro._validation import require_integer, require_non_negative
from repro.fairness.base import FairnessFunction
from repro.fairness.quadratic import QuadraticFairness
from repro.model.cluster import Cluster

__all__ = ["LookaheadPolicy", "LookaheadSolution"]


@dataclass(frozen=True)
class LookaheadSolution:
    """Result of solving every frame of the lookahead policy.

    Attributes
    ----------
    frame_costs:
        ``G*_r`` for each frame: the minimum frame-average cost (19).
    mean_cost:
        ``(1/R) sum_r G*_r`` — the benchmark of Theorem 1b.
    service:
        ``(T_total, N, J)`` optimal service decisions.
    busy:
        ``(T_total, N, K)`` optimal busy-server decisions.
    """

    frame_costs: np.ndarray
    mean_cost: float
    service: np.ndarray
    busy: np.ndarray


class LookaheadPolicy:
    """Offline frame-by-frame optimal policy with full future knowledge.

    Parameters
    ----------
    cluster:
        Static system description.
    arrivals, availability, prices:
        The full scenario: ``(T, J)``, ``(T, N, K)`` and ``(T, N)``.
    lookahead:
        Frame length ``T``.  The horizon must be a multiple of it.
    beta, fairness:
        Energy-fairness cost parameters (eq. 6).
    """

    def __init__(
        self,
        cluster: Cluster,
        arrivals: np.ndarray,
        availability: np.ndarray,
        prices: np.ndarray,
        lookahead: int,
        beta: float = 0.0,
        fairness: FairnessFunction | None = None,
    ) -> None:
        self.cluster = cluster
        self.arrivals = np.asarray(arrivals, dtype=np.float64)
        self.availability = np.asarray(availability, dtype=np.float64)
        self.prices = np.asarray(prices, dtype=np.float64)
        horizon = self.arrivals.shape[0]
        require_integer(lookahead, "lookahead", minimum=1)
        if horizon % lookahead != 0:
            raise ValueError(
                f"horizon {horizon} must be a multiple of the lookahead {lookahead}"
            )
        require_non_negative(beta, "beta")
        n, j_count = cluster.num_datacenters, cluster.num_job_types
        k_count = cluster.num_server_classes
        if self.arrivals.shape != (horizon, j_count):
            raise ValueError(f"arrivals must have shape (T, {j_count})")
        if self.availability.shape != (horizon, n, k_count):
            raise ValueError(f"availability must have shape (T, {n}, {k_count})")
        if self.prices.shape != (horizon, n):
            raise ValueError(f"prices must have shape (T, {n})")
        self.lookahead = int(lookahead)
        self.beta = float(beta)
        self.fairness = fairness if fairness is not None else QuadraticFairness()
        # h is bounded by min(h^max, r^max) so r = h is a legal witness.
        self._h_bound = np.minimum(
            cluster.max_service_matrix(), cluster.max_route_matrix()
        )

    # ------------------------------------------------------------------
    def solve(self) -> LookaheadSolution:
        """Solve every frame; return costs and the optimal decisions."""
        horizon = self.arrivals.shape[0]
        frames = horizon // self.lookahead
        n, j_count = self.cluster.num_datacenters, self.cluster.num_job_types
        k_count = self.cluster.num_server_classes
        service = np.zeros((horizon, n, j_count))
        busy = np.zeros((horizon, n, k_count))
        costs = np.zeros(frames)
        for r in range(frames):
            start = r * self.lookahead
            stop = start + self.lookahead
            h, b, cost = self._solve_frame(start, stop)
            service[start:stop] = h
            busy[start:stop] = b
            costs[r] = cost
        return LookaheadSolution(
            frame_costs=costs,
            mean_cost=float(costs.mean()),
            service=service,
            busy=busy,
        )

    # ------------------------------------------------------------------
    def _solve_frame(self, start: int, stop: int) -> tuple:
        if math.isclose(self.beta, 0.0, abs_tol=1e-12):
            return self._solve_frame_lp(start, stop)
        return self._solve_frame_convex(start, stop)

    def _frame_layout(self, start: int, stop: int) -> dict:
        cluster = self.cluster
        t_len = stop - start
        n, j_count = cluster.num_datacenters, cluster.num_job_types
        k_count = cluster.num_server_classes
        num_h = t_len * n * j_count
        num_b = t_len * n * k_count
        return {
            "t_len": t_len,
            "n": n,
            "j": j_count,
            "k": k_count,
            "num_h": num_h,
            "num_b": num_b,
        }

    def _frame_bounds(self, start: int, stop: int) -> list:
        lay = self._frame_layout(start, stop)
        bounds: list = []
        for _ in range(lay["t_len"]):
            bounds.extend((0.0, float(ub)) for ub in self._h_bound.ravel())
        for t in range(start, stop):
            bounds.extend((0.0, float(a)) for a in self.availability[t].ravel())
        return bounds

    def _frame_constraints_matrices(self, start: int, stop: int) -> tuple:
        """Rows for capacity (per slot+site) and coverage (per type)."""
        cluster = self.cluster
        lay = self._frame_layout(start, stop)
        t_len, n, j_count, k_count = lay["t_len"], lay["n"], lay["j"], lay["k"]
        num_h, num_b = lay["num_h"], lay["num_b"]
        demands = cluster.demands
        speeds = cluster.speeds
        elig = cluster.eligibility_matrix()

        # Capacity: sum_j d_j h_ijt - sum_k s_k b_ikt <= 0.
        a_cap = np.zeros((t_len * n, num_h + num_b))
        for t in range(t_len):
            for i in range(n):
                row = t * n + i
                h_off = (t * n + i) * j_count
                b_off = num_h + (t * n + i) * k_count
                a_cap[row, h_off : h_off + j_count] = demands
                a_cap[row, b_off : b_off + k_count] = -speeds
        b_cap = np.zeros(t_len * n)

        # Coverage: -sum_{t, i in D_j} h_ijt <= -sum_t a_jt.
        a_cov = np.zeros((j_count, num_h + num_b))
        for j in range(j_count):
            for t in range(t_len):
                for i in range(n):
                    if elig[i, j]:
                        a_cov[j, (t * n + i) * j_count + j] = -1.0
        b_cov = -self.arrivals[start:stop].sum(axis=0)
        return a_cap, b_cap, a_cov, b_cov

    def _energy_coefficients(self, start: int, stop: int) -> np.ndarray:
        """Linear cost of the busy variables: ``phi_i(t) * p_k``."""
        cluster = self.cluster
        lay = self._frame_layout(start, stop)
        coeff = np.zeros(lay["num_b"])
        powers = cluster.active_powers
        pos = 0
        for t in range(start, stop):
            for i in range(cluster.num_datacenters):
                coeff[pos : pos + lay["k"]] = self.prices[t, i] * powers
                pos += lay["k"]
        return coeff

    def _solve_frame_lp(self, start: int, stop: int) -> tuple:
        lay = self._frame_layout(start, stop)
        num_h, num_b = lay["num_h"], lay["num_b"]
        c = np.concatenate([np.zeros(num_h), self._energy_coefficients(start, stop)])
        a_cap, b_cap, a_cov, b_cov = self._frame_constraints_matrices(start, stop)
        result = linprog(
            c,
            A_ub=np.vstack([a_cap, a_cov]),
            b_ub=np.concatenate([b_cap, b_cov]),
            bounds=self._frame_bounds(start, stop),
            method="highs",
        )
        if not result.success:
            raise RuntimeError(
                f"lookahead frame [{start}, {stop}) infeasible or failed: "
                f"{result.message} (check the slackness conditions)"
            )
        h = result.x[:num_h].reshape(lay["t_len"], lay["n"], lay["j"])
        b = result.x[num_h:].reshape(lay["t_len"], lay["n"], lay["k"])
        cost = float(result.fun) / lay["t_len"]
        return h, b, cost

    def _solve_frame_convex(self, start: int, stop: int) -> tuple:
        cluster = self.cluster
        lay = self._frame_layout(start, stop)
        t_len, n, j_count, k_count = lay["t_len"], lay["n"], lay["j"], lay["k"]
        num_h, num_b = lay["num_h"], lay["num_b"]
        energy_coeff = self._energy_coefficients(start, stop)
        demands = cluster.demands
        shares = cluster.fair_shares
        account_of_type = cluster.account_of_type
        speeds = cluster.speeds
        totals = np.array(
            [float(np.dot(self.availability[t].sum(axis=0), speeds)) for t in range(start, stop)]
        )

        # Warm start from the beta = 0 LP solution.
        h0, b0, _ = self._solve_frame_lp(start, stop)
        x0 = np.concatenate([h0.ravel(), b0.ravel()])

        def unfairness(x: np.ndarray) -> float:
            h = x[:num_h].reshape(t_len, n, j_count)
            total = 0.0
            for t in range(t_len):
                per_type = h[t].sum(axis=0) * demands
                acc = np.zeros(cluster.num_accounts)
                np.add.at(acc, account_of_type, per_type)
                total -= self.fairness.score(acc, totals[t], shares)
            return total

        # Gradient of the unfairness term with respect to h.
        def unfairness_grad(x: np.ndarray) -> np.ndarray:
            h = x[:num_h].reshape(t_len, n, j_count)
            grad = np.zeros(num_h + num_b)
            gh = np.zeros((t_len, n, j_count))
            for t in range(t_len):
                per_type = h[t].sum(axis=0) * demands
                acc = np.zeros(cluster.num_accounts)
                np.add.at(acc, account_of_type, per_type)
                fg = self.fairness.gradient(acc, totals[t], shares)
                gh[t] = -(fg[account_of_type] * demands)[np.newaxis, :]
            grad[:num_h] = gh.ravel()
            return grad

        def objective(x: np.ndarray) -> float:
            return float(np.dot(energy_coeff, x[num_h:])) + self.beta * unfairness(x)

        def gradient(x: np.ndarray) -> np.ndarray:
            grad = self.beta * unfairness_grad(x)
            grad[num_h:] += energy_coeff
            return grad

        a_cap, b_cap, a_cov, b_cov = self._frame_constraints_matrices(start, stop)
        a_all = np.vstack([a_cap, a_cov])
        b_all = np.concatenate([b_cap, b_cov])
        constraints = [
            {
                "type": "ineq",
                "fun": lambda x: b_all - a_all @ x,
                "jac": lambda x: -a_all,
            }
        ]
        result = minimize(
            objective,
            x0,
            jac=gradient,
            bounds=self._frame_bounds(start, stop),
            constraints=constraints,
            method="SLSQP",
            options={"maxiter": 200, "ftol": 1e-9},
        )
        x = result.x if result.success else x0
        if objective(x) > objective(x0):
            x = x0
        h = x[:num_h].reshape(t_len, n, j_count)
        b = x[num_h:].reshape(t_len, n, k_count)
        return h, b, objective(x) / t_len
