"""Round-robin routing baseline.

Cycles each job type's placements over its eligible data centers in a
fixed rotation, serving eagerly like "Always".  A deterministic cousin
of :class:`~repro.schedulers.random_dc.RandomRoutingScheduler` for the
placement ablation.
"""

from __future__ import annotations

import numpy as np

from repro.model.action import Action
from repro.model.cluster import Cluster
from repro.model.queues import QueueNetwork
from repro.model.state import ClusterState
from repro.optimize.slot_problem import SlotServiceProblem
from repro.resilient.supervisor import solve_service
from repro.schedulers.base import Scheduler, service_upper_bounds

__all__ = ["RoundRobinScheduler"]


class RoundRobinScheduler(Scheduler):
    """Rotate placements over eligible sites; serve eagerly."""

    def __init__(self, cluster: Cluster) -> None:
        super().__init__(cluster)
        self._cursor = np.zeros(cluster.num_job_types, dtype=np.int64)
        self.name = "RoundRobin"

    def reset(self) -> None:
        super().reset()
        self._cursor[:] = 0

    def decide(self, t: int, state: ClusterState, queues: QueueNetwork) -> Action:
        state = self.prepare_state(state)
        front = queues.front
        dc = queues.dc
        cluster = self.cluster
        n, j_count = dc.shape
        route = np.zeros((n, j_count))
        max_route = cluster.max_route_matrix()
        for j in range(j_count):
            budget = int(np.floor(front[j] + 1e-9))
            if budget <= 0:
                continue
            eligible = sorted(cluster.job_types[j].eligible_dcs)
            while budget > 0:
                i = eligible[self._cursor[j] % len(eligible)]
                self._cursor[j] += 1
                take = min(budget, int(max_route[i, j] - route[i, j]))
                if take <= 0:
                    # All eligible sites at their bound: stop trying.
                    if all(route[s, j] >= max_route[s, j] for s in eligible):
                        break
                    continue
                route[i, j] += take
                budget -= take

        h_upper = service_upper_bounds(cluster, state, dc)
        problem = SlotServiceProblem(
            cluster=cluster,
            state=state,
            queue_weights=dc,
            h_upper=h_upper,
            v=0.0,
            beta=0.0,
        )
        h = solve_service(problem, primary="greedy", slot=t)
        return Action(route, h, problem.busy_for(h))
