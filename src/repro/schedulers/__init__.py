"""Schedulers: GreFar's baselines and the offline lookahead comparator."""

from repro.schedulers.always import AlwaysScheduler
from repro.schedulers.base import Scheduler, route_greedily, service_upper_bounds
from repro.schedulers.lookahead import LookaheadPolicy, LookaheadSolution
from repro.schedulers.price_threshold import PriceThresholdScheduler
from repro.schedulers.random_dc import RandomRoutingScheduler
from repro.schedulers.receding_horizon import RecedingHorizonScheduler
from repro.schedulers.round_robin import RoundRobinScheduler
from repro.schedulers.trough_filling import TroughFillingScheduler

__all__ = [
    "AlwaysScheduler",
    "LookaheadPolicy",
    "LookaheadSolution",
    "PriceThresholdScheduler",
    "RandomRoutingScheduler",
    "RecedingHorizonScheduler",
    "RoundRobinScheduler",
    "Scheduler",
    "TroughFillingScheduler",
    "route_greedily",
    "service_upper_bounds",
]
