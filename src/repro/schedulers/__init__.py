"""Schedulers: GreFar's baselines, the offline comparator, and the registry.

Besides re-exporting every scheduler class, this module is the
**scheduler registry**: a declarative name -> factory table that lets a
scheduler be described by ``(name, kwargs)`` alone.  That is what makes
:class:`~repro.runner.spec.RunSpec` picklable — worker processes
rebuild the exact scheduler from the spec instead of receiving a live
object — and what the CLI uses in place of a hand-rolled ``if`` chain.

Factories are stored as dotted paths and imported lazily:
``repro.core.grefar`` imports :mod:`repro.schedulers.base`, so an eager
``GreFarScheduler`` import here would be circular.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Mapping, Tuple

from repro.schedulers.always import AlwaysScheduler
from repro.schedulers.base import Scheduler, route_greedily, service_upper_bounds
from repro.schedulers.lookahead import LookaheadPolicy, LookaheadSolution
from repro.schedulers.price_threshold import PriceThresholdScheduler
from repro.schedulers.random_dc import RandomRoutingScheduler
from repro.schedulers.receding_horizon import RecedingHorizonScheduler
from repro.schedulers.round_robin import RoundRobinScheduler
from repro.schedulers.trough_filling import TroughFillingScheduler

__all__ = [
    "AlwaysScheduler",
    "LookaheadPolicy",
    "LookaheadSolution",
    "PriceThresholdScheduler",
    "RandomRoutingScheduler",
    "RecedingHorizonScheduler",
    "RoundRobinScheduler",
    "Scheduler",
    "SchedulerEntry",
    "TroughFillingScheduler",
    "build_scheduler",
    "route_greedily",
    "scheduler_entry",
    "scheduler_names",
    "service_upper_bounds",
]


@dataclass(frozen=True)
class SchedulerEntry:
    """One registry row: where the class lives and what it accepts.

    ``params`` is the accepted constructor keyword surface beyond the
    mandatory ``cluster`` argument; :func:`build_scheduler` rejects
    anything outside it so a typo'd spec fails loudly instead of being
    silently swallowed by ``**kwargs``.
    """

    name: str
    module: str
    qualname: str
    params: Tuple[str, ...] = ()
    description: str = ""

    def load(self) -> type:
        """Import and return the scheduler class (lazy, cycle-safe)."""
        return getattr(importlib.import_module(self.module), self.qualname)


_REGISTRY: dict = {
    entry.name: entry
    for entry in (
        SchedulerEntry(
            name="grefar",
            module="repro.core.grefar",
            qualname="GreFarScheduler",
            params=("v", "beta", "fairness", "solver", "physical", "pricing"),
            description="the paper's online drift-plus-penalty scheduler",
        ),
        SchedulerEntry(
            name="always",
            module="repro.schedulers.always",
            qualname="AlwaysScheduler",
            description="schedule immediately whenever resources allow",
        ),
        SchedulerEntry(
            name="threshold",
            module="repro.schedulers.price_threshold",
            qualname="PriceThresholdScheduler",
            params=("threshold",),
            description="serve only while the local price is below a threshold",
        ),
        SchedulerEntry(
            name="random",
            module="repro.schedulers.random_dc",
            qualname="RandomRoutingScheduler",
            params=("seed",),
            description="route uniformly at random among eligible sites",
        ),
        SchedulerEntry(
            name="roundrobin",
            module="repro.schedulers.round_robin",
            qualname="RoundRobinScheduler",
            description="cycle deterministically through eligible sites",
        ),
        SchedulerEntry(
            name="trough",
            module="repro.schedulers.trough_filling",
            qualname="TroughFillingScheduler",
            params=("quantile", "window", "max_backlog_work"),
            description="serve during the cheapest price troughs",
        ),
        SchedulerEntry(
            name="mpc",
            module="repro.schedulers.receding_horizon",
            qualname="RecedingHorizonScheduler",
            params=("window", "replan_every", "forecast", "period"),
            description="receding-horizon model-predictive baseline",
        ),
    )
}


def scheduler_names() -> list:
    """Registered scheduler names, sorted."""
    return sorted(_REGISTRY)


def scheduler_entry(name: str) -> SchedulerEntry:
    """The registry row for *name* (raises ``ValueError`` if unknown)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r}; choose from {scheduler_names()}"
        ) from None


def build_scheduler(name: str, cluster, **kwargs) -> Scheduler:
    """Construct the scheduler *name* on *cluster* from keyword config.

    This is the single factory the CLI, the experiments and the
    :mod:`repro.runner` worker processes all share, so a scheduler
    described by ``(name, kwargs)`` means the same thing everywhere.
    """
    entry = scheduler_entry(name)
    unknown = sorted(set(kwargs) - set(entry.params))
    if unknown:
        raise ValueError(
            f"scheduler {name!r} does not accept {unknown}; "
            f"accepted parameters: {sorted(entry.params)}"
        )
    return entry.load()(cluster, **kwargs)
