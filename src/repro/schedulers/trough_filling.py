"""Adaptive price-quantile baseline ("trough filling").

Inspired by the geographic trough-filling line of work the paper cites
([7], Xu & Liu): serve a site's backlog whenever its current price sits
in the cheapest *q*-quantile of a trailing window, and force a drain
whenever a site's backlog exceeds a cap (otherwise a long expensive
stretch would starve jobs indefinitely — exactly the failure mode
GreFar's queue-length feedback handles automatically).

Unlike GreFar this baseline needs tuning (quantile, window, backlog
cap) and offers no optimality or delay guarantee; it exists for the
comparison benchmarks.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro._validation import require_in_range, require_integer, require_positive
from repro.model.action import Action
from repro.model.cluster import Cluster
from repro.model.queues import QueueNetwork
from repro.model.state import ClusterState
from repro.optimize.slot_problem import SlotServiceProblem
from repro.resilient.supervisor import solve_service
from repro.schedulers.base import Scheduler, route_greedily, service_upper_bounds

__all__ = ["TroughFillingScheduler"]


class TroughFillingScheduler(Scheduler):
    """Serve when the local price is in its trailing cheap quantile.

    Parameters
    ----------
    cluster:
        Static system description.
    quantile:
        Serve while the current price is at or below this quantile of
        the trailing window (e.g. 0.3 = the cheapest 30% of recent
        hours).
    window:
        Trailing window length in slots (default one week of hours).
    max_backlog_work:
        Per-site backlog (work units) beyond which the site serves
        regardless of price.
    """

    def __init__(
        self,
        cluster: Cluster,
        quantile: float = 0.3,
        window: int = 168,
        max_backlog_work: float = 500.0,
    ) -> None:
        super().__init__(cluster)
        require_in_range(quantile, 0.0, 1.0, "quantile")
        require_integer(window, "window", minimum=2)
        require_positive(max_backlog_work, "max_backlog_work")
        self.quantile = float(quantile)
        self.window = int(window)
        self.max_backlog_work = float(max_backlog_work)
        self._history = [deque(maxlen=window) for _ in range(cluster.num_datacenters)]
        self.name = f"TroughFilling(q={quantile:g})"

    def reset(self) -> None:
        super().reset()
        for hist in self._history:
            hist.clear()

    def decide(self, t: int, state: ClusterState, queues: QueueNetwork) -> Action:
        state = self.prepare_state(state)
        cluster = self.cluster
        front = queues.front
        dc = queues.dc
        route = route_greedily(
            cluster, front, dc, capacities=state.capacities(cluster)
        )

        serve_site = np.zeros(cluster.num_datacenters, dtype=bool)
        backlog_work = dc @ cluster.demands
        for i in range(cluster.num_datacenters):
            hist = self._history[i]
            price = float(state.prices[i])
            if len(hist) >= 2:
                threshold = float(np.quantile(np.fromiter(hist, float), self.quantile))
            else:
                threshold = price  # no history yet: behave like Always
            if price <= threshold or backlog_work[i] > self.max_backlog_work:
                serve_site[i] = True
            hist.append(price)

        h_upper = service_upper_bounds(cluster, state, dc)
        h_upper = h_upper * serve_site[:, np.newaxis]
        problem = SlotServiceProblem(
            cluster=cluster,
            state=state,
            queue_weights=dc,
            h_upper=h_upper,
            v=0.0,
            beta=0.0,
        )
        h = solve_service(problem, primary="greedy", slot=t)
        return Action(route, h, problem.busy_for(h))
