"""Static price-threshold baseline (an ablation, not from the paper).

Serves a site's backlog at full speed whenever the local electricity
price is at or below a fixed threshold, and idles otherwise.  This is
the "obvious" way to chase cheap electricity; unlike GreFar it has no
queue feedback, so its delay is unbounded whenever prices stay high for
long stretches — which is precisely the failure mode the Lyapunov
queue-length term prevents.
"""

from __future__ import annotations

import numpy as np

from repro._validation import require_non_negative
from repro.model.action import Action
from repro.model.cluster import Cluster
from repro.model.queues import QueueNetwork
from repro.model.state import ClusterState
from repro.optimize.slot_problem import SlotServiceProblem
from repro.resilient.supervisor import solve_service
from repro.schedulers.base import Scheduler, route_greedily, service_upper_bounds

__all__ = ["PriceThresholdScheduler"]


class PriceThresholdScheduler(Scheduler):
    """Serve only when the local price is at or below *threshold*."""

    def __init__(self, cluster: Cluster, threshold: float) -> None:
        super().__init__(cluster)
        require_non_negative(threshold, "threshold")
        self.threshold = float(threshold)
        self.name = f"PriceThreshold({threshold:g})"

    def decide(self, t: int, state: ClusterState, queues: QueueNetwork) -> Action:
        state = self.prepare_state(state)
        front = queues.front
        dc = queues.dc
        route = route_greedily(
            self.cluster, front, dc, capacities=state.capacities(self.cluster)
        )
        h_upper = service_upper_bounds(self.cluster, state, dc)
        cheap = state.prices <= self.threshold
        h_upper = h_upper * cheap[:, np.newaxis]
        problem = SlotServiceProblem(
            cluster=self.cluster,
            state=state,
            queue_weights=dc,
            h_upper=h_upper,
            v=0.0,
            beta=0.0,
        )
        h = solve_service(problem, primary="greedy", slot=t)
        return Action(route, h, problem.busy_for(h))
