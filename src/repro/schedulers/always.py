"""The "Always" baseline (Section VI-B3).

Always schedules jobs immediately whenever there are resources
available: every queued job is routed to an eligible site at once
(fewest-backlog first) and every site serves as much of its backlog as
its available capacity allows, regardless of the electricity price.
Most jobs are therefore served in the slot after they arrive — the
expected average data center delay of one the paper reports — but the
energy cost ignores price variation entirely.

Implementation note: "serve as much as possible, most-backlogged types
first" is exactly the ``V = 0`` slot problem, so Always reuses the
greedy backend with ``V = 0`` (every queued job has positive marginal
value, energy has zero weight).
"""

from __future__ import annotations


from repro.model.action import Action
from repro.model.cluster import Cluster
from repro.model.queues import QueueNetwork
from repro.model.state import ClusterState
from repro.optimize.slot_problem import SlotServiceProblem
from repro.resilient.supervisor import solve_service
from repro.schedulers.base import Scheduler, route_greedily, service_upper_bounds

__all__ = ["AlwaysScheduler"]


class AlwaysScheduler(Scheduler):
    """Schedule and serve everything as soon as resources allow."""

    def __init__(self, cluster: Cluster) -> None:
        super().__init__(cluster)
        self.name = "Always"

    def decide(self, t: int, state: ClusterState, queues: QueueNetwork) -> Action:
        state = self.prepare_state(state)
        front = queues.front
        dc = queues.dc
        route = route_greedily(
            self.cluster, front, dc, capacities=state.capacities(self.cluster)
        )
        h_upper = service_upper_bounds(self.cluster, state, dc)
        problem = SlotServiceProblem(
            cluster=self.cluster,
            state=state,
            queue_weights=dc,
            h_upper=h_upper,
            v=0.0,
            beta=0.0,
        )
        h = solve_service(problem, primary="greedy", slot=t)
        return Action(route, h, problem.busy_for(h))
