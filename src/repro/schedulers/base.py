"""Scheduler interface shared by GreFar and every baseline.

A scheduler observes the slot state ``x(t)`` and the queue network
``Theta(t)`` at the *beginning* of each slot and returns an
:class:`~repro.model.action.Action`; the simulator then applies the
queue dynamics (12)-(13).  Schedulers must be *online*: decisions may
depend only on what they are handed this slot (the lookahead baseline
receives its future window explicitly at construction, which is the
point of the comparison in Theorem 1).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.model.action import Action
from repro.model.cluster import Cluster
from repro.model.queues import QueueNetwork
from repro.model.state import ClusterState

__all__ = ["Scheduler", "route_greedily", "service_upper_bounds"]


def service_upper_bounds(
    cluster: Cluster,
    state: ClusterState,
    dc_queue_lengths: np.ndarray,
    physical: bool = True,
) -> np.ndarray:
    """Effective per-slot upper bounds on the service decision ``h``.

    Intersects the eq. (5) bounds ``h_ij^max``, the queue contents (when
    running physically), and the Section III-B parallelism bounds.
    Shared by GreFar and every eager baseline.
    """
    from repro.core.constraints import parallelism_service_bounds

    bounds = cluster.max_service_matrix()
    if physical:
        bounds = np.minimum(bounds, dc_queue_lengths)
    bounds = np.minimum(
        bounds, parallelism_service_bounds(cluster, state, dc_queue_lengths)
    )
    return bounds


class Scheduler(ABC):
    """Base class for slot-by-slot schedulers."""

    #: Human-readable name used in experiment output.
    name: str = "scheduler"

    def __init__(self, cluster: Cluster) -> None:
        self.cluster = cluster

    @abstractmethod
    def decide(self, t: int, state: ClusterState, queues: QueueNetwork) -> Action:
        """Return the action ``z(t)`` for slot *t*."""

    def reset(self) -> None:
        """Clear any internal state before a fresh simulation run."""


def route_greedily(
    cluster: Cluster,
    front: np.ndarray,
    dc: np.ndarray,
    prefer: np.ndarray | None = None,
) -> np.ndarray:
    """Route every queued job to eligible sites, fewest-backlog first.

    A shared helper for baselines that move jobs out of the central
    queue as fast as the eq. (4) bounds allow.  Jobs of type ``j`` are
    assigned (integrally) to sites ``i in D_j`` in increasing order of
    *prefer* (default: current site backlog ``q_ij``), each site taking
    at most ``r_ij^max``.

    Returns the ``(N, J)`` routing matrix.
    """
    n, j_count = dc.shape
    route = np.zeros((n, j_count))
    max_route = cluster.max_route_matrix()
    keys = dc if prefer is None else prefer
    for j in range(j_count):
        budget = float(np.floor(front[j] + 1e-9))
        if budget <= 0:
            continue
        eligible = sorted(cluster.job_types[j].eligible_dcs, key=lambda i: keys[i, j])
        for i in eligible:
            take = min(max_route[i, j], budget)
            take = float(np.floor(take + 1e-9))
            if take <= 0:
                continue
            route[i, j] = take
            budget -= take
            if budget <= 0:
                break
    return route
