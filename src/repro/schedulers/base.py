"""Scheduler interface shared by GreFar and every baseline.

A scheduler observes the slot state ``x(t)`` and the queue network
``Theta(t)`` at the *beginning* of each slot and returns an
:class:`~repro.model.action.Action`; the simulator then applies the
queue dynamics (12)-(13).  Schedulers must be *online*: decisions may
depend only on what they are handed this slot (the lookahead baseline
receives its future window explicitly at construction, which is the
point of the comparison in Theorem 1).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.model.action import Action
from repro.model.cluster import Cluster
from repro.model.queues import QueueNetwork
from repro.model.state import ClusterState

__all__ = ["Scheduler", "route_greedily", "service_upper_bounds"]


def service_upper_bounds(
    cluster: Cluster,
    state: ClusterState,
    dc_queue_lengths: np.ndarray,
    physical: bool = True,
) -> np.ndarray:
    """Effective per-slot upper bounds on the service decision ``h``.

    Intersects the eq. (5) bounds ``h_ij^max``, the queue contents (when
    running physically), and the Section III-B parallelism bounds.
    Shared by GreFar and every eager baseline.
    """
    from repro.core.constraints import parallelism_service_bounds

    bounds = cluster.max_service_matrix()
    if physical:
        bounds = np.minimum(bounds, dc_queue_lengths)
    bounds = np.minimum(
        bounds, parallelism_service_bounds(cluster, state, dc_queue_lengths)
    )
    return bounds


class Scheduler(ABC):
    """Base class for slot-by-slot schedulers."""

    #: Human-readable name used in experiment output.
    name: str = "scheduler"

    def __init__(self, cluster: Cluster) -> None:
        self.cluster = cluster
        self._last_good_state: tuple | None = None

    @abstractmethod
    def decide(self, t: int, state: ClusterState, queues: QueueNetwork) -> Action:
        """Return the action ``z(t)`` for slot *t*."""

    def reset(self) -> None:
        """Clear any internal state before a fresh simulation run.

        Subclasses that override this must call ``super().reset()`` so
        the degraded-mode memory of :meth:`prepare_state` is cleared
        too.
        """
        self._last_good_state = None

    # ------------------------------------------------------------------
    # Degraded mode: last-known-good substitution for missing signals
    # ------------------------------------------------------------------
    def prepare_state(self, state: ClusterState) -> ClusterState:
        """Fill missing (NaN) signals with last-known-good values.

        Under fault injection the observed state may carry missing
        entries — a stale price feed, a partitioned site (see
        :mod:`repro.faults`).  Shipped schedulers call this at the top
        of :meth:`decide`; with a fully observed state it stores the
        snapshot and returns it *unchanged* (same object), so the
        fault-free path is untouched.

        Substitution is entry-wise: each missing entry takes the most
        recent cleanly observed value for that entry.  Before any clean
        observation exists the fallback is fail-safe — zero availability
        (schedule nothing there) and the largest currently visible
        price (assume the dark site is expensive).
        """
        availability = state.availability
        prices = state.prices
        miss_a = np.isnan(availability)
        miss_p = np.isnan(prices)
        if not (miss_a.any() or miss_p.any()):
            self._last_good_state = (availability, prices)
            return state
        last = getattr(self, "_last_good_state", None)
        if last is None:
            finite = prices[~miss_p]
            fallback_price = float(finite.max()) if finite.size else 1.0
            base_a = np.zeros_like(availability)
            base_p = np.full_like(prices, fallback_price)
        else:
            base_a, base_p = last
        filled_a = np.where(miss_a, base_a, availability)
        filled_p = np.where(miss_p, base_p, prices)
        # Remember the filled view so a longer blackout keeps the same
        # substitution rather than decaying to the fail-safe defaults.
        self._last_good_state = (filled_a, filled_p)
        return ClusterState(filled_a, filled_p)


def route_greedily(
    cluster: Cluster,
    front: np.ndarray,
    dc: np.ndarray,
    prefer: np.ndarray | None = None,
    capacities: np.ndarray | None = None,
) -> np.ndarray:
    """Route every queued job to eligible sites, fewest-backlog first.

    A shared helper for baselines that move jobs out of the central
    queue as fast as the eq. (4) bounds allow.  Jobs of type ``j`` are
    assigned (integrally) to sites ``i in D_j`` in increasing order of
    *prefer* (default: current site backlog ``q_ij``), each site taking
    at most ``r_ij^max``.

    When *capacities* (the observed per-site work capacities) is given,
    sites with zero capacity are skipped entirely — the degraded-mode
    rule that keeps work out of dark or partitioned data centers where
    it could only sit (or be evicted) until the fault clears.

    Returns the ``(N, J)`` routing matrix.
    """
    n, j_count = dc.shape
    route = np.zeros((n, j_count))
    max_route = cluster.max_route_matrix()
    keys = dc if prefer is None else prefer
    for j in range(j_count):
        budget = float(np.floor(front[j] + 1e-9))
        if budget <= 0:
            continue
        eligible = sorted(cluster.job_types[j].eligible_dcs, key=lambda i: keys[i, j])
        if capacities is not None:
            eligible = [i for i in eligible if capacities[i] > 0.0]
        for i in eligible:
            take = min(max_route[i, j], budget)
            take = float(np.floor(take + 1e-9))
            if take <= 0:
                continue
            route[i, j] = take
            budget -= take
            if budget <= 0:
                break
    return route
