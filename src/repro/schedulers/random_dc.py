"""Random-routing baseline: Always-style service with random placement.

Routes every queued job to a uniformly random eligible data center,
ignoring both backlogs and energy efficiency, then serves greedily like
"Always".  Used in ablation benchmarks to isolate how much of GreFar's
saving comes from *where* jobs run versus *when* they run.
"""

from __future__ import annotations

import numpy as np

from repro.model.action import Action
from repro.model.cluster import Cluster
from repro.model.queues import QueueNetwork
from repro.model.state import ClusterState
from repro.optimize.slot_problem import SlotServiceProblem
from repro.resilient.supervisor import solve_service
from repro.schedulers.base import Scheduler, service_upper_bounds

__all__ = ["RandomRoutingScheduler"]


class RandomRoutingScheduler(Scheduler):
    """Route uniformly at random over eligible sites; serve eagerly."""

    def __init__(self, cluster: Cluster, seed: int = 0) -> None:
        super().__init__(cluster)
        self._seed = seed
        self._rng = np.random.default_rng(seed)
        self.name = "RandomRouting"

    def reset(self) -> None:
        super().reset()
        self._rng = np.random.default_rng(self._seed)

    def decide(self, t: int, state: ClusterState, queues: QueueNetwork) -> Action:
        # Degraded-mode substitution only; placement stays deliberately
        # blind to capacity (that is what this baseline isolates).
        state = self.prepare_state(state)
        front = queues.front
        dc = queues.dc
        cluster = self.cluster
        n, j_count = dc.shape
        route = np.zeros((n, j_count))
        max_route = cluster.max_route_matrix()
        for j in range(j_count):
            budget = int(np.floor(front[j] + 1e-9))
            if budget <= 0:
                continue
            eligible = sorted(cluster.job_types[j].eligible_dcs)
            picks = self._rng.choice(eligible, size=budget)
            counts = np.bincount(picks, minlength=n).astype(np.float64)
            route[:, j] = np.minimum(counts, max_route[:, j])

        h_upper = service_upper_bounds(cluster, state, dc)
        problem = SlotServiceProblem(
            cluster=cluster,
            state=state,
            queue_weights=dc,
            h_upper=h_upper,
            v=0.0,
            beta=0.0,
        )
        h = solve_service(problem, primary="greedy", slot=t)
        return Action(route, h, problem.busy_for(h))
