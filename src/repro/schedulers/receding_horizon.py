"""Receding-horizon (MPC) scheduler with pluggable forecasts.

The related work the paper positions against ([3], [4]) plans ahead
using predictions of future demand and prices.  This scheduler brings
that approach into the same harness: every ``replan_every`` slots it
solves a ``window``-slot linear program — minimize predicted energy
subject to clearing the current backlog plus predicted arrivals — and
executes the plan's first slots, clipped to reality.

Forecast modes
--------------
* ``"persistence"`` — tomorrow looks like right now: the current
  price/availability persist, arrivals repeat their trailing average.
* ``"diurnal"`` — tomorrow looks like yesterday: each quantity repeats
  its value from ``period`` slots ago (falling back to persistence
  until enough history accumulates).
* *oracle* — pass a :class:`~repro.simulation.trace.Scenario` to plan
  on the true future: an executable stand-in for the T-step lookahead
  comparator of Theorem 1.

Unlike GreFar, quality here depends entirely on forecast quality; the
comparison benchmark quantifies that gap.
"""

from __future__ import annotations

from collections import deque

import numpy as np
from scipy.optimize import linprog

from repro._validation import require_integer
from repro.model.action import Action
from repro.model.cluster import Cluster
from repro.model.queues import QueueNetwork
from repro.model.state import ClusterState
from repro.schedulers.base import Scheduler, route_greedily, service_upper_bounds
from repro.simulation.trace import Scenario

__all__ = ["RecedingHorizonScheduler"]

_FORECASTS = ("persistence", "diurnal")


class RecedingHorizonScheduler(Scheduler):
    """Plan over a forecast window, execute, re-plan.

    Parameters
    ----------
    cluster:
        Static system description.
    window:
        Planning horizon in slots.
    replan_every:
        Re-solve the plan every this many slots (1 = full MPC).
    forecast:
        ``"persistence"``, ``"diurnal"``, or a :class:`Scenario` for
        oracle (perfect-information) planning.
    period:
        Diurnal period in slots (used by the ``"diurnal"`` forecast).
    """

    def __init__(
        self,
        cluster: Cluster,
        window: int = 24,
        replan_every: int = 6,
        forecast="persistence",
        period: int = 24,
    ) -> None:
        super().__init__(cluster)
        require_integer(window, "window", minimum=1)
        require_integer(replan_every, "replan_every", minimum=1)
        require_integer(period, "period", minimum=1)
        if isinstance(forecast, str) and forecast not in _FORECASTS:
            raise ValueError(
                f"forecast must be one of {_FORECASTS} or a Scenario, got {forecast!r}"
            )
        self.window = int(window)
        self.replan_every = int(replan_every)
        self.forecast = forecast
        self.period = int(period)
        mode = forecast if isinstance(forecast, str) else "oracle"
        self.name = f"RecedingHorizon(W={window}, {mode})"
        self._plan: np.ndarray | None = None  # (window, N, J) service plan
        self._plan_offset = 0
        history_len = max(2 * period, window) + 1
        self._price_history: deque = deque(maxlen=history_len)
        self._avail_history: deque = deque(maxlen=history_len)
        self._arrival_rate = np.zeros(cluster.num_job_types)
        self._seen_slots = 0

    # ------------------------------------------------------------------
    def reset(self) -> None:
        super().reset()
        self._plan = None
        self._plan_offset = 0
        self._price_history.clear()
        self._avail_history.clear()
        self._arrival_rate = np.zeros(self.cluster.num_job_types)
        self._seen_slots = 0

    def observe_arrivals(self, arrivals: np.ndarray) -> None:
        """Feed realized arrivals (exponential moving average forecast)."""
        arrivals = np.asarray(arrivals, dtype=np.float64)
        if self._seen_slots == 0:
            self._arrival_rate = arrivals.copy()
        else:
            self._arrival_rate = 0.9 * self._arrival_rate + 0.1 * arrivals
        self._seen_slots += 1

    # ------------------------------------------------------------------
    def decide(self, t: int, state: ClusterState, queues: QueueNetwork) -> Action:
        state = self.prepare_state(state)
        self._price_history.append(np.array(state.prices))
        self._avail_history.append(np.array(state.availability))

        if self._plan is None or self._plan_offset >= self.replan_every:
            self._plan = self._solve_plan(t, state, queues)
            self._plan_offset = 0

        planned = self._plan[self._plan_offset]
        self._plan_offset += 1

        front = queues.front
        dc = queues.dc
        route = route_greedily(
            self.cluster, front, dc, capacities=state.capacities(self.cluster)
        )
        h_upper = service_upper_bounds(self.cluster, state, dc)
        h = np.minimum(planned, h_upper)
        # Clip the plan to today's actual capacity.
        caps = state.capacities(self.cluster)
        loads = h @ self.cluster.demands
        for i in range(self.cluster.num_datacenters):
            if loads[i] > caps[i] > 0:
                h[i] *= caps[i] / loads[i]
            elif caps[i] <= 0:
                h[i] = 0.0
        busy = self._busy_for(h, state)
        return Action(route, h, busy)

    # ------------------------------------------------------------------
    # Forecasting
    # ------------------------------------------------------------------
    def _forecast(self, t: int, state: ClusterState) -> tuple:
        """Predicted (prices, availability, arrivals) over the window."""
        w = self.window
        n, j = self.cluster.num_datacenters, self.cluster.num_job_types
        k = self.cluster.num_server_classes
        if isinstance(self.forecast, Scenario):
            scn = self.forecast
            stop = min(t + w, scn.horizon)
            prices = scn.prices[t:stop]
            avail = scn.availability[t:stop]
            arrivals = scn.arrivals[t:stop]
            pad = w - prices.shape[0]
            if pad > 0:
                prices = np.vstack([prices, np.tile(prices[-1:], (pad, 1))])
                avail = np.concatenate([avail, np.tile(avail[-1:], (pad, 1, 1))])
                arrivals = np.vstack([arrivals, np.zeros((pad, j))])
            return prices, avail, arrivals

        arrivals = np.tile(self._arrival_rate, (w, 1))
        if self.forecast == "diurnal" and len(self._price_history) > self.period:
            prices = np.empty((w, n))
            avail = np.empty((w, n, k))
            history_p = list(self._price_history)
            history_a = list(self._avail_history)
            for step in range(w):
                lag = self.period - (step % self.period)
                prices[step] = history_p[-lag]
                avail[step] = history_a[-lag]
            return prices, avail, arrivals

        prices = np.tile(state.prices, (w, 1))
        avail = np.tile(state.availability[np.newaxis], (w, 1, 1))
        return prices, avail, arrivals

    # ------------------------------------------------------------------
    # Planning LP
    # ------------------------------------------------------------------
    def _solve_plan(self, t: int, state: ClusterState, queues: QueueNetwork) -> np.ndarray:
        cluster = self.cluster
        w = self.window
        n, j_count = cluster.num_datacenters, cluster.num_job_types
        k_count = cluster.num_server_classes
        demands = cluster.demands
        speeds = cluster.speeds
        powers = cluster.active_powers
        elig = cluster.eligibility_matrix()
        prices, avail, arrivals = self._forecast(t, state)

        num_h = w * n * j_count
        num_b = w * n * k_count

        c = np.zeros(num_h + num_b)
        pos = num_h
        for step in range(w):
            for i in range(n):
                c[pos : pos + k_count] = prices[step, i] * powers
                pos += k_count

        # Capacity coupling per (step, site).
        a_rows = []
        b_vals = []
        for step in range(w):
            for i in range(n):
                row = np.zeros(num_h + num_b)
                h_off = (step * n + i) * j_count
                b_off = num_h + (step * n + i) * k_count
                row[h_off : h_off + j_count] = demands
                row[b_off : b_off + k_count] = -speeds
                a_rows.append(row)
                b_vals.append(0.0)

        # Clear the backlog plus predicted arrivals per type (weighted so
        # earlier arrivals are also served inside the window).
        backlog = queues.front + queues.dc.sum(axis=0)
        demand_per_type = backlog + arrivals.sum(axis=0)
        for j in range(j_count):
            row = np.zeros(num_h + num_b)
            for step in range(w):
                for i in range(n):
                    if elig[i, j]:
                        row[(step * n + i) * j_count + j] = -1.0
            a_rows.append(row)
            b_vals.append(-float(demand_per_type[j]))

        bounds = []
        h_bound = cluster.max_service_matrix()
        for _ in range(w):
            bounds.extend((0.0, float(ub)) for ub in h_bound.ravel())
        for step in range(w):
            bounds.extend((0.0, float(a)) for a in avail[step].ravel())

        result = linprog(
            c,
            A_ub=np.array(a_rows),
            b_ub=np.array(b_vals),
            bounds=bounds,
            method="highs",
        )
        if not result.success:
            # Forecast says infeasible (e.g. predicted blackout): fall
            # back to serving eagerly this window.
            plan = np.tile(h_bound[np.newaxis], (w, 1, 1))
            return plan
        return result.x[:num_h].reshape(w, n, j_count)

    # ------------------------------------------------------------------
    def _busy_for(self, h: np.ndarray, state: ClusterState) -> np.ndarray:
        from repro.optimize.capacity import build_supply_curves

        curves = build_supply_curves(self.cluster, state)
        loads = h @ self.cluster.demands
        k = self.cluster.num_server_classes
        speeds = self.cluster.speeds
        return np.stack(
            [
                curves[i].busy_counts(min(loads[i], curves[i].total_capacity), k, speeds)
                for i in range(self.cluster.num_datacenters)
            ]
        )
