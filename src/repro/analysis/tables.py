"""Plain-text table rendering for experiment output.

Every experiment module prints its paper-style rows through
:func:`format_table`, so the harness output looks the same everywhere
and is trivially greppable in logs.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table"]


def _cell(value: object, precision: int) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    precision: int = 3,
    title: str | None = None,
) -> str:
    """Render a fixed-width text table.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Row values; floats are formatted to *precision* decimals.
    precision:
        Decimal places for float cells.
    title:
        Optional heading printed above the table.
    """
    str_rows = [[_cell(v, precision) for v in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in str_rows)) if str_rows else len(headers[c])
        for c in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
