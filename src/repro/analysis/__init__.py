"""Analysis helpers: delay estimation, tradeoff sweeps, table rendering."""

from repro.analysis.decomposition import SavingDecomposition, decompose_energy_saving
from repro.analysis.delay import delay_percentile_bound, littles_law_delay
from repro.analysis.stats import PairedComparison, bootstrap_mean_ci, paired_comparison
from repro.analysis.tables import format_table
from repro.analysis.tradeoff import TradeoffPoint, sweep_beta, sweep_v

__all__ = [
    "PairedComparison",
    "SavingDecomposition",
    "TradeoffPoint",
    "bootstrap_mean_ci",
    "decompose_energy_saving",
    "delay_percentile_bound",
    "format_table",
    "littles_law_delay",
    "paired_comparison",
    "sweep_beta",
    "sweep_v",
]
