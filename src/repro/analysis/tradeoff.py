"""Energy/fairness/delay tradeoff curves across control parameters.

The paper's central claim is a *tunable* tradeoff: sweeping the
cost-delay parameter ``V`` trades energy for delay (Theorem 1), and
sweeping the energy-fairness parameter ``beta`` trades energy for
fairness.  These helpers run the sweeps and return tidy result rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.grefar import GreFarScheduler
from repro.simulation.simulator import Simulator
from repro.simulation.trace import Scenario

__all__ = ["TradeoffPoint", "sweep_v", "sweep_beta"]


@dataclass(frozen=True)
class TradeoffPoint:
    """One point of a control-parameter sweep."""

    v: float
    beta: float
    avg_energy_cost: float
    avg_fairness: float
    avg_total_delay: float
    avg_dc_delay: tuple
    max_queue_length: float


def _run_point(scenario: Scenario, v: float, beta: float, horizon: int | None) -> TradeoffPoint:
    scheduler = GreFarScheduler(scenario.cluster, v=v, beta=beta)
    result = Simulator(scenario, scheduler).run(horizon)
    summary = result.summary
    return TradeoffPoint(
        v=v,
        beta=beta,
        avg_energy_cost=summary.avg_energy_cost,
        avg_fairness=summary.avg_fairness,
        avg_total_delay=summary.avg_total_delay,
        avg_dc_delay=summary.avg_dc_delay,
        max_queue_length=summary.max_queue_length,
    )


def sweep_v(
    scenario: Scenario,
    v_values: Sequence[float],
    beta: float = 0.0,
    horizon: int | None = None,
) -> list:
    """Run GreFar for each ``V``; return one :class:`TradeoffPoint` each."""
    if not v_values:
        raise ValueError("v_values must be non-empty")
    return [_run_point(scenario, v, beta, horizon) for v in v_values]


def sweep_beta(
    scenario: Scenario,
    beta_values: Sequence[float],
    v: float = 7.5,
    horizon: int | None = None,
) -> list:
    """Run GreFar for each ``beta``; return one :class:`TradeoffPoint` each."""
    if not beta_values:
        raise ValueError("beta_values must be non-empty")
    return [_run_point(scenario, v, beta, horizon) for beta in beta_values]
