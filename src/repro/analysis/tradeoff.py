"""Energy/fairness/delay tradeoff curves across control parameters.

The paper's central claim is a *tunable* tradeoff: sweeping the
cost-delay parameter ``V`` trades energy for delay (Theorem 1), and
sweeping the energy-fairness parameter ``beta`` trades energy for
fairness.  Both sweeps are the same thing — a list of ``(V, beta)``
operating points — so they share one spec-list helper over the
:mod:`repro.runner` engine and differ only in which axis varies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.runner import RunSpec, default_cache, run_many
from repro.simulation.trace import Scenario

__all__ = ["TradeoffPoint", "sweep_points", "sweep_v", "sweep_beta"]


@dataclass(frozen=True)
class TradeoffPoint:
    """One point of a control-parameter sweep."""

    v: float
    beta: float
    avg_energy_cost: float
    avg_fairness: float
    avg_total_delay: float
    avg_dc_delay: tuple
    max_queue_length: float


def _point_from_summary(v: float, beta: float, summary) -> TradeoffPoint:
    return TradeoffPoint(
        v=v,
        beta=beta,
        avg_energy_cost=summary.avg_energy_cost,
        avg_fairness=summary.avg_fairness,
        avg_total_delay=summary.avg_total_delay,
        avg_dc_delay=summary.avg_dc_delay,
        max_queue_length=summary.max_queue_length,
    )


def sweep_points(
    scenario: Scenario,
    points: Sequence[tuple],
    horizon: int | None = None,
    jobs: int = 1,
    use_cache: bool = False,
) -> list:
    """Run GreFar at each ``(v, beta)`` point; one :class:`TradeoffPoint` each.

    This is the shared core of :func:`sweep_v` and :func:`sweep_beta`:
    one spec per operating point, fanned out through
    :func:`repro.runner.run_many` (``jobs`` workers, optional result
    cache keyed by the scenario's content).
    """
    points = list(points)
    if not points:
        raise ValueError("points must be non-empty")
    specs = [
        RunSpec(
            scenario=None,
            scheduler="grefar",
            scheduler_kwargs={"v": float(v), "beta": float(beta)},
            horizon=horizon,
        )
        for v, beta in points
    ]
    results = run_many(
        specs,
        jobs=jobs,
        cache=default_cache() if use_cache else None,
        scenario=scenario,
    )
    return [
        _point_from_summary(v, beta, result.summary)
        for (v, beta), result in zip(points, results)
    ]


def sweep_v(
    scenario: Scenario,
    v_values: Sequence[float],
    beta: float = 0.0,
    horizon: int | None = None,
    jobs: int = 1,
    use_cache: bool = False,
) -> list:
    """Run GreFar for each ``V``; return one :class:`TradeoffPoint` each."""
    if not v_values:
        raise ValueError("v_values must be non-empty")
    return sweep_points(
        scenario,
        [(v, beta) for v in v_values],
        horizon=horizon,
        jobs=jobs,
        use_cache=use_cache,
    )


def sweep_beta(
    scenario: Scenario,
    beta_values: Sequence[float],
    v: float = 7.5,
    horizon: int | None = None,
    jobs: int = 1,
    use_cache: bool = False,
) -> list:
    """Run GreFar for each ``beta``; return one :class:`TradeoffPoint` each."""
    if not beta_values:
        raise ValueError("beta_values must be non-empty")
    return sweep_points(
        scenario,
        [(v, beta) for beta in beta_values],
        horizon=horizon,
        jobs=jobs,
        use_cache=use_cache,
    )
