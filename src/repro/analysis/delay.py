"""Delay estimation utilities.

The simulator measures per-job delays exactly through the FIFO ledgers;
this module adds the classical *indirect* estimates used when only
queue-length telemetry is available (the relationship the paper invokes:
"queueing delay is closely related to the average number of jobs in the
queue"), plus helpers for comparing both.
"""

from __future__ import annotations


__all__ = ["littles_law_delay", "delay_percentile_bound"]


def littles_law_delay(mean_queue_length: float, arrival_rate: float) -> float:
    """Little's law estimate ``W = L / lambda`` (slots).

    Parameters
    ----------
    mean_queue_length:
        Time-average number of jobs in the queue (``L``).
    arrival_rate:
        Average arrivals per slot (``lambda``).  Must be positive.
    """
    if arrival_rate <= 0:
        raise ValueError(f"arrival_rate must be positive, got {arrival_rate}")
    if mean_queue_length < 0:
        raise ValueError(
            f"mean_queue_length must be non-negative, got {mean_queue_length}"
        )
    return mean_queue_length / arrival_rate


def delay_percentile_bound(
    queue_bound: float, arrival_rate: float, service_floor: float
) -> float:
    """Worst-case delay implied by a hard queue bound (Theorem 1a).

    If every queue is bounded by *queue_bound* jobs and at least
    *service_floor* jobs are drained per slot whenever the queue is
    non-empty, no job waits more than ``queue_bound / service_floor``
    slots.  Used to translate the ``O(V)`` queue bound into an ``O(V)``
    delay bound.
    """
    if queue_bound < 0:
        raise ValueError(f"queue_bound must be non-negative, got {queue_bound}")
    if service_floor <= 0:
        raise ValueError(f"service_floor must be positive, got {service_floor}")
    if arrival_rate < 0:
        raise ValueError(f"arrival_rate must be non-negative, got {arrival_rate}")
    return queue_bound / service_floor
