"""Statistical utilities for scheduler comparisons across seeds.

A single-seed comparison can flatter either side; these helpers run a
paired multi-seed comparison and report bootstrap confidence intervals
on the difference, so claims like "GreFar saves energy over Always"
carry uncertainty estimates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

__all__ = ["PairedComparison", "bootstrap_mean_ci", "paired_comparison"]


@dataclass(frozen=True)
class PairedComparison:
    """Outcome of a paired multi-seed A-vs-B comparison.

    ``differences`` holds ``metric_a - metric_b`` per seed; negative
    means A is lower (better, for costs).
    """

    metric: str
    seeds: tuple
    values_a: tuple
    values_b: tuple
    differences: tuple
    mean_difference: float
    ci_low: float
    ci_high: float

    @property
    def a_wins(self) -> bool:
        """True if the CI for (A - B) lies entirely below zero."""
        return self.ci_high < 0.0

    @property
    def significant(self) -> bool:
        """True if the CI excludes zero in either direction."""
        return self.ci_high < 0.0 or self.ci_low > 0.0


def bootstrap_mean_ci(
    values: Sequence[float],
    confidence: float = 0.95,
    num_resamples: int = 2_000,
    seed: int = 0,
) -> tuple:
    """Percentile-bootstrap confidence interval for the mean.

    Returns ``(low, high)``.  With a single observation the interval
    degenerates to that value.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("values must be non-empty")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must lie in (0, 1), got {confidence}")
    if arr.size == 1:
        return float(arr[0]), float(arr[0])
    rng = np.random.default_rng(seed)
    resamples = rng.choice(arr, size=(num_resamples, arr.size), replace=True)
    means = resamples.mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    return (
        float(np.quantile(means, alpha)),
        float(np.quantile(means, 1.0 - alpha)),
    )


def paired_comparison(
    metric_fn: Callable[[int], tuple],
    seeds: Sequence[int],
    metric: str = "metric",
    confidence: float = 0.95,
) -> PairedComparison:
    """Run ``metric_fn(seed) -> (value_a, value_b)`` over seeds and compare.

    The same seed drives both sides (paired design), so scenario noise
    cancels out of the difference.
    """
    if not seeds:
        raise ValueError("seeds must be non-empty")
    values_a = []
    values_b = []
    for seed in seeds:
        a, b = metric_fn(seed)
        values_a.append(float(a))
        values_b.append(float(b))
    differences = [a - b for a, b in zip(values_a, values_b)]
    low, high = bootstrap_mean_ci(differences, confidence=confidence)
    return PairedComparison(
        metric=metric,
        seeds=tuple(seeds),
        values_a=tuple(values_a),
        values_b=tuple(values_b),
        differences=tuple(differences),
        mean_difference=float(np.mean(differences)),
        ci_low=low,
        ci_high=high,
    )
