"""Decompose a scheduler's energy saving into *when* and *where*.

GreFar saves money through two distinct mechanisms the paper describes:
processing jobs **when** electricity is cheap (temporal arbitrage) and
**where** the energy cost per unit work is low (spatial placement plus
energy-efficient servers).  Given a run's per-slot, per-site processed
work, this module compares the actual bill against two counterfactuals:

* **time-blind** — the same per-site work totals, paid at each site's
  *average* price: what the bill would be with no temporal skill.
  ``temporal saving = time-blind bill - actual bill``.
* **reference placement** — a reference scheduler's (typically
  "Always") per-site work *shares* applied to this run's total work,
  paid at average prices.  ``spatial saving = reference bill -
  time-blind bill``.

The decomposition is exact for the paper's one-server-class-per-site
setup (energy per unit work is a site constant); for mixed fleets it
uses each run's measured energy-per-work and is a first-order
attribution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.simulation.simulator import SimulationResult
from repro.simulation.trace import Scenario

__all__ = ["SavingDecomposition", "decompose_energy_saving"]


@dataclass(frozen=True)
class SavingDecomposition:
    """Where a scheduler's energy saving comes from.

    All values are totals over the analyzed horizon; positive savings
    mean the mechanism reduced the bill.
    """

    actual_cost: float
    time_blind_cost: float
    reference_cost: float
    temporal_saving: float
    spatial_saving: float
    total_saving: float

    def summary(self) -> str:
        """One-line human-readable attribution."""
        return (
            f"saved {self.total_saving:.1f} vs reference "
            f"({self.temporal_saving:.1f} temporal + "
            f"{self.spatial_saving:.1f} spatial)"
        )


def _unit_energy_per_work(scenario: Scenario, work: np.ndarray, bill: np.ndarray) -> np.ndarray:
    """Measured energy-cost-per-(work*price) factor per site.

    For the paper's one-class-per-site plants this equals ``p_i / s_i``
    exactly; in general it is the run's average, used consistently for
    both the actual and counterfactual bills.
    """
    cluster = scenario.cluster
    factors = np.zeros(cluster.num_datacenters)
    for i in range(cluster.num_datacenters):
        classes = [
            c
            for c, count in zip(
                cluster.server_classes, cluster.datacenters[i].max_servers
            )
            if count > 0
        ]
        if classes:
            factors[i] = float(
                np.mean([c.energy_per_unit_work for c in classes])
            )
    return factors


def decompose_energy_saving(
    scenario: Scenario,
    result: SimulationResult,
    reference: SimulationResult,
) -> SavingDecomposition:
    """Attribute *result*'s saving over *reference* to temporal/spatial skill.

    Both runs must come from the same scenario (same prices and the
    same offered workload).
    """
    work = result.metrics.work_per_dc_series()  # (T, N)
    ref_work = reference.metrics.work_per_dc_series()
    horizon = work.shape[0]
    if ref_work.shape[0] != horizon:
        raise ValueError(
            f"runs cover different horizons: {horizon} vs {ref_work.shape[0]}"
        )
    prices = scenario.prices[:horizon]
    unit = _unit_energy_per_work(scenario, work, prices)

    # Actual bill under the linear model: sum_t,i w_ti * phi_ti * unit_i.
    actual = float(np.sum(work * prices * unit[np.newaxis, :]))

    # Time-blind: same per-site totals at average prices.
    avg_prices = prices.mean(axis=0)
    totals = work.sum(axis=0)
    time_blind = float(np.sum(totals * avg_prices * unit))

    # Reference placement: the reference run's spatial shares applied to
    # this run's total work, at average prices.
    ref_totals = ref_work.sum(axis=0)
    ref_share = (
        ref_totals / ref_totals.sum() if ref_totals.sum() > 0 else ref_totals
    )
    reference_cost = float(
        np.sum(totals.sum() * ref_share * avg_prices * unit)
    )

    temporal = time_blind - actual
    spatial = reference_cost - time_blind
    return SavingDecomposition(
        actual_cost=actual,
        time_blind_cost=time_blind,
        reference_cost=reference_cost,
        temporal_saving=temporal,
        spatial_saving=spatial,
        total_saving=temporal + spatial,
    )
