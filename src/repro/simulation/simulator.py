"""The time-slotted simulator (Section VI-A's "time-based simulator").

Each slot the simulator shows the scheduler the current state and queue
vector, applies the returned action through the exact queue dynamics of
eqs. (12)-(13), and records cost/fairness/delay metrics.  The loop is
deliberately simple — all of the algorithmic content lives in the
schedulers — but it is strict: with ``validate=True`` every action is
checked against every paper constraint before being applied.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._contracts import contracts_enabled, verify_action_capacity
from repro.core.objective import CostModel
from repro.model.queues import QueueNetwork
from repro.obs.events import SlotTraceEvent
from repro.obs.registry import metrics_registry
from repro.resilient.checkpoint import CheckpointError, Checkpointer, SimulationKilled
from repro.schedulers.base import Scheduler
from repro.simulation.metrics import MetricsCollector, SimulationSummary
from repro.simulation.trace import Scenario

__all__ = ["SimulationResult", "Simulator", "run_comparison"]


@dataclass(frozen=True)
class SimulationResult:
    """Everything a finished run produced."""

    summary: SimulationSummary
    metrics: MetricsCollector
    queues: QueueNetwork


class Simulator:
    """Drive one scheduler through one scenario.

    Parameters
    ----------
    scenario:
        The input trace (arrivals, availability, prices).
    scheduler:
        Any :class:`~repro.schedulers.base.Scheduler`.
    cost_model:
        Evaluator for ``g(t)``; defaults to pure energy (``beta = 0``).
        Note this is the *measurement* beta — experiments typically
        measure energy and fairness separately regardless of the
        scheduler's own beta.
    validate:
        If True, validate every action against the paper constraints
        (slower; used in tests).
    enforce_physical:
        If True (default), clip actions so queues are never overdrawn
        before applying the dynamics.  Shipped schedulers already emit
        physical actions; the clip is a safety net for custom ones.
    admission:
        Optional :class:`~repro.core.admission.AdmissionPolicy` applied
        to each slot's arrivals; rejected jobs are counted in the
        summary (Section V's overload remedy).
    observers:
        Optional callables ``(t, state, action, queues)`` invoked after
        each slot's dynamics (see :mod:`repro.simulation.observers`).
    injector:
        Optional :class:`~repro.faults.injector.FaultInjector`.  Each
        slot the injector may perturb the ground-truth state (capacity
        faults), mask what the scheduler observes (signal faults),
        veto commands to unreachable sites, and re-admit work evicted
        from failed sites through the eq. (12) arrival path.  With an
        empty fault schedule every hook passes its inputs through
        unchanged, so the run is bit-identical to one without the
        injector.
    """

    def __init__(
        self,
        scenario: Scenario,
        scheduler: Scheduler,
        cost_model: CostModel | None = None,
        validate: bool = False,
        enforce_physical: bool = True,
        admission=None,
        observers=None,
        injector=None,
    ) -> None:
        self.scenario = scenario
        self.scheduler = scheduler
        self.cost_model = cost_model if cost_model is not None else CostModel(beta=0.0)
        self.validate = bool(validate)
        self.enforce_physical = bool(enforce_physical)
        self.admission = admission
        self.observers = list(observers) if observers is not None else []
        self.injector = injector

    def run(
        self,
        horizon: int | None = None,
        checkpointer: Checkpointer | None = None,
        resume: bool = False,
    ) -> SimulationResult:
        """Simulate *horizon* slots (default: the whole scenario).

        With a :class:`~repro.resilient.checkpoint.Checkpointer` the
        full run state is snapshotted atomically after every
        ``checkpointer.every`` completed slots (and the snapshot is
        removed again when the run finishes).  With ``resume=True`` and
        a usable snapshot on disk, the run restores every stateful
        object — queues, metrics, scheduler (including RNG state),
        admission policy, fault injector — and continues from the next
        slot; because the restored state is exactly the uninterrupted
        run's state at that slot, the final metrics and trace are
        bit-identical to never having been interrupted.  Observers see
        only post-resume slots.
        """
        scenario = self.scenario
        if horizon is None:
            horizon = scenario.horizon
        if not 0 < horizon <= scenario.horizon:
            raise ValueError(
                f"horizon must be in (0, {scenario.horizon}], got {horizon}"
            )
        if resume and checkpointer is None:
            raise ValueError("resume=True requires a checkpointer")
        cluster = scenario.cluster
        start = 0
        snapshot = checkpointer.load() if (checkpointer and resume) else None
        if snapshot is not None:
            start = int(snapshot["next_slot"])
            if start > horizon:
                raise CheckpointError(
                    f"checkpoint is {start} slots in, past the requested "
                    f"horizon {horizon}"
                )
            queues = snapshot["queues"]
            metrics = snapshot["metrics"]
            self.scheduler = snapshot["scheduler"]
            self.admission = snapshot["admission"]
            self.injector = snapshot["injector"]
            injector = self.injector
            dropped = float(snapshot["dropped"])
            admitted_total = float(snapshot["admitted_total"])
        else:
            queues = QueueNetwork(cluster)
            metrics = MetricsCollector(num_datacenters=cluster.num_datacenters)
            self.scheduler.reset()
            if self.admission is not None:
                self.admission.reset()
            injector = self.injector
            if injector is not None:
                injector.reset()
            dropped = 0.0
            admitted_total = 0.0

        reg = metrics_registry()
        for t in range(start, horizon):
            slot_start = reg.clock() if reg.enabled else 0.0
            state = scenario.state_at(t)
            requeued = None
            if injector is not None:
                # Outage-onset evictions happen before the scheduler
                # looks at the queues; capacity faults apply to the
                # ground truth, signal faults only to what is observed.
                requeued = injector.begin_slot(t, queues)
                state = injector.true_state(t, state)
                observed = injector.observed_state(t, state)
            else:
                observed = state
            with reg.span("sim.decide"):
                action = self.scheduler.decide(t, observed, queues)
            if injector is not None:
                action = injector.filter_action(t, action, state)
            if self.enforce_physical:
                action = queues.clip_to_content(action)
            if self.validate:
                action.validate(cluster, state)
            elif contracts_enabled():
                # Same checks, framed as a runtime contract (eqs. 4, 5,
                # 11 feasibility of the applied action) — REPRO_CONTRACTS=1.
                verify_action_capacity(cluster, state, action)
            arrivals = scenario.arrivals[t]
            if self.admission is not None:
                admitted = self.admission.admit(t, arrivals, queues, cluster)
                dropped += float(np.sum(arrivals - admitted))
                arrivals = admitted
            admitted_total += float(np.sum(arrivals))
            if requeued is not None:
                # Re-admitted work joins through the same eq. (12)
                # arrival path but was already counted on first arrival,
                # so it bypasses admission and the arrived total.
                arrivals = arrivals + requeued
            outcome = queues.step(action, arrivals, t)
            for observer in self.observers:
                observer(t, state, action, queues)
            served_jobs = float(np.sum(outcome["served"]))
            with reg.span("sim.metrics"):
                cost = self.cost_model.evaluate(cluster, state, action)
                metrics.record(
                    energy=cost.energy,
                    fairness=cost.fairness,
                    combined=cost.combined,
                    work_per_dc=action.work_served(cluster),
                    served_jobs=served_jobs,
                    queues=queues,
                )
            if reg.enabled:
                # Fold the scheduler's per-decision solve record (if it
                # left one) into this slot's structured trace event.
                solve = reg.consume_solve()
                reg.timer_add("sim.slot", reg.clock() - slot_start)
                reg.emit(
                    SlotTraceEvent(
                        slot=t,
                        scheduler=self.scheduler.name,
                        front_backlog=float(np.sum(queues.front)),
                        dc_backlog=float(np.sum(queues.dc)),
                        solver=str(solve.get("solver", "")),
                        iterations=int(solve.get("iterations", 0)),
                        objective=float(solve.get("objective", 0.0)),
                        solve_seconds=float(solve.get("solve_seconds", 0.0)),
                        energy_cost=float(cost.energy),
                        served_jobs=served_jobs,
                    )
                )
            if checkpointer is not None:
                completed = t + 1
                saved = False
                if checkpointer.due(completed):
                    self._save_checkpoint(
                        checkpointer, completed, queues, metrics, injector,
                        dropped, admitted_total,
                    )
                    saved = True
                if checkpointer.should_kill(completed):
                    # Crash drill: always leave a resumable snapshot at
                    # the exact kill slot before dying.
                    if not saved:
                        self._save_checkpoint(
                            checkpointer, completed, queues, metrics, injector,
                            dropped, admitted_total,
                        )
                    raise SimulationKilled(completed, checkpointer.path)

        if checkpointer is not None:
            checkpointer.clear()
        summary = metrics.summary(
            self.scheduler.name,
            queues,
            arrived=admitted_total,
            dropped=dropped,
            evicted=injector.evicted_jobs if injector is not None else 0.0,
            requeued=injector.requeued_jobs if injector is not None else 0.0,
        )
        return SimulationResult(summary=summary, metrics=metrics, queues=queues)

    def _save_checkpoint(
        self, checkpointer, next_slot, queues, metrics, injector,
        dropped, admitted_total,
    ) -> None:
        """Snapshot everything the loop mutates (see resilient.checkpoint)."""
        checkpointer.save(
            {
                "next_slot": int(next_slot),
                "scheduler_name": self.scheduler.name,
                "queues": queues,
                "metrics": metrics,
                "scheduler": self.scheduler,
                "admission": self.admission,
                "injector": injector,
                "dropped": float(dropped),
                "admitted_total": float(admitted_total),
            }
        )


def run_comparison(
    scenario: Scenario,
    schedulers: list,
    cost_model: CostModel | None = None,
    horizon: int | None = None,
    jobs: int = 1,
) -> dict:
    """Run several schedulers on the same scenario; return name -> result.

    Routed through :func:`repro.runner.run_many` with the scheduler
    instances as per-spec overrides, so ``jobs > 1`` fans the
    comparison out across processes (the instances must pickle).  Each
    value is a :class:`repro.runner.RunResult` — use ``.summary``.
    """
    # Imported here: repro.runner sits above the simulation layer.
    from repro.runner import RunSpec, run_many

    schedulers = list(schedulers)
    specs = [
        RunSpec(scenario=None, scheduler=None, horizon=horizon)
        for _ in schedulers
    ]
    cost_models = None
    if cost_model is not None:
        cost_models = [cost_model] * len(schedulers)
    results = run_many(
        specs,
        jobs=jobs,
        scenario=scenario,
        schedulers=schedulers,
        cost_models=cost_models,
    )
    return {
        scheduler.name: result for scheduler, result in zip(schedulers, results)
    }
