"""Scenarios: bundled arrival / availability / price traces.

A :class:`Scenario` is everything a simulation run consumes besides the
scheduler — the paper's "three-day trace" of Fig. 1 and the 2000-hour
evaluation runs are instances.  Scenarios can be generated from the
workload models, saved to ``.npz`` and reloaded bit-exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.model.cluster import Cluster
from repro.model.state import ClusterState
from repro.workloads.availability import AvailabilityModel
from repro.workloads.cosmos import CosmosWorkload
from repro.workloads.prices import PriceModel

__all__ = ["Scenario"]


@dataclass(frozen=True)
class Scenario:
    """A complete simulation input: who arrives, what is up, what power costs.

    Attributes
    ----------
    cluster:
        Static system description.
    arrivals:
        ``(T, J)`` arrival counts ``a_j(t)``.
    availability:
        ``(T, N, K)`` availability ``n_ik(t)``.
    prices:
        ``(T, N)`` electricity prices ``phi_i(t)``.
    """

    cluster: Cluster
    arrivals: np.ndarray
    availability: np.ndarray
    prices: np.ndarray

    def __post_init__(self) -> None:
        arrivals = np.asarray(self.arrivals, dtype=np.float64)
        availability = np.asarray(self.availability, dtype=np.float64)
        prices = np.asarray(self.prices, dtype=np.float64)
        horizon = arrivals.shape[0]
        cluster = self.cluster
        if arrivals.shape != (horizon, cluster.num_job_types):
            raise ValueError(
                f"arrivals must have shape (T, {cluster.num_job_types}), "
                f"got {arrivals.shape}"
            )
        expected = (horizon, cluster.num_datacenters, cluster.num_server_classes)
        if availability.shape != expected:
            raise ValueError(
                f"availability must have shape {expected}, got {availability.shape}"
            )
        if prices.shape != (horizon, cluster.num_datacenters):
            raise ValueError(
                f"prices must have shape (T, {cluster.num_datacenters}), "
                f"got {prices.shape}"
            )
        for name, arr in (
            ("arrivals", arrivals),
            ("availability", availability),
            ("prices", prices),
        ):
            if not np.all(np.isfinite(arr)) or np.any(arr < 0):
                raise ValueError(f"{name} must be finite and non-negative")
        object.__setattr__(self, "arrivals", arrivals)
        object.__setattr__(self, "availability", availability)
        object.__setattr__(self, "prices", prices)

    # ------------------------------------------------------------------
    @property
    def horizon(self) -> int:
        """Number of slots ``t_end``."""
        return int(self.arrivals.shape[0])

    def state_at(self, t: int) -> ClusterState:
        """The :class:`ClusterState` snapshot ``x(t)``."""
        if not 0 <= t < self.horizon:
            raise IndexError(f"slot {t} outside horizon [0, {self.horizon})")
        return ClusterState(self.availability[t], self.prices[t])

    def arrival_work(self) -> np.ndarray:
        """Total arriving work per slot (length ``T``)."""
        return self.arrivals @ self.cluster.demands

    def truncated(self, horizon: int) -> "Scenario":
        """A copy limited to the first *horizon* slots."""
        if not 0 < horizon <= self.horizon:
            raise ValueError(f"horizon must be in (0, {self.horizon}], got {horizon}")
        return Scenario(
            cluster=self.cluster,
            arrivals=self.arrivals[:horizon],
            availability=self.availability[:horizon],
            prices=self.prices[:horizon],
        )

    # ------------------------------------------------------------------
    @classmethod
    def generate(
        cls,
        cluster: Cluster,
        horizon: int,
        seed: int = 0,
        workload: CosmosWorkload | None = None,
        price_model: PriceModel | None = None,
        availability_model: AvailabilityModel | None = None,
    ) -> "Scenario":
        """Generate a scenario from the workload substrates.

        Defaults mirror the paper's setup: a Cosmos-like workload with
        the cluster's fairness shares, Table-I-mean prices (when the
        cluster has three sites; otherwise unit means) and slackness-
        preserving availability.
        """
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        rng = np.random.default_rng(seed)
        if workload is None:
            workload = CosmosWorkload(cluster)
        if price_model is None:
            if cluster.num_datacenters == 3:
                means = [0.392, 0.433, 0.548]
            else:
                means = [1.0] * cluster.num_datacenters
            price_model = PriceModel(means)
        if availability_model is None:
            availability_model = AvailabilityModel(cluster)
        arrivals = workload.generate(horizon, rng)
        prices = price_model.generate(horizon, rng)
        availability = availability_model.generate(horizon, rng)
        return cls(
            cluster=cluster,
            arrivals=arrivals,
            availability=availability,
            prices=prices,
        )

    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Persist the trace arrays to an ``.npz`` file.

        The cluster itself is not serialized — pair the file with the
        factory that built the cluster (e.g. ``repro.scenarios``).
        """
        np.savez_compressed(
            Path(path),
            arrivals=self.arrivals,
            availability=self.availability,
            prices=self.prices,
        )

    @classmethod
    def load(cls, cluster: Cluster, path: str | Path) -> "Scenario":
        """Reload a trace saved with :meth:`save` for the same cluster."""
        with np.load(Path(path)) as data:
            return cls(
                cluster=cluster,
                arrivals=data["arrivals"],
                availability=data["availability"],
                prices=data["prices"],
            )
