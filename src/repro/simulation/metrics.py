"""Per-slot metric collection and the paper's running averages.

Footnote 8: "the average values at time t are obtained by summing up
all the values up to time t and then dividing the sum by t" — every
curve in Figs. 2-4 is such a cumulative running average.
:class:`MetricsCollector` records raw per-slot values during a run and
exposes both the raw series and the running averages.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.model.queues import QueueNetwork

__all__ = ["MetricsCollector", "SimulationSummary"]

_EPS = 1e-12


@dataclass(frozen=True)
class SimulationSummary:
    """End-of-run aggregate results for one scheduler on one scenario."""

    scheduler: str
    horizon: int
    avg_energy_cost: float
    avg_fairness: float
    avg_combined_cost: float
    avg_dc_delay: tuple
    avg_front_delay: float
    avg_total_delay: float
    avg_work_per_dc: tuple
    max_queue_length: float
    total_served_jobs: float
    total_arrived_jobs: float
    total_dropped_jobs: float = 0.0
    #: Jobs evicted from failed data centers (fault injection only).
    total_evicted_jobs: float = 0.0
    #: Evicted jobs re-admitted to the central queues so far.
    total_requeued_jobs: float = 0.0

    def as_dict(self) -> dict:
        """Plain-dict view (for tabular experiment output)."""
        return {
            "scheduler": self.scheduler,
            "horizon": self.horizon,
            "avg_energy_cost": self.avg_energy_cost,
            "avg_fairness": self.avg_fairness,
            "avg_combined_cost": self.avg_combined_cost,
            "avg_dc_delay": list(self.avg_dc_delay),
            "avg_front_delay": self.avg_front_delay,
            "avg_total_delay": self.avg_total_delay,
            "avg_work_per_dc": list(self.avg_work_per_dc),
            "max_queue_length": self.max_queue_length,
            "total_served_jobs": self.total_served_jobs,
            "total_arrived_jobs": self.total_arrived_jobs,
            "total_dropped_jobs": self.total_dropped_jobs,
            "total_evicted_jobs": self.total_evicted_jobs,
            "total_requeued_jobs": self.total_requeued_jobs,
        }


@dataclass
class MetricsCollector:
    """Accumulates per-slot metrics during a simulation run."""

    num_datacenters: int
    energy_cost: list = field(default_factory=list)
    fairness: list = field(default_factory=list)
    combined_cost: list = field(default_factory=list)
    work_per_dc: list = field(default_factory=list)
    queue_total: list = field(default_factory=list)
    queue_max: list = field(default_factory=list)
    served_jobs: list = field(default_factory=list)
    # Cumulative delay-ledger snapshots (per slot) for running averages.
    dc_delay_sum: list = field(default_factory=list)
    dc_completed: list = field(default_factory=list)
    front_delay_sum: list = field(default_factory=list)
    front_completed: list = field(default_factory=list)

    # ------------------------------------------------------------------
    def record(
        self,
        energy: float,
        fairness: float,
        combined: float,
        work_per_dc: np.ndarray,
        served_jobs: float,
        queues: QueueNetwork,
    ) -> None:
        """Record one slot's outcomes (call once per slot, in order)."""
        self.energy_cost.append(float(energy))
        self.fairness.append(float(fairness))
        self.combined_cost.append(float(combined))
        self.work_per_dc.append(np.asarray(work_per_dc, dtype=np.float64).copy())
        self.queue_total.append(queues.total_backlog())
        self.queue_max.append(queues.max_queue_length())
        self.served_jobs.append(float(served_jobs))
        stats = queues.stats
        self.dc_delay_sum.append(stats.dc_delay_sum.sum(axis=1).copy())
        self.dc_completed.append(stats.dc_completed.sum(axis=1).copy())
        self.front_delay_sum.append(float(stats.front_delay_sum.sum()))
        self.front_completed.append(float(stats.front_completed.sum()))

    # ------------------------------------------------------------------
    # Series accessors
    # ------------------------------------------------------------------
    @property
    def horizon(self) -> int:
        """Number of recorded slots."""
        return len(self.energy_cost)

    @staticmethod
    def _running_average(values: np.ndarray) -> np.ndarray:
        steps = np.arange(1, len(values) + 1, dtype=np.float64)
        return np.cumsum(values, axis=0) / steps.reshape(-1, *([1] * (values.ndim - 1)))

    def avg_energy_series(self) -> np.ndarray:
        """Running-average energy cost (Fig. 2a / 3a / 4a curves)."""
        return self._running_average(np.asarray(self.energy_cost))

    def avg_fairness_series(self) -> np.ndarray:
        """Running-average fairness score (Fig. 3b / 4b curves)."""
        return self._running_average(np.asarray(self.fairness))

    def avg_combined_series(self) -> np.ndarray:
        """Running-average energy-fairness cost ``g``."""
        return self._running_average(np.asarray(self.combined_cost))

    def avg_dc_delay_series(self, dc: int) -> np.ndarray:
        """Running-average delay in one data center (Fig. 2b/2c, 3c, 4c).

        At slot ``t`` this is (total delay of jobs served in DC *dc* up
        to ``t``) / (jobs served up to ``t``) — exactly the footnote-8
        average applied to per-job delays.
        """
        sums = np.asarray(self.dc_delay_sum)[:, dc]
        counts = np.asarray(self.dc_completed)[:, dc]
        return np.where(counts > _EPS, sums / np.maximum(counts, _EPS), 0.0)

    def avg_front_delay_series(self) -> np.ndarray:
        """Running-average central-queue delay."""
        sums = np.asarray(self.front_delay_sum)
        counts = np.asarray(self.front_completed)
        return np.where(counts > _EPS, sums / np.maximum(counts, _EPS), 0.0)

    def work_per_dc_series(self) -> np.ndarray:
        """Raw per-slot work processed per site, ``(T, N)`` (Fig. 5)."""
        return np.asarray(self.work_per_dc)

    def queue_total_series(self) -> np.ndarray:
        """Raw total backlog per slot."""
        return np.asarray(self.queue_total)

    # ------------------------------------------------------------------
    def summary(
        self,
        scheduler: str,
        queues: QueueNetwork,
        arrived: float,
        dropped: float = 0.0,
        evicted: float = 0.0,
        requeued: float = 0.0,
    ) -> SimulationSummary:
        """Aggregate everything into a :class:`SimulationSummary`."""
        stats = queues.stats
        work = self.work_per_dc_series()
        return SimulationSummary(
            scheduler=scheduler,
            horizon=self.horizon,
            avg_energy_cost=float(np.mean(self.energy_cost)) if self.energy_cost else 0.0,
            avg_fairness=float(np.mean(self.fairness)) if self.fairness else 0.0,
            avg_combined_cost=(
                float(np.mean(self.combined_cost)) if self.combined_cost else 0.0
            ),
            avg_dc_delay=tuple(
                stats.mean_dc_delay(i) for i in range(self.num_datacenters)
            ),
            avg_front_delay=stats.mean_front_delay(),
            avg_total_delay=stats.mean_total_delay(),
            avg_work_per_dc=tuple(work.mean(axis=0)) if work.size else tuple(),
            max_queue_length=float(np.max(self.queue_max)) if self.queue_max else 0.0,
            total_served_jobs=float(np.sum(self.served_jobs)),
            total_arrived_jobs=float(arrived),
            total_dropped_jobs=float(dropped),
            total_evicted_jobs=float(evicted),
            total_requeued_jobs=float(requeued),
        )
