"""Simulation observers: per-slot telemetry hooks.

An observer is any callable ``(t, state, action, queues) -> None``
invoked after each slot's dynamics are applied.  Observers let users
capture custom telemetry without forking the simulator loop; two
ready-made ones are provided:

* :class:`SnapshotRecorder` — snapshots the full queue matrices every
  ``k`` slots (for debugging backlog evolution);
* :class:`PeakTracker` — tracks per-site peaks of work, busy power and
  queue length (for capacity planning).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro._validation import require_integer

__all__ = ["SnapshotRecorder", "PeakTracker"]


@dataclass
class SnapshotRecorder:
    """Record full queue-state snapshots every *every* slots.

    Attributes
    ----------
    every:
        Snapshot period in slots.
    slots:
        Slot indices at which snapshots were taken.
    front_snapshots / dc_snapshots:
        The recorded ``Q_j(t)`` vectors and ``q_ij(t)`` matrices.
    """

    every: int = 1
    slots: List[int] = field(default_factory=list)
    front_snapshots: List[np.ndarray] = field(default_factory=list)
    dc_snapshots: List[np.ndarray] = field(default_factory=list)

    def __post_init__(self) -> None:
        require_integer(self.every, "every", minimum=1)

    def __call__(self, t, state, action, queues) -> None:
        if t % self.every != 0:
            return
        self.slots.append(int(t))
        self.front_snapshots.append(queues.front)
        self.dc_snapshots.append(queues.dc)

    def backlog_series(self) -> np.ndarray:
        """Total backlog at each snapshot."""
        return np.array(
            [f.sum() + d.sum() for f, d in zip(self.front_snapshots, self.dc_snapshots)]
        )


@dataclass
class PeakTracker:
    """Track per-site peaks of work served, power drawn and queue length."""

    peak_work: np.ndarray = field(default=None)
    peak_power: np.ndarray = field(default=None)
    peak_queue: np.ndarray = field(default=None)

    def __call__(self, t, state, action, queues) -> None:
        cluster = queues.cluster
        work = action.work_served(cluster)
        power = action.busy @ cluster.active_powers
        queue = queues.dc.sum(axis=1)
        if self.peak_work is None:
            self.peak_work = work.copy()
            self.peak_power = power.copy()
            self.peak_queue = queue.copy()
        else:
            np.maximum(self.peak_work, work, out=self.peak_work)
            np.maximum(self.peak_power, power, out=self.peak_power)
            np.maximum(self.peak_queue, queue, out=self.peak_queue)
