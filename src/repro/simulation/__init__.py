"""Time-slotted simulation engine, scenarios and metric collection."""

from repro.simulation.metrics import MetricsCollector, SimulationSummary
from repro.simulation.observers import PeakTracker, SnapshotRecorder
from repro.simulation.simulator import SimulationResult, Simulator, run_comparison
from repro.simulation.trace import Scenario

__all__ = [
    "MetricsCollector",
    "PeakTracker",
    "Scenario",
    "SimulationResult",
    "SimulationSummary",
    "Simulator",
    "SnapshotRecorder",
    "run_comparison",
]
