"""Service state store: configuration, live model state, checkpoints.

:class:`ServiceConfig` is the frozen identity of one service instance —
which environment trace it schedules against, which scheduler it runs,
how intake is bounded.  Its digest keys the data directory, the
write-ahead log and the ckpt-v1 checkpoint, so a restarted gateway can
only ever resume *its own* state.

:class:`ServiceState` owns everything the ticker mutates: the queue
network, the metrics collector, the scheduler, the accepted-arrival
matrix and the per-slot records the query endpoints serve.  It is the
bridge to the offline world in both directions:

* the environment (availability, prices) comes from the same
  :class:`~repro.runner.spec.ScenarioSpec` factories the runner uses —
  only the *arrivals* are live;
* :meth:`replay_scenario` packages the accepted arrivals back into an
  offline :class:`~repro.simulation.trace.Scenario`, which the
  equivalence tests push through ``Simulator`` to prove the service's
  per-slot metrics are bit-identical to a batch replay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro._validation import require_integer, require_positive
from repro.core.objective import CostModel
from repro.model.queues import QueueNetwork
from repro.resilient.checkpoint import Checkpointer
from repro.runner.spec import ScenarioSpec, spec_digest
from repro.schedulers import build_scheduler
from repro.simulation.metrics import MetricsCollector
from repro.simulation.trace import Scenario

__all__ = ["ServiceConfig", "ServiceState"]

#: Default root for service data directories (write-ahead logs and
#: checkpoints); sibling of the runner cache.
DEFAULT_SERVICE_DIR = Path(".repro_cache") / "service"


def _freeze_kwargs(kwargs: Any) -> Tuple[Tuple[str, Any], ...]:
    if kwargs is None:
        return ()
    items = kwargs.items() if isinstance(kwargs, dict) else tuple(kwargs)
    return tuple(sorted((str(k), v) for k, v in items))


@dataclass(frozen=True)
class ServiceConfig:
    """Frozen identity + tuning of one gateway instance.

    The *identity* fields (scenario kind/seed/capacity, scheduler and
    its kwargs, cost beta) determine scheduling behavior and are hashed
    into :attr:`digest`; a checkpoint written under one digest is never
    resumed into a service configured differently.  The remaining
    fields (intake bound, rate limits, slot pacing, paths) tune the
    gateway around the model without changing what it computes.
    """

    scenario_kind: str = "small"
    scenario_seed: int = 0
    #: How many slots of environment trace (availability, prices) are
    #: pre-generated; the service refuses to tick past this horizon.
    capacity_slots: int = 500
    scheduler: str = "grefar"
    scheduler_kwargs: Tuple[Tuple[str, Any], ...] = ()
    cost_beta: float = 0.0
    #: Intake buffer bound, in jobs (see IntakeBuffer).
    intake_capacity: int = 200
    #: Per-account sustained rate (jobs/second) and burst budget.
    rate: float = 100.0
    burst: float = 200.0
    #: Wall-clock seconds per slot; ``None`` = manual ticks only
    #: (tests, CI drills) via ``POST /v1/admin/tick``.
    slot_seconds: Optional[float] = None
    #: Checkpoint after every N completed slots.
    checkpoint_every: int = 1
    #: Data root; the instance directory is ``<data_dir>/<digest[:16]>``.
    data_dir: str = str(DEFAULT_SERVICE_DIR)

    def __post_init__(self) -> None:
        require_integer(self.capacity_slots, "capacity_slots", minimum=1)
        require_integer(self.intake_capacity, "intake_capacity", minimum=1)
        require_integer(self.checkpoint_every, "checkpoint_every", minimum=1)
        require_positive(self.rate, "rate")
        require_positive(self.burst, "burst")
        if self.slot_seconds is not None:
            require_positive(self.slot_seconds, "slot_seconds")
        object.__setattr__(
            self, "scheduler_kwargs", _freeze_kwargs(self.scheduler_kwargs)
        )

    # ------------------------------------------------------------------
    def identity(self) -> dict:
        """The JSON-encodable scheduling identity (digest material)."""
        return {
            "service": "svc-v1",
            "scenario_kind": self.scenario_kind,
            "scenario_seed": self.scenario_seed,
            "capacity_slots": self.capacity_slots,
            "scheduler": self.scheduler,
            "scheduler_kwargs": [list(pair) for pair in self.scheduler_kwargs],
            "cost_beta": self.cost_beta,
        }

    @property
    def digest(self) -> str:
        return spec_digest(self.identity())

    @property
    def instance_dir(self) -> Path:
        return Path(self.data_dir) / self.digest[:16]

    @property
    def wal_path(self) -> Path:
        return self.instance_dir / "submissions.jsonl"

    @property
    def checkpoint_key(self) -> str:
        return f"service-{self.digest[:16]}"

    def checkpointer(self) -> Checkpointer:
        return Checkpointer(
            key=self.checkpoint_key,
            every=self.checkpoint_every,
            directory=self.instance_dir / "checkpoints",
        )

    def environment_spec(self) -> ScenarioSpec:
        """The spec whose availability/prices the live path consumes."""
        return ScenarioSpec(
            kind=self.scenario_kind,
            horizon=self.capacity_slots,
            seed=self.scenario_seed,
        )

    def as_dict(self) -> dict:
        payload = self.identity()
        payload.update(
            {
                "intake_capacity": self.intake_capacity,
                "rate": self.rate,
                "burst": self.burst,
                "slot_seconds": self.slot_seconds,
                "checkpoint_every": self.checkpoint_every,
                "data_dir": str(self.data_dir),
                "digest": self.digest,
            }
        )
        return payload


class ServiceState:
    """Everything the slot ticker mutates, plus its checkpoint plumbing.

    The live loop's stateful objects are exactly the offline
    simulator's (queue network, metrics collector, scheduler) so a
    replay of the accepted arrivals reproduces the service bit for bit;
    the additions — arrival matrix, per-slot records, cumulative
    account work — exist to answer queries and write checkpoints.
    """

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        #: The environment trace; arrivals in it are IGNORED — the live
        #: gateway supplies arrivals, the spec supplies the rest.
        self.environment = config.environment_spec().materialize()
        self.cluster = self.environment.cluster
        self.cost_model = CostModel(beta=config.cost_beta)
        self.queues = QueueNetwork(self.cluster)
        self.metrics = MetricsCollector(
            num_datacenters=self.cluster.num_datacenters
        )
        self.scheduler = build_scheduler(
            config.scheduler, self.cluster, **dict(config.scheduler_kwargs)
        )
        self.scheduler.reset()
        self.next_slot = 0
        #: Accepted arrival vectors, one per completed slot (length J).
        self.arrivals_log: List[np.ndarray] = []
        #: Query-facing per-slot records (JSON-encodable).
        self.slot_records: List[dict] = []
        #: Cumulative eq. (3) work per account, for /v1/fairness.
        self.account_work = np.zeros(self.cluster.num_accounts)
        self.admitted_total = 0.0

    # ------------------------------------------------------------------
    @property
    def max_arrivals(self) -> np.ndarray:
        """Per-type per-slot arrival bounds ``A_j^max`` (length J)."""
        return np.asarray(
            [jt.max_arrivals for jt in self.cluster.job_types], dtype=np.float64
        )

    def arrivals_matrix(self) -> np.ndarray:
        """Accepted arrivals as a ``(completed_slots, J)`` matrix."""
        if not self.arrivals_log:
            return np.zeros((0, self.cluster.num_job_types))
        return np.stack(self.arrivals_log)

    def replay_scenario(self) -> Scenario:
        """The completed slots as an offline scenario.

        Running this through ``Simulator`` with a freshly built
        scheduler of the same registry name/kwargs must reproduce
        :attr:`slot_records` bit-identically — the service's decisive
        correctness property.
        """
        horizon = len(self.arrivals_log)
        if horizon == 0:
            raise ValueError("no completed slots to replay yet")
        return Scenario(
            cluster=self.cluster,
            arrivals=self.arrivals_matrix(),
            availability=self.environment.availability[:horizon],
            prices=self.environment.prices[:horizon],
        )

    def fairness_view(self) -> dict:
        """Cumulative account work vs the configured fair shares."""
        total = float(self.account_work.sum())
        shares = np.asarray(self.cluster.fair_shares, dtype=np.float64)
        entitled = shares * total
        return {
            "completed_slots": self.next_slot,
            "fair_shares": [float(s) for s in shares],
            "cumulative_work": [float(w) for w in self.account_work],
            "entitled_work": [float(w) for w in entitled],
            "deviation": [
                float(w - e) for w, e in zip(self.account_work, entitled)
            ],
        }

    # ------------------------------------------------------------------
    # Checkpoint integration (ckpt-v1)
    # ------------------------------------------------------------------
    def checkpoint_payload(self, extra: Dict[str, Any]) -> Dict[str, Any]:
        """The full resumable snapshot (service additions + sim state).

        *extra* carries the ingestion-side state (pending submissions,
        last acknowledged sequence, rate-limiter levels, counters) the
        app layer owns.
        """
        return {
            "next_slot": int(self.next_slot),
            "scheduler_name": self.scheduler.name,
            "config_digest": self.config.digest,
            "queues": self.queues,
            "metrics": self.metrics,
            "scheduler": self.scheduler,
            "arrivals_log": [a.copy() for a in self.arrivals_log],
            "slot_records": list(self.slot_records),
            "account_work": self.account_work.copy(),
            "admitted_total": float(self.admitted_total),
            **extra,
        }

    def restore(self, payload: Dict[str, Any]) -> None:
        """Adopt a checkpoint payload written by :meth:`checkpoint_payload`."""
        if payload.get("config_digest") != self.config.digest:
            raise ValueError(
                "checkpoint belongs to a differently-configured service"
            )
        self.next_slot = int(payload["next_slot"])
        self.queues = payload["queues"]
        self.metrics = payload["metrics"]
        self.scheduler = payload["scheduler"]
        self.arrivals_log = [np.asarray(a) for a in payload["arrivals_log"]]
        self.slot_records = list(payload["slot_records"])
        self.account_work = np.asarray(payload["account_work"], dtype=np.float64)
        self.admitted_total = float(payload["admitted_total"])
