"""The slot ticker: advance GreFar one slot at a time, decoupled from HTTP.

:func:`tick_once` is a line-for-line mirror of the offline
``Simulator.run`` slot body (decide → clip → step → cost → record) with
one substitution: the arrival vector comes from the live intake buffer
instead of a pre-generated trace.  Everything else — state snapshot,
queue dynamics, cost evaluation, metric recording — is the same code
operating in the same order on the same objects, which is what makes
the service's per-slot metrics bit-identical to an offline replay of
its accepted-arrival log.

:class:`SlotTicker` wraps that pure step with scheduling (manual ticks
for tests and CI, a wall-clock thread for real serving), the shared
service lock, and the ckpt-v1 checkpoint cadence.  Blocking waits live
only in the pacing loop, never in the tick path (staticcheck GF009
enforces this).
"""

from __future__ import annotations

import threading
from typing import List, Optional

import numpy as np

from repro.obs.registry import metrics_registry
from repro.resilient.checkpoint import Checkpointer
from repro.service.ingest import Ingestor
from repro.service.ratelimit import AccountRateLimiter
from repro.service.state import ServiceState
from repro.tools import tsan

__all__ = ["CapacityExhausted", "SlotTicker", "tick_once"]


class CapacityExhausted(RuntimeError):
    """The pre-generated environment trace has no more slots to tick."""


def tick_once(state: ServiceState, arrivals: np.ndarray) -> dict:
    """Advance the service exactly one slot; returns the slot record.

    Mirrors ``Simulator.run`` with its defaults (no admission policy,
    no fault injector, ``enforce_physical=True``): any divergence here
    breaks the offline-replay equivalence the tests pin down.
    """
    t = state.next_slot
    if t >= state.config.capacity_slots:
        raise CapacityExhausted(
            f"environment trace exhausted after {t} slots; "
            "restart with a larger --capacity-slots"
        )
    reg = metrics_registry()
    cluster_state = state.environment.state_at(t)
    with reg.span("service.decide"):
        action = state.scheduler.decide(t, cluster_state, state.queues)
    action = state.queues.clip_to_content(action)
    arrivals = np.asarray(arrivals, dtype=np.float64)
    state.admitted_total += float(np.sum(arrivals))
    outcome = state.queues.step(action, arrivals, t)
    served_jobs = float(np.sum(outcome["served"]))
    cost = state.cost_model.evaluate(state.cluster, cluster_state, action)
    state.metrics.record(
        energy=cost.energy,
        fairness=cost.fairness,
        combined=cost.combined,
        work_per_dc=action.work_served(state.cluster),
        served_jobs=served_jobs,
        queues=state.queues,
    )
    state.account_work += action.account_work(state.cluster)
    record = {
        "slot": t,
        "arrivals": [float(a) for a in arrivals],
        "energy_cost": float(cost.energy),
        "fairness": float(cost.fairness),
        "combined_cost": float(cost.combined),
        "served_jobs": served_jobs,
        "work_per_dc": [float(w) for w in action.work_served(state.cluster)],
        "queue_total": float(state.queues.total_backlog()),
        "queue_max": float(state.queues.max_queue_length()),
    }
    state.arrivals_log.append(arrivals.copy())
    state.slot_records.append(record)
    state.next_slot = t + 1
    return record


class SlotTicker:
    """Drive :func:`tick_once` on a schedule, with checkpoints.

    Parameters
    ----------
    state:
        The service state store.
    ingestor:
        Ingestion pipeline; each tick drains its buffer into the slot's
        arrival vector (bounded per type by ``A_j^max``).
    limiter:
        The rate limiter, snapshotted into every checkpoint.
    checkpointer:
        ckpt-v1 schedule from ``ServiceConfig.checkpointer()``; a save
        lands after every ``every`` completed slots.
    lock:
        The service-wide lock shared with the query endpoints, so
        queries never observe a half-applied slot.
    """

    def __init__(
        self,
        state: ServiceState,
        ingestor: Ingestor,
        limiter: AccountRateLimiter,
        checkpointer: Checkpointer,
        lock: Optional[threading.RLock] = None,
    ) -> None:
        self.state = state
        self.ingestor = ingestor
        self.limiter = limiter
        self.checkpointer = checkpointer
        # The gateway injects its own lock, so "SlotTicker.lock" and
        # "SchedulerService.lock" are one runtime object; the alias
        # comment merges them into one node of the static lock graph.
        self.lock = (  # lock-alias: SchedulerService.lock
            lock
            if lock is not None
            else tsan.named_lock("SchedulerService.lock", reentrant=True)
        )
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.ticks_completed = 0  # guarded-by: self.lock
        tsan.watch(self)

    # ------------------------------------------------------------------
    def tick(self, slots: int = 1) -> List[dict]:
        """Advance *slots* slots synchronously; returns their records."""
        records: List[dict] = []
        for _ in range(slots):
            with self.lock:
                arrivals, _consumed = self.ingestor.buffer.drain_slot(
                    self.state.max_arrivals
                )
                record = tick_once(self.state, arrivals)
                self.ticks_completed += 1
                if self.checkpointer.due(self.state.next_slot):
                    self.save_checkpoint()
            records.append(record)
        return records

    def save_checkpoint(self) -> None:
        """Write one consistent ckpt-v1 snapshot (state + ingestion)."""
        with self.lock:
            pending, next_seq, counters = self.ingestor.freeze()
            payload = self.state.checkpoint_payload(
                {
                    "pending": pending,
                    "next_seq": int(next_seq),
                    "ingest_counters": counters,
                    "ratelimit": self.limiter.state(),
                }
            )
            # A consistent snapshot needs model + ingestion frozen under
            # the service lock while the atomic file write lands; the
            # cost is bounded (one pickle per --checkpoint-every slots).
            self.checkpointer.save(payload)  # staticcheck: ignore[GF012] -- checkpoint atomicity requires the write under the service lock; cadence-bounded

    # ------------------------------------------------------------------
    # Wall-clock pacing (kept out of the tick path; GF009)
    # ------------------------------------------------------------------
    def start(self, slot_seconds: float) -> None:
        """Start the wall-clock pacing thread (one tick per period)."""
        if self._thread is not None and self._thread.is_alive():
            raise RuntimeError("ticker already running")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._pace_loop,
            args=(float(slot_seconds),),
            name="repro-slot-ticker",
            daemon=True,
        )
        self._thread.start()

    def _pace_loop(self, slot_seconds: float) -> None:
        # Fixed-period pacing: wait one period, then take one slot.
        # Event.wait doubles as the shutdown signal, so stop() never
        # has to interrupt a sleep.
        while not self._stop.wait(slot_seconds):
            try:
                self.tick(1)
            except CapacityExhausted:
                break

    def stop(self) -> None:
        """Stop the pacing thread (if any) and wait for it to exit.

        Must never be called with the service lock held: the pacing
        thread may be inside ``tick()`` waiting for that very lock, and
        joining it here would deadlock.  ``shutdown()`` therefore stops
        the ticker *before* taking the lock for the final checkpoint —
        GF012 flags the join if it ever moves inside a critical section.
        """
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
