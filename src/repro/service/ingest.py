"""Ingestion pipeline: bounded intake, write-ahead log, backpressure.

The gateway decouples *accepting* a submission from *scheduling* it.
HTTP handler threads are producers into a bounded :class:`IntakeBuffer`;
the slot ticker is the single consumer, draining whole submissions into
the next slot's arrival vector.  Three layers make that safe:

* **Backpressure** — the buffer bounds total pending *jobs*.  A
  submission that would overflow it is refused (the gateway answers
  429 + ``Retry-After``) rather than queued without bound; nothing is
  ever dropped silently.
* **Durability** — every accepted submission is appended to a JSONL
  write-ahead log and flushed *before* the 202 acknowledgement is
  produced.  A killed process therefore cannot lose an acknowledged
  submission: restart replays the log entries newer than the last
  checkpoint back into the buffer (:mod:`repro.service.state`).
* **Model bounds** — at drain time each job type contributes at most
  its per-slot arrival bound ``A_j^max`` (eq. 3); what does not fit
  stays buffered (FIFO per type) for the next slot, so the live path
  only ever feeds the queues arrival vectors the offline scenario
  generators could also have produced.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, TextIO, Tuple

import numpy as np

from repro._validation import require_positive
from repro.service.ratelimit import AccountRateLimiter
from repro.service.wire import SubmissionRequest
from repro.tools import tsan

__all__ = ["IntakeBuffer", "Ingestor", "SubmissionLog", "SubmissionRecord"]


@dataclass(frozen=True)
class SubmissionRecord:
    """One acknowledged submission, as logged and buffered.

    ``seq`` is the gateway-assigned monotone sequence number; the public
    submission id is derived from it (``sub-<seq>``), and checkpoint
    recovery uses it to tell already-snapshotted submissions from ones
    only the write-ahead log remembers.
    """

    seq: int
    account: int
    job_type: int
    count: int

    @property
    def submission_id(self) -> str:
        return f"sub-{self.seq}"

    def as_dict(self) -> dict:
        return {
            "seq": self.seq,
            "account": self.account,
            "job_type": self.job_type,
            "count": self.count,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SubmissionRecord":
        return cls(
            seq=int(payload["seq"]),
            account=int(payload["account"]),
            job_type=int(payload["job_type"]),
            count=int(payload["count"]),
        )


class SubmissionLog:
    """Append-only JSONL write-ahead log of acknowledged submissions.

    One line per record, flushed on every append so an acknowledged
    submission survives a ``SIGKILL`` of the gateway process.  The log
    is the durable record the restart path replays and the artifact the
    offline equivalence check reads — it is never rewritten, only
    appended to or (on an explicitly fresh start) rotated away.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle: Optional[TextIO] = None

    def _open(self) -> TextIO:
        if self._handle is None or self._handle.closed:
            self._handle = open(self.path, "a", encoding="utf-8")
        return self._handle

    def append(self, record: SubmissionRecord) -> None:
        """Write one record and flush it to the OS before returning."""
        handle = self._open()
        handle.write(json.dumps(record.as_dict(), sort_keys=True) + "\n")
        handle.flush()

    def close(self) -> None:
        if self._handle is not None and not self._handle.closed:
            self._handle.close()

    def replay(self) -> List[SubmissionRecord]:
        """Every record on disk, oldest first (empty if the log is absent).

        A torn final line — the process died mid-append, before the
        flush that precedes the acknowledgement — is skipped: its
        submission was never acknowledged, so dropping it loses nothing
        a client was promised.
        """
        if not self.path.exists():
            return []
        records: List[SubmissionRecord] = []
        with open(self.path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(SubmissionRecord.from_dict(json.loads(line)))
                except (ValueError, KeyError, TypeError):
                    continue
        return records

    def rotate(self) -> None:
        """Move an existing log aside (fresh starts must not replay it)."""
        self.close()
        if self.path.exists():
            backup = self.path.with_suffix(self.path.suffix + ".old")
            self.path.replace(backup)


class IntakeBuffer:
    """Bounded per-type FIFO staging area between gateway and ticker.

    Capacity is measured in *jobs* (submission counts), matching what
    backpressure protects: the front queues absorb at most
    ``sum_j A_j^max`` jobs per slot, so pending jobs — not request
    count — is the quantity that must stay bounded.
    """

    def __init__(self, capacity: int, num_job_types: int) -> None:
        require_positive(capacity, "capacity")
        self.capacity = int(capacity)
        self._lock = tsan.named_lock("IntakeBuffer._lock")
        self._queues: List[List[SubmissionRecord]] = [  # guarded-by: self._lock
            [] for _ in range(num_job_types)
        ]
        self._pending_jobs = 0  # guarded-by: self._lock
        tsan.watch(self)

    # ------------------------------------------------------------------
    @property
    def pending_jobs(self) -> int:
        """Total jobs currently buffered."""
        with self._lock:
            return self._pending_jobs

    def offer(self, record: SubmissionRecord, force: bool = False) -> bool:
        """Stage *record*; False when it would overflow the capacity.

        ``force=True`` bypasses the bound — used only for write-ahead-log
        recovery, where the submissions were already acknowledged and
        refusing them would be the very loss the log exists to prevent.
        """
        with self._lock:
            if not force and self._pending_jobs + record.count > self.capacity:
                return False
            self._queues[record.job_type].append(record)
            self._pending_jobs += record.count
            return True

    def drain_slot(self, max_per_type: np.ndarray) -> Tuple[np.ndarray, List[int]]:
        """Assemble one slot's arrival vector from the buffered FIFO.

        Whole submissions are consumed per type, oldest first, while the
        type's running total stays within ``max_per_type`` (the eq. 3
        arrival bounds).  Returns ``(arrivals, consumed_seqs)``; what
        did not fit remains buffered for the next slot.
        """
        consumed: List[int] = []
        with self._lock:
            arrivals = np.zeros(len(self._queues), dtype=np.float64)
            for j, queue in enumerate(self._queues):
                cap = float(max_per_type[j])
                taken = 0
                for record in queue:
                    if arrivals[j] + record.count > cap + 1e-9:
                        break
                    arrivals[j] += record.count
                    consumed.append(record.seq)
                    self._pending_jobs -= record.count
                    taken += 1
                if taken:
                    del queue[:taken]
        return arrivals, consumed

    # ------------------------------------------------------------------
    # Checkpoint integration
    # ------------------------------------------------------------------
    def snapshot(self) -> List[SubmissionRecord]:
        """Pending submissions, oldest first per type (picklable)."""
        with self._lock:
            merged: List[SubmissionRecord] = []
            for queue in self._queues:
                merged.extend(queue)
            return sorted(merged, key=lambda r: r.seq)

    def restore(self, records: List[SubmissionRecord]) -> None:
        with self._lock:
            for queue in self._queues:
                queue.clear()
            self._pending_jobs = 0
            for record in sorted(records, key=lambda r: r.seq):
                self._queues[record.job_type].append(record)
                self._pending_jobs += record.count


class Ingestor:
    """The producer-side pipeline: rate limit -> capacity -> log -> buffer.

    One instance is shared by every HTTP handler thread.  ``submit``
    applies the per-account token bucket, reserves buffer capacity,
    appends to the write-ahead log and only then stages the record —
    so by the time a 202 leaves the gateway the submission is both
    durable and scheduled for a future slot.  Rejections are explicit
    (a reason and a retry hint), never silent.
    """

    def __init__(
        self,
        buffer: IntakeBuffer,
        log: SubmissionLog,
        limiter: AccountRateLimiter,
        retry_after_slots: float = 1.0,
        first_seq: int = 1,
    ) -> None:
        self.buffer = buffer
        self.log = log
        self.limiter = limiter
        #: Retry hint (seconds) answered on buffer-full backpressure;
        #: the app sets it from the wall-clock slot period so clients
        #: back off for about one drain cycle.
        self.retry_after_slots = float(retry_after_slots)
        self._seq_lock = tsan.named_lock("Ingestor._seq_lock")
        self._next_seq = int(first_seq)  # guarded-by: self._seq_lock
        self.accepted_jobs = 0  # guarded-by: self._seq_lock
        self.rejected_rate = 0  # guarded-by: self._seq_lock
        self.rejected_full = 0  # guarded-by: self._seq_lock
        tsan.watch(self)

    @property
    def next_seq(self) -> int:
        with self._seq_lock:
            return self._next_seq

    def set_next_seq(self, seq: int) -> None:
        """Advance the sequence counter (checkpoint/log recovery)."""
        with self._seq_lock:
            self._next_seq = max(self._next_seq, int(seq))

    def submit(
        self, request: SubmissionRequest
    ) -> Tuple[Optional[SubmissionRecord], str, float]:
        """Run one submission through the pipeline.

        Returns ``(record, reason, retry_after)``: on acceptance the
        record with its assigned sequence number; on refusal ``None``
        plus a machine-readable reason (``"rate_limited"`` or
        ``"backpressure"``) and the retry hint in seconds.
        """
        granted, retry_after = self.limiter.admit(request.account, request.count)
        if not granted:
            # Counter writes take the sequence lock too: ++ on a plain
            # int is read-modify-write, and concurrent handler threads
            # were able to lose increments here (caught by GF010).
            with self._seq_lock:
                self.rejected_rate += 1
            return None, "rate_limited", retry_after
        with self._seq_lock:
            record = SubmissionRecord(
                seq=self._next_seq,
                account=request.account,
                job_type=request.job_type,
                count=request.count,
            )
            # Log-before-buffer: once this line is flushed the record is
            # durable; only then may the gateway acknowledge.
            if not self.buffer.offer(record):
                self.rejected_full += 1
                return None, "backpressure", max(1.0, self.retry_after_slots)
            # The WAL flush must stay inside the sequence lock: freeze()
            # partitions the log at next_seq, so an append outside it
            # could ack a record a concurrent checkpoint never saw.
            self.log.append(record)  # staticcheck: ignore[GF012] -- durability-before-ack requires the flush inside the seq lock; bounded single-line write
            self._next_seq += 1
            self.accepted_jobs += record.count
        return record, "accepted", 0.0

    def freeze(self) -> Tuple[List[SubmissionRecord], int, dict]:
        """Atomic ``(pending, next_seq, counters)`` snapshot for checkpoints.

        Taken under the sequence lock, which :meth:`submit` holds while
        logging and staging — so no submission can land between the
        pending snapshot and the sequence capture.  That atomicity is
        what lets restart partition the write-ahead log exactly:
        records with ``seq < next_seq`` are either in a completed slot
        or in ``pending``; records with ``seq >= next_seq`` are
        recovered from the log alone.
        """
        with self._seq_lock:
            return self.buffer.snapshot(), self._next_seq, self._counters_locked()

    def recover(self, records: List[SubmissionRecord]) -> int:
        """Re-stage write-ahead-log *records* after a restart.

        Forced past the capacity bound (they were acknowledged) and
        replayed in sequence order; the counter resumes above the
        highest sequence ever issued.  Returns how many were restored.
        The sequence/counter update is inlined per record rather than
        delegated to :meth:`set_next_seq` — the sequence lock is not
        reentrant, and the pair must move together anyway.
        """
        restored = 0
        for record in sorted(records, key=lambda r: r.seq):
            self.buffer.offer(record, force=True)
            with self._seq_lock:
                self._next_seq = max(self._next_seq, record.seq + 1)
                self.accepted_jobs += record.count
            restored += 1
        return restored

    def restore_counters(self, counters: dict) -> None:
        """Adopt checkpointed counter values (the restart path)."""
        with self._seq_lock:
            self.accepted_jobs = int(counters.get("accepted_jobs", 0))
            self.rejected_rate = int(counters.get("rejected_rate_limited", 0))
            self.rejected_full = int(counters.get("rejected_backpressure", 0))

    def counters(self) -> dict:
        with self._seq_lock:
            return self._counters_locked()

    def _counters_locked(self) -> dict:
        # Callers hold the sequence lock (counters(), freeze()) — the
        # GF010 interprocedural check verifies exactly that.
        return {
            "accepted_jobs": self.accepted_jobs,
            "rejected_rate_limited": self.rejected_rate,
            "rejected_backpressure": self.rejected_full,
            "pending_jobs": self.buffer.pending_jobs,
        }
